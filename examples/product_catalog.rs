//! Product-catalog matching with the paper's extensions (§5).
//!
//! A distributor's sales feed names products sloppily; the enterprise
//! Product relation is the reference (the paper's opening example). This
//! example exercises the §5 extensions:
//!
//! * **column weights** (§5.2) — the part-number column matters more than
//!   the free-text description;
//! * **token transposition** (§5.3) — "cable hdmi 2m" vs "hdmi cable 2m";
//! * **top-K retrieval** — return 3 suggestions for a human chooser, with
//!   a minimum similarity threshold.
//!
//! Run with: `cargo run -p fm-examples --bin product_catalog`

use fm_core::{Config, FuzzyMatcher, Record, TranspositionCost};
use fm_store::Database;

fn main() {
    let db = Database::in_memory().expect("database");
    let catalog = vec![
        Record::new(&["KB-1010", "mechanical keyboard black", "peripherals"]),
        Record::new(&["KB-1011", "mechanical keyboard white", "peripherals"]),
        Record::new(&["KB-2010", "wireless keyboard compact", "peripherals"]),
        Record::new(&["MS-3001", "wireless mouse ergonomic", "peripherals"]),
        Record::new(&["MS-3002", "wired mouse optical", "peripherals"]),
        Record::new(&["CB-0144", "hdmi cable 2m braided", "cables"]),
        Record::new(&["CB-0145", "hdmi cable 5m braided", "cables"]),
        Record::new(&["CB-0200", "usb c cable 1m", "cables"]),
        Record::new(&["MN-7024", "monitor 24 inch ips", "displays"]),
        Record::new(&["MN-7027", "monitor 27 inch ips", "displays"]),
        Record::new(&["MN-7032", "monitor 32 inch va curved", "displays"]),
        Record::new(&["DK-5001", "docking station thunderbolt", "docks"]),
        Record::new(&["HS-6001", "headset noise cancelling", "audio"]),
        Record::new(&["HS-6002", "headset open back studio", "audio"]),
        Record::new(&["SP-6101", "speaker bluetooth portable", "audio"]),
    ];
    let config = Config::default()
        .with_columns(&["part number", "description", "category"])
        // Part numbers are near-unique identifiers: weigh them up. The
        // category column is noisy distributor data: weigh it down.
        .with_column_weights(&[3.0, 1.5, 0.5])
        // Distributors reorder description tokens constantly; make
        // adjacent-token swaps cheap instead of paying two replacements.
        .with_transposition(TranspositionCost::Constant(0.25));
    let matcher = FuzzyMatcher::build(&db, "products", catalog.into_iter(), config).expect("build");

    let feed = [
        Record::new(&["KB1010", "keyboard mechanical black", "peripheral"]),
        Record::new(&["CB-144", "cable hdmi 2m", "cable"]),
        Record::new(&["MN-7072", "27in ips monitor", "display"]),
        Record::new(&["HS-601", "noise cancelling headset", "audio"]),
        Record::new(&["XX-9999", "industrial laser cutter", "machinery"]),
    ];

    for input in &feed {
        println!("feed row: {input}");
        let result = matcher.lookup(input, 3, 0.35).expect("lookup");
        if result.matches.is_empty() {
            println!("  -> no catalog product above threshold; route to listing team\n");
            continue;
        }
        for (rank, m) in result.matches.iter().enumerate() {
            println!("  #{} {} (fms = {:.3})", rank + 1, m.record, m.similarity);
        }
        println!();
    }

    // Show the §5.3 effect explicitly: with the transposition operation the
    // reordered description is much closer than the naive two-replacement
    // reading would suggest.
    let swapped = Record::new(&["CB-0144", "cable hdmi 2m braided", "cables"]);
    let original = Record::new(&["CB-0144", "hdmi cable 2m braided", "cables"]);
    println!(
        "transposition extension: fms(swapped, original) = {:.3}",
        matcher.fms(&swapped, &original)
    );
}
