//! Quickstart: the paper's own running example, end to end.
//!
//! Builds a fuzzy matcher over the Organization reference relation of
//! Table 1 and matches the erroneous inputs of Table 2 against it —
//! spelling errors, abbreviations, convention swaps, missing values and
//! swapped tokens all resolve to the right reference tuple.
//!
//! Run with: `cargo run -p fm-examples --bin quickstart`

use fm_core::{Config, FuzzyMatcher, Record};
use fm_store::Database;

fn main() {
    // The reference relation (paper Table 1). In production this would be
    // a file-backed database (`Database::open_file`); in-memory keeps the
    // example self-contained.
    let db = Database::in_memory().expect("create database");
    let reference = vec![
        Record::new(&["Boeing Company", "Seattle", "WA", "98004"]),
        Record::new(&["Bon Corporation", "Seattle", "WA", "98014"]),
        Record::new(&["Companions", "Seattle", "WA", "98024"]),
    ];
    let config = Config::default().with_columns(&["org name", "city", "state", "zipcode"]);
    let matcher =
        FuzzyMatcher::build(&db, "orgs", reference.into_iter(), config).expect("build matcher");
    println!(
        "built ETI over {} reference tuples ({} index entries)\n",
        matcher.relation_size(),
        matcher.eti_entry_count().expect("entry count"),
    );

    // The erroneous inputs (paper Table 2).
    let inputs = [
        (
            "I1",
            Record::new(&["Beoing Company", "Seattle", "WA", "98004"]),
        ),
        ("I2", Record::new(&["Beoing Co.", "Seattle", "WA", "98004"])),
        (
            "I3",
            Record::new(&["Boeing Corporation", "Seattle", "WA", "98004"]),
        ),
        (
            "I4",
            Record::from_options(vec![
                Some("Company Beoing".into()),
                Some("Seattle".into()),
                None, // missing state
                Some("98014".into()),
            ]),
        ),
    ];

    for (name, input) in inputs {
        let result = matcher.lookup(&input, 1, 0.0).expect("lookup");
        match result.matches.first() {
            Some(m) => println!(
                "{name} {input}\n  -> R{} {} (fms = {:.3}, {} ETI lookups, {} tuples verified)\n",
                m.tid,
                m.record,
                m.similarity,
                result.stats.eti_lookups,
                result.stats.candidates_fetched,
            ),
            None => println!("{name} {input}\n  -> no match\n"),
        }
    }

    println!(
        "note: I4 (swapped tokens, missing state, zip pointing at R2) is the\n\
         paper's deliberately ambiguous case — on the 3-row Table 1 all name\n\
         tokens are equally rare, so the exact zip match legitimately wins.\n\
         With realistic IDF skew ('company' frequent and cheap to replace,\n\
         paper §4.1 example weights) R1 overtakes R2; the integration test\n\
         `i4_with_null_state_matches_r1_under_idf_skew` shows exactly that.\n"
    );

    // The similarity function is also directly accessible.
    let u = Record::new(&["Beoing Corporation", "Seattle", "WA", "98004"]);
    let v = Record::new(&["Boeing Company", "Seattle", "WA", "98004"]);
    println!(
        "fms(I3', R1) = {:.3} (paper §3.1 walks through this pair)",
        matcher.fms(&u, &v)
    );
}
