//! Tuning guide: how the knobs trade accuracy against work.
//!
//! Sweeps the signature strategy (`Q+T_0` … `Q+T_3`), the q-gram size, and
//! the token-frequency cache representation on a small synthetic workload,
//! printing the accuracy / ETI-size / lookup-work trade-offs so users can
//! pick settings for their own data. Mirrors the shape of the paper's §6
//! figures at toy scale.
//!
//! Run with: `cargo run --release -p fm-examples --bin tuning`

use std::time::Instant;

use fm_core::weights::{BoundedWeightTable, HashedWeightTable, WeightProvider};
use fm_core::{Config, FuzzyMatcher, Record, SignatureScheme};
use fm_datagen::{
    generate_customers, make_inputs, ErrorModel, ErrorSpec, GeneratorConfig, CUSTOMER_COLUMNS,
    D2_PROBS,
};
use fm_store::Database;

const REFERENCE_SIZE: usize = 5_000;
const INPUTS: usize = 300;

fn accuracy(
    matcher: &FuzzyMatcher,
    reference: &[Record],
    dataset: &fm_datagen::InputDataset,
) -> f64 {
    let mut correct = 0;
    for (i, input) in dataset.inputs.iter().enumerate() {
        if let Some(m) = matcher
            .lookup(input, 1, 0.0)
            .expect("lookup")
            .matches
            .first()
        {
            let t = dataset.targets[i];
            if m.tid as usize == t + 1 || m.record.values() == reference[t].values() {
                correct += 1;
            }
        }
    }
    correct as f64 / dataset.inputs.len() as f64
}

fn main() {
    let reference = generate_customers(&GeneratorConfig::new(REFERENCE_SIZE, 1));
    let dataset = make_inputs(
        &reference,
        INPUTS,
        &ErrorSpec::new(&D2_PROBS, ErrorModel::TypeI, 2),
    );

    println!("-- signature strategy sweep (q = 4) --");
    println!(
        "{:>8} {:>9} {:>12} {:>10} {:>12}",
        "strategy", "accuracy", "eti entries", "build ms", "lookup µs"
    );
    for (scheme, h) in [
        (SignatureScheme::QGramsPlusToken, 0),
        (SignatureScheme::QGrams, 1),
        (SignatureScheme::QGramsPlusToken, 1),
        (SignatureScheme::QGrams, 2),
        (SignatureScheme::QGramsPlusToken, 2),
        (SignatureScheme::QGrams, 3),
        (SignatureScheme::QGramsPlusToken, 3),
    ] {
        let db = Database::in_memory().expect("db");
        let config = Config::default()
            .with_columns(&CUSTOMER_COLUMNS)
            .with_signature(scheme, h);
        let t0 = Instant::now();
        let matcher =
            FuzzyMatcher::build(&db, "c", reference.iter().cloned(), config).expect("build");
        let build = t0.elapsed();
        let t0 = Instant::now();
        let acc = accuracy(&matcher, &reference, &dataset);
        let per_lookup = t0.elapsed().as_micros() as f64 / INPUTS as f64;
        println!(
            "{:>8} {:>8.1}% {:>12} {:>10.0} {:>12.0}",
            scheme.label(h),
            acc * 100.0,
            matcher.eti_entry_count().expect("count"),
            build.as_secs_f64() * 1e3,
            per_lookup,
        );
    }

    println!("\n-- q-gram size sweep (Q+T_3) --");
    println!("{:>3} {:>9} {:>12}", "q", "accuracy", "eti entries");
    for q in [2usize, 3, 4, 5] {
        let db = Database::in_memory().expect("db");
        let config = Config::default().with_columns(&CUSTOMER_COLUMNS).with_q(q);
        let matcher =
            FuzzyMatcher::build(&db, "c", reference.iter().cloned(), config).expect("build");
        let acc = accuracy(&matcher, &reference, &dataset);
        println!(
            "{q:>3} {:>8.1}% {:>12}",
            acc * 100.0,
            matcher.eti_entry_count().expect("count")
        );
    }

    println!("\n-- token-frequency cache representations (§4.4.1) --");
    // Weight agreement between the exact table and the compact variants,
    // over the tokens of the sampled inputs.
    let db = Database::in_memory().expect("db");
    let config = Config::default().with_columns(&CUSTOMER_COLUMNS);
    let matcher = FuzzyMatcher::build(&db, "c", reference.iter().cloned(), config).expect("build");
    let exact = matcher.clone_weights();
    let hashed = HashedWeightTable::new(exact.frequencies(), 99);
    for (name, provider) in [("hashed (no collisions)", &hashed as &dyn WeightProvider)] {
        let mut max_err: f64 = 0.0;
        for input in dataset.inputs.iter().take(50) {
            for (col, v) in input.values().iter().enumerate() {
                if let Some(s) = v {
                    for token in s.split_whitespace() {
                        let token = token.to_lowercase();
                        let e = (exact.weight(col, &token) - provider.weight(col, &token)).abs();
                        max_err = max_err.max(e);
                    }
                }
            }
        }
        println!("{name}: max |weight - exact| = {max_err:.2e}");
    }
    for m in [1 << 16, 4096, 256, 16] {
        let bounded = BoundedWeightTable::new(exact.frequencies(), m, 99);
        let mut max_err: f64 = 0.0;
        let mut sum_err = 0.0;
        let mut n = 0usize;
        for input in dataset.inputs.iter().take(50) {
            for (col, v) in input.values().iter().enumerate() {
                if let Some(s) = v {
                    for token in s.split_whitespace() {
                        let token = token.to_lowercase();
                        let e = (exact.weight(col, &token) - bounded.weight(col, &token)).abs();
                        max_err = max_err.max(e);
                        sum_err += e;
                        n += 1;
                    }
                }
            }
        }
        println!(
            "bounded (m = {m:>6}): max err = {max_err:.3}, mean err = {:.4}",
            sum_err / n as f64
        );
    }
}
