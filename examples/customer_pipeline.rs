//! The paper's Figure 1 template: an online data-cleaning pipeline.
//!
//! Incoming (dirty) sales records are validated against a clean Customer
//! reference relation before loading into the warehouse:
//!
//! * similarity ≥ the load threshold → the matched *reference* tuple is
//!   loaded (the input is corrected in flight);
//! * below the threshold → the record is routed to a review queue for
//!   "further cleaning before considering it as referring to a new
//!   customer".
//!
//! The batch is processed in parallel with [`FuzzyMatcher::lookup_batch`] —
//! lookups are `&self` and internally read-locked, so one matcher serves
//! all worker threads.
//!
//! Run with: `cargo run --release -p fm-examples --bin customer_pipeline`

use std::time::Instant;

use fm_core::{Config, FuzzyMatcher, Record};
use fm_datagen::{
    generate_customers, make_inputs, ErrorModel, ErrorSpec, GeneratorConfig, CUSTOMER_COLUMNS,
    D3_PROBS,
};
use fm_store::Database;

const REFERENCE_SIZE: usize = 20_000;
const INCOMING_BATCH: usize = 2_000;
const LOAD_THRESHOLD: f64 = 0.80;
const WORKERS: usize = 4;

fn main() {
    // 1. The clean Customer reference relation (synthetic stand-in for the
    //    paper's 1.7M-tuple warehouse relation).
    let reference = generate_customers(&GeneratorConfig::new(REFERENCE_SIZE, 42));
    let db = Database::in_memory().expect("database");
    let config = Config::default().with_columns(&CUSTOMER_COLUMNS);
    let t0 = Instant::now();
    let matcher =
        FuzzyMatcher::build(&db, "customer", reference.iter().cloned(), config).expect("build");
    println!(
        "reference: {} tuples, ETI built in {:.2}s",
        REFERENCE_SIZE,
        t0.elapsed().as_secs_f64()
    );

    // 2. A batch of incoming sales records: mostly corrupted versions of
    //    known customers, plus some genuinely new customers the pipeline
    //    must NOT force-match.
    let dirty = make_inputs(
        &reference,
        INCOMING_BATCH * 9 / 10,
        &ErrorSpec::new(&D3_PROBS, ErrorModel::TypeI, 7),
    );
    let new_customers = generate_customers(&GeneratorConfig::new(INCOMING_BATCH / 10, 999));
    let mut incoming: Vec<Record> = dirty.inputs;
    incoming.extend(new_customers);

    // 3. Fan the batch out over worker threads.
    let t0 = Instant::now();
    let results = matcher
        .lookup_batch(&incoming, 1, LOAD_THRESHOLD, WORKERS)
        .expect("batch lookup");
    let elapsed = t0.elapsed();
    // Loaded records take the *clean reference tuple* instead of the dirty
    // input (validation *and* correction); the rest go to review.
    let loaded = results.iter().filter(|r| !r.matches.is_empty()).count();
    let review = results.len() - loaded;
    println!(
        "processed {} incoming records in {:.2}s ({:.0} records/s on {WORKERS} workers)",
        incoming.len(),
        elapsed.as_secs_f64(),
        incoming.len() as f64 / elapsed.as_secs_f64(),
    );
    println!("  loaded (validated & corrected): {loaded}");
    println!("  routed to review queue:         {review}");

    // 4. Review-queue outcomes: a data steward approves genuinely new
    //    customers, which are inserted through ETI maintenance so the very
    //    next lookup can find them fuzzily.
    let new_customer = Record::new(&["Zyxwv Dynamics Corporation", "Seattle", "WA", "98101"]);
    let before = matcher
        .lookup(&new_customer, 1, LOAD_THRESHOLD)
        .expect("lookup");
    assert!(
        before.matches.is_empty(),
        "brand-new customer must not match"
    );
    let tid = matcher
        .insert_reference(&new_customer)
        .expect("maintenance insert");
    let after = matcher
        .lookup(
            &Record::new(&["Zyxw Dynamics Corp", "Seattle", "WA", "98101"]),
            1,
            LOAD_THRESHOLD,
        )
        .expect("lookup");
    println!(
        "\nmaintenance: inserted new customer as tid {tid}; dirty re-query now matches: {}",
        after
            .matches
            .first()
            .map(|m| format!("{} (fms = {:.3})", m.record, m.similarity))
            .unwrap_or_else(|| "NO MATCH (unexpected)".into()),
    );
}
