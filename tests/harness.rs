//! Shared helpers for the integration tests.

use fm_core::{Config, FuzzyMatcher, Record};
use fm_datagen::{generate_customers, GeneratorConfig, CUSTOMER_COLUMNS};
use fm_store::Database;

/// The paper's Table 1 Organization reference relation.
pub fn table1() -> Vec<Record> {
    vec![
        Record::new(&["Boeing Company", "Seattle", "WA", "98004"]),
        Record::new(&["Bon Corporation", "Seattle", "WA", "98014"]),
        Record::new(&["Companions", "Seattle", "WA", "98024"]),
    ]
}

/// The paper's Table 2 erroneous inputs (I1–I4).
pub fn table2() -> Vec<Record> {
    vec![
        Record::new(&["Beoing Company", "Seattle", "WA", "98004"]),
        Record::new(&["Beoing Co.", "Seattle", "WA", "98004"]),
        Record::new(&["Boeing Corporation", "Seattle", "WA", "98004"]),
        Record::from_options(vec![
            Some("Company Beoing".into()),
            Some("Seattle".into()),
            None,
            Some("98014".into()),
        ]),
    ]
}

/// Config for the organization schema with paper defaults.
pub fn org_config() -> Config {
    Config::default().with_columns(&["name", "city", "state", "zip"])
}

/// Config for the synthetic customer schema.
pub fn customer_config() -> Config {
    Config::default().with_columns(&CUSTOMER_COLUMNS)
}

/// A small synthetic customer relation.
pub fn customers(n: usize, seed: u64) -> Vec<Record> {
    generate_customers(&GeneratorConfig::new(n, seed))
}

/// Build an in-memory matcher over `reference`.
pub fn build(reference: &[Record], config: Config) -> (Database, FuzzyMatcher) {
    let db = Database::in_memory().expect("database");
    let matcher =
        FuzzyMatcher::build(&db, "test", reference.iter().cloned(), config).expect("matcher build");
    (db, matcher)
}
