//! The paper's own worked examples, reproduced end to end: Tables 1–3,
//! the §3 similarity computations, and the §1/§3.2 ed-vs-fms motivating
//! disagreements.

use fm_core::eti::{token_signature, TOKEN_COORDINATE};
use fm_core::naive::{EditDistanceMatcher, NaiveMatcher};
use fm_core::sim::Similarity;
use fm_core::weights::{TokenFrequencies, UnitWeights, WeightTable};
use fm_core::{Config, QueryMode, Record, SignatureScheme};
use fm_integration::{build, org_config, table1, table2};
use fm_text::minhash::MinHasher;
use fm_text::Tokenizer;

#[test]
fn inputs_i1_to_i3_match_r1_under_both_algorithms() {
    let (_db, matcher) = build(&table1(), org_config());
    for (i, input) in table2()[..3].iter().enumerate() {
        for mode in [QueryMode::Basic, QueryMode::Osc] {
            let result = matcher.lookup_with(input, 1, 0.0, mode).expect("lookup");
            assert_eq!(
                result.matches[0].tid,
                1,
                "I{} must match R1 under {mode:?}",
                i + 1
            );
        }
    }
}

#[test]
fn section_3_1_transformation_cost_walkthrough() {
    // tc(u[1], v[1]) for u = [Beoing Corporation, …], v = [Boeing Company,
    // …] with unit weights: 1/3 (beoing→boeing) + 7/11 (corporation→
    // company) ≈ 0.97; fms = 1 − 0.97/5 ≈ 0.806.
    let cfg = org_config();
    let tokenizer = Tokenizer::new();
    let u = Record::new(&["Beoing Corporation", "Seattle", "WA", "98004"]).tokenize(&tokenizer);
    let v = Record::new(&["Boeing Company", "Seattle", "WA", "98004"]).tokenize(&tokenizer);
    let mut sim = Similarity::new(&UnitWeights, &cfg);
    let tc = sim.transformation_cost(&u, &v);
    assert!((tc - 0.96969696).abs() < 1e-6, "tc = {tc}");
    let f = sim.fms(&u, &v);
    assert!((f - 0.80606).abs() < 1e-4, "fms = {f}");
}

#[test]
fn section_1_edit_distance_prefers_the_wrong_tuples() {
    // "The edit distance function would consider the input tuple I3 …
    // closest to R2 …, even though we know that the intended target is R1."
    let refs: Vec<(u32, Record)> = table1()
        .into_iter()
        .enumerate()
        .map(|(i, r)| (i as u32 + 1, r))
        .collect();
    let ed = EditDistanceMatcher::from_records(&refs);
    let i3 = Record::new(&["Boeing Corporation", "Seattle", "WA", "98004"]);
    assert_eq!(ed.lookup(&i3, 1, 0.0)[0].tid, 2, "ed picks Bon Corporation");
    // "…the edit distance considers I4 closer to R3 than to its target R1."
    let i4 = table2()[3].clone();
    let ed_hits = ed.lookup(&i4, 3, 0.0);
    let pos1 = ed_hits.iter().position(|m| m.tid == 1);
    let pos3 = ed_hits.iter().position(|m| m.tid == 3);
    assert!(pos3 < pos1, "ed must rank R3 above R1 for I4: {ed_hits:?}");
    // fms with IDF weights corrects I3.
    let fms = NaiveMatcher::from_records(&refs, org_config());
    assert_eq!(
        fms.lookup(&i3, 1, 0.0)[0].tid,
        1,
        "fms picks Boeing Company"
    );
}

#[test]
fn table_3_eti_structure() {
    // Build the ETI exactly as Table 3 does: q = 3, H = 2, Q-grams only.
    // The hash functions differ from the paper's, so the *specific* min-hash
    // q-grams differ, but every structural property of Table 3 must hold.
    let config = org_config()
        .with_q(3)
        .with_signature(SignatureScheme::QGrams, 2);
    let (_db, matcher) = build(&table1(), config);
    let mh = MinHasher::new(2, 3, matcher.config().seed);

    // Row semantics: for every token of every reference tuple, each
    // signature coordinate's ETI row contains that tuple's tid.
    let tokenizer = Tokenizer::new();
    for (tid, record) in matcher.scan_reference().expect("scan") {
        let tokens = record.tokenize(&tokenizer);
        for (col, token) in tokens.iter_tokens() {
            for entry in token_signature(token, &mh, SignatureScheme::QGrams) {
                let list = matcher
                    .eti_lookup(&entry.gram, entry.coordinate, col as u8)
                    .expect("lookup")
                    .unwrap_or_else(|| panic!("missing ETI row for {token}/{}", entry.gram));
                let tids = list.tids.expect("not a stop q-gram");
                assert!(
                    tids.contains(&tid),
                    "tid {tid} missing from row ({}, {}, {col})",
                    entry.gram,
                    entry.coordinate
                );
                assert_eq!(list.frequency as usize, tids.len());
            }
        }
    }

    // 'seattle' appears in all three tuples: its rows list {1, 2, 3} — the
    // shape of Table 3's 'sea'/'ttl' rows.
    for (i, gram) in mh.signature("seattle").iter().enumerate() {
        let list = matcher
            .eti_lookup(gram, i as u8 + 1, 1)
            .expect("lookup")
            .expect("row exists");
        assert_eq!(list.tids, Some(vec![1, 2, 3]));
    }
    // 'wa' is shorter than q: indexed as itself (Table 3's 'wa' row).
    let list = matcher
        .eti_lookup("wa", 1, 2)
        .expect("lookup")
        .expect("wa row");
    assert_eq!(list.tids, Some(vec![1, 2, 3]));
}

#[test]
fn qt_index_adds_coordinate_zero_token_rows() {
    let config = org_config()
        .with_q(3)
        .with_signature(SignatureScheme::QGramsPlusToken, 2);
    let (_db, matcher) = build(&table1(), config);
    let list = matcher
        .eti_lookup("boeing", TOKEN_COORDINATE, 0)
        .expect("lookup")
        .expect("token row");
    assert_eq!(list.tids, Some(vec![1]));
    let list = matcher
        .eti_lookup("98014", TOKEN_COORDINATE, 3)
        .expect("lookup")
        .expect("token row");
    assert_eq!(list.tids, Some(vec![2]));
}

#[test]
fn section_4_1_fms_apx_example_shape() {
    // §4.1's I4/R1 walkthrough: with the paper's example weights
    // (company:0.25, beoing:0.5, seattle:1.0, 98004:2.0) fms_apx(I4, R1)
    // evaluates to 1.0 when every token finds a perfectly-agreeing partner,
    // and fms(I4, R1) is strictly smaller (ordering + the inserted 'wa').
    let cfg = Config::default()
        .with_columns(&["name", "city", "state", "zip"])
        .with_q(3)
        .with_signature(SignatureScheme::QGrams, 2);
    let tokenizer = Tokenizer::new();
    let u = Record::from_options(vec![
        Some("company beoing".into()),
        Some("seattle".into()),
        None,
        Some("98004".into()),
    ])
    .tokenize(&tokenizer);
    let v = Record::new(&["boeing company", "seattle", "wa", "98004"]).tokenize(&tokenizer);
    // Large H so min-hash agreement ≈ Jaccard; beoing/boeing share 3-grams,
    // so fms_apx is high but bounded by the beoing term.
    let mh = MinHasher::new(64, 3, 7);
    let apx = fm_core::sim::fms_apx(&u, &v, &UnitWeights, &cfg, &mh);
    let mut sim = Similarity::new(&UnitWeights, &cfg);
    let exact = sim.fms(&u, &v);
    assert!(apx > exact, "fms_apx {apx} must exceed fms {exact} here");
    assert!(apx > 0.85, "fms_apx {apx} should be close to 1");
}

#[test]
fn weight_function_matches_paper_definition() {
    // §3: w(t, i) = log(|R|/freq(t, i)); unseen tokens get the column
    // average. On Table 1's name column every token is unique → ln 3.
    let tokenizer = Tokenizer::new();
    let mut freqs = TokenFrequencies::new(4);
    for r in table1() {
        freqs.observe(&r.tokenize(&tokenizer));
    }
    let w = WeightTable::new(freqs);
    use fm_core::weights::WeightProvider;
    assert!((w.weight(0, "boeing") - 3.0f64.ln()).abs() < 1e-12);
    assert!((w.weight(1, "seattle") - 0.0).abs() < 1e-12); // freq = |R|
    assert!((w.weight(0, "beoing") - 3.0f64.ln()).abs() < 1e-12); // unseen → avg
}
