//! Concurrency: one matcher served from many threads (the online
//! data-cleaning deployment shape), including lookups racing maintenance.

use std::sync::atomic::{AtomicUsize, Ordering};

use fm_core::Record;
use fm_datagen::{make_inputs, ErrorModel, ErrorSpec, D3_PROBS};
use fm_integration::{build, customer_config, customers};

#[test]
fn parallel_lookups_equal_serial_lookups() {
    let reference = customers(1500, 31);
    let (_db, matcher) = build(&reference, customer_config());
    let ds = make_inputs(
        &reference,
        200,
        &ErrorSpec::new(&D3_PROBS, ErrorModel::TypeI, 32),
    );
    // Serial ground truth.
    let serial: Vec<Option<(u32, u64)>> = ds
        .inputs
        .iter()
        .map(|input| {
            matcher
                .lookup(input, 1, 0.0)
                .expect("lookup")
                .matches
                .first()
                .map(|m| (m.tid, m.similarity.to_bits()))
        })
        .collect();
    // Parallel re-run with a shared cursor.
    type Answer = Option<(u32, u64)>;
    let results: Vec<std::sync::Mutex<Option<Answer>>> = (0..ds.inputs.len())
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= ds.inputs.len() {
                    break;
                }
                let got = matcher
                    .lookup(&ds.inputs[i], 1, 0.0)
                    .expect("lookup")
                    .matches
                    .first()
                    .map(|m| (m.tid, m.similarity.to_bits()));
                *results[i].lock().unwrap() = Some(got);
            });
        }
    });
    for (i, cell) in results.iter().enumerate() {
        let got = cell.lock().unwrap().expect("every input processed");
        assert_eq!(got, serial[i], "parallel result differs at input {i}");
    }
}

#[test]
fn lookups_racing_maintenance_stay_valid() {
    let reference = customers(800, 33);
    let (_db, matcher) = build(&reference, customer_config());
    let ds = make_inputs(
        &reference,
        300,
        &ErrorSpec::new(&D3_PROBS, ErrorModel::TypeI, 34),
    );
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Writer: stream of new reference tuples.
        let writer_matcher = &matcher;
        let writer_done = &done;
        scope.spawn(move || {
            for i in 0..80 {
                writer_matcher
                    .insert_reference(&Record::new(&[
                        &format!("race{i} industries"),
                        "tacoma",
                        "wa",
                        &format!("98{i:03}"),
                    ]))
                    .expect("insert");
            }
            writer_done.store(true, Ordering::Release);
        });
        // Readers: every answer must be internally consistent.
        let done = &done;
        let matcher = &matcher;
        let ds = &ds;
        for t in 0..3usize {
            scope.spawn(move || {
                let mut i = t;
                while !done.load(Ordering::Acquire) || i < ds.inputs.len() {
                    if i >= ds.inputs.len() {
                        break;
                    }
                    let result = matcher.lookup(&ds.inputs[i], 2, 0.0).expect("lookup");
                    for m in &result.matches {
                        assert!((0.0..=1.0).contains(&m.similarity));
                        assert!(m.tid >= 1);
                        assert_eq!(m.record.arity(), 4);
                    }
                    i += 3;
                }
            });
        }
    });
    assert_eq!(matcher.relation_size(), 880);
    // All maintained tuples findable afterwards.
    let result = matcher
        .lookup(
            &Record::new(&["race79 industries", "tacoma", "wa", "98079"]),
            1,
            0.0,
        )
        .expect("lookup");
    assert_eq!(result.matches[0].record.get(0), Some("race79 industries"));
}

#[test]
fn metrics_snapshot_equals_sum_of_batch_traces() {
    // The registry aggregates with relaxed atomics across lookup_batch's
    // worker threads; no update may be lost or double-counted, so the
    // snapshot delta must equal the sum of the per-query traces exactly.
    let reference = customers(1200, 36);
    let (_db, matcher) = build(&reference, customer_config());
    let ds = make_inputs(
        &reference,
        160,
        &ErrorSpec::new(&D3_PROBS, ErrorModel::TypeI, 37),
    );
    let before = matcher.metrics_snapshot();
    let results = matcher.lookup_batch(&ds.inputs, 2, 0.0, 8).expect("batch");
    let after = matcher.metrics_snapshot();

    let mut qgrams = 0u64;
    let mut stop = 0u64;
    let mut eti_rows = 0u64;
    let mut entries = 0u64;
    let mut tids = 0u64;
    let mut candidates = 0u64;
    let mut apx = 0u64;
    let mut fetched = 0u64;
    let mut evals = 0u64;
    let mut attempts = 0u64;
    let mut circuits = 0u64;
    let mut latency = 0u64;
    for r in &results {
        let t = r.trace;
        t.check_consistent().expect("trace invariants");
        qgrams += t.qgrams_probed;
        stop += t.stop_qgrams;
        eti_rows += t.eti_rows;
        entries += t.tid_list_entries;
        tids += t.tids_processed;
        candidates += t.candidates;
        apx += t.apx_pruned;
        fetched += t.candidates_fetched;
        evals += t.fms_evals;
        attempts += t.osc_attempts;
        circuits += u64::from(t.osc_round.is_some());
        latency += t.latency_us;
    }
    assert_eq!(after.lookups - before.lookups, results.len() as u64);
    assert_eq!(after.qgrams_probed - before.qgrams_probed, qgrams);
    assert_eq!(after.stop_qgrams - before.stop_qgrams, stop);
    assert_eq!(after.eti_rows - before.eti_rows, eti_rows);
    assert_eq!(after.tid_list_entries - before.tid_list_entries, entries);
    assert_eq!(after.tids_processed - before.tids_processed, tids);
    assert_eq!(after.candidates - before.candidates, candidates);
    assert_eq!(after.apx_pruned - before.apx_pruned, apx);
    assert_eq!(
        after.candidates_fetched - before.candidates_fetched,
        fetched
    );
    assert_eq!(after.fms_evals - before.fms_evals, evals);
    assert_eq!(after.osc_attempts - before.osc_attempts, attempts);
    assert_eq!(
        after.osc_short_circuits - before.osc_short_circuits,
        circuits
    );
    assert_eq!(
        after.latency.count - before.latency.count,
        results.len() as u64
    );
    assert_eq!(after.latency.sum_us - before.latency.sum_us, latency);
    after.check_invariants().expect("snapshot invariants");
}

#[test]
fn lock_order_holds_under_lookup_maintenance_mix() {
    // `fm_store::lockorder` asserts (under debug_assertions, which is how
    // this test runs) that every thread acquires the tracked locks in the
    // canonical order weights < objects < latch < tail_hint < state <
    // frame-data < wal — the same order `cargo xtask analyze` proves
    // statically. Drive every
    // tracked lock concurrently: a file-backed durable database so page
    // writebacks append to the WAL, a small pool so lookups evict (state →
    // wal while holding the pool mutex), lookups (weights → latch → state),
    // maintenance (weights → latch → tail_hint), checkpoints (wal held
    // across main-file writeback), and catalog metadata traffic (objects).
    // Any out-of-order acquisition panics the offending thread and fails
    // the test.
    let mut path = std::env::temp_dir();
    path.push(format!("fm-int-{}-lockorder.db", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let wal_path = {
        let mut w = path.clone().into_os_string();
        w.push(".wal");
        std::path::PathBuf::from(w)
    };
    let _ = std::fs::remove_file(&wal_path);

    let reference = customers(600, 39);
    let db = fm_store::Database::open_file_durable(&path, 64).expect("create");
    let matcher =
        fm_core::FuzzyMatcher::build(&db, "cust", reference.iter().cloned(), customer_config())
            .expect("build");
    let ds = make_inputs(
        &reference,
        120,
        &ErrorSpec::new(&D3_PROBS, ErrorModel::TypeI, 40),
    );

    std::thread::scope(|scope| {
        let matcher = &matcher;
        let db = &db;
        let ds = &ds;
        // Maintenance: inserts and deletes take the weight-table write lock,
        // then the tid/frequency index latches and the heap tail hint.
        scope.spawn(move || {
            for i in 0..40u32 {
                let tid = matcher
                    .insert_reference(&Record::new(&[
                        &format!("order{i} llc"),
                        "spokane",
                        "wa",
                        &format!("99{i:03}"),
                    ]))
                    .expect("insert");
                if i % 2 == 0 {
                    matcher.delete_reference(tid).expect("delete");
                }
            }
        });
        // Checkpointer: flush writes dirty frames (state, then wal per
        // page) and then checkpoints, holding the wal mutex across the
        // main-file writeback; metadata puts exercise the catalog mutex.
        scope.spawn(move || {
            for j in 0..10u32 {
                db.flush().expect("flush");
                db.put_meta("lockorder-beat", &j.to_le_bytes())
                    .expect("put_meta");
                assert!(db.get_meta("lockorder-beat").is_some());
            }
        });
        // Readers.
        for t in 0..3usize {
            scope.spawn(move || {
                let mut i = t;
                while i < ds.inputs.len() {
                    // A candidate tid harvested from the ETI may be deleted
                    // before its reference row is fetched; that surfaces as
                    // NotFound and is an accepted outcome of this race — the
                    // test is about lock ordering, not snapshot isolation.
                    match matcher.lookup(&ds.inputs[i], 2, 0.0) {
                        Ok(result) => {
                            for m in &result.matches {
                                assert!((0.0..=1.0).contains(&m.similarity));
                            }
                        }
                        Err(fm_core::CoreError::Store(fm_store::StoreError::NotFound(_))) => {}
                        Err(e) => panic!("lookup: {e}"),
                    }
                    i += 3;
                }
            });
        }
    });
    // Full sweeps nest objects → latch → state and weights → latch → state.
    db.check_invariants().expect("db invariants");
    matcher.check_invariants().expect("matcher invariants");
    assert_eq!(matcher.relation_size(), 600 + 20);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal_path);
}

#[test]
fn lock_order_holds_on_the_miss_path_under_a_tiny_pool() {
    // The FRAME rank (state < frame-data < wal) is only exercised when
    // frames actually fault in and write back: the pin_frame miss path
    // takes the victim's write latch inside the shard lock, drops the
    // shard lock across the IO, and must drop the frame token before
    // re-taking the shard lock to publish. A 32-frame durable pool under
    // 600 references guarantees every thread below evicts constantly, so
    // any inversion in that window asserts (debug_assertions) and fails
    // the test. The stats check proves the window ran — a pool big enough
    // to never miss would make this test vacuously green.
    let mut path = std::env::temp_dir();
    path.push(format!("fm-int-{}-misspath.db", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let wal_path = {
        let mut w = path.clone().into_os_string();
        w.push(".wal");
        std::path::PathBuf::from(w)
    };
    let _ = std::fs::remove_file(&wal_path);

    let reference = customers(600, 47);
    let db = fm_store::Database::open_file_durable(&path, 32).expect("create");
    let matcher =
        fm_core::FuzzyMatcher::build(&db, "cust", reference.iter().cloned(), customer_config())
            .expect("build");
    let ds = make_inputs(
        &reference,
        60,
        &ErrorSpec::new(&D3_PROBS, ErrorModel::TypeI, 48),
    );
    let before = db.stats();

    std::thread::scope(|scope| {
        let matcher = &matcher;
        let db = &db;
        let ds = &ds;
        // Maintenance dirties pages so concurrent evictions write back
        // (FRAME → WAL inside the miss window).
        scope.spawn(move || {
            for i in 0..30u32 {
                matcher
                    .insert_reference(&Record::new(&[
                        &format!("evict{i} inc"),
                        "tacoma",
                        "wa",
                        &format!("98{i:03}"),
                    ]))
                    .expect("insert");
            }
        });
        // Flusher: the write-back read latch is the other FRAME window.
        scope.spawn(move || {
            for _ in 0..6 {
                db.flush().expect("flush");
            }
        });
        // Readers fault pages in and park on loading frames.
        for t in 0..3usize {
            scope.spawn(move || {
                let mut i = t;
                while i < ds.inputs.len() {
                    match matcher.lookup(&ds.inputs[i], 2, 0.0) {
                        Ok(result) => {
                            for m in &result.matches {
                                assert!((0.0..=1.0).contains(&m.similarity));
                            }
                        }
                        Err(fm_core::CoreError::Store(fm_store::StoreError::NotFound(_))) => {}
                        Err(e) => panic!("lookup: {e}"),
                    }
                    i += 3;
                }
            });
        }
    });
    let after = db.stats();
    assert!(
        after.misses > before.misses,
        "the tiny pool must fault pages in ({} → {})",
        before.misses,
        after.misses
    );
    assert!(
        after.pages_written > before.pages_written,
        "evictions must write dirty pages back ({} → {})",
        before.pages_written,
        after.pages_written
    );
    db.check_invariants().expect("db invariants");
    matcher.check_invariants().expect("matcher invariants");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal_path);
}

#[test]
fn many_threads_hammering_one_hot_input() {
    let reference = customers(500, 35);
    let (_db, matcher) = build(&reference, customer_config());
    let input = Record::new(&[
        reference[0].get(0).unwrap(),
        reference[0].get(1).unwrap(),
        reference[0].get(2).unwrap(),
        reference[0].get(3).unwrap(),
    ]);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for _ in 0..100 {
                    let result = matcher.lookup(&input, 1, 0.0).expect("lookup");
                    let top = result.matches.first().expect("exact match exists");
                    assert!((top.similarity - 1.0).abs() < 1e-12);
                }
            });
        }
    });
}
