//! Concurrency: one matcher served from many threads (the online
//! data-cleaning deployment shape), including lookups racing maintenance.

use std::sync::atomic::{AtomicUsize, Ordering};

use fm_core::Record;
use fm_datagen::{make_inputs, ErrorModel, ErrorSpec, D3_PROBS};
use fm_integration::{build, customer_config, customers};

#[test]
fn parallel_lookups_equal_serial_lookups() {
    let reference = customers(1500, 31);
    let (_db, matcher) = build(&reference, customer_config());
    let ds = make_inputs(
        &reference,
        200,
        &ErrorSpec::new(&D3_PROBS, ErrorModel::TypeI, 32),
    );
    // Serial ground truth.
    let serial: Vec<Option<(u32, u64)>> = ds
        .inputs
        .iter()
        .map(|input| {
            matcher
                .lookup(input, 1, 0.0)
                .expect("lookup")
                .matches
                .first()
                .map(|m| (m.tid, m.similarity.to_bits()))
        })
        .collect();
    // Parallel re-run with a shared cursor.
    type Answer = Option<(u32, u64)>;
    let results: Vec<std::sync::Mutex<Option<Answer>>> = (0..ds.inputs.len())
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= ds.inputs.len() {
                    break;
                }
                let got = matcher
                    .lookup(&ds.inputs[i], 1, 0.0)
                    .expect("lookup")
                    .matches
                    .first()
                    .map(|m| (m.tid, m.similarity.to_bits()));
                *results[i].lock().unwrap() = Some(got);
            });
        }
    });
    for (i, cell) in results.iter().enumerate() {
        let got = cell.lock().unwrap().expect("every input processed");
        assert_eq!(got, serial[i], "parallel result differs at input {i}");
    }
}

#[test]
fn lookups_racing_maintenance_stay_valid() {
    let reference = customers(800, 33);
    let (_db, matcher) = build(&reference, customer_config());
    let ds = make_inputs(
        &reference,
        300,
        &ErrorSpec::new(&D3_PROBS, ErrorModel::TypeI, 34),
    );
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Writer: stream of new reference tuples.
        let writer_matcher = &matcher;
        let writer_done = &done;
        scope.spawn(move || {
            for i in 0..80 {
                writer_matcher
                    .insert_reference(&Record::new(&[
                        &format!("race{i} industries"),
                        "tacoma",
                        "wa",
                        &format!("98{i:03}"),
                    ]))
                    .expect("insert");
            }
            writer_done.store(true, Ordering::Release);
        });
        // Readers: every answer must be internally consistent.
        let done = &done;
        let matcher = &matcher;
        let ds = &ds;
        for t in 0..3usize {
            scope.spawn(move || {
                let mut i = t;
                while !done.load(Ordering::Acquire) || i < ds.inputs.len() {
                    if i >= ds.inputs.len() {
                        break;
                    }
                    let result = matcher.lookup(&ds.inputs[i], 2, 0.0).expect("lookup");
                    for m in &result.matches {
                        assert!((0.0..=1.0).contains(&m.similarity));
                        assert!(m.tid >= 1);
                        assert_eq!(m.record.arity(), 4);
                    }
                    i += 3;
                }
            });
        }
    });
    assert_eq!(matcher.relation_size(), 880);
    // All maintained tuples findable afterwards.
    let result = matcher
        .lookup(
            &Record::new(&["race79 industries", "tacoma", "wa", "98079"]),
            1,
            0.0,
        )
        .expect("lookup");
    assert_eq!(result.matches[0].record.get(0), Some("race79 industries"));
}

#[test]
fn many_threads_hammering_one_hot_input() {
    let reference = customers(500, 35);
    let (_db, matcher) = build(&reference, customer_config());
    let input = Record::new(&[
        reference[0].get(0).unwrap(),
        reference[0].get(1).unwrap(),
        reference[0].get(2).unwrap(),
        reference[0].get(3).unwrap(),
    ]);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for _ in 0..100 {
                    let result = matcher.lookup(&input, 1, 0.0).expect("lookup");
                    let top = result.matches.first().expect("exact match exists");
                    assert!((top.similarity - 1.0).abs() < 1e-12);
                }
            });
        }
    });
}
