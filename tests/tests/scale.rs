//! Moderate-scale end-to-end checks: accuracy floors, stats sanity, batch
//! parallel matching, and the spill-forced build at a few thousand tuples.
//! (The full 100k-tuple evaluation lives in the `fm-bench` binaries; these
//! tests guard against regressions at a size the test suite can afford.)

use fm_core::{QueryMode, Record};
use fm_datagen::{make_inputs, ErrorModel, ErrorSpec, D2_PROBS, D3_PROBS};
use fm_integration::{build, customer_config, customers};

#[test]
fn five_k_accuracy_floor_d3() {
    let reference = customers(5000, 61);
    let (_db, matcher) = build(&reference, customer_config());
    let ds = make_inputs(
        &reference,
        300,
        &ErrorSpec::new(&D3_PROBS, ErrorModel::TypeI, 62),
    );
    let mut correct = 0;
    let mut total_lookups = 0u64;
    let mut total_fetches = 0u64;
    for (i, input) in ds.inputs.iter().enumerate() {
        let result = matcher.lookup(input, 1, 0.0).expect("lookup");
        if let Some(m) = result.matches.first() {
            let t = ds.targets[i];
            if m.tid as usize == t + 1 || m.record.values() == reference[t].values() {
                correct += 1;
            }
        }
        total_lookups += result.stats.eti_lookups;
        total_fetches += result.stats.candidates_fetched;
    }
    let accuracy = correct as f64 / ds.inputs.len() as f64;
    assert!(accuracy > 0.85, "D3 accuracy {accuracy:.3} below floor");
    // At 5k tuples the ETI has real depth and chunked tid-lists; make the
    // validators walk all of it.
    matcher
        .check_invariants()
        .expect("matcher invariants at 5k");
    // Efficiency sanity: far fewer fetches than reference tuples.
    let avg_fetches = total_fetches as f64 / ds.inputs.len() as f64;
    assert!(avg_fetches < 100.0, "avg fetches {avg_fetches:.1} too high");
    assert!(total_lookups > 0);
}

#[test]
fn five_k_type_ii_errors_still_match() {
    let reference = customers(5000, 63);
    let (_db, matcher) = build(&reference, customer_config());
    let ds = make_inputs(
        &reference,
        200,
        &ErrorSpec::new(&D2_PROBS, ErrorModel::TypeII, 64),
    );
    let mut correct = 0;
    for (i, input) in ds.inputs.iter().enumerate() {
        let result = matcher.lookup(input, 1, 0.0).expect("lookup");
        if let Some(m) = result.matches.first() {
            let t = ds.targets[i];
            if m.tid as usize == t + 1 || m.record.values() == reference[t].values() {
                correct += 1;
            }
        }
    }
    let accuracy = correct as f64 / ds.inputs.len() as f64;
    assert!(
        accuracy > 0.80,
        "Type II accuracy {accuracy:.3} below floor"
    );
}

#[test]
fn batch_parallel_equals_serial_at_scale() {
    let reference = customers(3000, 65);
    let (_db, matcher) = build(&reference, customer_config());
    let ds = make_inputs(
        &reference,
        120,
        &ErrorSpec::new(&D3_PROBS, ErrorModel::TypeI, 66),
    );
    let serial = matcher.lookup_batch(&ds.inputs, 1, 0.0, 1).expect("serial");
    let parallel = matcher
        .lookup_batch(&ds.inputs, 1, 0.0, 4)
        .expect("parallel");
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(
            s.matches.first().map(|m| (m.tid, m.similarity.to_bits())),
            p.matches.first().map(|m| (m.tid, m.similarity.to_bits())),
            "divergence at input {i}"
        );
    }
}

#[test]
fn basic_and_osc_equal_quality_at_scale() {
    let reference = customers(3000, 67);
    let (_db, matcher) = build(&reference, customer_config());
    let ds = make_inputs(
        &reference,
        150,
        &ErrorSpec::new(&D2_PROBS, ErrorModel::TypeI, 68),
    );
    for input in &ds.inputs {
        let b = matcher
            .lookup_with(input, 1, 0.0, QueryMode::Basic)
            .expect("basic");
        let o = matcher
            .lookup_with(input, 1, 0.0, QueryMode::Osc)
            .expect("osc");
        match (b.matches.first(), o.matches.first()) {
            (Some(x), Some(y)) => assert!(
                (x.similarity - y.similarity).abs() < 1e-9,
                "quality mismatch on {input}"
            ),
            (None, None) => {}
            other => panic!("presence mismatch {other:?}"),
        }
    }
}

#[test]
fn duplicate_heavy_reference_is_handled() {
    // Many exact duplicates: tid-lists get long, ties everywhere; matching
    // must stay correct and deterministic.
    let mut reference: Vec<Record> = Vec::new();
    for i in 0..50 {
        for _ in 0..20 {
            reference.push(Record::new(&[
                &format!("dupe{i} corporation"),
                "seattle",
                "wa",
                "98001",
            ]));
        }
    }
    let (_db, matcher) = build(&reference, customer_config());
    let result = matcher
        .lookup(
            &Record::new(&["dupe7 corp", "seattle", "wa", "98001"]),
            3,
            0.0,
        )
        .expect("lookup");
    assert_eq!(result.matches.len(), 3);
    for m in &result.matches {
        assert_eq!(m.record.get(0), Some("dupe7 corporation"));
    }
    // 20 duplicates of 50 rows chunk the tid-lists aggressively; the ETI
    // validator proves the chunk chains stayed sorted and contiguous.
    matcher
        .check_invariants()
        .expect("matcher invariants with heavy duplicates");
    // Deterministic tie-break: lowest tids first among equals.
    let tids: Vec<u32> = result.matches.iter().map(|m| m.tid).collect();
    let mut sorted = tids.clone();
    sorted.sort_unstable();
    assert_eq!(tids, sorted);
}
