//! Durability: matchers built into a file-backed database must answer
//! identically after reopen, including after ETI maintenance, and the
//! external-sort spill path must produce the same index as the in-memory
//! path.

use fm_core::{FuzzyMatcher, Record};
use fm_datagen::{make_inputs, ErrorModel, ErrorSpec, D3_PROBS};
use fm_integration::{customer_config, customers};
use fm_store::Database;

fn temp_db_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("fm-int-{}-{name}.db", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn reopened_matcher_answers_identically() {
    let path = temp_db_path("reopen");
    let reference = customers(2000, 21);
    let ds = make_inputs(
        &reference,
        60,
        &ErrorSpec::new(&D3_PROBS, ErrorModel::TypeI, 22),
    );
    let before: Vec<Option<(u32, f64)>>;
    {
        let db = Database::open_file(&path, 512).expect("create");
        let matcher =
            FuzzyMatcher::build(&db, "cust", reference.iter().cloned(), customer_config())
                .expect("build");
        before = ds
            .inputs
            .iter()
            .map(|input| {
                matcher
                    .lookup(input, 1, 0.0)
                    .expect("lookup")
                    .matches
                    .first()
                    .map(|m| (m.tid, m.similarity))
            })
            .collect();
        db.flush().expect("flush");
    }
    {
        let db = Database::open_file(&path, 512).expect("reopen");
        let matcher = FuzzyMatcher::open(&db, "cust").expect("open matcher");
        assert_eq!(matcher.relation_size(), 2000);
        matcher
            .check_invariants()
            .expect("matcher invariants after reopen");
        db.check_invariants()
            .expect("database invariants after reopen");
        for (input, expected) in ds.inputs.iter().zip(&before) {
            let got = matcher
                .lookup(input, 1, 0.0)
                .expect("lookup")
                .matches
                .first()
                .map(|m| (m.tid, m.similarity));
            match (&got, expected) {
                (Some((gt, gs)), Some((et, es))) => {
                    assert_eq!(gt, et, "tid changed after reopen for {input}");
                    assert!((gs - es).abs() < 1e-12, "similarity changed after reopen");
                }
                (None, None) => {}
                other => panic!("presence changed after reopen: {other:?}"),
            }
        }
    }
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn maintenance_is_durable_and_weights_shift() {
    let path = temp_db_path("maintain");
    let reference = customers(1000, 23);
    {
        let db = Database::open_file(&path, 512).expect("create");
        let matcher =
            FuzzyMatcher::build(&db, "cust", reference.iter().cloned(), customer_config())
                .expect("build");
        for i in 0..50 {
            matcher
                .insert_reference(&Record::new(&[
                    &format!("newco{i} corporation"),
                    "seattle",
                    "wa",
                    &format!("98{i:03}"),
                ]))
                .expect("insert");
        }
        assert_eq!(matcher.relation_size(), 1050);
        db.flush().expect("flush");
    }
    {
        let db = Database::open_file(&path, 512).expect("reopen");
        let matcher = FuzzyMatcher::open(&db, "cust").expect("open");
        assert_eq!(matcher.relation_size(), 1050);
        // Every maintained tuple findable, with errors, after reopen.
        for i in [0usize, 17, 49] {
            let result = matcher
                .lookup(
                    &Record::new(&[
                        &format!("newco{i} corp"),
                        "seattle",
                        "wa",
                        &format!("98{i:03}"),
                    ]),
                    1,
                    0.0,
                )
                .expect("lookup");
            let top = result.matches.first().expect("match");
            assert_eq!(
                top.record.get(0),
                Some(format!("newco{i} corporation").as_str()),
                "maintained tuple {i} not found"
            );
        }
        // tid counter continues.
        let tid = matcher
            .insert_reference(&Record::new(&["another one", "tacoma", "wa", "98401"]))
            .expect("insert");
        assert_eq!(tid, 1051);
        matcher
            .check_invariants()
            .expect("matcher invariants after maintenance");
        db.check_invariants()
            .expect("database invariants after maintenance");
    }
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn spilled_sort_build_equals_in_memory_build() {
    // A tiny sort budget forces the external-merge path during ETI build;
    // query answers must be bit-identical to the in-memory build.
    let reference = customers(1200, 25);
    let db1 = Database::in_memory().expect("db");
    let db2 = Database::in_memory().expect("db");
    let spilled = FuzzyMatcher::build_with_sort_budget(
        &db1,
        "spill",
        reference.iter().cloned(),
        customer_config(),
        1 << 10, // 1 KiB: hundreds of runs
    )
    .expect("spilled build");
    assert!(
        spilled.build_stats().expect("stats").spilled_runs > 10,
        "expected the spill path to engage"
    );
    let memory = FuzzyMatcher::build(&db2, "mem", reference.iter().cloned(), customer_config())
        .expect("memory build");
    assert_eq!(
        spilled.eti_entry_count().expect("count"),
        memory.eti_entry_count().expect("count"),
        "ETI sizes differ between spilled and in-memory builds"
    );
    let ds = make_inputs(
        &reference,
        60,
        &ErrorSpec::new(&D3_PROBS, ErrorModel::TypeI, 26),
    );
    for input in &ds.inputs {
        let a = spilled.lookup(input, 2, 0.0).expect("lookup");
        let b = memory.lookup(input, 2, 0.0).expect("lookup");
        assert_eq!(
            a.matches.iter().map(|m| m.tid).collect::<Vec<_>>(),
            b.matches.iter().map(|m| m.tid).collect::<Vec<_>>(),
            "answers differ for {input}"
        );
    }
}

#[test]
fn durable_database_survives_simulated_crashes() {
    // A "crash" is simulated by copying the database + WAL files to a new
    // path while the original session is still live (whatever is on disk at
    // that instant is exactly what a real crash would leave), then opening
    // the copy.
    let base = temp_db_path("durable");
    let wal = {
        let mut w = base.clone().into_os_string();
        w.push(".wal");
        std::path::PathBuf::from(w)
    };
    let snap = temp_db_path("durable-snap");
    let snap_wal = {
        let mut w = snap.clone().into_os_string();
        w.push(".wal");
        std::path::PathBuf::from(w)
    };
    let reference = customers(800, 71);

    let db = Database::open_file_durable(&base, 128).expect("create");
    let matcher = FuzzyMatcher::build(&db, "cust", reference.iter().cloned(), customer_config())
        .expect("build");
    db.flush().expect("flush 1"); // checkpoint: 800 tuples durable
    matcher
        .insert_reference(&Record::new(&["post crash corp", "seattle", "wa", "98111"]))
        .expect("insert");
    // NOT flushed: this insert must vanish in the crash snapshot.

    // Snapshot "at crash".
    std::fs::copy(&base, &snap).expect("copy main");
    if wal.exists() {
        std::fs::copy(&wal, &snap_wal).expect("copy wal");
    }

    {
        let db2 = Database::open_file_durable(&snap, 128).expect("reopen snapshot");
        let m2 = FuzzyMatcher::open(&db2, "cust").expect("open matcher");
        assert_eq!(m2.relation_size(), 800, "unflushed insert must be gone");
        // The checkpointed data is fully intact and queryable.
        let probe = &reference[17];
        let input = Record::new(&[
            probe.get(0).unwrap(),
            probe.get(1).unwrap(),
            probe.get(2).unwrap(),
            probe.get(3).unwrap(),
        ]);
        let r = m2.lookup(&input, 1, 0.0).expect("lookup");
        assert!((r.matches[0].similarity - 1.0).abs() < 1e-12);
        m2.check_invariants()
            .expect("matcher invariants after crash recovery");
        db2.check_invariants()
            .expect("database invariants after crash recovery");
    }

    // Second crash point: after a flush that includes the insert.
    db.flush().expect("flush 2");
    std::fs::copy(&base, &snap).expect("copy main 2");
    let _ = std::fs::remove_file(&snap_wal);
    if wal.exists() {
        std::fs::copy(&wal, &snap_wal).ok();
    }
    {
        let db2 = Database::open_file_durable(&snap, 128).expect("reopen snapshot 2");
        let m2 = FuzzyMatcher::open(&db2, "cust").expect("open matcher 2");
        assert_eq!(m2.relation_size(), 801, "flushed insert must survive");
        let r = m2
            .lookup(
                &Record::new(&["post crash corp", "seattle", "wa", "98111"]),
                1,
                0.0,
            )
            .expect("lookup");
        assert_eq!(r.matches[0].record.get(0), Some("post crash corp"));
        m2.check_invariants()
            .expect("matcher invariants after second crash");
    }

    drop(matcher);
    drop(db);
    for p in [&base, &wal, &snap, &snap_wal] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn two_matchers_share_one_database() {
    let path = temp_db_path("shared");
    let orgs = fm_integration::table1();
    let custs = customers(500, 27);
    {
        let db = Database::open_file(&path, 512).expect("create");
        FuzzyMatcher::build(
            &db,
            "orgs",
            orgs.iter().cloned(),
            fm_integration::org_config(),
        )
        .expect("orgs build");
        FuzzyMatcher::build(&db, "cust", custs.iter().cloned(), customer_config())
            .expect("cust build");
        db.flush().expect("flush");
    }
    {
        let db = Database::open_file(&path, 512).expect("reopen");
        let orgs_m = FuzzyMatcher::open(&db, "orgs").expect("orgs");
        let cust_m = FuzzyMatcher::open(&db, "cust").expect("cust");
        assert_eq!(orgs_m.relation_size(), 3);
        assert_eq!(cust_m.relation_size(), 500);
        let r = orgs_m
            .lookup(
                &Record::new(&["Beoing Company", "Seattle", "WA", "98004"]),
                1,
                0.0,
            )
            .expect("lookup");
        assert_eq!(r.matches[0].tid, 1);
        orgs_m.check_invariants().expect("orgs matcher invariants");
        cust_m.check_invariants().expect("cust matcher invariants");
        db.check_invariants().expect("shared database invariants");
    }
    std::fs::remove_file(&path).expect("cleanup");
}
