//! Equivalence of the retrieval algorithms with the naive ground truth
//! (the probabilistic guarantee of Theorems 1–2, checked empirically).

use fm_core::naive::NaiveMatcher;
use fm_core::{Config, FuzzyMatcher, OscStopping, QueryMode, TranspositionCost};
use fm_datagen::{make_inputs, ErrorModel, ErrorSpec, D2_PROBS, D3_PROBS};
use fm_integration::{build, customer_config, customers};
use fm_store::Database;

const N_REF: usize = 1500;
const N_INPUTS: usize = 150;

fn exactness_config(n_ref: usize) -> Config {
    // The settings under which the paper states its formal guarantees:
    // no stop q-grams (threshold ≥ |R|), no work caps.
    customer_config()
        .with_stop_threshold(n_ref + 1)
        .with_max_candidates(0)
}

fn naive_for(matcher: &FuzzyMatcher) -> NaiveMatcher {
    NaiveMatcher::from_matcher(matcher).expect("naive snapshot")
}

#[test]
fn basic_agrees_with_naive_on_clean_data() {
    let reference = customers(N_REF, 5);
    let (_db, matcher) = build(&reference, exactness_config(N_REF));
    let naive = naive_for(&matcher);
    let ds = make_inputs(
        &reference,
        N_INPUTS,
        &ErrorSpec::new(&D3_PROBS, ErrorModel::TypeI, 9),
    );
    let mut agree = 0;
    for input in &ds.inputs {
        let ground = naive.lookup(input, 1, 0.0);
        let result = matcher
            .lookup_with(input, 1, 0.0, QueryMode::Basic)
            .expect("lookup");
        let same_tid = result.matches.first().map(|m| m.tid) == ground.first().map(|m| m.tid);
        // Ties (identical similarity) count as agreement.
        let same_sim = match (result.matches.first(), ground.first()) {
            (Some(a), Some(b)) => (a.similarity - b.similarity).abs() < 1e-9,
            (None, None) => true,
            _ => false,
        };
        if same_tid || same_sim {
            agree += 1;
        }
    }
    // Min-hash is probabilistic; demand near-perfect agreement.
    assert!(
        agree >= N_INPUTS * 97 / 100,
        "basic agreed with naive on only {agree}/{N_INPUTS} inputs"
    );
}

#[test]
fn sound_osc_matches_basic_result_quality() {
    let reference = customers(N_REF, 6);
    let (_db, matcher) = build(&reference, exactness_config(N_REF));
    let ds = make_inputs(
        &reference,
        N_INPUTS,
        &ErrorSpec::new(&D2_PROBS, ErrorModel::TypeI, 10),
    );
    for input in &ds.inputs {
        let basic = matcher
            .lookup_with(input, 1, 0.0, QueryMode::Basic)
            .expect("basic");
        let osc = matcher
            .lookup_with(input, 1, 0.0, QueryMode::Osc)
            .expect("osc");
        match (basic.matches.first(), osc.matches.first()) {
            (Some(b), Some(o)) => assert!(
                (b.similarity - o.similarity).abs() < 1e-9,
                "sound OSC must return equal-quality answers: {} vs {} on {input}",
                b.similarity,
                o.similarity
            ),
            (None, None) => {}
            other => panic!("presence mismatch {other:?} on {input}"),
        }
    }
}

#[test]
fn top_k_is_prefix_consistent_and_sorted() {
    let reference = customers(N_REF, 7);
    let (_db, matcher) = build(&reference, exactness_config(N_REF));
    let ds = make_inputs(
        &reference,
        40,
        &ErrorSpec::new(&D2_PROBS, ErrorModel::TypeI, 11),
    );
    for input in &ds.inputs {
        let top5 = matcher.lookup(input, 5, 0.0).expect("k=5").matches;
        let top1 = matcher.lookup(input, 1, 0.0).expect("k=1").matches;
        for w in top5.windows(2) {
            assert!(
                w[0].similarity >= w[1].similarity,
                "top-K not sorted on {input}"
            );
        }
        if let (Some(a), Some(b)) = (top1.first(), top5.first()) {
            assert!(
                (a.similarity - b.similarity).abs() < 1e-9,
                "k=1 answer quality differs from k=5 head on {input}"
            );
        }
        assert!(top5.len() <= 5);
        // No duplicate tids.
        let mut tids: Vec<u32> = top5.iter().map(|m| m.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), top5.len(), "duplicate tids in top-K");
    }
}

#[test]
fn threshold_results_are_threshold_filtered_and_consistent() {
    let reference = customers(N_REF, 8);
    let (_db, matcher) = build(&reference, exactness_config(N_REF));
    let naive = naive_for(&matcher);
    let ds = make_inputs(
        &reference,
        60,
        &ErrorSpec::new(&D3_PROBS, ErrorModel::TypeI, 12),
    );
    for c in [0.5, 0.8, 0.95] {
        for input in ds.inputs.iter().take(30) {
            let result = matcher.lookup(input, 3, c).expect("lookup");
            for m in &result.matches {
                assert!(m.similarity >= c, "match below threshold {c}");
            }
            // If the matcher found nothing, naive's best must be below c
            // (up to min-hash failure; assert with slack by counting).
            let ground = naive.lookup(input, 1, c);
            if result.matches.is_empty() && !ground.is_empty() {
                // Allowed only rarely; tolerate via similarity proximity.
                assert!(
                    ground[0].similarity < c + 0.15,
                    "matcher missed a clear above-threshold match: {} >= {c} for {input}",
                    ground[0].similarity
                );
            }
        }
    }
}

#[test]
fn paper_settings_stay_close_to_naive() {
    // With the *paper's* experiment settings (stop threshold 10 000, the
    // default candidate cap) rather than the exactness settings, accuracy
    // against naive should still be high on moderately dirty data.
    let reference = customers(N_REF, 13);
    let (_db, matcher) = build(&reference, customer_config());
    let naive = naive_for(&matcher);
    let ds = make_inputs(
        &reference,
        N_INPUTS,
        &ErrorSpec::new(&D2_PROBS, ErrorModel::TypeI, 14),
    );
    let mut agree = 0;
    for input in &ds.inputs {
        let ground = naive.lookup(input, 1, 0.0);
        let result = matcher.lookup(input, 1, 0.0).expect("lookup");
        let same = match (result.matches.first(), ground.first()) {
            (Some(a), Some(b)) => a.tid == b.tid || (a.similarity - b.similarity).abs() < 1e-9,
            (None, None) => true,
            _ => false,
        };
        if same {
            agree += 1;
        }
    }
    assert!(
        agree >= N_INPUTS * 90 / 100,
        "default settings agreed on only {agree}/{N_INPUTS}"
    );
}

#[test]
fn insert_pruning_does_not_change_results_at_c_zero() {
    // At c = 0 the admission threshold is 0, so pruning never rejects: both
    // configurations must return identical answers.
    let reference = customers(800, 15);
    let db1 = Database::in_memory().expect("db");
    let db2 = Database::in_memory().expect("db");
    let with = FuzzyMatcher::build(&db1, "a", reference.iter().cloned(), customer_config())
        .expect("build");
    let without = FuzzyMatcher::build(
        &db2,
        "b",
        reference.iter().cloned(),
        customer_config().without_insert_pruning(),
    )
    .expect("build");
    let ds = make_inputs(
        &reference,
        50,
        &ErrorSpec::new(&D2_PROBS, ErrorModel::TypeI, 16),
    );
    for input in &ds.inputs {
        let a = with.lookup(input, 2, 0.0).expect("lookup");
        let b = without.lookup(input, 2, 0.0).expect("lookup");
        assert_eq!(
            a.matches.iter().map(|m| m.tid).collect::<Vec<_>>(),
            b.matches.iter().map(|m| m.tid).collect::<Vec<_>>(),
            "insert pruning changed results at c = 0 for {input}"
        );
    }
}

/// Differential check of one configuration against the naive scan: on every
/// input where the ETI path returns the same top-K tids as the ground truth,
/// the similarities must agree **to the bit** (both sides run the identical
/// `fms` dynamic program), and the per-query trace must be internally
/// consistent with one exact fms evaluation per fetched candidate.
fn assert_matches_naive_bitwise(config: Config, seed: u64, min_agree_pct: usize) {
    let reference = customers(N_REF, seed);
    let (_db, matcher) = build(&reference, config);
    let naive = naive_for(&matcher);
    let ds = make_inputs(
        &reference,
        N_INPUTS,
        &ErrorSpec::new(&D2_PROBS, ErrorModel::TypeI, seed ^ 0x5eed),
    );
    for mode in [QueryMode::Basic, QueryMode::Osc] {
        let mut agree = 0;
        for input in &ds.inputs {
            let ground = naive.lookup(input, 3, 0.0);
            let result = matcher.lookup_with(input, 3, 0.0, mode).expect("lookup");
            let t = result.trace;
            t.check_consistent().expect("trace invariants");
            assert_eq!(
                t.fms_evals, t.candidates_fetched,
                "every fetched candidate is verified exactly once ({mode:?}, {input})"
            );
            // Agreement on the top answer, ties (equal similarity) counting,
            // as in the other differential tests: min-hash is probabilistic.
            let same = match (result.matches.first(), ground.first()) {
                (Some(a), Some(b)) => {
                    a.tid == b.tid || a.similarity.to_bits() == b.similarity.to_bits()
                }
                (None, None) => true,
                _ => false,
            };
            if same {
                agree += 1;
            }
            // Wherever both sides ranked the same tuple, the similarity must
            // be bit-identical — both run the identical fms program.
            let ground_sims: std::collections::HashMap<u32, f64> =
                ground.iter().map(|m| (m.tid, m.similarity)).collect();
            for m in &result.matches {
                if let Some(g) = ground_sims.get(&m.tid) {
                    assert_eq!(
                        m.similarity.to_bits(),
                        g.to_bits(),
                        "fms must be bit-identical on shared tid {} ({mode:?}, {input})",
                        m.tid
                    );
                }
            }
        }
        assert!(
            agree >= N_INPUTS * min_agree_pct / 100,
            "{mode:?} agreed with naive on only {agree}/{N_INPUTS} inputs"
        );
    }
}

#[test]
fn transposition_enabled_matches_naive_bitwise() {
    // §5.3: the token-transposition edit changes fms on both sides of the
    // differential; retrieval must still track the naive ground truth.
    assert_matches_naive_bitwise(
        exactness_config(N_REF).with_transposition(TranspositionCost::Constant(0.2)),
        21,
        90,
    );
}

#[test]
fn column_weights_match_naive_bitwise() {
    // §5.2: non-uniform column weights rescale every token weight; the ETI
    // path and the naive scan must rescale identically.
    assert_matches_naive_bitwise(
        exactness_config(N_REF).with_column_weights(&[2.0, 1.0, 1.0, 0.5]),
        22,
        90,
    );
}

#[test]
fn transposed_token_inputs_still_match_their_seed() {
    // Hand-built transposed inputs ("Company Boeing ..."): with the
    // transposition edit enabled the seed tuple must stay the best answer,
    // and basic/OSC must agree with naive bit-for-bit on it.
    let reference = customers(600, 23);
    let config = exactness_config(600).with_transposition(TranspositionCost::Constant(0.25));
    let (_db, matcher) = build(&reference, config);
    let naive = naive_for(&matcher);
    let mut checked = 0usize;
    for (i, record) in reference.iter().enumerate().step_by(37) {
        let mut values: Vec<Option<String>> = record.values().to_vec();
        let Some(Some(name)) = values.first_mut() else {
            continue;
        };
        let mut tokens: Vec<&str> = name.split_whitespace().collect();
        if tokens.len() < 2 {
            continue;
        }
        tokens.swap(0, 1);
        *name = tokens.join(" ");
        let input = fm_core::Record::from_options(values);
        let ground = naive.lookup(&input, 1, 0.0);
        let result = matcher.lookup(&input, 1, 0.0).expect("lookup");
        let (Some(g), Some(m)) = (ground.first(), result.matches.first()) else {
            panic!("no answer for transposed input of tuple {}", i + 1);
        };
        if m.tid == g.tid {
            assert_eq!(m.similarity.to_bits(), g.similarity.to_bits());
            checked += 1;
        }
    }
    assert!(checked >= 10, "only {checked} transposed inputs agreed");
}

#[test]
fn paper_example_osc_is_faster_but_can_differ() {
    // The PaperExample stopping bound must trade accuracy for fetches in
    // the direction documented in EXPERIMENTS.md: at least as many
    // short-circuit successes, no more candidate fetches.
    let reference = customers(N_REF, 17);
    let db = Database::in_memory().expect("db");
    let sound =
        FuzzyMatcher::build(&db, "s", reference.iter().cloned(), customer_config()).expect("build");
    let paper = FuzzyMatcher::build(
        &db,
        "p",
        reference.iter().cloned(),
        customer_config().with_osc_stopping(OscStopping::PaperExample),
    )
    .expect("build");
    let ds = make_inputs(
        &reference,
        N_INPUTS,
        &ErrorSpec::new(&D2_PROBS, ErrorModel::TypeI, 18),
    );
    let mut sound_fetches = 0u64;
    let mut paper_fetches = 0u64;
    let mut sound_successes = 0u32;
    let mut paper_successes = 0u32;
    for input in &ds.inputs {
        let a = sound.lookup(input, 1, 0.0).expect("lookup");
        let b = paper.lookup(input, 1, 0.0).expect("lookup");
        sound_fetches += a.stats.candidates_fetched;
        paper_fetches += b.stats.candidates_fetched;
        sound_successes += u32::from(a.stats.osc_succeeded);
        paper_successes += u32::from(b.stats.osc_succeeded);
    }
    assert!(
        paper_successes >= sound_successes,
        "paper bound should short-circuit at least as often ({paper_successes} vs {sound_successes})"
    );
    assert!(
        paper_fetches <= sound_fetches,
        "paper bound should fetch no more ({paper_fetches} vs {sound_fetches})"
    );
}
