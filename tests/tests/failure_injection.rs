//! Failure injection: I/O faults must surface as errors, never as panics
//! or silent corruption.

use fm_core::{CoreError, FuzzyMatcher};
use fm_integration::{customer_config, customers};
use fm_store::{Database, FaultPager, MemPager, StoreError};

fn faulty_db(budget: u64) -> fm_store::Result<Database> {
    Database::with_pager(Box::new(FaultPager::new(MemPager::new(), budget)), 256)
}

#[test]
fn build_with_exhausted_io_budget_fails_cleanly() {
    let reference = customers(500, 41);
    // Sweep budgets so the fault lands in different build phases: database
    // init, table creation, row insertion, ETI write.
    let mut saw_fault = false;
    let mut saw_success = false;
    for budget in [0u64, 2, 5, 20, 200, 2000, 20_000] {
        match faulty_db(budget) {
            Err(StoreError::InjectedFault) => {
                saw_fault = true;
                continue;
            }
            Err(e) => panic!("unexpected database error {e}"),
            Ok(db) => {
                match FuzzyMatcher::build(&db, "cust", reference.iter().cloned(), customer_config())
                {
                    Err(CoreError::Store(StoreError::InjectedFault)) => saw_fault = true,
                    Err(e) => panic!("unexpected build error {e}"),
                    Ok(matcher) => {
                        saw_success = true;
                        assert_eq!(matcher.relation_size(), 500);
                        // A build that survived its faults must be coherent.
                        matcher.check_invariants().expect("matcher invariants");
                        db.check_invariants().expect("database invariants");
                    }
                }
            }
        }
    }
    assert!(saw_fault, "no budget hit the fault path");
    assert!(saw_success, "no budget allowed a full build");
}

#[test]
fn query_time_fault_surfaces_as_error() {
    // Pick a budget where the build succeeds but a flood of queries on a
    // tiny (always-missing) buffer pool eventually faults: errors must
    // propagate as `CoreError::Store(InjectedFault)`, never panic.
    // Enough reference tuples that one lookup's working set (many distinct
    // ETI leaves) exceeds the 8-frame pool, forcing I/O per query.
    // Cycling over many *different* inputs keeps rotating distinct ETI
    // leaves through the tiny pool, so queries must keep reading pages.
    let reference = customers(2500, 42);
    let mut exercised = false;
    let mut budget = 50_000u64;
    for _ in 0..12 {
        let db = match Database::with_pager(
            Box::new(FaultPager::new(MemPager::new(), budget)),
            8, // tiny pool: every lookup faults pages in
        ) {
            Ok(db) => db,
            Err(StoreError::InjectedFault) => {
                budget *= 2;
                continue;
            }
            Err(e) => panic!("unexpected db error {e}"),
        };
        match FuzzyMatcher::build(&db, "cust", reference.iter().cloned(), customer_config()) {
            Err(CoreError::Store(StoreError::InjectedFault)) => {
                budget *= 2;
                continue;
            }
            Err(e) => panic!("unexpected build error {e}"),
            Ok(matcher) => {
                // Build fit in the budget; queries must eventually exhaust
                // the remainder.
                let mut faulted = false;
                'outer: for _ in 0..200 {
                    for r in &reference {
                        let input = fm_core::Record::new(&[
                            r.get(0).unwrap(),
                            r.get(1).unwrap(),
                            r.get(2).unwrap(),
                            r.get(3).unwrap(),
                        ]);
                        match matcher.lookup(&input, 1, 0.0) {
                            Ok(result) => {
                                let top = result.matches.first().expect("exact match");
                                assert!((top.similarity - 1.0).abs() < 1e-12);
                            }
                            Err(CoreError::Store(StoreError::InjectedFault)) => {
                                faulted = true;
                                break 'outer;
                            }
                            Err(e) => panic!("unexpected lookup error {e}"),
                        }
                    }
                }
                assert!(faulted, "queries never exhausted the I/O budget");
                exercised = true;
                break;
            }
        }
    }
    assert!(exercised, "no budget allowed build-then-query-fault");
}

#[test]
fn tiny_buffer_pool_still_correct() {
    // Not a fault, but the adjacent resource-exhaustion path: a pool barely
    // larger than the B+-tree depth must still answer correctly (it just
    // thrashes).
    let reference = customers(400, 43);
    let db = Database::with_pager(Box::new(MemPager::new()), 8).expect("db");
    let matcher = FuzzyMatcher::build(&db, "cust", reference.iter().cloned(), customer_config())
        .expect("build");
    let exact = &reference[7];
    let input = fm_core::Record::new(&[
        exact.get(0).unwrap(),
        exact.get(1).unwrap(),
        exact.get(2).unwrap(),
        exact.get(3).unwrap(),
    ]);
    let result = matcher.lookup(&input, 1, 0.0).expect("lookup");
    assert!((result.matches[0].similarity - 1.0).abs() < 1e-12);
    // The validators walk every page, so they double as a thrash test for
    // the 8-frame pool.
    matcher
        .check_invariants()
        .expect("matcher invariants under tiny pool");
    db.check_invariants()
        .expect("database invariants under tiny pool");
}

#[test]
fn fault_mid_maintenance_leaves_queries_working_for_old_data() {
    let reference = customers(300, 44);
    let budget = 1_000_000u64; // plenty for build; we will exhaust it below
    let db =
        Database::with_pager(Box::new(FaultPager::new(MemPager::new(), budget)), 64).expect("db");
    let matcher = FuzzyMatcher::build(&db, "cust", reference.iter().cloned(), customer_config())
        .expect("build");
    // Exhaust the budget with maintenance inserts until one faults.
    let mut faulted = false;
    for i in 0..200_000 {
        match matcher.insert_reference(&fm_core::Record::new(&[
            &format!("filler{i} corp"),
            "seattle",
            "wa",
            "98001",
        ])) {
            Ok(_) => {}
            Err(CoreError::Store(StoreError::InjectedFault)) => {
                faulted = true;
                break;
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(faulted, "budget never exhausted");
    // Cached pages may still serve reads; whatever happens must be an
    // error or a valid answer — never a panic.
    let input = fm_core::Record::new(&[
        reference[0].get(0).unwrap(),
        reference[0].get(1).unwrap(),
        reference[0].get(2).unwrap(),
        reference[0].get(3).unwrap(),
    ]);
    match matcher.lookup(&input, 1, 0.0) {
        Ok(result) => {
            for m in result.matches {
                assert!((0.0..=1.0).contains(&m.similarity));
            }
        }
        Err(CoreError::Store(StoreError::InjectedFault)) => {}
        Err(e) => panic!("unexpected error {e}"),
    }
}
