//! The shared-read lookup path: matcher replicas
//! (`FuzzyMatcher::replicate`) over one store, exercised from many
//! threads. Replicas share the buffer pool, the structural latches, the
//! weight table, and the metrics registry — so every test here asserts
//! an *exact* property: bitwise-identical results, invariant-clean
//! interleavings, or to-the-unit counter totals. "Close enough" from a
//! replica means the latching protocol is broken.

use fm_core::{FuzzyMatcher, MatchResult, Record};
use fm_datagen::{make_inputs, ErrorModel, ErrorSpec, D3_PROBS};
use fm_integration::{build, customer_config, customers};

/// Full fingerprint of one answer: every match's tid and the exact bit
/// pattern of its similarity. Two fingerprints are equal only if the
/// lookups were indistinguishable.
fn fingerprint(result: &MatchResult) -> Vec<(u32, u64)> {
    result
        .matches
        .iter()
        .map(|m| (m.tid, m.similarity.to_bits()))
        .collect()
}

/// N replica threads × M lookups against a *small* file-backed pool, so
/// the sharded buffer pool's miss path (evict → write back → fault in,
/// all outside the shard lock) runs constantly under contention. Every
/// answer must be bitwise identical to the single-threaded baseline.
#[test]
fn replica_lookups_bitwise_identical_to_single_thread() {
    let mut path = std::env::temp_dir();
    path.push(format!("fm-int-{}-replica-stress.db", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let reference = customers(1000, 71);
    let db = fm_store::Database::open_file(&path, 64).expect("create");
    let matcher = FuzzyMatcher::build(&db, "cust", reference.iter().cloned(), customer_config())
        .expect("build");
    let ds = make_inputs(
        &reference,
        150,
        &ErrorSpec::new(&D3_PROBS, ErrorModel::TypeI, 72),
    );

    let baseline: Vec<Vec<(u32, u64)>> = ds
        .inputs
        .iter()
        .map(|input| fingerprint(&matcher.lookup(input, 2, 0.0).expect("baseline lookup")))
        .collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let replica = matcher.replicate();
                let ds = &ds;
                let baseline = &baseline;
                scope.spawn(move || {
                    // Each thread walks the inputs from a different phase
                    // so distinct replicas fault distinct pages at once.
                    for step in 0..ds.inputs.len() {
                        let i = (step + t * 37) % ds.inputs.len();
                        let got =
                            fingerprint(&replica.lookup(&ds.inputs[i], 2, 0.0).expect("lookup"));
                        assert_eq!(
                            got, baseline[i],
                            "replica {t} diverged from the baseline at input {i}"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("replica thread");
        }
    });

    drop(matcher);
    drop(db);
    let _ = std::fs::remove_file(&path);
}

/// Reader replicas racing `insert_reference`/`delete_reference` rounds,
/// with `check_invariants()` after every round: interleavings may change
/// *which* matches a reader sees mid-maintenance, but never hand out a
/// torn page, a similarity outside [0, 1], or a structurally invalid
/// ETI/weight table.
#[test]
fn readers_vs_maintenance_interleaving_keeps_invariants() {
    let reference = customers(700, 73);
    let (_db, matcher) = build(&reference, customer_config());
    let ds = make_inputs(
        &reference,
        90,
        &ErrorSpec::new(&D3_PROBS, ErrorModel::TypeI, 74),
    );

    for round in 0..5u32 {
        std::thread::scope(|scope| {
            // Maintenance through the primary: insert a batch, delete
            // every other new tid, while the readers below are running.
            let writer = &matcher;
            scope.spawn(move || {
                for i in 0..8u32 {
                    let tid = writer
                        .insert_reference(&Record::new(&[
                            &format!("round{round} venture {i}"),
                            "olympia",
                            "wa",
                            &format!("98{i:03}"),
                        ]))
                        .expect("insert");
                    if i % 2 == 0 {
                        writer.delete_reference(tid).expect("delete");
                    }
                }
            });
            for t in 0..3usize {
                let replica = matcher.replicate();
                let ds = &ds;
                scope.spawn(move || {
                    for step in 0..30 {
                        let i = (step * 7 + t) % ds.inputs.len();
                        match replica.lookup(&ds.inputs[i], 2, 0.0) {
                            Ok(result) => {
                                result.trace.check_consistent().expect("trace invariants");
                                for m in &result.matches {
                                    assert!((0.0..=1.0).contains(&m.similarity));
                                    assert!(m.tid >= 1);
                                    assert_eq!(m.record.arity(), 4);
                                }
                            }
                            // A candidate deleted between its ETI hit and
                            // the reference fetch surfaces as NotFound —
                            // an accepted outcome of the race, never a
                            // torn result.
                            Err(fm_core::CoreError::Store(fm_store::StoreError::NotFound(_))) => {}
                            Err(e) => panic!("reader failed: {e}"),
                        }
                    }
                });
            }
        });
        matcher
            .check_invariants()
            .unwrap_or_else(|e| panic!("invariants broken after round {round}: {e}"));
    }
}

/// Property, over several generator seeds and split shapes: a batch
/// split across replicas (each part running concurrently on its own
/// handle) equals `lookup_batch` on one matcher, fingerprint for
/// fingerprint, in input order.
#[test]
fn batch_split_across_replicas_equals_single_batch() {
    for seed in [75u64, 76, 77] {
        let reference = customers(900, seed);
        let (_db, matcher) = build(&reference, customer_config());
        let ds = make_inputs(
            &reference,
            96,
            &ErrorSpec::new(&D3_PROBS, ErrorModel::TypeI, seed + 100),
        );

        let single: Vec<Vec<(u32, u64)>> = matcher
            .lookup_batch(&ds.inputs, 2, 0.0, 1)
            .expect("single batch")
            .iter()
            .map(fingerprint)
            .collect();

        // Derive an uneven, seed-dependent 3-way split (cut points vary
        // per seed, parts are non-empty and ordered).
        let n = ds.inputs.len();
        let cut1 = 1 + (seed as usize * 29) % (n / 2);
        let cut2 = cut1 + 1 + (seed as usize * 13) % (n - cut1 - 1);
        let parts = [
            &ds.inputs[..cut1],
            &ds.inputs[cut1..cut2],
            &ds.inputs[cut2..],
        ];

        let split: Vec<Vec<(u32, u64)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .iter()
                .map(|part| {
                    let replica = matcher.replicate();
                    scope.spawn(move || {
                        replica
                            .lookup_batch(part, 2, 0.0, 2)
                            .expect("replica batch")
                            .iter()
                            .map(fingerprint)
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("replica thread"))
                .collect()
        });

        assert_eq!(
            split, single,
            "seed {seed}: batch split at ({cut1}, {cut2}) across replicas \
             differs from one lookup_batch"
        );
    }
}

/// The satellite regression for trace aggregation: replicas share one
/// metrics registry, so after 8 threads hammer 8 replicas, the registry
/// delta must equal the sum of every returned per-query trace EXACTLY —
/// a lost or double-counted update anywhere in the replica dispatch
/// shows up as an off-by-n here.
#[test]
fn metrics_totals_exact_across_eight_replica_threads() {
    let reference = customers(1100, 79);
    let (_db, matcher) = build(&reference, customer_config());
    let ds = make_inputs(
        &reference,
        240,
        &ErrorSpec::new(&D3_PROBS, ErrorModel::TypeI, 80),
    );

    let before = matcher.metrics_snapshot();
    let traces: Vec<fm_core::LookupTrace> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8usize)
            .map(|t| {
                let replica = matcher.replicate();
                let ds = &ds;
                scope.spawn(move || {
                    // Contiguous chunk per thread: all 240 inputs exactly
                    // once across the 8 replicas.
                    let chunk = ds.inputs.len() / 8;
                    (t * chunk..(t + 1) * chunk)
                        .map(|i| replica.lookup(&ds.inputs[i], 2, 0.0).expect("lookup").trace)
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("replica thread"))
            .collect()
    });
    let after = matcher.metrics_snapshot();

    assert_eq!(traces.len(), 240);
    let mut lookups = 0u64;
    let mut qgrams = 0u64;
    let mut eti_rows = 0u64;
    let mut tids = 0u64;
    let mut fetched = 0u64;
    let mut evals = 0u64;
    let mut latency = 0u64;
    for t in &traces {
        t.check_consistent().expect("trace invariants");
        lookups += 1;
        qgrams += t.qgrams_probed;
        eti_rows += t.eti_rows;
        tids += t.tids_processed;
        fetched += t.candidates_fetched;
        evals += t.fms_evals;
        latency += t.latency_us;
    }
    assert_eq!(after.lookups - before.lookups, lookups);
    assert_eq!(after.qgrams_probed - before.qgrams_probed, qgrams);
    assert_eq!(after.eti_rows - before.eti_rows, eti_rows);
    assert_eq!(after.tids_processed - before.tids_processed, tids);
    assert_eq!(
        after.candidates_fetched - before.candidates_fetched,
        fetched
    );
    assert_eq!(after.fms_evals - before.fms_evals, evals);
    assert_eq!(after.latency.count - before.latency.count, lookups);
    assert_eq!(after.latency.sum_us - before.latency.sum_us, latency);
    after.check_invariants().expect("snapshot invariants");
}
