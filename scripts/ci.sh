#!/usr/bin/env sh
# The full pre-PR gate: fmt, clippy, xtask lint, xtask analyze, xtask
# racecheck, xtask deepcheck, tests — then an end-to-end smoke test of the
# CLI observability
# surface (build a tiny database, run one traced lookup, print the stats
# report), of the analyzer's machine-readable output, and of the serving
# layer (fuzzymatch serve + ping/client/bench_load/remote traces/drain).
set -eu
cd "$(dirname "$0")/.."

cargo xtask ci

# The JSON mode is what external tooling consumes; keep it parseable.
# The findings array has been empty since the PR-4 baseline burn-down, so
# assert the array itself, not its contents.
analyze_json=$(cargo xtask analyze --json)
printf '%s\n' "$analyze_json" | grep -q '^\[' &&
  printf '%s\n' "$analyze_json" | grep -q '^\]' ||
  { echo "ci: analyze --json printed no findings array" >&2; exit 1; }

# Same contract for the race gate: the in-process step already judged the
# findings against the (expected-empty) baseline; here we prove the CLI
# `--json` surface stays parseable for external tooling.
racecheck_json=$(cargo xtask racecheck --json)
printf '%s\n' "$racecheck_json" | grep -q '^\[' &&
  printf '%s\n' "$racecheck_json" | grep -q '^\]' ||
  { echo "ci: racecheck --json printed no findings array" >&2; exit 1; }

# The shared-mutability map of the lookup path, machine-readably. The
# in-process gate in `cargo xtask ci` already asserted the budget; here we
# only prove the CLI surface emits the JSON external tooling consumes.
mutmap_json=$(cargo xtask analyze --mut-map --json)
printf '%s\n' "$mutmap_json" | grep -q '"mutation_sites"' ||
  { echo "ci: analyze --mut-map --json has no mutation_sites count" >&2; exit 1; }

smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT INT TERM

cat > "$smoke_dir/ref.csv" <<'EOF'
name,city,state,zip
Boeing Company,Seattle,WA,98004
Bon Corporation,Seattle,WA,98014
Microsoft Corp,Redmond,WA,98052
EOF

cargo run -q --release -p fm-cli -- build \
  --db "$smoke_dir/smoke.fmdb" --reference "$smoke_dir/ref.csv"
# Capture before grepping: `grep -q` exits on first match and the closed
# pipe would kill the still-printing CLI.
trace_out=$(cargo run -q --release -p fm-cli -- lookup \
  --db "$smoke_dir/smoke.fmdb" --input "Beoing Company,Seattle,WA,98004" --trace 2>&1)
printf '%s\n' "$trace_out" | grep -q "fms evaluations" ||
  { echo "ci: traced lookup printed no trace" >&2; exit 1; }
stats_out=$(cargo run -q --release -p fm-cli -- stats --db "$smoke_dir/smoke.fmdb")
printf '%s\n' "$stats_out" | grep -q "pool hits" ||
  { echo "ci: stats printed no IO report" >&2; exit 1; }

echo "ci: traced-lookup smoke test ok"

# Structured tracing: export a Chrome trace through the CLI and check it
# parses (python if available, otherwise structural greps).
cargo run -q --release -p fm-cli -- trace export \
  --reference "$smoke_dir/ref.csv" \
  --input "Beoing Company,Seattle,WA,98004" \
  --chrome --out "$smoke_dir/trace.json"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$smoke_dir/trace.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
query = {e["name"] for e in events if e.get("cat") == "query"}
build = {e["name"] for e in events if e.get("cat") == "build"}
assert len(query) >= 6, f"only {len(query)} query phases: {sorted(query)}"
assert {"build", "pre_eti"} <= build, f"build spans missing: {sorted(build)}"
EOF
else
  grep -q '"traceEvents"' "$smoke_dir/trace.json" ||
    { echo "ci: trace export has no traceEvents" >&2; exit 1; }
  grep -q '"name":"probe"' "$smoke_dir/trace.json" ||
    { echo "ci: trace export has no probe span" >&2; exit 1; }
fi
echo "ci: chrome trace export smoke test ok"

# Serving-layer smoke: start fm-server on an ephemeral port, then drive
# it with the real binaries — ping, a client lookup, the remote flight
# recorder, and four concurrent bench_load clients which must see zero
# dropped responses — before asking it to drain.
cargo build -q --release -p fm-cli -p fm-bench --bin fuzzymatch --bin bench_load
./target/release/fuzzymatch serve --db "$smoke_dir/smoke.fmdb" \
  --addr 127.0.0.1:0 --port-file "$smoke_dir/port.txt" \
  --telemetry-window-ms 50 --slow-us 1 --slow-log "$smoke_dir/slow.jsonl" &
server_pid=$!
i=0
while [ ! -s "$smoke_dir/port.txt" ]; do
  i=$((i + 1))
  [ "$i" -le 100 ] || { echo "ci: server never wrote its port file" >&2; exit 1; }
  kill -0 "$server_pid" 2>/dev/null || { echo "ci: server died at startup" >&2; exit 1; }
  sleep 0.1
done
addr=$(cat "$smoke_dir/port.txt")

./target/release/fuzzymatch ping --addr "$addr" | grep -q "pong" ||
  { echo "ci: ping got no pong" >&2; exit 1; }
lookup_out=$(./target/release/fuzzymatch client lookup --addr "$addr" \
  --input "Beoing Company,Seattle,WA,98004" 2>&1)
printf '%s\n' "$lookup_out" | grep -q "Boeing Company" ||
  { echo "ci: client lookup found no match: $lookup_out" >&2; exit 1; }
./target/release/bench_load --addr "$addr" \
  --input "Beoing Company,Seattle,WA,98004" --clients 4 --requests 100 |
  grep -q "dropped responses: 0" ||
  { echo "ci: bench_load dropped responses" >&2; exit 1; }
# The flight recorder is per-process: server-side query spans are only
# visible through the remote trace_slowest verb.
slowest_out=$(./target/release/fuzzymatch trace slowest 5 --addr "$addr")
printf '%s\n' "$slowest_out" | grep -q "query" ||
  { echo "ci: remote trace slowest shows no query spans: $slowest_out" >&2; exit 1; }
# Continuous telemetry: --check makes the CLI validate the exposition
# (cumulative-bucket monotonicity, +Inf/_count agreement, _sum present)
# before printing; then assert the lookup histogram actually saw the
# traffic the smoke generated.
metrics_out=$(./target/release/fuzzymatch metrics --addr "$addr" --check)
printf '%s\n' "$metrics_out" | grep -q '^fm_lookup_latency_us_bucket{le="0"}' ||
  { echo "ci: exposition has no lookup histogram buckets" >&2; exit 1; }
printf '%s\n' "$metrics_out" | grep -q '^fm_lookup_latency_us_count [1-9]' ||
  { echo "ci: lookup histogram count is zero after real traffic" >&2; exit 1; }
printf '%s\n' "$metrics_out" | grep -q '^fm_server_phase_us_bucket{verb="lookup",phase="service"' ||
  { echo "ci: per-verb phase histograms missing from the scrape" >&2; exit 1; }
# One refresh of the live top view over the 50 ms sampler windows.
sleep 0.3
top_out=$(./target/release/fuzzymatch top --addr "$addr" --iterations 1)
printf '%s\n' "$top_out" | grep -q "qps" ||
  { echo "ci: top printed no qps line: $top_out" >&2; exit 1; }
./target/release/fuzzymatch client shutdown --addr "$addr" >/dev/null
wait "$server_pid" ||
  { echo "ci: server exited non-zero after drain" >&2; exit 1; }
echo "ci: serving smoke test ok"

# Concurrent read-path stress under release optimizations, with a
# wall-clock cap: the replica suite must not just pass but finish
# promptly — a latching bug that deadlocks (readers parked on a loading
# frame that never publishes, a shard lock held across IO) would
# otherwise hang CI instead of failing it.
if command -v timeout >/dev/null 2>&1; then
  timeout 600 cargo test -q --release -p fm-integration --test concurrent_read ||
    { echo "ci: release concurrent stress failed or exceeded its 600s cap" >&2; exit 1; }
else
  cargo test -q --release -p fm-integration --test concurrent_read ||
    { echo "ci: release concurrent stress failed" >&2; exit 1; }
fi
echo "ci: release concurrent stress ok"

# The bench gate (deterministic counters vs BENCH_baseline.json + tracing
# overhead + replica scaling vs the host-aware floor) — quick mode.
cargo xtask bench
