#!/usr/bin/env sh
# The full pre-PR gate: fmt, clippy, xtask lint, xtask deepcheck, tests.
# Thin wrapper so CI systems and humans share one entry point.
set -eu
cd "$(dirname "$0")/.."
exec cargo xtask ci
