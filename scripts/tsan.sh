#!/usr/bin/env sh
# Opt-in ThreadSanitizer lane over the concurrent read path.
#
# The static race gate (`cargo xtask racecheck`) reasons about locksets
# from source; TSan watches the same interleavings happen for real. The
# two cover each other's blind spots: racecheck sees code paths the test
# never schedules, TSan sees synchronization (atomics fences, parking_lot
# internals) the lexer-level analysis cannot model.
#
# Not part of `scripts/ci.sh`: -Zsanitizer=thread needs a nightly
# toolchain plus rebuilt std (-Zbuild-std), neither of which the default
# container ships. Run it where a nightly exists:
#
#   scripts/tsan.sh              # the concurrent_read suite (default)
#   scripts/tsan.sh concurrency  # any other fm-integration test name
set -eu
cd "$(dirname "$0")/.."

test_name=${1:-concurrent_read}

if ! command -v rustup >/dev/null 2>&1; then
  echo "tsan: rustup not found — this lane needs 'rustup toolchain install nightly'" >&2
  exit 2
fi
if ! rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
  echo "tsan: no nightly toolchain installed — run:" >&2
  echo "  rustup toolchain install nightly --component rust-src" >&2
  exit 2
fi
if ! rustup component list --toolchain nightly --installed 2>/dev/null |
  grep -q '^rust-src'; then
  echo "tsan: nightly is missing rust-src (needed by -Zbuild-std) — run:" >&2
  echo "  rustup component add rust-src --toolchain nightly" >&2
  exit 2
fi

host=$(rustc -vV | sed -n 's/^host: //p')

# suppressions: test-only intentional races would go here; keep the file
# empty so any report is a real finding.
sup_file=$(mktemp)
trap 'rm -f "$sup_file"' EXIT INT TERM

RUSTFLAGS="-Zsanitizer=thread" \
TSAN_OPTIONS="suppressions=$sup_file halt_on_error=1" \
  cargo +nightly test \
    -Zbuild-std \
    --target "$host" \
    -p fm-integration --test "$test_name" \
    -- --test-threads=1

echo "tsan: $test_name clean"
