//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and macros this workspace's
//! property tests use — `proptest!`, `prop_assert*`, `prop_oneof!`,
//! `any::<T>()`, integer/float range strategies, regex-literal string
//! strategies, `prop::collection::{vec, btree_set, btree_map}`, `Just`,
//! `.prop_map`, tuple strategies — on a deterministic per-test RNG.
//!
//! Differences from real proptest, deliberately accepted:
//! * no shrinking: a failing case reports the exact generated inputs and
//!   the case number, but does not minimize them;
//! * regex strategies support the subset of syntax the tests use
//!   (literals, `[...]` classes, `(...)` groups, `|` alternation, `\PC`,
//!   and `{m,n}`/`{n}`/`?`/`*`/`+` repetition);
//! * generation is a pure function of the test name, keeping runs
//!   reproducible without a persisted failure file.

pub mod test_runner {
    /// Per-test configuration (the `#![proptest_config(..)]` payload).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic generator driving all strategies (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// A generator whose stream is a pure function of `seed`.
        pub fn from_seed(seed: u64) -> TestRng {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// A generator seeded from a test's name (FNV-1a).
        pub fn for_test(name: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::from_seed(h)
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, span)`; `span` must be nonzero.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            let zone = u64::MAX - (u64::MAX - span + 1) % span;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % span;
                }
            }
        }

        /// Uniform usize in `[lo, hi]` (inclusive).
        pub fn usize_between(&mut self, lo: usize, hi: usize) -> usize {
            debug_assert!(lo <= hi);
            lo + self.below((hi - lo) as u64 + 1) as usize
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe generation, so heterogeneous strategies of one value
    /// type can share a `BoxedStrategy`.
    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy producing `V`.
    pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> BoxedStrategy<V> {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Strategy yielding a clone of one fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<V: Clone + Debug>(pub V);

    impl<V: Clone + Debug> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice among strategies of one value type (`prop_oneof!`).
    #[derive(Clone)]
    pub struct OneOf<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u32,
    }

    impl<V> OneOf<V> {
        /// Builds a weighted union; weights must sum to a nonzero total.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> OneOf<V> {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            OneOf { arms, total }
        }
    }

    impl<V: Debug> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(u64::from(self.total)) as u32;
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights exhausted")
        }
    }

    /// `any::<T>()` — the full-domain strategy for `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Any<T> {
            Any(PhantomData)
        }
    }

    /// Types with a canonical full-domain strategy.
    pub trait ArbitraryValue: Debug {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T` (`any::<u8>()`, `any::<u64>()`, …).
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    /// String literals are regex strategies, as in real proptest.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_matching(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Collection size specification: an exact length or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            rng.usize_between(self.lo, self.hi)
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; duplicate draws may produce
    /// fewer elements than the drawn target size, as in real proptest.
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::btree_set(element, size)`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + Debug,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // A bounded number of extra attempts absorbs duplicate draws.
            for _ in 0..target.saturating_mul(2) + 8 {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// `prop::collection::btree_map(key, value, size)`.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord + Debug,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let target = self.size.pick(rng);
            let mut map = BTreeMap::new();
            for _ in 0..target.saturating_mul(2) + 8 {
                if map.len() >= target {
                    break;
                }
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }
}

pub mod string {
    //! Generation of strings matching a regex subset: literals, `[...]`
    //! character classes (with ranges), `(...)` groups, `|` alternation,
    //! `\PC` ("any non-control character"), and `{m,n}` / `{n}` / `?` /
    //! `*` / `+` repetition.

    use super::test_runner::TestRng;

    #[derive(Debug)]
    enum Node {
        Literal(char),
        /// Inclusive (lo, hi) codepoint ranges.
        Class(Vec<(char, char)>),
        /// `\PC`: any printable (non-control) character.
        AnyPrintable,
        /// Alternation of sequences.
        Group(Vec<Vec<Piece>>),
    }

    #[derive(Debug)]
    struct Piece {
        node: Node,
        min: u32,
        max: u32,
    }

    /// Sample pool for `\PC`: mostly printable ASCII, with multi-byte
    /// codepoints mixed in so UTF-8 boundary handling gets exercised.
    const PRINTABLE_EXTRA: &[char] = &[
        'à', 'é', 'ü', 'ß', 'ñ', 'ç', 'λ', 'π', 'Ω', 'ж', '中', '日', '한', '€', '→', '🦀',
    ];

    /// Generates one string matching `pattern`.
    ///
    /// Panics on syntax outside the supported subset — a property test
    /// using new syntax should fail loudly, not silently mismatch.
    pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let alternatives = parse_alternation(&chars, &mut pos, pattern);
        assert!(
            pos == chars.len(),
            "unsupported regex syntax at byte {pos} in {pattern:?}"
        );
        let mut out = String::new();
        emit_alternation(&alternatives, rng, &mut out);
        out
    }

    fn parse_alternation(chars: &[char], pos: &mut usize, pat: &str) -> Vec<Vec<Piece>> {
        let mut alternatives = vec![parse_sequence(chars, pos, pat)];
        while *pos < chars.len() && chars[*pos] == '|' {
            *pos += 1;
            alternatives.push(parse_sequence(chars, pos, pat));
        }
        alternatives
    }

    fn parse_sequence(chars: &[char], pos: &mut usize, pat: &str) -> Vec<Piece> {
        let mut seq = Vec::new();
        while *pos < chars.len() {
            let node = match chars[*pos] {
                ')' | '|' => break,
                '(' => {
                    *pos += 1;
                    let alts = parse_alternation(chars, pos, pat);
                    assert!(
                        *pos < chars.len() && chars[*pos] == ')',
                        "unclosed group in {pat:?}"
                    );
                    *pos += 1;
                    Node::Group(alts)
                }
                '[' => {
                    *pos += 1;
                    Node::Class(parse_class(chars, pos, pat))
                }
                '\\' => {
                    *pos += 1;
                    let esc = *chars
                        .get(*pos)
                        .unwrap_or_else(|| panic!("dangling escape in {pat:?}"));
                    *pos += 1;
                    match esc {
                        'P' => {
                            // Only `\PC` (non-control) is supported.
                            assert!(
                                chars.get(*pos) == Some(&'C'),
                                "unsupported \\P class in {pat:?}"
                            );
                            *pos += 1;
                            Node::AnyPrintable
                        }
                        'd' => Node::Class(vec![('0', '9')]),
                        '\\' | '.' | '(' | ')' | '[' | ']' | '{' | '}' | '|' | '?' | '*' | '+'
                        | '-' => Node::Literal(esc),
                        other => panic!("unsupported escape \\{other} in {pat:?}"),
                    }
                }
                c => {
                    *pos += 1;
                    Node::Literal(c)
                }
            };
            let (min, max) = parse_quantifier(chars, pos, pat);
            seq.push(Piece { node, min, max });
        }
        seq
    }

    fn parse_class(chars: &[char], pos: &mut usize, pat: &str) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        assert!(
            chars.get(*pos) != Some(&'^'),
            "negated classes unsupported in {pat:?}"
        );
        while *pos < chars.len() && chars[*pos] != ']' {
            let lo = chars[*pos];
            *pos += 1;
            if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|&c| c != ']') {
                let hi = chars[*pos + 1];
                *pos += 2;
                assert!(lo <= hi, "inverted class range in {pat:?}");
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        assert!(*pos < chars.len(), "unclosed class in {pat:?}");
        *pos += 1; // consume ']'
        assert!(!ranges.is_empty(), "empty class in {pat:?}");
        ranges
    }

    fn parse_quantifier(chars: &[char], pos: &mut usize, pat: &str) -> (u32, u32) {
        match chars.get(*pos) {
            Some('?') => {
                *pos += 1;
                (0, 1)
            }
            Some('*') => {
                *pos += 1;
                (0, 8)
            }
            Some('+') => {
                *pos += 1;
                (1, 8)
            }
            Some('{') => {
                *pos += 1;
                let min = parse_number(chars, pos, pat);
                let max = if chars.get(*pos) == Some(&',') {
                    *pos += 1;
                    parse_number(chars, pos, pat)
                } else {
                    min
                };
                assert!(
                    chars.get(*pos) == Some(&'}'),
                    "unclosed quantifier in {pat:?}"
                );
                *pos += 1;
                assert!(min <= max, "inverted quantifier in {pat:?}");
                (min, max)
            }
            _ => (1, 1),
        }
    }

    fn parse_number(chars: &[char], pos: &mut usize, pat: &str) -> u32 {
        let start = *pos;
        while chars.get(*pos).is_some_and(char::is_ascii_digit) {
            *pos += 1;
        }
        assert!(*pos > start, "expected number in quantifier in {pat:?}");
        chars[start..*pos]
            .iter()
            .collect::<String>()
            .parse()
            .unwrap_or_else(|_| panic!("bad quantifier number in {pat:?}"))
    }

    fn emit_alternation(alts: &[Vec<Piece>], rng: &mut TestRng, out: &mut String) {
        let pick = rng.below(alts.len() as u64) as usize;
        for piece in &alts[pick] {
            let reps = rng.usize_between(piece.min as usize, piece.max as usize);
            for _ in 0..reps {
                emit_node(&piece.node, rng, out);
            }
        }
    }

    fn emit_node(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Literal(c) => out.push(*c),
            Node::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(lo, hi)| u64::from(*hi as u32 - *lo as u32 + 1))
                    .sum();
                let mut pick = rng.below(total);
                for (lo, hi) in ranges {
                    let span = u64::from(*hi as u32 - *lo as u32 + 1);
                    if pick < span {
                        let cp = *lo as u32 + pick as u32;
                        // Class ranges in the supported subset never span
                        // the surrogate gap, so this always succeeds.
                        out.push(char::from_u32(cp).unwrap_or(*lo));
                        return;
                    }
                    pick -= span;
                }
                unreachable!("class ranges exhausted")
            }
            Node::AnyPrintable => {
                // 7/8 printable ASCII, 1/8 multi-byte.
                if rng.below(8) == 0 {
                    let i = rng.below(PRINTABLE_EXTRA.len() as u64) as usize;
                    out.push(PRINTABLE_EXTRA[i]);
                } else {
                    let cp = 0x20 + rng.below(0x7F - 0x20) as u32;
                    out.push(char::from_u32(cp).unwrap_or(' '));
                }
            }
            Node::Group(alts) => emit_alternation(alts, rng, out),
        }
    }
}

/// Runs one property body for every generated case, reporting the inputs
/// of a failing case before propagating its panic.
pub mod runner {
    /// Executes `body` for `case` with `described` inputs; on panic, prints
    /// the inputs (there is no shrinking) and re-raises.
    pub fn run_case<F: FnOnce()>(case: u32, cases: u32, described: &str, body: F) {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
        if let Err(panic) = result {
            eprintln!(
                "proptest case {}/{cases} failed (no shrinking); inputs: {described}",
                case + 1,
            );
            std::panic::resume_unwind(panic);
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);
                    )+
                    let described = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(stringify!($arg));
                            s.push_str(" = ");
                            s.push_str(&format!("{:?}; ", $arg));
                        )+
                        s
                    };
                    $crate::runner::run_case(case, config.cases, &described, move || $body);
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` with proptest's name (failures report generated inputs via
/// the case wrapper).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` with proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` with proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted (`w => strategy`) or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! `prop::collection::…` paths, as re-exported by real proptest.
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Put(Vec<u8>),
        Del,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => prop::collection::vec(any::<u8>(), 0..8).prop_map(Op::Put),
            1 => Just(Op::Del),
        ]
    }

    #[test]
    fn regex_subset_shapes() {
        let mut rng = TestRng::for_test("regex_subset_shapes");
        for _ in 0..200 {
            let s =
                crate::string::generate_matching("[a-z0-9]{1,8}( [a-z0-9]{1,8}){0,3}", &mut rng);
            let words: Vec<&str> = s.split(' ').collect();
            assert!((1..=4).contains(&words.len()), "{s:?}");
            for w in words {
                assert!((1..=8).contains(&w.len()), "{s:?}");
                assert!(w
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit()));
            }
            let p = crate::string::generate_matching("\\PC{0,32}", &mut rng);
            assert!(p.chars().count() <= 32);
            assert!(p.chars().all(|c| !c.is_control()), "{p:?}");
        }
    }

    #[test]
    fn oneof_weights_respected() {
        let mut rng = TestRng::for_test("oneof_weights_respected");
        let strat = op();
        let dels = (0..1000)
            .filter(|_| matches!(strat.generate(&mut rng), Op::Del))
            .count();
        // Expect ~250 of 1000.
        assert!((150..350).contains(&dels), "got {dels} Dels");
    }

    #[test]
    fn collection_sizes_respected() {
        let mut rng = TestRng::for_test("collection_sizes_respected");
        let v = prop::collection::vec(any::<u8>(), 3);
        for _ in 0..50 {
            assert_eq!(v.generate(&mut rng).len(), 3);
        }
        let s = prop::collection::btree_set(0u64..1000, 0..20);
        for _ in 0..50 {
            assert!(s.generate(&mut rng).len() < 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_pipeline_works(a in 0usize..10, b in "[a-z]{2,4}", c in any::<u32>()) {
            prop_assert!(a < 10);
            prop_assert!((2..=4).contains(&b.len()));
            prop_assert_eq!(c, c);
            prop_assert_ne!(b.len(), 0);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config_defaults(x in 0u64..5) {
            prop_assert!(x < 5);
        }
    }
}
