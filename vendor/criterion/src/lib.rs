//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Exposes the macro and builder surface the `fm-bench` targets use
//! (`criterion_group!`, `criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `black_box`) but
//! performs a simple timed run instead of criterion's statistical
//! analysis: each benchmark body is warmed up once and then iterated for a
//! short, fixed wall-clock window, reporting mean time per iteration.
//! That keeps `cargo bench` usable for coarse comparisons while adding no
//! dependencies.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// work; forwards to [`std::hint::black_box`].
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for a parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a single parameter, e.g. `group/3`.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter, e.g. `group/name/3`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> BenchmarkId {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> BenchmarkId {
        BenchmarkId { id }
    }
}

/// Drives one benchmark body (the `|b| b.iter(...)` callback target).
pub struct Bencher {
    /// Mean wall-clock time per iteration, filled in by [`Bencher::iter`].
    elapsed_per_iter: Duration,
    measure: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly for a fixed measurement window and
    /// records the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, also the only run in test mode
        if self.measure.is_zero() {
            self.elapsed_per_iter = Duration::ZERO;
            return;
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measure {
            black_box(routine());
            iters += 1;
        }
        self.elapsed_per_iter = start.elapsed() / iters.max(1) as u32;
    }
}

fn run_one(label: &str, measure: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        elapsed_per_iter: Duration::ZERO,
        measure,
    };
    f(&mut b);
    if !measure.is_zero() {
        println!("bench: {label:<50} {:>12.3?}/iter", b.elapsed_per_iter);
    }
}

/// In `cargo test` runs (harness-less bench targets are executed with no
/// arguments by `cargo test`), `--test` appears or stdout is a pipe; keep
/// the run cheap by only doing the single warm-up call. A real `cargo
/// bench` invocation passes `--bench`.
fn measurement_window() -> Duration {
    if std::env::args().any(|a| a == "--bench") {
        Duration::from_millis(300)
    } else {
        Duration::ZERO
    }
}

/// Top-level benchmark driver, one per `criterion_group!`.
pub struct Criterion {
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measure: measurement_window(),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measure: self.measure,
            _criterion: self,
        }
    }

    /// Registers and runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Criterion {
        run_one(id, self.measure, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    measure: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the single-shot runner has no
    /// sample count to configure.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        if !self.measure.is_zero() {
            self.measure = time;
        }
        self
    }

    /// Registers and runs a benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.measure, &mut f);
        self
    }

    /// Registers and runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, In, F>(&mut self, id: I, input: &In, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &In),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.measure, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function running each listed benchmark with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_compiles_and_runs() {
        let mut c = Criterion {
            measure: Duration::ZERO,
        };
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(10);
        group.bench_function("plain", |b| b.iter(|| black_box(2 * 2)));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.finish();
    }
}
