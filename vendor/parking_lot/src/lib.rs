//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of `parking_lot` it actually uses: [`Mutex`] and
//! [`RwLock`] whose guards deref directly (no `Result`, no poisoning —
//! a poisoned std lock is transparently recovered, matching parking_lot's
//! semantics of simply continuing after a panicking holder).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock with the `parking_lot` API shape.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts to acquire the lock without blocking; `None` if held.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard(guard)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed —
    /// the `&mut self` receiver proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock with the `parking_lot` API shape.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Returns a mutable reference to the inner value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }
}
