//! Offline stand-in for the `rand` crate (0.8 API shape).
//!
//! Implements the surface `fm-datagen` uses: `StdRng::seed_from_u64`,
//! `Rng::{gen, gen_bool, gen_range}` over integer and float ranges. The
//! generator is xoshiro256++ seeded via SplitMix64 — not the ChaCha12
//! stream the real `StdRng` uses, so seeded sequences differ from upstream
//! `rand`, but determinism (same seed → same stream) holds, which is the
//! only property the workspace relies on.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the full value domain (the subset of
/// `rand`'s `Standard` distribution this workspace needs).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws a uniform value; panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::sample(rng) * (end - start)
    }
}

/// Uniform draw from `[0, span)` (`span == 0` means the full u64 domain),
/// debiased by rejection sampling.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from its full domain (`let x: f64 = rng.gen();`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        f64::sample(self) < p
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4, "streams should diverge");
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let a = rng.gen_range(0..26u8);
            assert!(a < 26);
            let b = rng.gen_range(1..=5usize);
            assert!((1..=5).contains(&b));
            let c = rng.gen_range(0.0..3.5f64);
            assert!((0.0..3.5).contains(&c));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn integer_ranges_cover_domain() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4u8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
