//! Query explanation: a structured trace of what the matcher saw and why
//! it ranked candidates the way it did.
//!
//! `EXPLAIN` for fuzzy lookups — when a match looks wrong, the first three
//! questions are always: what weights did the input tokens get, which ETI
//! rows did the signature probe (and how long were their tid-lists), and
//! how did min-hash scores compare to the exact `fms` of the top
//! candidates. [`FuzzyMatcher::explain`] answers all three without touching
//! the production query paths.

use crate::error::Result;
use crate::eti::token_signature;
use crate::matcher::FuzzyMatcher;
use crate::query::score_bound;
use crate::record::Record;
use crate::sim::Similarity;
use crate::weights::WeightProvider;

/// One input token and its index signature.
#[derive(Debug, Clone)]
pub struct TokenExplain {
    pub column: usize,
    pub token: String,
    /// IDF weight × column factor.
    pub weight: f64,
    /// `freq(t, i)` in the reference relation (0 = unseen).
    pub frequency: u32,
    /// `(coordinate, gram, gram weight)` of each signature entry.
    pub signature: Vec<(u8, String, f64)>,
}

/// One ETI probe.
#[derive(Debug, Clone)]
pub struct GramExplain {
    pub column: usize,
    pub coordinate: u8,
    pub gram: String,
    pub weight: f64,
    /// Tid-list length; `None` when the row is absent.
    pub list_len: Option<usize>,
    /// The row is a stop q-gram (NULL tid-list).
    pub stop: bool,
}

/// One scored candidate, fms-verified.
#[derive(Debug, Clone)]
pub struct CandidateExplain {
    pub tid: u32,
    /// Accumulated min-hash score (absolute, out of `wu`).
    pub score: f64,
    /// The sound score→fms upper bound used by the early-stop logic.
    pub bound: f64,
    /// Exact similarity.
    pub fms: f64,
    pub record: Record,
}

/// Full trace for one input tuple.
#[derive(Debug, Clone)]
pub struct Explain {
    pub tokens: Vec<TokenExplain>,
    /// `w(u)`.
    pub total_weight: f64,
    /// The full adjustment term `Σ w(t)(1 − 1/q)`.
    pub adjustment: f64,
    pub grams: Vec<GramExplain>,
    /// Top candidates by score (up to the requested limit), fms-verified,
    /// in score order.
    pub candidates: Vec<CandidateExplain>,
    /// Total distinct tids scored.
    pub distinct_tids: usize,
}

impl std::fmt::Display for Explain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "input tokens (w(u) = {:.3}):", self.total_weight)?;
        for t in &self.tokens {
            writeln!(
                f,
                "  col {} {:<24} weight {:>7.3}  freq {:>6}{}",
                t.column,
                t.token,
                t.weight,
                t.frequency,
                if t.frequency == 0 {
                    "  (unseen → column avg)"
                } else {
                    ""
                }
            )?;
        }
        writeln!(f, "eti probes:")?;
        for g in &self.grams {
            let outcome = match (g.stop, g.list_len) {
                (true, _) => "STOP q-gram".to_string(),
                (false, Some(n)) => format!("{n} tids"),
                (false, None) => "no row".to_string(),
            };
            writeln!(
                f,
                "  ({}, c{}, col{}){:width$} weight {:>6.3}  {}",
                g.gram,
                g.coordinate,
                g.column,
                "",
                g.weight,
                outcome,
                width = 18usize.saturating_sub(g.gram.len()),
            )?;
        }
        writeln!(
            f,
            "candidates ({} distinct tids scored, adjustment {:.3}):",
            self.distinct_tids, self.adjustment
        )?;
        for c in &self.candidates {
            writeln!(
                f,
                "  tid {:>8} score {:>7.3} bound {:>5.3} fms {:>6.4}  {}",
                c.tid, c.score, c.bound, c.fms, c.record
            )?;
        }
        Ok(())
    }
}

impl FuzzyMatcher {
    /// Trace a lookup: token weights, ETI probes, and the top
    /// `candidate_limit` candidates by score with their exact `fms`.
    ///
    /// Runs the basic algorithm's scoring phase without pruning or early
    /// stops, so the trace is complete; cost is comparable to one
    /// un-short-circuited lookup plus `candidate_limit` fms evaluations.
    pub fn explain(&self, input: &Record, candidate_limit: usize) -> Result<Explain> {
        let config = self.config();
        let tokens = input.tokenize(self.tokenizer());
        let weights = self.weights_snapshot();
        let minhasher = self.minhasher();

        let dq = 1.0 - 1.0 / config.q as f64;
        let mut token_explains = Vec::new();
        let mut gram_explains = Vec::new();
        let mut total_weight = 0.0;
        let mut scores: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        for (col, token) in tokens.iter_tokens() {
            let weight = config.column_factor(col) * weights.weight(col, token);
            total_weight += weight;
            let frequency = weights.frequencies().freq(col, token);
            let mut signature = Vec::new();
            for entry in token_signature(token, minhasher, config.scheme) {
                let gram_weight = weight * entry.share;
                signature.push((entry.coordinate, entry.gram.clone(), gram_weight));
                let list = self.eti_lookup(&entry.gram, entry.coordinate, col as u8)?;
                let (list_len, stop) = match &list {
                    None => (None, false),
                    Some(l) => match &l.tids {
                        None => (Some(l.frequency as usize), true),
                        Some(tids) => {
                            for &tid in tids {
                                *scores.entry(tid).or_insert(0.0) += gram_weight;
                            }
                            (Some(tids.len()), false)
                        }
                    },
                };
                gram_explains.push(GramExplain {
                    column: col,
                    coordinate: entry.coordinate,
                    gram: entry.gram,
                    weight: gram_weight,
                    list_len,
                    stop,
                });
            }
            token_explains.push(TokenExplain {
                column: col,
                token: token.to_string(),
                weight,
                frequency,
                signature,
            });
        }
        let adjustment = total_weight * dq;

        let mut ranked: Vec<(u32, f64)> = scores.iter().map(|(&t, &s)| (t, s)).collect();
        ranked.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let mut sim = Similarity::new(&*weights, config);
        let mut candidates = Vec::new();
        for &(tid, score) in ranked.iter().take(candidate_limit) {
            let record = self.fetch_reference(tid)?;
            let fms = sim.fms(&tokens, &record.tokenize(self.tokenizer()));
            candidates.push(CandidateExplain {
                tid,
                score,
                bound: if total_weight > 0.0 {
                    score_bound(score, total_weight, adjustment, config.q)
                } else {
                    0.0
                },
                fms,
                record,
            });
        }
        Ok(Explain {
            tokens: token_explains,
            total_weight,
            adjustment,
            grams: gram_explains,
            candidates,
            distinct_tids: scores.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use fm_store::Database;

    fn matcher() -> (Database, FuzzyMatcher) {
        let db = Database::in_memory().unwrap();
        let reference = vec![
            Record::new(&["Boeing Company", "Seattle", "WA", "98004"]),
            Record::new(&["Bon Corporation", "Seattle", "WA", "98014"]),
            Record::new(&["Companions", "Seattle", "WA", "98024"]),
        ];
        let config = Config::default().with_columns(&["name", "city", "state", "zip"]);
        let m = FuzzyMatcher::build(&db, "org", reference.into_iter(), config).unwrap();
        (db, m)
    }

    #[test]
    fn explain_covers_all_tokens_and_probes() {
        let (_db, m) = matcher();
        let input = Record::new(&["Beoing Company", "Seattle", "WA", "98004"]);
        let ex = m.explain(&input, 5).unwrap();
        assert_eq!(ex.tokens.len(), 5);
        // 'beoing' is unseen.
        let beoing = ex.tokens.iter().find(|t| t.token == "beoing").unwrap();
        assert_eq!(beoing.frequency, 0);
        // 'seattle' is in every tuple → weight 0.
        let seattle = ex.tokens.iter().find(|t| t.token == "seattle").unwrap();
        assert_eq!(seattle.frequency, 3);
        assert!(seattle.weight.abs() < 1e-12);
        // Every signature entry produced a probe record.
        let expected_probes: usize = ex.tokens.iter().map(|t| t.signature.len()).sum();
        assert_eq!(ex.grams.len(), expected_probes);
        // w(u) matches the token sum.
        let sum: f64 = ex.tokens.iter().map(|t| t.weight).sum();
        assert!((ex.total_weight - sum).abs() < 1e-9);
    }

    #[test]
    fn explain_ranks_the_target_first() {
        let (_db, m) = matcher();
        let input = Record::new(&["Beoing Company", "Seattle", "WA", "98004"]);
        let ex = m.explain(&input, 3).unwrap();
        assert!(!ex.candidates.is_empty());
        let top = &ex.candidates[0];
        assert_eq!(top.tid, 1);
        assert!(top.fms > 0.8);
        assert!(top.bound >= top.fms - 1e-9, "bound must dominate fms");
        // Scores are in non-increasing order.
        for w in ex.candidates.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        assert!(ex.distinct_tids >= ex.candidates.len());
    }

    #[test]
    fn explain_display_renders() {
        let (_db, m) = matcher();
        let input = Record::new(&["Beoing Co", "Seattle", "WA", "98004"]);
        let text = m.explain(&input, 2).unwrap().to_string();
        assert!(text.contains("input tokens"));
        assert!(text.contains("eti probes"));
        assert!(text.contains("candidates"));
        assert!(text.contains("beoing"));
    }

    #[test]
    fn explain_empty_input() {
        let (_db, m) = matcher();
        let input = Record::from_options(vec![None, None, None, None]);
        let ex = m.explain(&input, 5).unwrap();
        assert!(ex.tokens.is_empty());
        assert!(ex.candidates.is_empty());
        assert_eq!(ex.total_weight, 0.0);
    }
}
