//! Baselines from the paper's evaluation.
//!
//! * [`NaiveMatcher`] — the naïve algorithm (§4): scan the whole reference
//!   relation computing `fms` per tuple. It defines the ground truth the
//!   indexed algorithms are compared against, and its per-tuple elapsed
//!   time is the denominator of the paper's *normalized elapsed time*
//!   metric (§6.1). The reference is pre-tokenized in memory, which makes
//!   the baseline *faster* than a fair disk-resident scan — i.e., our
//!   normalized numbers are conservative.
//! * [`EditDistanceMatcher`] — the edit-distance similarity baseline of
//!   §6.2.1.1: tuple-level `ed` (token sequences concatenated, character
//!   edit distance normalized by the longer string), scanned naïvely.

use crate::config::Config;
use crate::error::Result;
use crate::matcher::FuzzyMatcher;
use crate::query::ScoredMatch;
use crate::record::{Record, TokenizedRecord};
use crate::sim::Similarity;
use crate::weights::{TokenFrequencies, WeightTable};
use fm_text::{EditBuffer, Tokenizer};

/// Full-scan matcher under `fms`.
///
/// ```
/// use fm_core::naive::NaiveMatcher;
/// use fm_core::{Config, Record};
///
/// let reference = vec![
///     (1, Record::new(&["Boeing Company", "Seattle"])),
///     (2, Record::new(&["Bon Corporation", "Seattle"])),
/// ];
/// let config = Config::default().with_columns(&["name", "city"]);
/// let naive = NaiveMatcher::from_records(&reference, config);
/// let hits = naive.lookup(&Record::new(&["Beoing Company", "Seattle"]), 1, 0.0);
/// assert_eq!(hits[0].tid, 1);
/// ```
pub struct NaiveMatcher {
    config: Config,
    weights: WeightTable,
    reference: Vec<(u32, TokenizedRecord)>,
}

impl NaiveMatcher {
    /// Build directly from reference records (computes its own IDF
    /// weights — identical to the matcher's by construction).
    pub fn from_records(reference: &[(u32, Record)], config: Config) -> NaiveMatcher {
        let tokenizer = Tokenizer::new();
        let mut freqs = TokenFrequencies::new(config.arity());
        let tokenized: Vec<(u32, TokenizedRecord)> = reference
            .iter()
            .map(|(tid, r)| (*tid, r.tokenize(&tokenizer)))
            .collect();
        for (_, t) in &tokenized {
            freqs.observe(t);
        }
        NaiveMatcher {
            config,
            weights: WeightTable::new(freqs),
            reference: tokenized,
        }
    }

    /// Build by snapshotting an existing matcher's reference and weights,
    /// so both sides rank with the *same* similarity function.
    pub fn from_matcher(matcher: &FuzzyMatcher) -> Result<NaiveMatcher> {
        let tokenizer = Tokenizer::new();
        let reference = matcher
            .scan_reference()?
            .into_iter()
            .map(|(tid, r)| (tid, r.tokenize(&tokenizer)))
            .collect();
        Ok(NaiveMatcher {
            config: matcher.config().clone(),
            weights: matcher.clone_weights(),
            reference,
        })
    }

    /// Number of reference tuples.
    pub fn len(&self) -> usize {
        self.reference.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.reference.is_empty()
    }

    /// Exact K-fuzzy-match by full scan: the ground truth.
    pub fn lookup(&self, input: &Record, k: usize, c: f64) -> Vec<ScoredMatch> {
        if k == 0 {
            return Vec::new();
        }
        let tokens = input.tokenize(&Tokenizer::new());
        let mut sim = Similarity::new(&self.weights, &self.config);
        let mut top: Vec<ScoredMatch> = Vec::with_capacity(k + 1);
        for (tid, reference) in &self.reference {
            let similarity = sim.fms(&tokens, reference);
            if similarity >= c {
                crate::query::insert_match(
                    &mut top,
                    ScoredMatch {
                        tid: *tid,
                        similarity,
                    },
                    k,
                );
            }
        }
        top
    }
}

/// Full-scan matcher under tuple-level edit distance (§3.2 / §6.2.1.1).
pub struct EditDistanceMatcher {
    reference: Vec<(u32, String)>,
}

/// Flatten a record for tuple-level `ed`: tokens of all columns joined by
/// single spaces (NULL columns vanish), lowercased by tokenization — the
/// natural "tuple as one string" reading of the paper's `ed` baseline.
fn flatten(record: &Record, tokenizer: &Tokenizer) -> String {
    let mut parts: Vec<String> = Vec::new();
    for s in record.values().iter().flatten() {
        parts.extend(tokenizer.tokenize(s));
    }
    parts.join(" ")
}

impl EditDistanceMatcher {
    pub fn from_records(reference: &[(u32, Record)]) -> EditDistanceMatcher {
        let tokenizer = Tokenizer::new();
        EditDistanceMatcher {
            reference: reference
                .iter()
                .map(|(tid, r)| (*tid, flatten(r, &tokenizer)))
                .collect(),
        }
    }

    /// Similarity of one pair: `1 − ed(flat(u), flat(v))`.
    pub fn similarity(u: &Record, v: &Record) -> f64 {
        let tokenizer = Tokenizer::new();
        let fu = flatten(u, &tokenizer);
        let fv = flatten(v, &tokenizer);
        1.0 - EditBuffer::new().normalized(&fu, &fv)
    }

    /// K nearest under `1 − ed`, full scan.
    pub fn lookup(&self, input: &Record, k: usize, c: f64) -> Vec<ScoredMatch> {
        if k == 0 {
            return Vec::new();
        }
        let tokenizer = Tokenizer::new();
        let flat = flatten(input, &tokenizer);
        let mut edit = EditBuffer::new();
        let mut top: Vec<ScoredMatch> = Vec::with_capacity(k + 1);
        for (tid, reference) in &self.reference {
            let similarity = 1.0 - edit.normalized(&flat, reference);
            if similarity >= c {
                crate::query::insert_match(
                    &mut top,
                    ScoredMatch {
                        tid: *tid,
                        similarity,
                    },
                    k,
                );
            }
        }
        top
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1() -> Vec<(u32, Record)> {
        vec![
            (
                1,
                Record::new(&["Boeing Company", "Seattle", "WA", "98004"]),
            ),
            (
                2,
                Record::new(&["Bon Corporation", "Seattle", "WA", "98014"]),
            ),
            (3, Record::new(&["Companions", "Seattle", "WA", "98024"])),
        ]
    }

    fn config() -> Config {
        Config::default().with_columns(&["name", "city", "state", "zip"])
    }

    #[test]
    fn naive_finds_exact_match() {
        let m = NaiveMatcher::from_records(&table1(), config());
        let hits = m.lookup(
            &Record::new(&["Boeing Company", "Seattle", "WA", "98004"]),
            1,
            0.0,
        );
        assert_eq!(hits[0].tid, 1);
        assert!((hits[0].similarity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_section_1_ed_vs_fms_disagreement() {
        // The paper's motivating example: ed considers I3 = [Boeing
        // Corporation, …, 98004] closest to R2, while fms (with IDF
        // weights) picks the correct target R1.
        let refs = table1();
        let i3 = Record::new(&["Boeing Corporation", "Seattle", "WA", "98004"]);
        let ed = EditDistanceMatcher::from_records(&refs);
        let ed_hits = ed.lookup(&i3, 1, 0.0);
        assert_eq!(
            ed_hits[0].tid, 2,
            "ed should (wrongly) prefer Bon Corporation"
        );
        let fms = NaiveMatcher::from_records(&refs, config());
        let fms_hits = fms.lookup(&i3, 1, 0.0);
        assert_eq!(fms_hits[0].tid, 1, "fms should prefer Boeing Company");
    }

    #[test]
    fn ed_tuple_similarity_matches_hand_computation() {
        // flat(I1) = "beoing company seattle wa 98004"
        // flat(R1) = "boeing company seattle wa 98004" → 2 edits / 31 chars.
        let u = Record::new(&["Beoing Company", "Seattle", "WA", "98004"]);
        let v = Record::new(&["Boeing Company", "Seattle", "WA", "98004"]);
        let s = EditDistanceMatcher::similarity(&u, &v);
        assert!((s - (1.0 - 2.0 / 31.0)).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn k_and_threshold_respected() {
        let m = NaiveMatcher::from_records(&table1(), config());
        let input = Record::new(&["Company", "Seattle", "WA", "98004"]);
        assert!(m.lookup(&input, 2, 0.0).len() <= 2);
        assert!(m.lookup(&input, 3, 0.999).len() <= 1);
        assert!(m.lookup(&input, 0, 0.0).is_empty());
        // Ordering is by decreasing similarity.
        let hits = m.lookup(&input, 3, 0.0);
        for w in hits.windows(2) {
            assert!(w[0].similarity >= w[1].similarity);
        }
    }

    #[test]
    fn null_columns_flatten_away() {
        let u = Record::from_options(vec![Some("boeing".into()), None]);
        let v = Record::new(&["boeing", ""]);
        assert_eq!(EditDistanceMatcher::similarity(&u, &v), 1.0);
    }

    #[test]
    fn from_matcher_agrees_with_from_records() {
        use fm_store::Database;
        let db = Database::in_memory().unwrap();
        let matcher =
            FuzzyMatcher::build(&db, "org", table1().into_iter().map(|(_, r)| r), config())
                .unwrap();
        let via_matcher = NaiveMatcher::from_matcher(&matcher).unwrap();
        let direct = NaiveMatcher::from_records(&table1(), config());
        let input = Record::new(&["Beoing Co", "Seattle", "WA", "98004"]);
        let a = via_matcher.lookup(&input, 3, 0.0);
        let b = direct.lookup(&input, 3, 0.0);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tid, y.tid);
            assert!((x.similarity - y.similarity).abs() < 1e-12);
        }
        assert_eq!(via_matcher.len(), 3);
        assert!(!via_matcher.is_empty());
    }
}
