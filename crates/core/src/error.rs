//! Error type for the fuzzy-match layer.

use std::fmt;

use fm_store::StoreError;

/// Result alias for fuzzy-match operations.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors raised by the fuzzy-match layer.
#[derive(Debug)]
pub enum CoreError {
    /// Storage substrate failure.
    Store(StoreError),
    /// Invalid configuration (bad q, H, thresholds, column weights…).
    Config(String),
    /// The input tuple's arity does not match the reference schema.
    Arity { expected: usize, got: usize },
    /// Persisted matcher state is missing or unreadable.
    BadState(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Store(e) => write!(f, "storage error: {e}"),
            CoreError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::Arity { expected, got } => {
                write!(f, "input tuple has {got} columns, reference has {expected}")
            }
            CoreError::BadState(msg) => write!(f, "bad persisted state: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for CoreError {
    fn from(e: StoreError) -> Self {
        CoreError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = CoreError::Arity {
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains('2'));
        let e: CoreError = StoreError::NotFound("eti".into()).into();
        assert!(e.to_string().contains("eti"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&CoreError::Config("x".into())).is_none());
    }
}
