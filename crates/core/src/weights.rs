//! IDF token weights (paper §3, "Weight Function") and the token-frequency
//! cache (§4.4.1).
//!
//! Treating each tuple as a document of tokens, the weight of token `t` in
//! column `i` is `IDF(t, i) = log(|R| / freq(t, i))` where `freq(t, i)`
//! counts reference tuples whose `i`-th column contains `t`. A token never
//! seen in column `i` is presumed to be an erroneous version of *some*
//! reference token, so it gets the **average** weight of column `i`'s
//! tokens.
//!
//! Three cache representations mirror §4.4.1:
//!
//! * [`WeightTable`] — the plain in-memory map (the paper's default
//!   assumption: ~18 MB for 1.7 M tuples);
//! * [`HashedWeightTable`] — "cache without collisions": tokens replaced by
//!   a wide hash (the paper suggests MD5's 16 bytes; we store 64 bits, a
//!   ~10⁻⁸ collision probability at the paper's 367 500 distinct tokens);
//! * [`BoundedWeightTable`] — "cache with collisions": a fixed number of
//!   buckets, colliding tokens collapse and their weights go wrong — kept
//!   for the accuracy-vs-memory ablation.

use std::collections::HashMap;

use fm_text::hash::hash_str;

use crate::error::{CoreError, Result};
use crate::record::TokenizedRecord;

/// Raw per-column token frequencies, accumulated during the reference scan.
#[derive(Debug, Clone)]
pub struct TokenFrequencies {
    per_column: Vec<HashMap<String, u32>>,
    relation_size: u64,
}

impl TokenFrequencies {
    pub fn new(arity: usize) -> TokenFrequencies {
        TokenFrequencies {
            per_column: (0..arity).map(|_| HashMap::new()).collect(),
            relation_size: 0,
        }
    }

    /// Record one reference tuple. Tokens are already set-deduplicated per
    /// column by tokenization, so each `(tuple, column, token)` counts once —
    /// the paper's `freq(t, i)` is a *tuple* count.
    pub fn observe(&mut self, tuple: &TokenizedRecord) {
        assert_eq!(tuple.arity(), self.per_column.len(), "arity mismatch");
        self.relation_size += 1;
        for (col, token) in tuple.iter_tokens() {
            *self.per_column[col].entry(token.to_string()).or_insert(0) += 1;
        }
    }

    /// Insert a raw `(col, token, freq)` observation (used when loading a
    /// persisted frequency index and by maintenance). A frequency of 0
    /// removes the token — `freq(t, i) = 0` *means* "not in the relation",
    /// and a zero entry would corrupt the column-average computation.
    pub fn set(&mut self, col: usize, token: &str, freq: u32) {
        if freq == 0 {
            self.per_column[col].remove(token);
        } else {
            self.per_column[col].insert(token.to_string(), freq);
        }
    }

    /// Set the relation size directly (used when loading persisted state).
    pub fn set_relation_size(&mut self, n: u64) {
        self.relation_size = n;
    }

    /// Bump the relation size (ETI maintenance: a new reference tuple).
    pub fn bump_relation_size(&mut self) {
        self.relation_size += 1;
    }

    /// `freq(t, i)`; 0 when the token never occurs in the column.
    pub fn freq(&self, col: usize, token: &str) -> u32 {
        self.per_column[col].get(token).copied().unwrap_or(0)
    }

    /// Number of reference tuples `|R|`.
    pub fn relation_size(&self) -> u64 {
        self.relation_size
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.per_column.len()
    }

    /// Iterate all `(col, token, freq)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str, u32)> + '_ {
        self.per_column
            .iter()
            .enumerate()
            .flat_map(|(col, map)| map.iter().map(move |(t, &f)| (col, t.as_str(), f)))
    }

    /// Distinct token count (across all columns; same string in different
    /// columns counts twice, as the paper does).
    pub fn distinct_tokens(&self) -> usize {
        self.per_column.iter().map(|m| m.len()).sum()
    }
}

/// Source of token weights for the similarity functions and the query
/// processor. Implementations differ only in how `freq` is stored.
pub trait WeightProvider: Send + Sync {
    /// `w(t, i)`: the IDF weight, or the column average for unseen tokens.
    fn weight(&self, col: usize, token: &str) -> f64;

    /// `|R|`.
    fn relation_size(&self) -> u64;
}

fn idf(relation_size: u64, freq: u32) -> f64 {
    debug_assert!(freq > 0);
    // Guard against freq > |R| (possible transiently during maintenance):
    // clamp to weight 0 rather than going negative.
    let ratio = relation_size as f64 / f64::from(freq);
    ratio.max(1.0).ln()
}

fn column_averages(freqs: &TokenFrequencies) -> Vec<f64> {
    freqs
        .per_column
        .iter()
        .map(|map| {
            if map.is_empty() {
                // A column with no tokens at all: fall back to a neutral
                // weight of 1 so unseen tokens still participate.
                return 1.0;
            }
            let sum: f64 = map.values().map(|&f| idf(freqs.relation_size, f)).sum();
            sum / map.len() as f64
        })
        .collect()
}

/// The exact in-memory weight table (paper's default).
///
/// The unseen-token column average is maintained as running sums
/// (`Σ ln freq` per column), so ETI maintenance updates cost O(1) per token
/// instead of a full recomputation over all distinct tokens — at the
/// paper's 367 500 distinct tokens that difference is what makes
/// [`crate::matcher::FuzzyMatcher::insert_reference`] usable online.
/// Mathematically `avg(ln(N/f)) = ln N − avg(ln f)` whenever `f ≤ N`; the
/// clamped-at-zero edge (transient `f > N` during maintenance) is handled
/// by clamping the whole average.
#[derive(Debug, Clone)]
pub struct WeightTable {
    freqs: TokenFrequencies,
    /// Per column: Σ ln(freq) over distinct tokens.
    sum_ln_freq: Vec<f64>,
}

impl WeightTable {
    pub fn new(freqs: TokenFrequencies) -> WeightTable {
        let sum_ln_freq = (0..freqs.arity())
            .map(|col| {
                freqs.per_column[col]
                    .values()
                    .map(|&f| f64::from(f).ln())
                    .sum()
            })
            .collect();
        WeightTable { freqs, sum_ln_freq }
    }

    /// The underlying frequencies.
    pub fn frequencies(&self) -> &TokenFrequencies {
        &self.freqs
    }

    /// Mutable access to the frequencies. Callers that change entries this
    /// way must call [`WeightTable::refresh`]; prefer
    /// [`WeightTable::update_freq`], which maintains the running sums
    /// incrementally.
    pub fn frequencies_mut(&mut self) -> &mut TokenFrequencies {
        &mut self.freqs
    }

    /// Change one token's frequency, keeping the column average current in
    /// O(1). A `new_freq` of 0 removes the token.
    pub fn update_freq(&mut self, col: usize, token: &str, new_freq: u32) {
        let old = self.freqs.freq(col, token);
        if old > 0 {
            self.sum_ln_freq[col] -= f64::from(old).ln();
        }
        if new_freq > 0 {
            self.sum_ln_freq[col] += f64::from(new_freq).ln();
        }
        self.freqs.set(col, token, new_freq);
    }

    /// Bump `|R|` (a new reference tuple). The averages need no recompute:
    /// they are derived from `|R|` lazily.
    pub fn bump_relation_size(&mut self) {
        self.freqs.bump_relation_size();
    }

    /// Lower `|R|` (a deleted reference tuple).
    pub fn decrement_relation_size(&mut self) {
        let n = self.freqs.relation_size().saturating_sub(1);
        self.freqs.set_relation_size(n);
    }

    /// Recompute the running sums from scratch (after direct
    /// [`WeightTable::frequencies_mut`] edits).
    pub fn refresh(&mut self) {
        self.sum_ln_freq = (0..self.freqs.arity())
            .map(|col| {
                self.freqs.per_column[col]
                    .values()
                    .map(|&f| f64::from(f).ln())
                    .sum()
            })
            .collect();
    }

    /// Validate the table's internal bookkeeping at a quiescent point:
    ///
    /// * no zero-frequency entries (a 0 *means* absent; a stored 0 would
    ///   corrupt the column averages);
    /// * no frequency above `|R|` (each `freq(t, i)` counts tuples, so it
    ///   cannot exceed the relation size outside a mid-maintenance instant);
    /// * the O(1)-maintained running sums `Σ ln freq` agree with a full
    ///   recomputation, so the unseen-token column averages equal the
    ///   paper's direct `avg(IDF)` definition.
    pub fn check_invariants(&self) -> Result<()> {
        if self.sum_ln_freq.len() != self.freqs.arity() {
            return Err(CoreError::BadState(format!(
                "weight table tracks {} running sums for {} columns",
                self.sum_ln_freq.len(),
                self.freqs.arity()
            )));
        }
        let n = self.freqs.relation_size();
        for (col, token, f) in self.freqs.iter() {
            if f == 0 {
                return Err(CoreError::BadState(format!(
                    "weight table stores zero frequency for {token:?} in \
                     column {col}; zero means absent and must be removed"
                )));
            }
            if u64::from(f) > n {
                return Err(CoreError::BadState(format!(
                    "weight table frequency {f} for {token:?} in column {col} \
                     exceeds relation size {n}"
                )));
            }
        }
        for col in 0..self.freqs.arity() {
            let recomputed: f64 = self.freqs.per_column[col]
                .values()
                .map(|&f| f64::from(f).ln())
                .sum();
            if (self.sum_ln_freq[col] - recomputed).abs() > 1e-6 {
                return Err(CoreError::BadState(format!(
                    "weight table running sum for column {col} is {} but the \
                     stored frequencies sum to {recomputed}; incremental \
                     maintenance drifted (call refresh() after direct edits)",
                    self.sum_ln_freq[col]
                )));
            }
        }
        Ok(())
    }

    /// Cross-check this table against independently observed frequencies
    /// (e.g. recounted from a scan of the reference relation): the IDF
    /// weights are consistent iff `|R|` and every `(column, token)`
    /// frequency agree exactly.
    pub fn check_consistent_with(&self, observed: &TokenFrequencies) -> Result<()> {
        if self.freqs.relation_size() != observed.relation_size() {
            return Err(CoreError::BadState(format!(
                "weight table thinks |R| = {} but the relation holds {} tuples",
                self.freqs.relation_size(),
                observed.relation_size()
            )));
        }
        if self.freqs.arity() != observed.arity() {
            return Err(CoreError::BadState(format!(
                "weight table has {} columns, observed frequencies {}",
                self.freqs.arity(),
                observed.arity()
            )));
        }
        for (col, token, f) in observed.iter() {
            let have = self.freqs.freq(col, token);
            if have != f {
                return Err(CoreError::BadState(format!(
                    "weight table frequency for {token:?} in column {col} is \
                     {have}, but the relation contains it in {f} tuples"
                )));
            }
        }
        if self.freqs.distinct_tokens() != observed.distinct_tokens() {
            return Err(CoreError::BadState(format!(
                "weight table tracks {} distinct tokens, the relation has {} \
                 (stale entries were not removed)",
                self.freqs.distinct_tokens(),
                observed.distinct_tokens()
            )));
        }
        Ok(())
    }

    /// Average IDF of column `col` (the unseen-token weight).
    pub fn column_average(&self, col: usize) -> f64 {
        let len = self.freqs.per_column[col].len();
        if len == 0 {
            // A column with no tokens at all: neutral weight 1 so unseen
            // tokens still participate.
            return 1.0;
        }
        let n = (self.freqs.relation_size.max(1)) as f64;
        (n.ln() - self.sum_ln_freq[col] / len as f64).max(0.0)
    }
}

impl WeightProvider for WeightTable {
    fn weight(&self, col: usize, token: &str) -> f64 {
        match self.freqs.freq(col, token) {
            0 => self.column_average(col),
            f => idf(self.freqs.relation_size, f),
        }
    }

    fn relation_size(&self) -> u64 {
        self.freqs.relation_size
    }
}

/// "Cache without collisions" (§4.4.1): token strings replaced by a wide
/// seeded hash. Cuts memory roughly in half for long tokens at a
/// negligible collision probability.
#[derive(Debug, Clone)]
pub struct HashedWeightTable {
    map: HashMap<(u8, u64), u32>,
    column_avg: Vec<f64>,
    relation_size: u64,
    seed: u64,
}

impl HashedWeightTable {
    pub fn new(freqs: &TokenFrequencies, seed: u64) -> HashedWeightTable {
        let column_avg = column_averages(freqs);
        let mut map = HashMap::with_capacity(freqs.distinct_tokens());
        for (col, token, f) in freqs.iter() {
            map.insert((col as u8, hash_str(seed, token)), f);
        }
        HashedWeightTable {
            map,
            column_avg,
            relation_size: freqs.relation_size,
            seed,
        }
    }
}

impl WeightProvider for HashedWeightTable {
    fn weight(&self, col: usize, token: &str) -> f64 {
        match self.map.get(&(col as u8, hash_str(self.seed, token))) {
            None => self.column_avg[col],
            Some(&f) => idf(self.relation_size, f),
        }
    }

    fn relation_size(&self) -> u64 {
        self.relation_size
    }
}

/// "Cache with collisions" (§4.4.1): at most `m` buckets per column;
/// colliding tokens collapse (their frequencies add), so weights can be
/// wrong. Exists to measure that accuracy cost.
#[derive(Debug, Clone)]
pub struct BoundedWeightTable {
    buckets: Vec<Vec<u32>>, // per column, m buckets of summed frequencies
    column_avg: Vec<f64>,
    relation_size: u64,
    seed: u64,
    m: usize,
}

impl BoundedWeightTable {
    pub fn new(freqs: &TokenFrequencies, m: usize, seed: u64) -> BoundedWeightTable {
        assert!(m > 0);
        let column_avg = column_averages(freqs);
        let mut buckets = vec![vec![0u32; m]; freqs.arity()];
        for (col, token, f) in freqs.iter() {
            let b = (hash_str(seed, token) % m as u64) as usize;
            buckets[col][b] = buckets[col][b].saturating_add(f);
        }
        BoundedWeightTable {
            buckets,
            column_avg,
            relation_size: freqs.relation_size,
            seed,
            m,
        }
    }

    /// Cross-check this bounded cache against the frequencies it was built
    /// from: every bucket must hold exactly the sum of its colliding tokens'
    /// frequencies, and the unseen-token averages must match the direct
    /// per-column `avg(IDF)` computation.
    pub fn check_consistent_with(&self, freqs: &TokenFrequencies) -> Result<()> {
        if self.relation_size != freqs.relation_size() {
            return Err(CoreError::BadState(format!(
                "bounded weight table thinks |R| = {} but the relation holds \
                 {} tuples",
                self.relation_size,
                freqs.relation_size()
            )));
        }
        if self.buckets.len() != freqs.arity() || self.column_avg.len() != freqs.arity() {
            return Err(CoreError::BadState(format!(
                "bounded weight table covers {} columns, observed frequencies \
                 {}",
                self.buckets.len(),
                freqs.arity()
            )));
        }
        let mut expected = vec![vec![0u32; self.m]; freqs.arity()];
        for (col, token, f) in freqs.iter() {
            let b = (hash_str(self.seed, token) % self.m as u64) as usize;
            expected[col][b] = expected[col][b].saturating_add(f);
        }
        if expected != self.buckets {
            for (col, (want, have)) in expected.iter().zip(&self.buckets).enumerate() {
                for (b, (w, h)) in want.iter().zip(have).enumerate() {
                    if w != h {
                        return Err(CoreError::BadState(format!(
                            "bounded weight table bucket {b} of column {col} \
                             holds {h}, expected {w} from the observed \
                             frequencies"
                        )));
                    }
                }
            }
        }
        let averages = column_averages(freqs);
        for (col, &want) in averages.iter().enumerate() {
            if (self.column_avg[col] - want).abs() > 1e-9 {
                return Err(CoreError::BadState(format!(
                    "bounded weight table unseen-token average for column \
                     {col} is {}, expected {want}",
                    self.column_avg[col]
                )));
            }
        }
        Ok(())
    }
}

impl WeightProvider for BoundedWeightTable {
    fn weight(&self, col: usize, token: &str) -> f64 {
        let b = (hash_str(self.seed, token) % self.m as u64) as usize;
        match self.buckets[col][b] {
            0 => self.column_avg[col],
            f => idf(self.relation_size, f),
        }
    }

    fn relation_size(&self) -> u64 {
        self.relation_size
    }
}

/// All tokens weigh 1.0 — the weight regime of the paper's worked examples
/// ("assuming unit weights on all tokens", §3.1). Useful in tests and when
/// demonstrating the similarity function in isolation.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnitWeights;

impl WeightProvider for UnitWeights {
    fn weight(&self, _col: usize, _token: &str) -> f64 {
        1.0
    }

    fn relation_size(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use fm_text::Tokenizer;

    fn observe_all(rows: &[&[&str]]) -> TokenFrequencies {
        let tokenizer = Tokenizer::new();
        let mut freqs = TokenFrequencies::new(rows[0].len());
        for row in rows {
            freqs.observe(&Record::new(row).tokenize(&tokenizer));
        }
        freqs
    }

    /// The paper's Table 1 reference relation.
    fn table1() -> TokenFrequencies {
        observe_all(&[
            &["Boeing Company", "Seattle", "WA", "98004"],
            &["Bon Corporation", "Seattle", "WA", "98014"],
            &["Companions", "Seattle", "WA", "98024"],
        ])
    }

    #[test]
    fn frequency_counts() {
        let f = table1();
        assert_eq!(f.relation_size(), 3);
        assert_eq!(f.freq(0, "boeing"), 1);
        assert_eq!(f.freq(1, "seattle"), 3);
        assert_eq!(f.freq(2, "wa"), 3);
        assert_eq!(f.freq(0, "seattle"), 0); // column property separates
        assert_eq!(f.freq(0, "unknown"), 0);
    }

    #[test]
    fn duplicate_tokens_in_one_tuple_count_once() {
        let f = observe_all(&[&["new new york", "x"]]);
        assert_eq!(f.freq(0, "new"), 1);
    }

    #[test]
    fn idf_ordering_frequent_tokens_weigh_less() {
        let w = WeightTable::new(table1());
        // 'seattle' appears in all 3 tuples → weight 0; 'boeing' in 1 →
        // ln 3 ≈ 1.0986.
        assert!((w.weight(1, "seattle") - 0.0).abs() < 1e-12);
        assert!((w.weight(0, "boeing") - 3.0f64.ln()).abs() < 1e-12);
        assert!(w.weight(0, "boeing") > w.weight(1, "seattle"));
    }

    #[test]
    fn unseen_token_gets_column_average() {
        let w = WeightTable::new(table1());
        // Column 0 tokens: boeing(1), company(1), bon(1), corporation(1),
        // companions(1) — all IDF ln(3). Average = ln 3.
        let avg = w.column_average(0);
        assert!((avg - 3.0f64.ln()).abs() < 1e-12);
        assert_eq!(w.weight(0, "beoing"), avg);
        // Zip column: each zip unique → avg = ln 3 too; state column: wa in
        // all → avg = 0.
        assert!((w.weight(2, "xx") - 0.0).abs() < 1e-12);
    }

    #[test]
    fn empty_column_average_is_neutral() {
        let tokenizer = Tokenizer::new();
        let mut f = TokenFrequencies::new(2);
        f.observe(&Record::from_options(vec![Some("a".into()), None]).tokenize(&tokenizer));
        let w = WeightTable::new(f);
        assert_eq!(w.weight(1, "anything"), 1.0);
    }

    #[test]
    fn weight_is_never_negative() {
        // freq > |R| can only happen transiently; clamp keeps weights >= 0.
        let mut f = TokenFrequencies::new(1);
        f.set(0, "t", 5);
        f.set_relation_size(3);
        let w = WeightTable::new(f);
        assert!(w.weight(0, "t") >= 0.0);
    }

    #[test]
    fn setting_zero_frequency_removes_the_token() {
        let mut f = table1();
        f.set(0, "boeing", 0);
        assert_eq!(f.freq(0, "boeing"), 0);
        // The averages stay well-defined (no zero-frequency entries).
        let w = WeightTable::new(f);
        assert!(w.column_average(0).is_finite());
        // 'boeing' now weighs like any unseen token.
        assert_eq!(w.weight(0, "boeing"), w.column_average(0));
    }

    #[test]
    fn refresh_after_mutation() {
        let mut w = WeightTable::new(table1());
        let before = w.weight(0, "unseen-token");
        // Add many occurrences of a frequent token; average drops.
        w.frequencies_mut().set(0, "company", 3);
        w.refresh();
        let after = w.weight(0, "unseen-token");
        assert!(after < before);
    }

    #[test]
    fn incremental_updates_match_full_recomputation() {
        let mut w = WeightTable::new(table1());
        // Apply a pile of maintenance-style changes incrementally.
        let changes: &[(usize, &str, u32)] = &[
            (0, "boeing", 3),
            (0, "newtoken", 2),
            (0, "company", 0), // removal
            (1, "seattle", 7),
            (3, "98004", 2),
            (0, "newtoken", 5), // re-update
        ];
        for &(col, token, f) in changes {
            w.update_freq(col, token, f);
        }
        w.bump_relation_size();
        w.bump_relation_size();
        w.decrement_relation_size();
        // A table built fresh from the same final frequencies must agree.
        let rebuilt = WeightTable::new(w.frequencies().clone());
        for col in 0..4 {
            assert!(
                (w.column_average(col) - rebuilt.column_average(col)).abs() < 1e-9,
                "column {col}: {} vs {}",
                w.column_average(col),
                rebuilt.column_average(col)
            );
        }
        for (col, token) in [
            (0usize, "boeing"),
            (0, "newtoken"),
            (0, "unseen"),
            (1, "seattle"),
        ] {
            assert!((w.weight(col, token) - rebuilt.weight(col, token)).abs() < 1e-9);
        }
    }

    #[test]
    fn refresh_restores_sums_after_direct_mutation() {
        let mut w = WeightTable::new(table1());
        w.frequencies_mut().set(0, "boeing", 2);
        w.refresh();
        let rebuilt = WeightTable::new(w.frequencies().clone());
        assert!((w.column_average(0) - rebuilt.column_average(0)).abs() < 1e-12);
    }

    #[test]
    fn hashed_table_agrees_with_exact() {
        let freqs = table1();
        let exact = WeightTable::new(freqs.clone());
        let hashed = HashedWeightTable::new(&freqs, 42);
        for (col, token) in [
            (0usize, "boeing"),
            (0, "corporation"),
            (1, "seattle"),
            (2, "wa"),
            (3, "98004"),
            (0, "unseen"),
        ] {
            assert!(
                (exact.weight(col, token) - hashed.weight(col, token)).abs() < 1e-12,
                "mismatch for {token}"
            );
        }
        assert_eq!(exact.relation_size(), hashed.relation_size());
    }

    #[test]
    fn bounded_table_with_ample_buckets_agrees() {
        let freqs = table1();
        let exact = WeightTable::new(freqs.clone());
        let bounded = BoundedWeightTable::new(&freqs, 1 << 16, 42);
        for (col, token) in [(0usize, "boeing"), (1, "seattle"), (3, "98014")] {
            assert!((exact.weight(col, token) - bounded.weight(col, token)).abs() < 1e-12);
        }
    }

    #[test]
    fn bounded_table_with_one_bucket_collapses_everything() {
        let freqs = table1();
        let bounded = BoundedWeightTable::new(&freqs, 1, 42);
        // All 5 name tokens collapse into one bucket of total frequency 5 >
        // |R| = 3 → clamped weight 0.
        assert_eq!(bounded.weight(0, "boeing"), 0.0);
    }

    #[test]
    fn check_invariants_accepts_maintained_table() {
        let mut w = WeightTable::new(table1());
        w.check_invariants().unwrap();
        // Incremental maintenance keeps it valid.
        w.bump_relation_size();
        w.update_freq(0, "boeing", 2);
        w.update_freq(0, "newtoken", 1);
        w.update_freq(0, "company", 0);
        w.check_invariants().unwrap();
        let snapshot = w.frequencies().clone();
        w.check_consistent_with(&snapshot).unwrap();
    }

    #[test]
    fn check_invariants_detects_drifted_running_sum() {
        let mut w = WeightTable::new(table1());
        // Direct edit without refresh(): the running sums go stale.
        w.frequencies_mut().set(0, "boeing", 3);
        let err = w.check_invariants().unwrap_err().to_string();
        assert!(
            err.contains("running sum") && err.contains("refresh"),
            "got: {err}"
        );
        w.refresh();
        w.check_invariants().unwrap();
    }

    #[test]
    fn check_invariants_detects_zero_frequency_entry() {
        let mut w = WeightTable::new(table1());
        w.freqs.per_column[0].insert("ghost".into(), 0);
        let err = w.check_invariants().unwrap_err().to_string();
        assert!(err.contains("ghost") && err.contains("zero"), "got: {err}");
    }

    #[test]
    fn check_invariants_detects_overcounted_frequency() {
        let mut w = WeightTable::new(table1());
        w.update_freq(1, "seattle", 99); // |R| is only 3
        let err = w.check_invariants().unwrap_err().to_string();
        assert!(err.contains("exceeds relation size"), "got: {err}");
    }

    #[test]
    fn check_consistent_with_detects_divergence() {
        let w = WeightTable::new(table1());
        let mut observed = table1();
        observed.set(0, "boeing", 2);
        let err = w.check_consistent_with(&observed).unwrap_err().to_string();
        assert!(err.contains("boeing"), "got: {err}");
        // A token the table tracks but the relation lost.
        let mut observed = table1();
        observed.set(0, "companions", 0);
        let err = w.check_consistent_with(&observed).unwrap_err().to_string();
        assert!(err.contains("distinct"), "got: {err}");
    }

    #[test]
    fn bounded_check_detects_tampered_bucket() {
        let freqs = table1();
        let mut bounded = BoundedWeightTable::new(&freqs, 64, 42);
        bounded.check_consistent_with(&freqs).unwrap();
        let tampered = bounded.buckets[0].iter().position(|&f| f > 0).unwrap();
        bounded.buckets[0][tampered] += 1;
        let err = bounded
            .check_consistent_with(&freqs)
            .unwrap_err()
            .to_string();
        assert!(err.contains("bucket"), "got: {err}");
    }

    #[test]
    fn iter_and_distinct_counts() {
        let f = table1();
        // name: boeing, company, bon, corporation, companions = 5
        // city: seattle = 1; state: wa = 1; zip: 3 → total 10.
        assert_eq!(f.distinct_tokens(), 10);
        assert_eq!(f.iter().count(), 10);
        let total: u32 = f.iter().map(|(_, _, c)| c).sum();
        assert_eq!(total, 5 + 3 + 3 + 3);
    }
}
