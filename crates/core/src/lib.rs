//! # fm-core — robust and efficient fuzzy match
//!
//! Reproduction of *Chaudhuri, Ganjam, Ganti, Motwani, "Robust and Efficient
//! Fuzzy Match for Online Data Cleaning", SIGMOD 2003* — the system later
//! shipped as SQL Server Fuzzy Lookup.
//!
//! The pipeline:
//!
//! 1. a clean **reference relation** `R[tid, A1..An]` is loaded into the
//!    [`fm_store`] substrate and indexed on `tid` ([`matcher::FuzzyMatcher::build`]);
//! 2. the build pass derives IDF **token weights** ([`weights`]) and the
//!    **Error Tolerant Index** ([`eti`]) — a standard relation keyed by
//!    `[QGram, Coordinate, Column]` whose rows carry tid-lists of reference
//!    tuples sharing a min-hash coordinate;
//! 3. at query time an erroneous input tuple is matched against `R` by the
//!    probabilistic **query processor** ([`query`]): ETI lookups score
//!    candidate tids under the indexable upper-bound similarity `fms_apx`
//!    ([`sim::approx`]), the best candidates are fetched and verified under
//!    the exact **fuzzy match similarity** `fms` ([`sim::fms`]), optionally
//!    short-circuiting early (OSC, §4.3.2);
//! 4. the K closest reference tuples above the similarity threshold `c` are
//!    returned ([`matcher::MatchResult`]).
//!
//! Baselines from the paper's evaluation — the naïve full scan under `fms`
//! and tuple-level edit distance `ed` — live in [`naive`].
//!
//! ## Quick start
//!
//! ```
//! use fm_core::{Config, FuzzyMatcher, Record};
//! use fm_store::Database;
//!
//! let db = Database::in_memory().unwrap();
//! let config = Config::default().with_columns(&["name", "city", "state", "zip"]);
//! let reference = vec![
//!     Record::new(&["Boeing Company", "Seattle", "WA", "98004"]),
//!     Record::new(&["Bon Corporation", "Seattle", "WA", "98014"]),
//!     Record::new(&["Companions", "Seattle", "WA", "98024"]),
//! ];
//! let matcher = FuzzyMatcher::build(&db, "demo", reference.into_iter(), config).unwrap();
//!
//! // The paper's I1: a misspelled Boeing should match R1 (tid 1).
//! let input = Record::new(&["Beoing Company", "Seattle", "WA", "98004"]);
//! let result = matcher.lookup(&input, 1, 0.0).unwrap();
//! assert_eq!(result.matches[0].tid, 1);
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod error;
pub mod eti;
pub mod explain;
pub mod matcher;
pub mod metrics;
pub mod naive;
pub mod query;
pub mod record;
pub mod sim;
pub mod telemetry;
pub mod tracing;
pub mod weights;

pub use config::{Config, OscStopping, SignatureScheme, TranspositionCost};
pub use error::{CoreError, Result};
pub use eti::EtiCheck;
pub use explain::Explain;
pub use matcher::{FuzzyMatcher, Match, MatchResult, MatcherCheck};
pub use metrics::{LookupTrace, MetricsCheck, MetricsRegistry, MetricsSnapshot};
pub use query::{QueryMode, QueryStats};
pub use record::Record;
pub use telemetry::{PromText, TimeSeries, WindowSnapshot};
pub use tracing::{CompletedTrace, FlightRecorder, SpanRecord, TraceKind};
