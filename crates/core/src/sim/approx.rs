//! The indexable approximations `fms_apx` (paper §4.1) and `fms_t_apx`
//! (paper §5.1).
//!
//! `fms_apx` pares `fms` down until it can be served from an inverted
//! index: token order is ignored, every input token may match its *best*
//! reference token, and closeness between tokens is measured by min-hash
//! agreement over q-gram sets instead of edit distance:
//!
//! ```text
//! fms_apx(u, v) = 1/w(u) · Σ_i Σ_{t ∈ tok(u[i])}
//!                 w(t) · max_{r ∈ tok(v[i])} min(2/q · sim_mh(t, r) + d_q, 1)
//! ```
//!
//! with `d_q = 1 − 1/q`. Each relaxation only increases similarity, so
//! `E[fms_apx] ≥ fms` and `P(fms_apx ≤ (1−δ)·fms)` shrinks exponentially in
//! the signature size `H` (Lemma 4.1); the integration tests exercise both
//! statements statistically.
//!
//! The per-token clamp at 1.0 is implied by the paper's worked example
//! (`fms_apx(I4, R1) = 3.75/3.75` even though exact matches score
//! `2/q + d_q > 1` unclamped) — see DESIGN.md.
//!
//! `fms_t_apx` splits each token's importance 50/50 between exact token
//! identity and its min-hash signature; under uniform token error
//! probability it is a rank-preserving transformation of `fms_apx`
//! (Lemma 5.1), which is what lets the `Q+T` index gain speed without
//! losing accuracy.
//!
//! The query processor does not call these functions directly — it
//! reconstructs the same scores incrementally from ETI tid-lists — but they
//! define the semantics the ETI scores approximate and they anchor the
//! correctness tests.

use fm_text::minhash::MinHasher;

use crate::config::Config;
use crate::record::TokenizedRecord;
use crate::weights::WeightProvider;

/// `sim_mh` between two tokens given a hasher (short tokens degenerate to
/// exact equality via their single-coordinate signatures).
fn sim_mh(mh: &MinHasher, t: &str, r: &str) -> f64 {
    mh.similarity(t, r)
}

/// `fms_apx(u, v)` under the given weights, config (`q`), and min-hasher.
pub fn fms_apx<W: WeightProvider + ?Sized>(
    u: &TokenizedRecord,
    v: &TokenizedRecord,
    weights: &W,
    config: &Config,
    mh: &MinHasher,
) -> f64 {
    apx_impl(u, v, weights, config, |t, r| sim_mh(mh, t, r))
}

/// `fms_t_apx(u, v)`: like [`fms_apx`] but with
/// `sim'_mh(t, r) = ½(I[t = r] + sim_mh(t, r))` (paper §5.1).
pub fn fms_t_apx<W: WeightProvider + ?Sized>(
    u: &TokenizedRecord,
    v: &TokenizedRecord,
    weights: &W,
    config: &Config,
    mh: &MinHasher,
) -> f64 {
    apx_impl(u, v, weights, config, |t, r| {
        0.5 * (f64::from(u8::from(t == r)) + sim_mh(mh, t, r))
    })
}

fn apx_impl<W: WeightProvider + ?Sized>(
    u: &TokenizedRecord,
    v: &TokenizedRecord,
    weights: &W,
    config: &Config,
    token_sim: impl Fn(&str, &str) -> f64,
) -> f64 {
    assert_eq!(u.arity(), v.arity(), "tuples must share a schema");
    let dq = 1.0 - 1.0 / config.q as f64;
    let mut wu = 0.0;
    let mut score = 0.0;
    for col in 0..u.arity() {
        let factor = config.column_factor(col);
        for t in u.column(col) {
            let w = factor * weights.weight(col, t);
            wu += w;
            let best = v
                .column(col)
                .iter()
                .map(|r| (2.0 / config.q as f64) * token_sim(t, r) + dq)
                .fold(0.0f64, f64::max);
            score += w * best.min(1.0);
        }
    }
    if wu == 0.0 {
        return if v.token_count() == 0 { 1.0 } else { 0.0 };
    }
    score / wu
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::sim::Similarity;
    use crate::weights::UnitWeights;
    use fm_text::Tokenizer;

    fn tok(values: &[&str]) -> TokenizedRecord {
        Record::new(values).tokenize(&Tokenizer::new())
    }

    fn cfg(q: usize, h: usize) -> Config {
        Config::default()
            .with_columns(&["name", "city", "state", "zip"])
            .with_q(q)
            .with_signature(crate::config::SignatureScheme::QGrams, h)
    }

    #[test]
    fn identical_tuples_score_one() {
        let c = cfg(3, 2);
        let mh = MinHasher::new(2, 3, 7);
        let v = tok(&["Boeing Company", "Seattle", "WA", "98004"]);
        assert!((fms_apx(&v, &v, &UnitWeights, &c, &mh) - 1.0).abs() < 1e-12);
        assert!((fms_t_apx(&v, &v, &UnitWeights, &c, &mh) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ignores_token_order() {
        // §4.1: [boeing company, …] and [company boeing, …] are identical
        // under fms_apx.
        let c = cfg(3, 2);
        let mh = MinHasher::new(2, 3, 7);
        let a = tok(&["boeing company", "seattle", "wa", "98004"]);
        let b = tok(&["company boeing", "seattle", "wa", "98004"]);
        let sab = fms_apx(&a, &b, &UnitWeights, &c, &mh);
        assert!((sab - 1.0).abs() < 1e-12);
    }

    #[test]
    fn upper_bounds_fms_on_paper_examples() {
        // fms_apx ≥ fms must hold decisively at large H for realistic pairs.
        let c = cfg(3, 64);
        let mh = MinHasher::new(64, 3, 11);
        let mut sim = Similarity::new(&UnitWeights, &c);
        let refs = [
            tok(&["Boeing Company", "Seattle", "WA", "98004"]),
            tok(&["Bon Corporation", "Seattle", "WA", "98014"]),
            tok(&["Companions", "Seattle", "WA", "98024"]),
        ];
        let inputs = [
            tok(&["Beoing Company", "Seattle", "WA", "98004"]),
            tok(&["Beoing Co", "Seattle", "WA", "98004"]),
            tok(&["Boeing Corporation", "Seattle", "WA", "98004"]),
            tok(&["Company Beoing", "Seattle", "WA", "98014"]),
        ];
        for u in &inputs {
            for v in &refs {
                let apx = fms_apx(u, v, &UnitWeights, &c, &mh);
                let exact = sim.fms(u, v);
                assert!(
                    apx >= exact - 0.05,
                    "fms_apx {apx} should upper-bound fms {exact} (H=64)"
                );
            }
        }
    }

    #[test]
    fn expectation_dominates_fms_statistically() {
        // Lemma 4.1(i): E[fms_apx] ≥ fms. Average over many seeds at H = 4.
        let c = cfg(3, 4);
        let mut sim = Similarity::new(&UnitWeights, &c);
        let u = tok(&["Beoing Corporation", "Seattle", "WA", "98004"]);
        let v = tok(&["Boeing Company", "Seattle", "WA", "98004"]);
        let exact = sim.fms(&u, &v);
        let n = 300;
        let mean: f64 = (0..n)
            .map(|seed| {
                let mh = MinHasher::new(4, 3, seed);
                fms_apx(&u, &v, &UnitWeights, &c, &mh)
            })
            .sum::<f64>()
            / n as f64;
        assert!(
            mean >= exact,
            "E[fms_apx] ≈ {mean} must dominate fms = {exact}"
        );
    }

    #[test]
    fn lemma_4_1_tail_bound_statistically() {
        // Lemma 4.1(ii) with δ = 0.2: at H = 2·δ⁻²·ln(1/ε), the fraction of
        // seeds where fms_apx ≤ (1−δ)·fms must be ≤ ε. Take ε = 0.1 → H ≥
        // 2·25·ln(10) ≈ 116; use H = 128.
        let c = cfg(3, 128);
        let mut sim = Similarity::new(&UnitWeights, &c);
        let u = tok(&["Beoing Co", "Seattle", "WA", "98004"]);
        let v = tok(&["Boeing Company", "Seattle", "WA", "98004"]);
        let exact = sim.fms(&u, &v);
        let n = 200;
        let bad = (0..n)
            .filter(|&seed| {
                let mh = MinHasher::new(128, 3, seed + 1000);
                fms_apx(&u, &v, &UnitWeights, &c, &mh) <= 0.8 * exact
            })
            .count();
        assert!(
            (bad as f64) / (n as f64) <= 0.1,
            "tail bound violated: {bad}/{n} seeds under (1-δ)·fms"
        );
    }

    #[test]
    fn per_token_contribution_clamped() {
        // One exactly-matching token must contribute exactly w(t), not
        // 2/q + d_q > 1 of it — the paper's I4/R1 example scores 3.75/3.75.
        let c = Config::default().with_columns(&["name"]).with_q(3);
        let mh = MinHasher::new(2, 3, 5);
        let u = tok(&["seattle"]);
        let v = tok(&["seattle"]);
        let s = fms_apx(&u, &v, &UnitWeights, &c, &mh);
        assert!((s - 1.0).abs() < 1e-12, "clamp failed: {s}");
    }

    #[test]
    fn empty_reference_column_contributes_zero() {
        let c = cfg(3, 2);
        let mh = MinHasher::new(2, 3, 5);
        let u = tok(&["boeing", "seattle", "wa", "98004"]);
        let v = Record::from_options(vec![
            None,
            Some("seattle".into()),
            Some("wa".into()),
            Some("98004".into()),
        ])
        .tokenize(&Tokenizer::new());
        let s = fms_apx(&u, &v, &UnitWeights, &c, &mh);
        // boeing has nothing to match: 3 of 4 unit-weight tokens match.
        assert!((s - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_input_edge_cases() {
        let c = cfg(3, 2);
        let mh = MinHasher::new(2, 3, 5);
        let empty = Record::from_options(vec![None, None, None, None]).tokenize(&Tokenizer::new());
        let v = tok(&["x", "y", "z", "w"]);
        assert_eq!(fms_apx(&empty, &empty, &UnitWeights, &c, &mh), 1.0);
        assert_eq!(fms_apx(&empty, &v, &UnitWeights, &c, &mh), 0.0);
    }

    #[test]
    fn t_apx_rank_preservation_spot_check() {
        // Lemma 5.1 in expectation: if E[fms_apx](u,v1) > E[fms_apx](u,v2)
        // then E[fms_t_apx](u,v1) > E[fms_t_apx](u,v2). Check empirically by
        // averaging both over seeds.
        let c = cfg(3, 3);
        let u = tok(&["beoing company", "seattle", "wa", "98004"]);
        let v1 = tok(&["boeing company", "seattle", "wa", "98004"]);
        let v2 = tok(&["bon corporation", "seattle", "wa", "98014"]);
        let n = 200;
        let avg = |f: &dyn Fn(&MinHasher) -> f64| -> f64 {
            (0..n).map(|s| f(&MinHasher::new(3, 3, s))).sum::<f64>() / n as f64
        };
        let apx1 = avg(&|mh| fms_apx(&u, &v1, &UnitWeights, &c, mh));
        let apx2 = avg(&|mh| fms_apx(&u, &v2, &UnitWeights, &c, mh));
        let t1 = avg(&|mh| fms_t_apx(&u, &v1, &UnitWeights, &c, mh));
        let t2 = avg(&|mh| fms_t_apx(&u, &v2, &UnitWeights, &c, mh));
        assert!(apx1 > apx2);
        assert!(t1 > t2, "t_apx must preserve the ranking: {t1} vs {t2}");
    }
}
