//! Similarity functions: the exact fuzzy match similarity `fms` (paper §3)
//! and its indexable approximations `fms_apx` / `fms_t_apx` (paper §4.1 and
//! §5.1).

pub mod approx;
pub mod fms;

pub use approx::{fms_apx, fms_t_apx};
pub use fms::Similarity;
