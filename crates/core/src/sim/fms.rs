//! The fuzzy match similarity function `fms` (paper §3.1).
//!
//! `fms(u, v) = 1 − min(tc(u, v) / w(u), 1)` where the transformation cost
//! `tc` is the minimum total cost of turning the input tuple `u` into the
//! reference tuple `v` column by column using:
//!
//! * **token replacement** `t1 → t2`: `ed(t1, t2) · w(t1, i)`;
//! * **token insertion** of `t` (present in `v`, absent in `u`):
//!   `c_ins · w(t, i)` — deliberately cheaper than deletion because data
//!   entry drops tokens more often than it invents them;
//! * **token deletion** of `t` (present in `u`, absent in `v`): `w(t, i)`;
//! * optionally (§5.3) **token transposition** of adjacent tokens at cost
//!   `g(w(t1), w(t2))`.
//!
//! Per column the minimum-cost operation sequence is the classic edit
//! dynamic program over *token sequences* (the paper cites the
//! Smith–Waterman/Wagner–Fischer recurrence), extended with the
//! transposition move exactly like Damerau's.
//!
//! `fms` is asymmetric by design: we only ever transform dirty inputs into
//! clean reference tuples.

use fm_text::EditBuffer;

use crate::config::Config;
use crate::record::TokenizedRecord;
use crate::weights::WeightProvider;

/// Computes `fms` and transformation costs. Holds scratch buffers, so one
/// instance per thread; construction is cheap.
pub struct Similarity<'a, W: WeightProvider + ?Sized> {
    weights: &'a W,
    config: &'a Config,
    edit: EditBuffer,
    dp: Vec<f64>,
}

impl<'a, W: WeightProvider + ?Sized> Similarity<'a, W> {
    pub fn new(weights: &'a W, config: &'a Config) -> Self {
        Similarity {
            weights,
            config,
            edit: EditBuffer::new(),
            dp: Vec::new(),
        }
    }

    /// Effective weight of `token` in `col`: IDF (or column average) times
    /// the §5.2 column factor.
    fn w(&self, col: usize, token: &str) -> f64 {
        self.config.column_factor(col) * self.weights.weight(col, token)
    }

    /// Total weight `w(u)` of the input tuple's token set.
    pub fn input_weight(&self, u: &TokenizedRecord) -> f64 {
        u.iter_tokens().map(|(col, t)| self.w(col, t)).sum()
    }

    /// Transformation cost `tc(u, v)`: sum of per-column minimum costs.
    pub fn transformation_cost(&mut self, u: &TokenizedRecord, v: &TokenizedRecord) -> f64 {
        assert_eq!(u.arity(), v.arity(), "tuples must share a schema");
        (0..u.arity())
            .map(|col| self.column_cost(col, u.column(col), v.column(col)))
            .sum()
    }

    /// `fms(u, v) = 1 − min(tc(u, v)/w(u), 1)`.
    ///
    /// Degenerate inputs: a token-less `u` (all columns NULL/empty) has
    /// `w(u) = 0`; it matches a token-less `v` perfectly and anything else
    /// not at all.
    pub fn fms(&mut self, u: &TokenizedRecord, v: &TokenizedRecord) -> f64 {
        let wu = self.input_weight(u);
        if wu == 0.0 {
            return if v.token_count() == 0 { 1.0 } else { 0.0 };
        }
        let tc = self.transformation_cost(u, v);
        1.0 - (tc / wu).min(1.0)
    }

    /// Minimum transformation cost for one column: edit DP over token
    /// sequences `a` (input) → `b` (reference).
    fn column_cost(&mut self, col: usize, a: &[String], b: &[String]) -> f64 {
        let m = a.len();
        let n = b.len();
        // Pre-compute weights once per token.
        let wa: Vec<f64> = a.iter().map(|t| self.w(col, t)).collect();
        let wb: Vec<f64> = b.iter().map(|t| self.w(col, t)).collect();
        let cins = self.config.cins;
        let width = n + 1;
        self.dp.clear();
        self.dp.resize((m + 1) * width, 0.0);
        // dp[j * width + k] = cost of transforming a[..j] into b[..k].
        for j in 1..=m {
            self.dp[j * width] = self.dp[(j - 1) * width] + wa[j - 1];
        }
        for k in 1..=n {
            self.dp[k] = self.dp[k - 1] + cins * wb[k - 1];
        }
        for j in 1..=m {
            for k in 1..=n {
                let del = self.dp[(j - 1) * width + k] + wa[j - 1];
                let ins = self.dp[j * width + (k - 1)] + cins * wb[k - 1];
                let rep = self.dp[(j - 1) * width + (k - 1)]
                    + self.edit.normalized(&a[j - 1], &b[k - 1]) * wa[j - 1];
                let mut best = del.min(ins).min(rep);
                if let Some(g) = self.config.transposition {
                    if j >= 2 && k >= 2 && a[j - 1] == b[k - 2] && a[j - 2] == b[k - 1] {
                        let tr = self.dp[(j - 2) * width + (k - 2)] + g.cost(wa[j - 2], wa[j - 1]);
                        best = best.min(tr);
                    }
                }
                self.dp[j * width + k] = best;
            }
        }
        self.dp[m * width + n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TranspositionCost;
    use crate::record::Record;
    use crate::weights::{TokenFrequencies, UnitWeights, WeightTable};
    use fm_text::Tokenizer;

    fn config4() -> Config {
        Config::default().with_columns(&["name", "city", "state", "zip"])
    }

    fn tok(values: &[&str]) -> TokenizedRecord {
        Record::new(values).tokenize(&Tokenizer::new())
    }

    #[test]
    fn identical_tuples_have_similarity_one() {
        let cfg = config4();
        let mut sim = Similarity::new(&UnitWeights, &cfg);
        let v = tok(&["Boeing Company", "Seattle", "WA", "98004"]);
        assert_eq!(sim.fms(&v, &v), 1.0);
        assert_eq!(sim.transformation_cost(&v, &v), 0.0);
    }

    #[test]
    fn paper_worked_example_i3_r1() {
        // §3.1: u = [Beoing Corporation, Seattle, WA, 98004],
        //       v = [Boeing Company, Seattle, WA, 98004], unit weights.
        // tc = ed(beoing,boeing)·1 + ed(corporation,company)·1
        //    = 1/3 + 7/11 ≈ 0.97 ; w(u) = 5 ; fms ≈ 0.806.
        let cfg = config4();
        let mut sim = Similarity::new(&UnitWeights, &cfg);
        let u = tok(&["Beoing Corporation", "Seattle", "WA", "98004"]);
        let v = tok(&["Boeing Company", "Seattle", "WA", "98004"]);
        let tc = sim.transformation_cost(&u, &v);
        assert!((tc - (1.0 / 3.0 + 7.0 / 11.0)).abs() < 1e-9, "tc = {tc}");
        let f = sim.fms(&u, &v);
        assert!((f - (1.0 - tc / 5.0)).abs() < 1e-12);
        assert!((f - 0.8061).abs() < 1e-3);
    }

    #[test]
    fn replacement_uses_input_token_weight() {
        // Paper: replacing 'corp' with 'corporation' should be cheaper than
        // replacing 'corporal' with 'corporation' *when weights say so* —
        // with IDF weights a rare input token is expensive to change.
        let tokenizer = Tokenizer::new();
        let mut freqs = TokenFrequencies::new(1);
        for _ in 0..99 {
            freqs.observe(&Record::new(&["corporation"]).tokenize(&tokenizer));
        }
        freqs.observe(&Record::new(&["corporal"]).tokenize(&tokenizer));
        let weights = WeightTable::new(freqs);
        let cfg = Config::default().with_columns(&["name"]);
        let mut sim = Similarity::new(&weights, &cfg);
        // 'corporal' is rare (high weight): replacing it is expensive.
        let u_rare = tok(&["corporal"]);
        // 'corporation' is frequent (low weight): replacing it is cheap.
        let u_freq = tok(&["corporation"]);
        let v = tok(&["corporal corporation"]); // force a replacement + insert
        let _ = v;
        let v2 = tok(&["company"]);
        let cost_rare = sim.transformation_cost(&u_rare, &v2);
        let cost_freq = sim.transformation_cost(&u_freq, &v2);
        assert!(
            cost_rare > cost_freq,
            "replacing rare token should cost more: {cost_rare} vs {cost_freq}"
        );
    }

    #[test]
    fn insertion_cheaper_than_deletion() {
        // §3.1: absence of tokens is not penalized heavily (cins < 1).
        let cfg = Config::default().with_columns(&["name"]);
        let mut sim = Similarity::new(&UnitWeights, &cfg);
        let short = tok(&["boeing"]);
        let long = tok(&["boeing company"]);
        // u shorter than v → insertion of 'company' at cins = 0.5.
        let ins_cost = sim.transformation_cost(&short, &long);
        assert!((ins_cost - 0.5).abs() < 1e-12);
        // u longer than v → deletion of 'company' at full weight.
        let del_cost = sim.transformation_cost(&long, &short);
        assert!((del_cost - 1.0).abs() < 1e-12);
        assert!(ins_cost < del_cost);
    }

    #[test]
    fn null_input_column_costs_only_insertions() {
        let cfg = config4();
        let mut sim = Similarity::new(&UnitWeights, &cfg);
        let u = Record::from_options(vec![
            Some("Boeing Company".into()),
            Some("Seattle".into()),
            None, // missing state, like the paper's I4
            Some("98004".into()),
        ])
        .tokenize(&Tokenizer::new());
        let v = tok(&["Boeing Company", "Seattle", "WA", "98004"]);
        // Only cost: inserting 'wa' at 0.5.
        assert!((sim.transformation_cost(&u, &v) - 0.5).abs() < 1e-12);
        // w(u) = 4 tokens → fms = 1 - 0.5/4.
        assert!((sim.fms(&u, &v) - (1.0 - 0.5 / 4.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_input_edge_cases() {
        let cfg = Config::default().with_columns(&["name"]);
        let mut sim = Similarity::new(&UnitWeights, &cfg);
        let empty = Record::from_options(vec![None]).tokenize(&Tokenizer::new());
        let full = tok(&["boeing"]);
        assert_eq!(sim.fms(&empty, &empty), 1.0);
        assert_eq!(sim.fms(&empty, &full), 0.0);
        // Full input vs empty reference: everything deleted → fms 0.
        assert_eq!(sim.fms(&full, &empty), 0.0);
    }

    #[test]
    fn fms_is_bounded() {
        let cfg = config4();
        let mut sim = Similarity::new(&UnitWeights, &cfg);
        let pairs = [
            (
                tok(&["Company Beoing", "Seattle", "WA", "98014"]),
                tok(&["Bon Corporation", "Tacoma", "OR", "11111"]),
            ),
            (
                tok(&["a", "b", "c", "d"]),
                tok(&["wwww xxxx yyyy zzzz", "qqqq", "rrrr", "ssss"]),
            ),
        ];
        for (u, v) in pairs {
            let f = sim.fms(&u, &v);
            assert!((0.0..=1.0).contains(&f), "fms {f} out of bounds");
        }
    }

    #[test]
    fn transposition_reduces_cost_when_enabled() {
        let base_cfg = Config::default().with_columns(&["name"]);
        let tr_cfg = base_cfg
            .clone()
            .with_transposition(TranspositionCost::Constant(0.1));
        let u = tok(&["company boeing"]); // I4-style swapped tokens
        let v = tok(&["boeing company"]);
        let cost_without = Similarity::new(&UnitWeights, &base_cfg).transformation_cost(&u, &v);
        let cost_with = Similarity::new(&UnitWeights, &tr_cfg).transformation_cost(&u, &v);
        assert!(
            (cost_with - 0.1).abs() < 1e-12,
            "transposition cost applies"
        );
        assert!(cost_with < cost_without);
    }

    #[test]
    fn transposition_not_used_when_replacement_cheaper() {
        // A flat transposition cost higher than the replacement route must
        // not be chosen.
        let cfg = Config::default()
            .with_columns(&["name"])
            .with_transposition(TranspositionCost::Constant(10.0));
        let mut sim = Similarity::new(&UnitWeights, &cfg);
        let u = tok(&["ab ba"]);
        let v = tok(&["ba ab"]);
        let cost = sim.transformation_cost(&u, &v);
        assert!(cost < 10.0);
    }

    #[test]
    fn column_weights_scale_contributions() {
        let plain = config4();
        let weighted = config4().with_column_weights(&[4.0, 1.0, 1.0, 1.0]);
        let u = tok(&["Beoing", "Seattle", "WA", "98004"]);
        let v = tok(&["Boeing", "Seattle", "WA", "98004"]);
        let f_plain = Similarity::new(&UnitWeights, &plain).fms(&u, &v);
        let f_weighted = Similarity::new(&UnitWeights, &weighted).fms(&u, &v);
        // The error is in the name column; up-weighting it lowers fms.
        assert!(f_weighted < f_plain);

        // Error in a *down*-weighted column raises fms.
        let u2 = tok(&["Boeing", "Seatle", "WA", "98004"]);
        let f2_plain = Similarity::new(&UnitWeights, &plain).fms(&u2, &v);
        let f2_weighted = Similarity::new(&UnitWeights, &weighted).fms(&u2, &v);
        assert!(f2_weighted > f2_plain);
    }

    #[test]
    fn order_preserving_replacements_found_by_dp() {
        // Multi-token alignment: (beoing→boeing)(co→company) beats deleting
        // and reinserting.
        let cfg = Config::default().with_columns(&["name"]);
        let mut sim = Similarity::new(&UnitWeights, &cfg);
        let u = tok(&["beoing co"]);
        let v = tok(&["boeing company"]);
        let tc = sim.transformation_cost(&u, &v);
        let expect = 1.0 / 3.0 + fm_text::normalized_edit_distance("co", "company");
        assert!((tc - expect).abs() < 1e-9, "tc {tc} vs expected {expect}");
    }

    #[test]
    fn asymmetry_of_fms() {
        let cfg = Config::default().with_columns(&["name"]);
        let mut sim = Similarity::new(&UnitWeights, &cfg);
        let a = tok(&["boeing"]);
        let b = tok(&["boeing company corporation"]);
        // Insertions (a→b) are cheap; deletions (b→a) are expensive, and
        // the normalizer w(u) also differs.
        assert!(sim.fms(&a, &b) != sim.fms(&b, &a));
    }
}
