//! ETI construction (paper §4.2).
//!
//! The paper builds the ETI through a temporary **pre-ETI** relation with
//! schema `[QGram, Coordinate, Column, Tid]` — one row per signature
//! coordinate of every token of every reference tuple — because "the
//! combined size of all tid-lists is usually larger than the amount of
//! available main memory". The pre-ETI is then sorted ("the ETI-query …
//! ORDER BY QGram, Coordinate, Column, Tid") and the sorted stream is
//! grouped into ETI rows.
//!
//! Here the pre-ETI rows are pushed straight into an
//! [`fm_store::ExternalSorter`] (row bytes = order-preserving key encoding
//! of `(gram, coordinate, column)` followed by the big-endian tid, so
//! lexicographic record order *is* the ETI-query's ORDER BY), and
//! [`EtiBuilder::finish`] streams the merge output into the ETI B+-tree one
//! group at a time.

use fm_store::keycode;
use fm_store::{ExternalSorter, StoreError};
use fm_text::minhash::MinHasher;

use crate::config::SignatureScheme;
use crate::error::Result;
use crate::eti::{token_signature, Eti};
use crate::record::TokenizedRecord;

/// Build-phase counters (reported by the Figure-7 experiment harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Reference tuples scanned.
    pub reference_tuples: u64,
    /// Pre-ETI rows written (signature coordinates emitted).
    pub pre_eti_records: u64,
    /// Sort runs spilled to disk.
    pub spilled_runs: usize,
    /// Logical ETI rows (distinct `(gram, coordinate, column)` groups).
    pub eti_groups: u64,
    /// Groups classified as stop q-grams.
    pub stop_qgrams: u64,
}

/// Encode one pre-ETI row.
fn pre_eti_record(gram: &str, coordinate: u8, column: u8, tid: u32) -> Vec<u8> {
    let mut rec = Vec::with_capacity(gram.len() + 10);
    keycode::encode_str(&mut rec, gram);
    keycode::encode_u8(&mut rec, coordinate);
    keycode::encode_u8(&mut rec, column);
    keycode::encode_u32(&mut rec, tid); // big-endian: ties ordered by tid
    rec
}

/// Decode a pre-ETI row.
fn parse_pre_eti_record(rec: &[u8]) -> Result<(String, u8, u8, u32)> {
    let (gram, rest) = keycode::decode_str(rec)?;
    let (coordinate, rest) = keycode::decode_u8(rest)?;
    let (column, rest) = keycode::decode_u8(rest)?;
    let (tid, rest) = keycode::decode_u32(rest)?;
    if !rest.is_empty() {
        return Err(StoreError::Corrupt("trailing bytes in pre-ETI record".into()).into());
    }
    Ok((gram, coordinate, column, tid))
}

/// Incremental ETI builder: feed tokenized reference tuples, then
/// [`EtiBuilder::finish`] into the target index.
pub struct EtiBuilder {
    sorter: ExternalSorter,
    minhasher: MinHasher,
    scheme: SignatureScheme,
    stats: BuildStats,
}

impl EtiBuilder {
    /// A builder with the given signature parameters and sort memory
    /// budget in bytes.
    pub fn new(
        minhasher: MinHasher,
        scheme: SignatureScheme,
        sort_budget: usize,
    ) -> Result<EtiBuilder> {
        Ok(EtiBuilder {
            sorter: ExternalSorter::with_budget(sort_budget)?,
            minhasher,
            scheme,
            stats: BuildStats::default(),
        })
    }

    /// Emit the pre-ETI rows of one reference tuple.
    pub fn observe(&mut self, tid: u32, tuple: &TokenizedRecord) -> Result<()> {
        self.stats.reference_tuples += 1;
        for (col, token) in tuple.iter_tokens() {
            for entry in token_signature(token, &self.minhasher, self.scheme) {
                self.sorter.push(&pre_eti_record(
                    &entry.gram,
                    entry.coordinate,
                    col as u8,
                    tid,
                ))?;
                self.stats.pre_eti_records += 1;
            }
        }
        Ok(())
    }

    /// Sort, group, and bulk-load every ETI row into `eti`.
    ///
    /// The merge output arrives in exactly the clustered-index key order
    /// (gram, coordinate, column, tid), so the physical entries can be
    /// streamed straight into [`fm_store::BTree::bulk_fill`] — leaves packed
    /// to the fill factor, internal levels built bottom-up — without ever
    /// materializing the index in memory.
    pub fn finish(mut self, eti: &Eti) -> Result<BuildStats> {
        self.stats.spilled_runs = self.sorter.spilled_runs();
        let sorted = self.sorter.finish()?;
        let _span = crate::tracing::span("group_fill");
        let mut error: Option<crate::error::CoreError> = None;
        let mut stats = self.stats;
        let stream = EntryStream {
            sorted,
            eti,
            stats: &mut stats,
            error: &mut error,
            current: None,
            tids: Vec::new(),
            queue: std::collections::VecDeque::new(),
            done: false,
        };
        eti.bulk_fill_entries(stream)?;
        if let Some(e) = error {
            return Err(e);
        }
        Ok(stats)
    }
}

/// Streaming adapter: sorted pre-ETI records → physical ETI entries, one
/// group at a time. Errors are smuggled out through `error` (the stream
/// simply ends early; the caller checks and propagates).
struct EntryStream<'a> {
    sorted: fm_store::extsort::SortedRun,
    eti: &'a Eti,
    stats: &'a mut BuildStats,
    error: &'a mut Option<crate::error::CoreError>,
    current: Option<(String, u8, u8)>,
    tids: Vec<u32>,
    queue: std::collections::VecDeque<(Vec<u8>, Vec<u8>)>,
    done: bool,
}

impl EntryStream<'_> {
    fn flush_group(&mut self) {
        if let Some((gram, coordinate, column)) = self.current.take() {
            self.stats.eti_groups += 1;
            if self.tids.len() > self.eti.stop_threshold() {
                self.stats.stop_qgrams += 1;
            }
            self.queue.extend(
                self.eti
                    .group_entries(&gram, coordinate, column, &self.tids),
            );
            self.tids.clear();
        }
    }
}

impl Iterator for EntryStream<'_> {
    type Item = (Vec<u8>, Vec<u8>);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(entry) = self.queue.pop_front() {
                return Some(entry);
            }
            if self.done {
                return None;
            }
            match self.sorted.next_record() {
                Err(e) => {
                    *self.error = Some(e.into());
                    self.done = true;
                }
                Ok(None) => {
                    self.flush_group();
                    self.done = true;
                }
                Ok(Some(rec)) => match parse_pre_eti_record(&rec) {
                    Err(e) => {
                        *self.error = Some(e);
                        self.done = true;
                    }
                    Ok((gram, coordinate, column, tid)) => {
                        let key = (gram, coordinate, column);
                        if self.current.as_ref() == Some(&key) {
                            // Dedupe: two tokens of one tuple can share a
                            // coordinate value; the tid-list is a tuple set.
                            if self.tids.last() != Some(&tid) {
                                self.tids.push(tid);
                            }
                        } else {
                            self.flush_group();
                            self.current = Some(key);
                            self.tids.push(tid);
                        }
                    }
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use fm_store::{BTree, BufferPool, MemPager};
    use fm_text::Tokenizer;
    use std::sync::Arc;

    fn make_eti(stop: usize) -> Eti {
        let pool = Arc::new(BufferPool::new(Box::new(MemPager::new()), 64));
        Eti::new(BTree::create(pool).unwrap(), stop)
    }

    fn tok(values: &[&str]) -> TokenizedRecord {
        Record::new(values).tokenize(&Tokenizer::new())
    }

    #[test]
    fn pre_eti_record_round_trip() {
        let rec = pre_eti_record("oei", 1, 0, 42);
        assert_eq!(
            parse_pre_eti_record(&rec).unwrap(),
            ("oei".into(), 1, 0, 42)
        );
    }

    #[test]
    fn pre_eti_record_sort_order_matches_eti_query() {
        // ORDER BY QGram, Coordinate, Column, Tid.
        let records = [
            pre_eti_record("com", 1, 0, 3),
            pre_eti_record("com", 1, 0, 10),
            pre_eti_record("com", 1, 1, 1),
            pre_eti_record("com", 2, 0, 1),
            pre_eti_record("ing", 1, 0, 1),
        ];
        for w in records.windows(2) {
            assert!(w[0] < w[1], "sort order violated");
        }
    }

    #[test]
    fn builds_paper_table_3_structure() {
        // Table 1's reference relation with q=3, H=2 (Q scheme) must produce
        // an ETI where (i) every token's signature coordinates appear with
        // the right tid-lists and (ii) shared tokens accumulate all tids.
        let mh = MinHasher::new(2, 3, 7);
        let mut builder = EtiBuilder::new(mh.clone(), SignatureScheme::QGrams, 1 << 20).unwrap();
        let rows = [
            tok(&["Boeing Company", "Seattle", "WA", "98004"]),
            tok(&["Bon Corporation", "Seattle", "WA", "98014"]),
            tok(&["Companions", "Seattle", "WA", "98024"]),
        ];
        for (i, row) in rows.iter().enumerate() {
            builder.observe(i as u32 + 1, row).unwrap();
        }
        let eti = make_eti(10_000);
        let stats = builder.finish(&eti).unwrap();
        assert_eq!(stats.reference_tuples, 3);
        assert_eq!(stats.stop_qgrams, 0);
        assert!(stats.eti_groups > 0);

        // 'seattle' is in all three tuples (column 1): both of its
        // coordinates list {1, 2, 3}.
        let sig = mh.signature("seattle");
        for (i, gram) in sig.iter().enumerate() {
            let list = eti.lookup(gram, i as u8 + 1, 1).unwrap().unwrap();
            assert_eq!(list.tids, Some(vec![1, 2, 3]), "gram {gram}");
            assert_eq!(list.frequency, 3);
        }
        // 'wa' is short: its signature is itself at coordinate 1.
        let list = eti.lookup("wa", 1, 2).unwrap().unwrap();
        assert_eq!(list.tids, Some(vec![1, 2, 3]));
        // 'boeing' is only in tuple 1 (column 0).
        for (i, gram) in mh.signature("boeing").iter().enumerate() {
            let list = eti.lookup(gram, i as u8 + 1, 0).unwrap().unwrap();
            assert!(list.tids.as_ref().unwrap().contains(&1), "gram {gram}");
        }
    }

    #[test]
    fn qt_scheme_also_indexes_whole_tokens() {
        let mh = MinHasher::new(2, 3, 7);
        let mut builder = EtiBuilder::new(mh, SignatureScheme::QGramsPlusToken, 1 << 20).unwrap();
        builder
            .observe(1, &tok(&["Boeing Company", "Seattle", "WA", "98004"]))
            .unwrap();
        let eti = make_eti(10_000);
        builder.finish(&eti).unwrap();
        // Token rows at coordinate 0.
        let list = eti
            .lookup("boeing", super::super::TOKEN_COORDINATE, 0)
            .unwrap()
            .unwrap();
        assert_eq!(list.tids, Some(vec![1]));
        let list = eti
            .lookup("98004", super::super::TOKEN_COORDINATE, 3)
            .unwrap()
            .unwrap();
        assert_eq!(list.tids, Some(vec![1]));
    }

    #[test]
    fn spilled_build_equals_in_memory_build() {
        // Force spilling with a tiny sort budget; resulting lookups must
        // match the in-memory build exactly.
        let rows: Vec<TokenizedRecord> = (0..200)
            .map(|i| {
                tok(&[
                    &format!("customer number{} common", i % 37),
                    "city",
                    "st",
                    "12345",
                ])
            })
            .collect();
        let build = |budget: usize| -> Eti {
            let mh = MinHasher::new(2, 3, 7);
            let mut b = EtiBuilder::new(mh, SignatureScheme::QGrams, budget).unwrap();
            for (i, row) in rows.iter().enumerate() {
                b.observe(i as u32 + 1, row).unwrap();
            }
            let eti = make_eti(10_000);
            b.finish(&eti).unwrap();
            eti
        };
        let spilled = build(256);
        let memory = build(64 << 20);
        let mh = MinHasher::new(2, 3, 7);
        for token in ["common", "number3", "city", "st", "12345"] {
            for (i, gram) in mh.signature(token).iter().enumerate() {
                for col in 0..4u8 {
                    assert_eq!(
                        spilled.lookup(gram, i as u8 + 1, col).unwrap(),
                        memory.lookup(gram, i as u8 + 1, col).unwrap(),
                        "mismatch at {token}/{gram}/{col}"
                    );
                }
            }
        }
    }

    #[test]
    fn stop_threshold_applied_during_build() {
        let mh = MinHasher::new(1, 3, 7);
        let mut builder = EtiBuilder::new(mh.clone(), SignatureScheme::QGrams, 1 << 20).unwrap();
        // 'common' appears in 20 tuples; threshold 10 → stop q-gram.
        for tid in 1..=20 {
            builder.observe(tid, &tok(&["common"])).unwrap();
        }
        let eti = make_eti(10);
        let stats = builder.finish(&eti).unwrap();
        assert_eq!(stats.stop_qgrams, 1);
        let gram = &mh.signature("common")[0];
        let list = eti.lookup(gram, 1, 0).unwrap().unwrap();
        assert_eq!(list.frequency, 20);
        assert_eq!(list.tids, None);
    }

    #[test]
    fn duplicate_tuple_tokens_dedupe_in_tid_list() {
        // Two distinct tokens of one tuple can share a min-hash coordinate
        // value; the tid must appear once.
        let mh = MinHasher::new(1, 3, 7);
        let mut builder = EtiBuilder::new(mh, SignatureScheme::QGramsPlusToken, 1 << 20).unwrap();
        // Same token in two *columns* is fine (distinct rows), but we also
        // check a tuple observed once never double-lists its tid.
        builder.observe(5, &tok(&["aaa aaa-x"])).unwrap();
        let eti = make_eti(10_000);
        builder.finish(&eti).unwrap();
        let list = eti
            .lookup("aaa", super::super::TOKEN_COORDINATE, 0)
            .unwrap()
            .unwrap();
        assert_eq!(list.tids, Some(vec![5]));
    }
}
