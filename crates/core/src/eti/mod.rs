//! The Error Tolerant Index (paper §4.2, extended per §5.1).
//!
//! The ETI is "a standard relation" with schema
//! `[QGram, Coordinate, Column, Frequency, Tid-list]` and a clustered index
//! on `[QGram, Coordinate, Column]`. Each row lists the tids of all
//! reference tuples containing a token (in `Column`) whose min-hash
//! signature has `QGram` as its `Coordinate`-th entry. Under the `Q+T`
//! scheme (§5.1), whole tokens are additionally indexed at coordinate 0.
//!
//! Representation here: entries live in a [`BTree`] keyed by the
//! order-preserving encoding of `(QGram, Coordinate, Column, Chunk)`. Long
//! tid-lists are **chunked** across consecutive keys so every record stays
//! page-sized (DESIGN.md §4.5); one logical lookup is one short range scan.
//! Q-grams whose tid-list would exceed the stop threshold are *stop
//! q-grams*: their row keeps the frequency but a NULL tid-list, exactly as
//! the paper stores them.

pub mod build;

use fm_store::keycode;
use fm_store::{BTree, StoreError};
use fm_text::minhash::MinHasher;

use crate::config::SignatureScheme;
use crate::error::Result;

/// Coordinate index used for whole-token entries under `Q+T` (§5.1: "say,
/// as the 0th coordinate in the signature"). Min-hash q-gram coordinates
/// are 1-based.
pub const TOKEN_COORDINATE: u8 = 0;

/// Maximum tids stored per chunk. With 4-byte tids this keeps every entry
/// well under the B+-tree's entry cap even alongside a long token key.
pub const TIDS_PER_CHUNK: usize = 400;

/// Maximum bytes of a token used as an ETI key component. Whole tokens are
/// indexed at coordinate 0 under `Q+T`, and a pathological kilobyte-long
/// "token" would otherwise overflow the page-sized B+-tree entry cap.
/// Clamping is applied identically at build and query time, so lookups stay
/// consistent; two tokens agreeing on their first 200 bytes are treated as
/// the same index key (they still differ under the exact `fms`
/// verification).
pub const MAX_GRAM_BYTES: usize = 200;

/// Clamp a gram/token to [`MAX_GRAM_BYTES`] on a character boundary.
fn clamp_gram(s: String) -> String {
    if s.len() <= MAX_GRAM_BYTES {
        return s;
    }
    let mut end = MAX_GRAM_BYTES;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    let mut s = s;
    s.truncate(end);
    s
}

/// One coordinate of a token's index signature: which ETI rows this token
/// contributes to / probes, and what fraction of the token's weight rides
/// on the coordinate at query time.
#[derive(Debug, Clone, PartialEq)]
pub struct SignatureEntry {
    pub coordinate: u8,
    pub gram: String,
    /// Fraction of the token's weight assigned to this coordinate
    /// (`w(t)/|mh(t)|` for plain q-gram signatures; the 50/50 token split
    /// under `Q+T`). Shares always sum to 1 per token.
    pub share: f64,
}

/// The index signature of one token (paper §4.2 + §5.1):
///
/// * `Q_H`: the H min-hash q-grams at coordinates `1..=H`, each with share
///   `1/H`; a token shorter than `q` has the single-coordinate signature
///   `[t]` with share 1.
/// * `Q+T_H`: the token itself at coordinate 0 with share ½ plus the
///   q-gram signature at shares `½/H`. Degenerate cases collapse onto the
///   token coordinate alone (share 1): `H = 0` (tokens-only index) and
///   short tokens, whose "q-gram" signature would just repeat the token.
pub fn token_signature(
    token: &str,
    mh: &MinHasher,
    scheme: SignatureScheme,
) -> Vec<SignatureEntry> {
    let sig = mh.signature(token);
    match scheme {
        SignatureScheme::QGrams => {
            let share = 1.0 / sig.len().max(1) as f64;
            sig.into_iter()
                .enumerate()
                .map(|(i, gram)| SignatureEntry {
                    coordinate: i as u8 + 1,
                    // q-grams are q chars, but a short-token signature is
                    // the token itself and can be arbitrarily... no: short
                    // tokens are < q chars. The clamp guards q > MAX case.
                    gram: clamp_gram(gram),
                    share,
                })
                .collect()
        }
        SignatureScheme::QGramsPlusToken => {
            let degenerate = sig.is_empty() || (sig.len() == 1 && sig[0] == token);
            if degenerate {
                return vec![SignatureEntry {
                    coordinate: TOKEN_COORDINATE,
                    gram: clamp_gram(token.to_string()),
                    share: 1.0,
                }];
            }
            let mut entries = Vec::with_capacity(sig.len() + 1);
            entries.push(SignatureEntry {
                coordinate: TOKEN_COORDINATE,
                gram: clamp_gram(token.to_string()),
                share: 0.5,
            });
            let share = 0.5 / sig.len() as f64;
            entries.extend(sig.into_iter().enumerate().map(|(i, gram)| SignatureEntry {
                coordinate: i as u8 + 1,
                gram,
                share,
            }));
            entries
        }
    }
}

/// A logical ETI row, aggregated over chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TidList {
    /// Number of tids in the full tid-list (stored even for stop q-grams).
    pub frequency: u32,
    /// The tids, or `None` for a stop q-gram (NULL tid-list in the paper).
    pub tids: Option<Vec<u32>>,
}

const FLAG_STOP: u8 = 1;

fn encode_value(frequency: u32, stop: bool, tids: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(7 + 4 * tids.len());
    out.push(if stop { FLAG_STOP } else { 0 });
    out.extend_from_slice(&frequency.to_le_bytes());
    out.extend_from_slice(&(tids.len() as u16).to_le_bytes());
    for &tid in tids {
        out.extend_from_slice(&tid.to_le_bytes());
    }
    out
}

fn decode_value(bytes: &[u8]) -> Result<(u32, bool, Vec<u32>)> {
    if bytes.len() < 7 {
        return Err(StoreError::Corrupt("eti value too short".into()).into());
    }
    let stop = bytes[0] & FLAG_STOP != 0;
    // lint:allow(unwrap): slice lengths are fixed
    let frequency = u32::from_le_bytes(bytes[1..5].try_into().unwrap());
    let count = u16::from_le_bytes(bytes[5..7].try_into().unwrap()) as usize; // lint:allow(unwrap): fixed-size slice
    if bytes.len() != 7 + 4 * count {
        return Err(StoreError::Corrupt("eti value length mismatch".into()).into());
    }
    let tids = bytes[7..]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap())) // lint:allow(unwrap): chunks_exact(4)
        .collect();
    Ok((frequency, stop, tids))
}

/// The ETI: a B+-tree of chunked tid-list rows.
pub struct Eti {
    // BTree is a self-synchronized handle: every descent and mutation runs
    // under the shared structural latch and the pool's shard/frame locks
    // inside fm-store (DESIGN §11) — locks the field-level lockset analysis
    // cannot see from the call site.
    // lint:allow(lockset): BTree handles share one structural latch (DESIGN §11)
    tree: BTree,
    stop_threshold: usize,
}

impl Eti {
    pub fn new(tree: BTree, stop_threshold: usize) -> Eti {
        Eti {
            tree,
            stop_threshold,
        }
    }

    /// The stop q-gram threshold this index was built with.
    pub fn stop_threshold(&self) -> usize {
        self.stop_threshold
    }

    /// Key prefix shared by all chunks of one logical row.
    fn prefix(gram: &str, coordinate: u8, column: u8) -> Vec<u8> {
        let mut key = Vec::with_capacity(gram.len() + 8);
        keycode::encode_str(&mut key, gram);
        keycode::encode_u8(&mut key, coordinate);
        keycode::encode_u8(&mut key, column);
        key
    }

    fn chunk_key(gram: &str, coordinate: u8, column: u8, chunk: u32) -> Vec<u8> {
        let mut key = Self::prefix(gram, coordinate, column);
        keycode::encode_u32(&mut key, chunk);
        key
    }

    /// Look up the tid-list for `(gram, coordinate, column)`. One logical
    /// ETI lookup (the unit counted by the paper's efficiency metrics).
    pub fn lookup(&self, gram: &str, coordinate: u8, column: u8) -> Result<Option<TidList>> {
        Ok(self.lookup_impl(gram, coordinate, column)?.0)
    }

    /// [`Eti::lookup`], also returning the number of physical chunk rows
    /// scanned in the B+-tree. The query processor accounts the counts
    /// into its (stack-local) `LookupTrace`; returning them instead of
    /// taking the trace `&mut` keeps this hot-path function read-only
    /// under the mut-map gate. The plain `lookup` serves maintenance and
    /// diagnostics.
    pub fn lookup_counted(
        &self,
        gram: &str,
        coordinate: u8,
        column: u8,
    ) -> Result<(Option<TidList>, u64)> {
        self.lookup_impl(gram, coordinate, column)
    }

    /// A second handle onto the same index, sharing the underlying tree's
    /// pool and structural latch (see [`BTree::clone_handle`]).
    #[must_use]
    pub fn clone_handle(&self) -> Eti {
        Eti {
            tree: self.tree.clone_handle(),
            stop_threshold: self.stop_threshold,
        }
    }

    fn lookup_impl(
        &self,
        gram: &str,
        coordinate: u8,
        column: u8,
    ) -> Result<(Option<TidList>, u64)> {
        let prefix = Self::prefix(gram, coordinate, column);
        let mut scan = self.tree.scan_prefix(&prefix)?;
        let mut frequency = 0u32;
        let mut stop = false;
        let mut tids: Vec<u32> = Vec::new();
        let mut found = false;
        let mut rows = 0u64;
        while let Some((_, value)) = scan.next_entry()? {
            let (freq, is_stop, chunk_tids) = decode_value(&value)?;
            rows += 1;
            if !found {
                frequency = freq; // chunk 0 is authoritative
                stop = is_stop;
                found = true;
            }
            tids.extend(chunk_tids);
        }
        if !found {
            return Ok((None, rows));
        }
        Ok((
            Some(TidList {
                frequency,
                tids: if stop { None } else { Some(tids) },
            }),
            rows,
        ))
    }

    /// The physical `(key, value)` entries representing one group's
    /// tid-list: one entry per chunk, or a single stop-q-gram entry.
    /// `tids` must be sorted and deduplicated.
    pub(crate) fn group_entries(
        &self,
        gram: &str,
        coordinate: u8,
        column: u8,
        tids: &[u32],
    ) -> Vec<(Vec<u8>, Vec<u8>)> {
        debug_assert!(
            tids.windows(2).all(|w| w[0] < w[1]),
            "tids must be sorted unique"
        );
        let frequency = tids.len() as u32;
        if tids.len() > self.stop_threshold {
            return vec![(
                Self::chunk_key(gram, coordinate, column, 0),
                encode_value(frequency, true, &[]),
            )];
        }
        tids.chunks(TIDS_PER_CHUNK)
            .enumerate()
            .map(|(i, chunk)| {
                (
                    Self::chunk_key(gram, coordinate, column, i as u32),
                    encode_value(frequency, false, chunk),
                )
            })
            .collect()
    }

    /// Insert the complete tid-list of one group (incremental build path).
    /// `tids` must be sorted and deduplicated. Applies the stop-q-gram rule.
    pub fn insert_group(&self, gram: &str, coordinate: u8, column: u8, tids: &[u32]) -> Result<()> {
        for (key, value) in self.group_entries(gram, coordinate, column, tids) {
            self.tree.insert(&key, &value)?;
        }
        Ok(())
    }

    /// Bulk-load physical entries (ascending key order) into an empty ETI —
    /// the fast path for the initial build (see [`fm_store::BTree::bulk_fill`]).
    pub(crate) fn bulk_fill_entries(
        &self,
        entries: impl IntoIterator<Item = (Vec<u8>, Vec<u8>)>,
    ) -> Result<()> {
        self.tree.bulk_fill(entries)?;
        Ok(())
    }

    /// Append one tid to a row (ETI maintenance for a newly inserted
    /// reference tuple). Creates the row if absent; converts to a stop
    /// q-gram if the list outgrows the threshold; idempotent per tid.
    pub fn append_tid(&self, gram: &str, coordinate: u8, column: u8, tid: u32) -> Result<()> {
        // Collect the existing chunks.
        let prefix = Self::prefix(gram, coordinate, column);
        let mut chunks: Vec<(Vec<u8>, u32, bool, Vec<u32>)> = Vec::new();
        {
            let mut scan = self.tree.scan_prefix(&prefix)?;
            while let Some((key, value)) = scan.next_entry()? {
                let (freq, stop, tids) = decode_value(&value)?;
                chunks.push((key, freq, stop, tids));
            }
        }
        if chunks.is_empty() {
            return self.insert_group(gram, coordinate, column, &[tid]);
        }
        let total: u32 = chunks[0].1;
        if chunks[0].2 {
            // Already a stop q-gram: just bump the frequency.
            let key = chunks[0].0.clone();
            self.tree
                .insert(&key, &encode_value(total + 1, true, &[]))?;
            return Ok(());
        }
        if chunks.iter().any(|(_, _, _, tids)| tids.contains(&tid)) {
            return Ok(()); // second token of the same tuple hit this row
        }
        let new_total = total + 1;
        if new_total as usize > self.stop_threshold {
            // Convert to a stop q-gram: rewrite chunk 0, drop the rest.
            for (key, _, _, _) in &chunks[1..] {
                self.tree.delete(key)?;
            }
            self.tree
                .insert(&chunks[0].0, &encode_value(new_total, true, &[]))?;
            return Ok(());
        }
        // Refresh the authoritative frequency in chunk 0.
        let (first_key, _, _, first_tids) = &chunks[0];
        self.tree
            .insert(first_key, &encode_value(new_total, false, first_tids))?;
        // Append to the last chunk or open a new one. New tids are assigned
        // monotonically, so appending keeps chunks sorted.
        let last = chunks.last().unwrap(); // lint:allow(unwrap): chunk 0 always exists here
        if last.3.len() < TIDS_PER_CHUNK {
            let mut tids = last.3.clone();
            tids.push(tid);
            tids.sort_unstable();
            let freq = if chunks.len() == 1 { new_total } else { last.1 };
            self.tree
                .insert(&last.0, &encode_value(freq, false, &tids))?;
        } else {
            let key = Self::chunk_key(gram, coordinate, column, chunks.len() as u32);
            self.tree
                .insert(&key, &encode_value(new_total, false, &[tid]))?;
        }
        Ok(())
    }

    /// Remove one tid from a row (ETI maintenance for a deleted reference
    /// tuple). Idempotent: a tid not present (including in stop-q-gram rows,
    /// whose membership is unknowable) only decrements the frequency when
    /// the row is a stop row — stop-row frequencies are approximate by
    /// construction.
    pub fn remove_tid(&self, gram: &str, coordinate: u8, column: u8, tid: u32) -> Result<()> {
        let prefix = Self::prefix(gram, coordinate, column);
        let mut chunks: Vec<(Vec<u8>, u32, bool, Vec<u32>)> = Vec::new();
        {
            let mut scan = self.tree.scan_prefix(&prefix)?;
            while let Some((key, value)) = scan.next_entry()? {
                let (freq, stop, tids) = decode_value(&value)?;
                chunks.push((key, freq, stop, tids));
            }
        }
        if chunks.is_empty() {
            return Ok(());
        }
        let total = chunks[0].1;
        if chunks[0].2 {
            // Stop row: membership unknown; keep the count roughly in sync.
            self.tree.insert(
                &chunks[0].0,
                &encode_value(total.saturating_sub(1), true, &[]),
            )?;
            return Ok(());
        }
        let Some(pos) = chunks
            .iter()
            .position(|(_, _, _, tids)| tids.contains(&tid))
        else {
            return Ok(()); // not present
        };
        let new_total = total.saturating_sub(1);
        if new_total == 0 {
            // Last tid: drop the whole row.
            for (key, _, _, _) in &chunks {
                self.tree.delete(key)?;
            }
            return Ok(());
        }
        // Remove from its chunk; drop the chunk if (non-zero chunk) empties.
        let (key, _, _, tids) = &chunks[pos];
        let mut tids = tids.clone();
        tids.retain(|&t| t != tid);
        if tids.is_empty() && pos != 0 {
            self.tree.delete(key)?;
        } else {
            let freq = if pos == 0 { new_total } else { chunks[pos].1 };
            self.tree.insert(key, &encode_value(freq, false, &tids))?;
        }
        // Refresh the authoritative frequency in chunk 0 (if we didn't just
        // rewrite it above).
        if pos != 0 {
            let (key0, _, _, tids0) = &chunks[0];
            self.tree
                .insert(key0, &encode_value(new_total, false, tids0))?;
        }
        Ok(())
    }

    /// Number of physical entries (chunks) in the index.
    pub fn entry_count(&self) -> Result<usize> {
        Ok(self.tree.len()?)
    }

    /// Validate the whole index: the underlying B+-tree structure, then a
    /// full scan checking the ETI's own representation invariants —
    ///
    /// * every key decodes as `(gram, coordinate, column, chunk)` with no
    ///   trailing bytes, every value decodes as a tid-list record;
    /// * a logical row's chunks are numbered contiguously from 0;
    /// * chunk 0's frequency equals the total number of stored tids
    ///   (non-stop rows), and tids are globally sorted and deduplicated
    ///   across the row's chunks, at most [`TIDS_PER_CHUNK`] per chunk;
    /// * non-stop rows respect the stop threshold (total ≤ threshold);
    /// * stop rows are a single chunk-0 entry with an empty (NULL) tid-list;
    /// * emptied non-zero chunks were deleted, not left behind.
    ///
    /// (A stop row's frequency may legally sit below the threshold:
    /// [`Eti::remove_tid`] decrements it approximately, and stop rows never
    /// convert back.)
    pub fn check_invariants(&self) -> Result<EtiCheck> {
        self.tree
            .check_invariants()
            .map_err(|e| StoreError::Corrupt(format!("eti tree: {e}")))?;
        struct Group {
            gram: String,
            coordinate: u8,
            column: u8,
            stop: bool,
            frequency: u32,
            next_chunk: u32,
            last_tid: Option<u32>,
            total: usize,
        }
        let bad = |msg: String| crate::error::CoreError::BadState(msg);
        let finish = |g: &Group, check: &mut EtiCheck| -> Result<()> {
            let row = (g.gram.as_str(), g.coordinate, g.column);
            if g.stop {
                check.stop_groups += 1;
            } else {
                if g.frequency as usize != g.total {
                    return Err(bad(format!(
                        "eti row {row:?}: chunk-0 frequency {} disagrees with \
                         {} stored tids",
                        g.frequency, g.total
                    )));
                }
                if g.total > self.stop_threshold {
                    return Err(bad(format!(
                        "eti row {row:?}: {} tids exceed stop threshold {} \
                         without being a stop row",
                        g.total, self.stop_threshold
                    )));
                }
            }
            check.groups += 1;
            check.tids += g.total;
            Ok(())
        };
        let mut check = EtiCheck {
            groups: 0,
            chunks: 0,
            stop_groups: 0,
            tids: 0,
        };
        let mut current: Option<Group> = None;
        for entry in self
            .tree
            .range(std::ops::Bound::Unbounded, std::ops::Bound::Unbounded)?
        {
            let (key, value) = entry?;
            let decoded: std::result::Result<(String, u8, u8, u32), StoreError> = (|| {
                let (gram, rest) = keycode::decode_str(&key)?;
                let (coordinate, rest) = keycode::decode_u8(rest)?;
                let (column, rest) = keycode::decode_u8(rest)?;
                let (chunk, rest) = keycode::decode_u32(rest)?;
                if !rest.is_empty() {
                    return Err(StoreError::Corrupt("trailing bytes".into()));
                }
                Ok((gram, coordinate, column, chunk))
            })();
            let (gram, coordinate, column, chunk) = decoded.map_err(|e| {
                bad(format!(
                    "eti key {key:?} does not decode as (gram, coordinate, \
                     column, chunk): {e}"
                ))
            })?;
            let row = (gram.as_str(), coordinate, column);
            let (frequency, stop, tids) = decode_value(&value)
                .map_err(|e| bad(format!("eti row {row:?} chunk {chunk}: {e}")))?;
            if tids.len() > TIDS_PER_CHUNK {
                return Err(bad(format!(
                    "eti row {row:?} chunk {chunk}: {} tids in one chunk \
                     (cap is {TIDS_PER_CHUNK})",
                    tids.len()
                )));
            }
            if !tids.windows(2).all(|w| w[0] < w[1]) {
                return Err(bad(format!(
                    "eti row {row:?} chunk {chunk}: tid-list is not sorted \
                     and deduplicated"
                )));
            }
            let continues = current
                .as_ref()
                .is_some_and(|g| (g.gram.as_str(), g.coordinate, g.column) == row);
            if continues {
                let g = current.as_mut().unwrap(); // lint:allow(unwrap): `continues` proved Some
                if chunk != g.next_chunk {
                    return Err(bad(format!(
                        "eti row {row:?}: chunks not contiguous (expected \
                         chunk {}, found {chunk})",
                        g.next_chunk
                    )));
                }
                if g.stop || stop {
                    return Err(bad(format!(
                        "eti row {row:?}: stop row must be a single chunk-0 \
                         entry, found chunk {chunk}"
                    )));
                }
                if tids.is_empty() {
                    return Err(bad(format!(
                        "eti row {row:?}: empty non-zero chunk {chunk} should \
                         have been deleted"
                    )));
                }
                if let (Some(last), Some(&first)) = (g.last_tid, tids.first()) {
                    if first <= last {
                        return Err(bad(format!(
                            "eti row {row:?}: tids not globally sorted across \
                             chunks (chunk {chunk} starts at {first} after {last})"
                        )));
                    }
                }
                g.total += tids.len();
                g.last_tid = tids.last().copied().or(g.last_tid);
                g.next_chunk += 1;
            } else {
                if let Some(g) = current.take() {
                    finish(&g, &mut check)?;
                }
                if chunk != 0 {
                    return Err(bad(format!(
                        "eti row {row:?}: first chunk is {chunk}, expected 0"
                    )));
                }
                if stop && !tids.is_empty() {
                    return Err(bad(format!(
                        "eti row {row:?}: stop row carries {} tids, must have \
                         a NULL tid-list",
                        tids.len()
                    )));
                }
                current = Some(Group {
                    gram,
                    coordinate,
                    column,
                    stop,
                    frequency,
                    next_chunk: 1,
                    last_tid: tids.last().copied(),
                    total: tids.len(),
                });
            }
            check.chunks += 1;
        }
        if let Some(g) = current.take() {
            finish(&g, &mut check)?;
        }
        Ok(check)
    }
}

/// Report from [`Eti::check_invariants`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EtiCheck {
    /// Logical rows (distinct `(gram, coordinate, column)` groups).
    pub groups: usize,
    /// Physical B+-tree entries (chunks).
    pub chunks: usize,
    /// Rows stored as stop q-grams (NULL tid-list).
    pub stop_groups: usize,
    /// Total tids stored across all non-stop rows.
    pub tids: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_store::{BufferPool, MemPager};
    use std::sync::Arc;

    fn eti(stop: usize) -> Eti {
        let pool = Arc::new(BufferPool::new(Box::new(MemPager::new()), 64));
        Eti::new(BTree::create(pool).unwrap(), stop)
    }

    #[test]
    fn value_codec_round_trip() {
        for (freq, stop, tids) in [
            (0u32, false, vec![]),
            (3, false, vec![1, 2, 3]),
            (50_000, true, vec![]),
            (1, false, vec![u32::MAX]),
        ] {
            let enc = encode_value(freq, stop, &tids);
            assert_eq!(decode_value(&enc).unwrap(), (freq, stop, tids));
        }
        assert!(decode_value(&[1, 2]).is_err());
        assert!(decode_value(&encode_value(1, false, &[7])[..8]).is_err());
    }

    #[test]
    fn insert_group_and_lookup() {
        let e = eti(10_000);
        e.insert_group("ing", 2, 0, &[1, 5, 9]).unwrap();
        let list = e.lookup("ing", 2, 0).unwrap().unwrap();
        assert_eq!(list.frequency, 3);
        assert_eq!(list.tids, Some(vec![1, 5, 9]));
        assert!(e.lookup("ing", 1, 0).unwrap().is_none());
        assert!(e.lookup("ing", 2, 1).unwrap().is_none());
        assert!(e.lookup("xyz", 2, 0).unwrap().is_none());
    }

    #[test]
    fn coordinate_and_column_are_part_of_the_key() {
        // Paper Table 3: 'sea' at coordinate 1 of column 2 is distinct from
        // any other (coordinate, column) combination.
        let e = eti(10_000);
        e.insert_group("sea", 1, 1, &[1, 2, 3]).unwrap();
        e.insert_group("sea", 2, 1, &[4]).unwrap();
        e.insert_group("sea", 1, 0, &[9]).unwrap();
        assert_eq!(
            e.lookup("sea", 1, 1).unwrap().unwrap().tids,
            Some(vec![1, 2, 3])
        );
        assert_eq!(e.lookup("sea", 2, 1).unwrap().unwrap().tids, Some(vec![4]));
        assert_eq!(e.lookup("sea", 1, 0).unwrap().unwrap().tids, Some(vec![9]));
    }

    #[test]
    fn chunking_across_many_tids() {
        let e = eti(10_000);
        let tids: Vec<u32> = (0..1500).collect();
        e.insert_group("com", 1, 0, &tids).unwrap();
        // 1500 tids / 400 per chunk = 4 physical entries.
        assert_eq!(e.entry_count().unwrap(), 4);
        let list = e.lookup("com", 1, 0).unwrap().unwrap();
        assert_eq!(list.frequency, 1500);
        assert_eq!(list.tids, Some(tids));
    }

    #[test]
    fn stop_qgram_rule() {
        let e = eti(10);
        let tids: Vec<u32> = (0..11).collect();
        e.insert_group("sto", 1, 0, &tids).unwrap();
        let list = e.lookup("sto", 1, 0).unwrap().unwrap();
        assert_eq!(list.frequency, 11);
        assert_eq!(list.tids, None, "stop q-gram has NULL tid-list");
        assert_eq!(e.entry_count().unwrap(), 1);
    }

    #[test]
    fn append_tid_creates_and_extends() {
        let e = eti(10_000);
        e.append_tid("boe", 1, 0, 7).unwrap();
        assert_eq!(e.lookup("boe", 1, 0).unwrap().unwrap().tids, Some(vec![7]));
        e.append_tid("boe", 1, 0, 9).unwrap();
        let list = e.lookup("boe", 1, 0).unwrap().unwrap();
        assert_eq!(list.frequency, 2);
        assert_eq!(list.tids, Some(vec![7, 9]));
        // Idempotent for the same tid (two tokens of one tuple can share a
        // coordinate).
        e.append_tid("boe", 1, 0, 9).unwrap();
        assert_eq!(e.lookup("boe", 1, 0).unwrap().unwrap().frequency, 2);
    }

    #[test]
    fn append_tid_spills_into_new_chunk() {
        let e = eti(10_000);
        let initial: Vec<u32> = (0..TIDS_PER_CHUNK as u32).collect();
        e.insert_group("ful", 1, 0, &initial).unwrap();
        assert_eq!(e.entry_count().unwrap(), 1);
        e.append_tid("ful", 1, 0, 5000).unwrap();
        assert_eq!(e.entry_count().unwrap(), 2);
        let list = e.lookup("ful", 1, 0).unwrap().unwrap();
        assert_eq!(list.frequency, TIDS_PER_CHUNK as u32 + 1);
        assert_eq!(list.tids.unwrap().last(), Some(&5000));
    }

    #[test]
    fn append_tid_converts_to_stop() {
        let e = eti(5);
        e.insert_group("pop", 1, 0, &[1, 2, 3, 4, 5]).unwrap();
        e.append_tid("pop", 1, 0, 6).unwrap();
        let list = e.lookup("pop", 1, 0).unwrap().unwrap();
        assert_eq!(list.frequency, 6);
        assert_eq!(list.tids, None);
        // Further appends keep counting.
        e.append_tid("pop", 1, 0, 7).unwrap();
        assert_eq!(e.lookup("pop", 1, 0).unwrap().unwrap().frequency, 7);
    }

    #[test]
    fn remove_tid_from_middle_and_to_empty() {
        let e = eti(10_000);
        e.insert_group("rem", 1, 0, &[1, 2, 3]).unwrap();
        e.remove_tid("rem", 1, 0, 2).unwrap();
        let list = e.lookup("rem", 1, 0).unwrap().unwrap();
        assert_eq!(list.frequency, 2);
        assert_eq!(list.tids, Some(vec![1, 3]));
        // Removing a tid that is not there is a no-op.
        e.remove_tid("rem", 1, 0, 99).unwrap();
        assert_eq!(e.lookup("rem", 1, 0).unwrap().unwrap().frequency, 2);
        // Removing the rest drops the row entirely.
        e.remove_tid("rem", 1, 0, 1).unwrap();
        e.remove_tid("rem", 1, 0, 3).unwrap();
        assert!(e.lookup("rem", 1, 0).unwrap().is_none());
        // Removing from an absent row is a no-op.
        e.remove_tid("rem", 1, 0, 3).unwrap();
    }

    #[test]
    fn remove_tid_across_chunks() {
        let e = eti(10_000);
        let tids: Vec<u32> = (0..(TIDS_PER_CHUNK as u32 * 2 + 5)).collect();
        e.insert_group("chu", 1, 0, &tids).unwrap();
        // Remove one from the second chunk.
        let victim = TIDS_PER_CHUNK as u32 + 7;
        e.remove_tid("chu", 1, 0, victim).unwrap();
        let list = e.lookup("chu", 1, 0).unwrap().unwrap();
        assert_eq!(list.frequency, tids.len() as u32 - 1);
        let got = list.tids.unwrap();
        assert!(!got.contains(&victim));
        assert_eq!(got.len(), tids.len() - 1);
        // Empty out the last (5-element) chunk: its entry disappears.
        let before = e.entry_count().unwrap();
        for t in (TIDS_PER_CHUNK as u32 * 2)..(TIDS_PER_CHUNK as u32 * 2 + 5) {
            e.remove_tid("chu", 1, 0, t).unwrap();
        }
        assert_eq!(e.entry_count().unwrap(), before - 1);
    }

    #[test]
    fn remove_tid_on_stop_row_decrements_frequency() {
        let e = eti(3);
        e.insert_group("stp", 1, 0, &[1, 2, 3, 4]).unwrap();
        assert_eq!(e.lookup("stp", 1, 0).unwrap().unwrap().tids, None);
        e.remove_tid("stp", 1, 0, 2).unwrap();
        let list = e.lookup("stp", 1, 0).unwrap().unwrap();
        assert_eq!(list.frequency, 3);
        assert_eq!(list.tids, None, "stop rows stay stop rows");
    }

    #[test]
    fn check_invariants_accepts_healthy_index() {
        let e = eti(10);
        e.insert_group("ing", 2, 0, &[1, 5, 9]).unwrap();
        e.insert_group("sea", 1, 1, &[4]).unwrap();
        e.insert_group("pop", 1, 0, &(0..11).collect::<Vec<u32>>())
            .unwrap(); // stop
        let check = e.check_invariants().unwrap();
        assert_eq!(
            check,
            EtiCheck {
                groups: 3,
                chunks: 3,
                stop_groups: 1,
                tids: 4
            }
        );
        // Chunked rows and maintenance churn stay valid too.
        let e = eti(10_000);
        let tids: Vec<u32> = (0..(TIDS_PER_CHUNK as u32 * 2 + 5)).collect();
        e.insert_group("chu", 1, 0, &tids).unwrap();
        e.append_tid("chu", 1, 0, 5000).unwrap();
        e.remove_tid("chu", 1, 0, 7).unwrap();
        let check = e.check_invariants().unwrap();
        assert_eq!(check.groups, 1);
        assert_eq!(check.chunks, 3);
        assert_eq!(check.tids, tids.len() + 1 - 1);
    }

    #[test]
    fn check_invariants_detects_unsorted_tid_list() {
        let e = eti(10_000);
        e.tree
            .insert(
                &Eti::chunk_key("bad", 1, 0, 0),
                &encode_value(3, false, &[5, 2, 9]),
            )
            .unwrap();
        let err = e.check_invariants().unwrap_err().to_string();
        assert!(
            err.contains("\"bad\"") && err.contains("sorted"),
            "got: {err}"
        );
    }

    #[test]
    fn check_invariants_detects_wrong_frequency() {
        let e = eti(10_000);
        e.insert_group("oka", 1, 0, &[1, 2, 3]).unwrap();
        // Rewrite chunk 0 claiming 7 tids while storing 3.
        e.tree
            .insert(
                &Eti::chunk_key("oka", 1, 0, 0),
                &encode_value(7, false, &[1, 2, 3]),
            )
            .unwrap();
        let err = e.check_invariants().unwrap_err().to_string();
        assert!(
            err.contains("\"oka\"") && err.contains("frequency 7") && err.contains("3 stored tids"),
            "got: {err}"
        );
    }

    #[test]
    fn check_invariants_detects_missing_chunk_zero() {
        let e = eti(10_000);
        e.tree
            .insert(
                &Eti::chunk_key("gap", 1, 0, 2),
                &encode_value(1, false, &[8]),
            )
            .unwrap();
        let err = e.check_invariants().unwrap_err().to_string();
        assert!(err.contains("expected 0"), "got: {err}");
    }

    #[test]
    fn check_invariants_detects_stop_row_with_tids() {
        let e = eti(2);
        e.tree
            .insert(
                &Eti::chunk_key("stp", 1, 0, 0),
                &encode_value(9, true, &[1, 2]),
            )
            .unwrap();
        let err = e.check_invariants().unwrap_err().to_string();
        assert!(err.contains("NULL tid-list"), "got: {err}");
    }

    #[test]
    fn check_invariants_detects_threshold_violation() {
        let e = eti(3);
        // 5 tids in a non-stop row, over the threshold of 3.
        e.tree
            .insert(
                &Eti::chunk_key("ovr", 1, 0, 0),
                &encode_value(5, false, &[1, 2, 3, 4, 5]),
            )
            .unwrap();
        let err = e.check_invariants().unwrap_err().to_string();
        assert!(err.contains("stop threshold"), "got: {err}");
    }

    #[test]
    fn check_invariants_detects_undecodable_key() {
        let e = eti(10_000);
        // A raw key that is not (gram, coordinate, column, chunk).
        e.tree
            .insert(b"\x07garbage", &encode_value(1, false, &[1]))
            .unwrap();
        let err = e.check_invariants().unwrap_err().to_string();
        assert!(err.contains("does not decode"), "got: {err}");
    }

    #[test]
    fn q_scheme_signature_shares() {
        let mh = MinHasher::new(3, 4, 42);
        let sig = token_signature("corporation", &mh, SignatureScheme::QGrams);
        assert_eq!(sig.len(), 3);
        for (i, entry) in sig.iter().enumerate() {
            assert_eq!(entry.coordinate, i as u8 + 1);
            assert!((entry.share - 1.0 / 3.0).abs() < 1e-12);
        }
        let total: f64 = sig.iter().map(|e| e.share).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn q_scheme_short_token() {
        // |t| < q → signature is the token itself at coordinate 1, share 1.
        let mh = MinHasher::new(3, 4, 42);
        let sig = token_signature("wa", &mh, SignatureScheme::QGrams);
        assert_eq!(sig.len(), 1);
        assert_eq!(sig[0].gram, "wa");
        assert_eq!(sig[0].share, 1.0);
    }

    #[test]
    fn qt_scheme_splits_half_half() {
        let mh = MinHasher::new(2, 4, 42);
        let sig = token_signature("corporation", &mh, SignatureScheme::QGramsPlusToken);
        assert_eq!(sig.len(), 3);
        assert_eq!(sig[0].coordinate, TOKEN_COORDINATE);
        assert_eq!(sig[0].gram, "corporation");
        assert!((sig[0].share - 0.5).abs() < 1e-12);
        assert!((sig[1].share - 0.25).abs() < 1e-12);
        let total: f64 = sig.iter().map(|e| e.share).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn qt_scheme_degenerate_cases_collapse_to_token() {
        // Tokens-only index (H = 0).
        let mh0 = MinHasher::new(0, 4, 42);
        let sig = token_signature("corporation", &mh0, SignatureScheme::QGramsPlusToken);
        assert_eq!(sig.len(), 1);
        assert_eq!(sig[0].coordinate, TOKEN_COORDINATE);
        assert_eq!(sig[0].share, 1.0);
        // Short token under Q+T.
        let mh = MinHasher::new(3, 4, 42);
        let sig = token_signature("wa", &mh, SignatureScheme::QGramsPlusToken);
        assert_eq!(sig.len(), 1);
        assert_eq!(sig[0].coordinate, TOKEN_COORDINATE);
        assert_eq!(sig[0].share, 1.0);
    }
}
