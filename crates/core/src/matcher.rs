//! The fuzzy matcher façade: build / open / lookup / maintain.
//!
//! A matcher owns five named objects inside one [`fm_store::Database`]
//! (all standard relations/indexes, per the paper's deployability
//! requirement):
//!
//! | object            | contents                                        |
//! |-------------------|-------------------------------------------------|
//! | `{p}.ref`         | the reference relation `R[tid, A1..An]`         |
//! | `{p}.tid`         | B+-tree `tid → rid` (paper: "R is indexed on the Tid attribute") |
//! | `{p}.eti`         | the Error Tolerant Index                        |
//! | `{p}.freq`        | token frequencies `(column, token) → freq`      |
//! | `{p}.state`       | relation size and tid counter                   |
//! | meta `{p}.config` | the [`Config`] (incl. min-hash seeds)           |
//!
//! Lookups are `&self` and internally read-locked, so one matcher can serve
//! concurrent query threads; [`FuzzyMatcher::insert_reference`] (ETI
//! maintenance) takes the write path.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use fm_store::keycode;
use fm_store::lockorder;
use fm_store::{BTree, Database, StoreError, Value};
use fm_text::minhash::MinHasher;
use fm_text::Tokenizer;

use crate::config::Config;
use crate::error::{CoreError, Result};
use crate::eti::build::{BuildStats, EtiBuilder};
use crate::eti::{token_signature, Eti};
use crate::metrics::{LookupTrace, MetricsRegistry, MetricsSnapshot};
use crate::query::{
    basic_lookup, osc_lookup, QueryContext, QueryMode, QueryStats, ReferenceFetch, ScoredMatch,
};
use crate::record::{Record, TokenizedRecord};
use crate::sim::Similarity;
use crate::tracing;
use crate::weights::{TokenFrequencies, WeightTable};

/// Default external-sort budget for the pre-ETI (64 MiB, like the paper's
/// modest build box).
pub const DEFAULT_SORT_BUDGET: usize = 64 << 20;

/// One fuzzy match: the reference tuple, its tid, and its exact `fms`.
#[derive(Debug, Clone, PartialEq)]
pub struct Match {
    pub tid: u32,
    pub similarity: f64,
    pub record: Record,
}

/// Result of a K-fuzzy-match query.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchResult {
    /// At most K matches with `fms ≥ c`, ordered by decreasing similarity
    /// (ties by tid).
    pub matches: Vec<Match>,
    /// Work counters for this query (the compact legacy summary; every
    /// field is a projection of [`MatchResult::trace`]).
    pub stats: QueryStats,
    /// The full per-query trace: what the query processor did at every
    /// layer (see [`LookupTrace`] for the paper figure each field backs).
    pub trace: LookupTrace,
}

/// The fuzzy matcher. See the module docs for the storage layout.
///
/// The mutable state (weight table, tid counter, metrics registry) sits
/// behind `Arc` so [`FuzzyMatcher::replicate`] can hand out additional
/// lookup handles over the same store that agree on weights, never mint
/// duplicate tids, and account into one registry.
pub struct FuzzyMatcher {
    config: Config,
    tokenizer: Tokenizer,
    minhasher: MinHasher,
    weights: Arc<RwLock<WeightTable>>,
    eti: Eti,
    // lint:allow(lockset): Table handles synchronize on the pool's frame latches (DESIGN §11)
    ref_table: fm_store::catalog::Table,
    // lint:allow(lockset): BTree handles share one structural latch (DESIGN §11)
    tid_index: BTree,
    // lint:allow(lockset): BTree handles share one structural latch (DESIGN §11)
    freq_index: BTree,
    // lint:allow(lockset): BTree handles share one structural latch (DESIGN §11)
    state_index: BTree,
    next_tid: Arc<AtomicU32>,
    build_stats: Option<BuildStats>,
    metrics: Arc<MetricsRegistry>,
}

fn tid_key(tid: u32) -> [u8; 4] {
    tid.to_be_bytes()
}

fn freq_key(col: usize, token: &str) -> Vec<u8> {
    let mut key = Vec::with_capacity(token.len() + 4);
    keycode::encode_u8(&mut key, col as u8);
    keycode::encode_str(&mut key, token);
    key
}

fn ref_schema(config: &Config) -> fm_store::Schema {
    let mut cols: Vec<(&str, fm_store::ColumnType, bool)> =
        vec![("tid", fm_store::ColumnType::U32, false)];
    for name in &config.column_names {
        cols.push((name.as_str(), fm_store::ColumnType::Text, true));
    }
    fm_store::Schema::new(cols)
}

fn record_to_row(tid: u32, record: &Record) -> fm_store::Row {
    let mut row = Vec::with_capacity(record.arity() + 1);
    row.push(Value::U32(tid));
    for v in record.values() {
        row.push(match v {
            Some(s) => Value::Text(s.clone()),
            None => Value::Null,
        });
    }
    row
}

fn row_to_record(row: &[Value]) -> Record {
    Record::from_options(
        row[1..]
            .iter()
            .map(|v| v.as_text().map(str::to_string))
            .collect(),
    )
}

impl FuzzyMatcher {
    /// Build a matcher over `reference` rows with the default sort budget.
    pub fn build(
        db: &Database,
        prefix: &str,
        reference: impl Iterator<Item = Record>,
        config: Config,
    ) -> Result<FuzzyMatcher> {
        Self::build_with_sort_budget(db, prefix, reference, config, DEFAULT_SORT_BUDGET)
    }

    /// Build with an explicit pre-ETI sort memory budget (bytes). Tiny
    /// budgets force the external-sort spill path.
    pub fn build_with_sort_budget(
        db: &Database,
        prefix: &str,
        reference: impl Iterator<Item = Record>,
        config: Config,
        sort_budget: usize,
    ) -> Result<FuzzyMatcher> {
        config.validate()?;
        let _trace = tracing::start(tracing::TraceKind::Build);
        let arity = config.arity();
        let tokenizer = Tokenizer::new();
        let minhasher = MinHasher::new(config.h, config.q, config.seed);

        let ref_table = db.create_table(&format!("{prefix}.ref"), ref_schema(&config))?;
        let tid_index = db.create_index(&format!("{prefix}.tid"))?;
        let eti_tree = db.create_index(&format!("{prefix}.eti"))?;
        let freq_index = db.create_index(&format!("{prefix}.freq"))?;
        let state_index = db.create_index(&format!("{prefix}.state"))?;
        let eti = Eti::new(eti_tree, config.stop_qgram_threshold);

        let mut freqs = TokenFrequencies::new(arity);
        let mut builder = EtiBuilder::new(minhasher.clone(), config.scheme, sort_budget)?;
        let mut next_tid = 1u32;
        {
            let _span = tracing::span("pre_eti");
            for record in reference {
                if record.arity() != arity {
                    return Err(CoreError::Arity {
                        expected: arity,
                        got: record.arity(),
                    });
                }
                let tid = next_tid;
                next_tid += 1;
                let rid = ref_table.insert(&record_to_row(tid, &record))?;
                tid_index.insert(&tid_key(tid), &rid.to_u64().to_le_bytes())?;
                let tokens = record.tokenize(&tokenizer);
                freqs.observe(&tokens);
                builder.observe(tid, &tokens)?;
            }
        }
        let build_stats = builder.finish(&eti)?;

        // Persist frequencies, state, and config.
        let _span = tracing::span("persist");
        for (col, token, freq) in freqs.iter() {
            freq_index.insert(&freq_key(col, token), &freq.to_le_bytes())?;
        }
        state_index.insert(b"relation_size", &freqs.relation_size().to_le_bytes())?;
        state_index.insert(b"next_tid", &next_tid.to_le_bytes())?;
        db.put_meta(&format!("{prefix}.config"), &config.encode())?;
        drop(_span);

        Ok(FuzzyMatcher {
            config,
            tokenizer,
            minhasher,
            weights: Arc::new(RwLock::new(WeightTable::new(freqs))),
            eti,
            ref_table,
            tid_index,
            freq_index,
            state_index,
            next_tid: Arc::new(AtomicU32::new(next_tid)),
            build_stats: Some(build_stats),
            metrics: Arc::new(MetricsRegistry::new()),
        })
    }

    /// Reopen a matcher previously built under `prefix` in `db`.
    pub fn open(db: &Database, prefix: &str) -> Result<FuzzyMatcher> {
        let config_bytes = db
            .get_meta(&format!("{prefix}.config"))
            .ok_or_else(|| CoreError::BadState(format!("no config for matcher {prefix}")))?;
        let config = Config::decode(&config_bytes)?;
        let ref_table = db.open_table(&format!("{prefix}.ref"))?;
        let tid_index = db.open_index(&format!("{prefix}.tid"))?;
        let eti_tree = db.open_index(&format!("{prefix}.eti"))?;
        let freq_index = db.open_index(&format!("{prefix}.freq"))?;
        let state_index = db.open_index(&format!("{prefix}.state"))?;

        let mut freqs = TokenFrequencies::new(config.arity());
        {
            let mut scan =
                freq_index.range(std::ops::Bound::Unbounded, std::ops::Bound::Unbounded)?;
            while let Some((key, value)) = scan.next_entry()? {
                let (col, rest) = keycode::decode_u8(&key)?;
                let (token, _) = keycode::decode_str(rest)?;
                let freq = u32::from_le_bytes(
                    value
                        .as_slice()
                        .try_into()
                        .map_err(|_| CoreError::BadState("bad freq value".into()))?,
                );
                freqs.set(col as usize, &token, freq);
            }
        }
        let relation_size = state_index
            .get(b"relation_size")?
            .ok_or_else(|| CoreError::BadState("missing relation_size".into()))?;
        freqs.set_relation_size(u64::from_le_bytes(
            relation_size
                .as_slice()
                .try_into()
                .map_err(|_| CoreError::BadState("bad relation_size".into()))?,
        ));
        let next_tid = state_index
            .get(b"next_tid")?
            .ok_or_else(|| CoreError::BadState("missing next_tid".into()))?;
        let next_tid = u32::from_le_bytes(
            next_tid
                .as_slice()
                .try_into()
                .map_err(|_| CoreError::BadState("bad next_tid".into()))?,
        );

        let minhasher = MinHasher::new(config.h, config.q, config.seed);
        let eti = Eti::new(eti_tree, config.stop_qgram_threshold);
        Ok(FuzzyMatcher {
            config,
            tokenizer: Tokenizer::new(),
            minhasher,
            weights: Arc::new(RwLock::new(WeightTable::new(freqs))),
            eti,
            ref_table,
            tid_index,
            freq_index,
            state_index,
            next_tid: Arc::new(AtomicU32::new(next_tid)),
            build_stats: None,
            metrics: Arc::new(MetricsRegistry::new()),
        })
    }

    /// A replica: another lookup handle over the same store.
    ///
    /// Replicas share everything that must stay coherent — the buffer
    /// pool and structural latches (via `clone_handle` on every index),
    /// the weight table, the tid counter, and the metrics registry — so a
    /// lookup through any replica is indistinguishable from one through
    /// the original, maintenance through any handle is visible to all,
    /// and `metrics_snapshot` totals stay exact no matter which replica
    /// served a query. Only the stateless per-handle machinery
    /// (tokenizer, min-hasher, config) is duplicated.
    #[must_use]
    pub fn replicate(&self) -> FuzzyMatcher {
        FuzzyMatcher {
            config: self.config.clone(),
            tokenizer: self.tokenizer.clone(),
            minhasher: self.minhasher.clone(),
            weights: Arc::clone(&self.weights),
            eti: self.eti.clone_handle(),
            ref_table: self.ref_table.clone_handle(),
            tid_index: self.tid_index.clone_handle(),
            freq_index: self.freq_index.clone_handle(),
            state_index: self.state_index.clone_handle(),
            next_tid: Arc::clone(&self.next_tid),
            build_stats: self.build_stats,
            metrics: Arc::clone(&self.metrics),
        }
    }

    /// The configuration the matcher was built with.
    pub fn config(&self) -> &Config {
        &self.config
    }

    pub(crate) fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    pub(crate) fn minhasher(&self) -> &MinHasher {
        &self.minhasher
    }

    pub(crate) fn weights_snapshot(
        &self,
    ) -> parking_lot::RwLockReadGuard<'_, crate::weights::WeightTable> {
        self.weights.read()
    }

    /// Build statistics (present only on freshly built matchers).
    pub fn build_stats(&self) -> Option<BuildStats> {
        self.build_stats
    }

    /// Number of reference tuples.
    pub fn relation_size(&self) -> u64 {
        let _rank = lockorder::HeldRank::acquire(lockorder::WEIGHTS, "weights");
        self.weights.read().frequencies().relation_size()
    }

    /// Number of physical ETI entries.
    pub fn eti_entry_count(&self) -> Result<usize> {
        self.eti.entry_count()
    }

    /// Inspect one ETI row (the tid-list of a `(gram, coordinate, column)`
    /// key). Exposed for diagnostics and tests.
    pub fn eti_lookup(
        &self,
        gram: &str,
        coordinate: u8,
        column: u8,
    ) -> Result<Option<crate::eti::TidList>> {
        self.eti.lookup(gram, coordinate, column)
    }

    /// A snapshot of the weight table (for the naive baselines and for
    /// offline analysis).
    pub fn clone_weights(&self) -> WeightTable {
        let _rank = lockorder::HeldRank::acquire(lockorder::WEIGHTS, "weights");
        self.weights.read().clone()
    }

    /// Scan the reference relation as `(tid, record)` pairs.
    pub fn scan_reference(&self) -> Result<Vec<(u32, Record)>> {
        let mut out = Vec::new();
        for row in self.ref_table.scan() {
            let (_, row) = row?;
            let tid = row[0]
                .as_u32()
                .ok_or_else(|| CoreError::BadState("reference row without tid".into()))?;
            out.push((tid, row_to_record(&row)));
        }
        Ok(out)
    }

    /// Fetch one reference tuple by tid.
    pub fn fetch_reference(&self, tid: u32) -> Result<Record> {
        let rid = self
            .tid_index
            .get(&tid_key(tid))?
            .ok_or_else(|| CoreError::Store(StoreError::NotFound(format!("tid {tid}"))))?;
        let rid = fm_store::Rid::from_u64(u64::from_le_bytes(
            rid.as_slice()
                .try_into()
                .map_err(|_| CoreError::BadState("bad rid in tid index".into()))?,
        ));
        let row = self.ref_table.get(rid)?;
        Ok(row_to_record(&row))
    }

    /// The K-fuzzy-match query with the default (OSC) algorithm.
    pub fn lookup(&self, input: &Record, k: usize, c: f64) -> Result<MatchResult> {
        self.lookup_with(input, k, c, QueryMode::Osc)
    }

    /// The K-fuzzy-match query with an explicit algorithm choice.
    pub fn lookup_with(
        &self,
        input: &Record,
        k: usize,
        c: f64,
        mode: QueryMode,
    ) -> Result<MatchResult> {
        if input.arity() != self.config.arity() {
            return Err(CoreError::Arity {
                expected: self.config.arity(),
                got: input.arity(),
            });
        }
        let started = std::time::Instant::now();
        let _trace_guard = tracing::start(tracing::TraceKind::Query);
        let tokens = {
            let _span = tracing::span("tokenize");
            input.tokenize(&self.tokenizer)
        };
        let _rank = lockorder::HeldRank::acquire(lockorder::WEIGHTS, "weights");
        let weights = self.weights.read();
        let fetcher = Fetcher {
            matcher: self,
            tokenizer: &self.tokenizer,
        };
        let ctx = QueryContext {
            config: &self.config,
            weights: &*weights,
            minhasher: &self.minhasher,
            eti: &self.eti,
            reference: &fetcher,
        };
        let (scored, mut trace) = match mode {
            QueryMode::Basic => basic_lookup(&ctx, &tokens, k, c)?,
            QueryMode::Osc => osc_lookup(&ctx, &tokens, k, c)?,
        };
        drop(weights);
        drop(_rank);
        let matches = {
            let _span = tracing::span("materialize");
            scored
                .into_iter()
                .map(|m: ScoredMatch| {
                    Ok(Match {
                        tid: m.tid,
                        similarity: m.similarity,
                        record: self.fetch_reference(m.tid)?,
                    })
                })
                .collect::<Result<Vec<Match>>>()?
        };
        trace.latency_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.metrics.record(&trace);
        tracing::attach_counters(&trace);
        Ok(MatchResult {
            matches,
            stats: QueryStats::from(&trace),
            trace,
        })
    }

    /// The flight recorder's retained traces (recent ∪ slow, oldest
    /// first): span trees with the [`LookupTrace`] counters attached to
    /// each query root. Export with [`crate::tracing::chrome_trace_json`]
    /// or [`crate::tracing::flame_summary`].
    #[must_use]
    pub fn recent_traces(&self) -> Vec<crate::tracing::CompletedTrace> {
        tracing::recorder().all()
    }

    /// The `k` slowest retained traces (recent ∪ slow rings), slowest
    /// first — the snapshot hook behind `fuzzymatch trace slowest` and the
    /// serving layer's `trace_slowest` verb.
    #[must_use]
    pub fn slowest_traces(&self, k: usize) -> Vec<crate::tracing::CompletedTrace> {
        tracing::recorder().slowest(k)
    }

    /// A point-in-time copy of the matcher's metrics registry: totals of
    /// every [`LookupTrace`] counter over all queries served so far (all
    /// threads), plus the lookup latency histogram.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// ETI maintenance, deletion side: remove a reference tuple by tid —
    /// from the reference relation, the tid index, the token frequencies,
    /// and every ETI row its tokens contributed to. Subsequent lookups will
    /// neither return nor be distracted by the tuple.
    ///
    /// Returns the removed record, or `NotFound` if the tid does not exist.
    pub fn delete_reference(&self, tid: u32) -> Result<Record> {
        // Locate and remove the row + index entry first.
        let rid_bytes = self
            .tid_index
            .get(&tid_key(tid))?
            .ok_or_else(|| CoreError::Store(StoreError::NotFound(format!("tid {tid}"))))?;
        let rid = fm_store::Rid::from_u64(u64::from_le_bytes(
            rid_bytes
                .as_slice()
                .try_into()
                .map_err(|_| CoreError::BadState("bad rid in tid index".into()))?,
        ));
        let row = self.ref_table.get(rid)?;
        let record = row_to_record(&row);
        let tokens = record.tokenize(&self.tokenizer);
        self.ref_table.delete(rid)?;
        self.tid_index.delete(&tid_key(tid))?;

        // Frequencies and relation size (O(1) per token via running sums).
        {
            let _rank = lockorder::HeldRank::acquire(lockorder::WEIGHTS, "weights");
            let mut weights = self.weights.write();
            weights.decrement_relation_size();
            for (col, token) in tokens.iter_tokens() {
                let f = weights.frequencies().freq(col, token).saturating_sub(1);
                weights.update_freq(col, token, f);
                self.freq_index
                    .insert(&freq_key(col, token), &f.to_le_bytes())?;
            }
            let n = weights.frequencies().relation_size();
            self.state_index
                .insert(b"relation_size", &n.to_le_bytes())?;
        }

        // ETI rows.
        for (col, token) in tokens.iter_tokens() {
            for entry in token_signature(token, &self.minhasher, self.config.scheme) {
                self.eti
                    .remove_tid(&entry.gram, entry.coordinate, col as u8, tid)?;
            }
        }
        Ok(record)
    }

    /// Match a whole batch in parallel over `threads` worker threads,
    /// preserving input order. Lookups are independent and the matcher is
    /// internally read-locked, so this scales near-linearly until the
    /// buffer pool saturates — the deployment shape of the paper's Figure 1
    /// pipeline.
    ///
    /// A worker panic is surfaced as `Err(CoreError::BadState)` carrying
    /// the panic message instead of propagating the unwind (or silently
    /// dropping that worker's share of the batch).
    pub fn lookup_batch(
        &self,
        inputs: &[Record],
        k: usize,
        c: f64,
        threads: usize,
    ) -> Result<Vec<MatchResult>> {
        self.batch_execute(inputs.len(), threads, |i| self.lookup(&inputs[i], k, c))
    }

    /// Shared engine behind [`FuzzyMatcher::lookup_batch`]: run `op(i)` for
    /// every `i < n` over a work-stealing pool, preserving index order.
    /// Worker panics are caught at join time and turned into an error.
    fn batch_execute(
        &self,
        n: usize,
        threads: usize,
        op: impl Fn(usize) -> Result<MatchResult> + Sync,
    ) -> Result<Vec<MatchResult>> {
        let threads = threads.clamp(1, n.max(1));
        if threads == 1 {
            return (0..n).map(op).collect();
        }
        // One contiguous chunk per worker, each returning its own result
        // vector through `join`: the fan-out shares no mutable state (no
        // work-stealing cursor, no per-slot locks), so per-lookup trace
        // counters cannot race across workers and this function stays off
        // the mut-map.
        let per = n / threads;
        let extra = n % threads; // the first `extra` workers take one more
        let op = &op;
        let mut chunks: Vec<std::result::Result<Vec<Result<MatchResult>>, String>> =
            Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let start = t * per + t.min(extra);
                    let end = start + per + usize::from(t < extra);
                    scope.spawn(move || (start..end).map(op).collect::<Vec<_>>())
                })
                .collect();
            // Join explicitly so a worker panic becomes a value here
            // instead of re-panicking when the scope closes.
            for handle in handles {
                chunks.push(handle.join().map_err(|payload| {
                    payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string())
                }));
            }
        });
        let mut out = Vec::with_capacity(n);
        for chunk in chunks {
            match chunk {
                Ok(results) => {
                    for r in results {
                        out.push(r?);
                    }
                }
                Err(msg) => {
                    return Err(CoreError::BadState(format!(
                        "batch lookup worker panicked: {msg}"
                    )));
                }
            }
        }
        Ok(out)
    }

    /// Exact `fms(u, v)` between two records under this matcher's weights —
    /// exposed for analysis and the baselines.
    pub fn fms(&self, u: &Record, v: &Record) -> f64 {
        let ut = u.tokenize(&self.tokenizer);
        let vt = v.tokenize(&self.tokenizer);
        let _rank = lockorder::HeldRank::acquire(lockorder::WEIGHTS, "weights");
        let weights = self.weights.read();
        Similarity::new(&*weights, &self.config).fms(&ut, &vt)
    }

    /// ETI maintenance (the extension the paper defers in §6.2.2.1): add a
    /// new reference tuple, updating the reference relation, the tid index,
    /// the token frequencies, and the ETI in place. Returns the new tid.
    ///
    /// Note that adding tuples shifts IDF weights of *all* tokens (|R|
    /// grows); weights are refreshed here, so subsequent lookups see the
    /// new distribution.
    pub fn insert_reference(&self, record: &Record) -> Result<u32> {
        if record.arity() != self.config.arity() {
            return Err(CoreError::Arity {
                expected: self.config.arity(),
                got: record.arity(),
            });
        }
        let tid = self.next_tid.fetch_add(1, Ordering::SeqCst);
        let rid = self.ref_table.insert(&record_to_row(tid, record))?;
        self.tid_index
            .insert(&tid_key(tid), &rid.to_u64().to_le_bytes())?;
        let tokens = record.tokenize(&self.tokenizer);

        {
            let _rank = lockorder::HeldRank::acquire(lockorder::WEIGHTS, "weights");
            let mut weights = self.weights.write();
            weights.bump_relation_size();
            for (col, token) in tokens.iter_tokens() {
                let f = weights.frequencies().freq(col, token) + 1;
                weights.update_freq(col, token, f);
                self.freq_index
                    .insert(&freq_key(col, token), &f.to_le_bytes())?;
            }
            let n = weights.frequencies().relation_size();
            self.state_index
                .insert(b"relation_size", &n.to_le_bytes())?;
            self.state_index
                .insert(b"next_tid", &(tid + 1).to_le_bytes())?;
        }

        for (col, token) in tokens.iter_tokens() {
            for entry in token_signature(token, &self.minhasher, self.config.scheme) {
                self.eti
                    .append_tid(&entry.gram, entry.coordinate, col as u8, tid)?;
            }
        }
        Ok(tid)
    }

    /// Deep-validate the matcher's five storage objects and their cross-
    /// object consistency at a quiescent point:
    ///
    /// * the ETI passes [`Eti::check_invariants`] (B+-tree structure plus
    ///   chunking/stop-row/frequency rules);
    /// * the live weight table passes [`WeightTable::check_invariants`] and
    ///   its IDF inputs — `|R|` and every `(column, token)` frequency —
    ///   equal a fresh recount from a full scan of the reference relation;
    /// * the tid index is a bijection onto the reference rows;
    /// * the persisted frequency index and state rows agree with the live
    ///   table, so a reopened matcher would see the same weights;
    /// * the tid counter is strictly above every stored tid.
    pub fn check_invariants(&self) -> Result<MatcherCheck> {
        let eti = self.eti.check_invariants()?;
        let _rank = lockorder::HeldRank::acquire(lockorder::WEIGHTS, "weights");
        let weights = self.weights.read();
        weights.check_invariants()?;

        // Recount frequencies from the relation itself; walk the tid index.
        let mut observed = TokenFrequencies::new(self.config.arity());
        let mut max_tid: Option<u32> = None;
        let mut tuples = 0usize;
        for row in self.ref_table.scan() {
            let (rid, row) = row?;
            let tid = row[0]
                .as_u32()
                .ok_or_else(|| CoreError::BadState("reference row without tid".into()))?;
            let mapped = self.tid_index.get(&tid_key(tid))?.ok_or_else(|| {
                CoreError::BadState(format!(
                    "reference tuple tid {tid} is missing from the tid index"
                ))
            })?;
            let mapped = fm_store::Rid::from_u64(u64::from_le_bytes(
                mapped
                    .as_slice()
                    .try_into()
                    .map_err(|_| CoreError::BadState("bad rid in tid index".into()))?,
            ));
            if mapped != rid {
                return Err(CoreError::BadState(format!(
                    "tid index maps tid {tid} to {mapped:?} but the tuple \
                     lives at {rid:?}"
                )));
            }
            observed.observe(&row_to_record(&row).tokenize(&self.tokenizer));
            max_tid = Some(max_tid.map_or(tid, |m| m.max(tid)));
            tuples += 1;
        }
        let index_entries = self.tid_index.len()?;
        if index_entries != tuples {
            return Err(CoreError::BadState(format!(
                "tid index holds {index_entries} entries for {tuples} \
                 reference tuples (dangling or missing mappings)"
            )));
        }
        weights.check_consistent_with(&observed)?;

        // Persisted frequency index: entries with freq > 0 must mirror the
        // live table exactly (zero-frequency rows are tombstones left by
        // deletions; FuzzyMatcher::open drops them on load).
        let mut persisted_live = 0usize;
        {
            let mut scan = self
                .freq_index
                .range(std::ops::Bound::Unbounded, std::ops::Bound::Unbounded)?;
            while let Some((key, value)) = scan.next_entry()? {
                let (col, rest) = keycode::decode_u8(&key)?;
                let (token, _) = keycode::decode_str(rest)?;
                let freq = u32::from_le_bytes(
                    value
                        .as_slice()
                        .try_into()
                        .map_err(|_| CoreError::BadState("bad freq value".into()))?,
                );
                if freq == 0 {
                    continue;
                }
                persisted_live += 1;
                let live = weights.frequencies().freq(col as usize, &token);
                if live != freq {
                    return Err(CoreError::BadState(format!(
                        "persisted frequency for {token:?} in column {col} is \
                         {freq}, the live weight table says {live}"
                    )));
                }
            }
        }
        if persisted_live != weights.frequencies().distinct_tokens() {
            return Err(CoreError::BadState(format!(
                "frequency index persists {persisted_live} live tokens, the \
                 weight table tracks {} (a maintenance write was lost)",
                weights.frequencies().distinct_tokens()
            )));
        }

        // Persisted state row.
        let persisted_n = self
            .state_index
            .get(b"relation_size")?
            .ok_or_else(|| CoreError::BadState("missing relation_size".into()))?;
        let persisted_n = u64::from_le_bytes(
            persisted_n
                .as_slice()
                .try_into()
                .map_err(|_| CoreError::BadState("bad relation_size".into()))?,
        );
        if persisted_n != weights.frequencies().relation_size() {
            return Err(CoreError::BadState(format!(
                "persisted relation size {persisted_n} disagrees with the \
                 live weight table's {}",
                weights.frequencies().relation_size()
            )));
        }
        let persisted_next = self
            .state_index
            .get(b"next_tid")?
            .ok_or_else(|| CoreError::BadState("missing next_tid".into()))?;
        let persisted_next = u32::from_le_bytes(
            persisted_next
                .as_slice()
                .try_into()
                .map_err(|_| CoreError::BadState("bad next_tid".into()))?,
        );
        if let Some(max) = max_tid {
            if persisted_next <= max {
                return Err(CoreError::BadState(format!(
                    "persisted next_tid {persisted_next} is not above the \
                     largest stored tid {max}; a reopen would reissue tids"
                )));
            }
        }
        Ok(MatcherCheck {
            reference_tuples: tuples,
            distinct_tokens: weights.frequencies().distinct_tokens(),
            eti,
        })
    }
}

/// Report from [`FuzzyMatcher::check_invariants`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatcherCheck {
    /// Tuples in the reference relation.
    pub reference_tuples: usize,
    /// Distinct `(column, token)` pairs in the live weight table.
    pub distinct_tokens: usize,
    /// The ETI's own report.
    pub eti: crate::eti::EtiCheck,
}

/// Borrow-friendly [`ReferenceFetch`] implementation for the query layer.
struct Fetcher<'a> {
    matcher: &'a FuzzyMatcher,
    tokenizer: &'a Tokenizer,
}

impl ReferenceFetch for Fetcher<'_> {
    fn fetch(&self, tid: u32) -> Result<TokenizedRecord> {
        Ok(self.matcher.fetch_reference(tid)?.tokenize(self.tokenizer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_store::Database;

    fn org_config() -> Config {
        Config::default().with_columns(&["name", "city", "state", "zip"])
    }

    /// Table 1 from the paper.
    fn table1() -> Vec<Record> {
        vec![
            Record::new(&["Boeing Company", "Seattle", "WA", "98004"]),
            Record::new(&["Bon Corporation", "Seattle", "WA", "98014"]),
            Record::new(&["Companions", "Seattle", "WA", "98024"]),
        ]
    }

    fn build_table1(db: &Database) -> FuzzyMatcher {
        FuzzyMatcher::build(db, "org", table1().into_iter(), org_config()).unwrap()
    }

    #[test]
    fn paper_inputs_match_their_targets() {
        let db = Database::in_memory().unwrap();
        let m = build_table1(&db);
        // Table 2: I1–I3 target R1 (tid 1). (I4's swapped-token case is
        // exercised separately with the transposition extension.)
        let inputs = [
            Record::new(&["Beoing Company", "Seattle", "WA", "98004"]),
            Record::new(&["Beoing Co.", "Seattle", "WA", "98004"]),
            Record::new(&["Boeing Corporation", "Seattle", "WA", "98004"]),
        ];
        for (i, input) in inputs.iter().enumerate() {
            for mode in [QueryMode::Basic, QueryMode::Osc] {
                let result = m.lookup_with(input, 1, 0.0, mode).unwrap();
                assert_eq!(
                    result.matches[0].tid,
                    1,
                    "I{} should match R1 under {mode:?}",
                    i + 1
                );
                assert!(result.matches[0].similarity > 0.5);
            }
        }
    }

    #[test]
    fn i4_with_null_state_matches_r1_under_idf_skew() {
        // I4 = [Company Beoing, Seattle, NULL, 98014]: the paper's §4.1
        // walkthrough of this input assumes realistic IDF skew ('company'
        // is a frequent, low-weight token — w = 0.25 in their example).
        // On the bare 3-row Table 1 every name token is equally rare, so we
        // add filler organizations "<unique> company" to create the skew;
        // then fms tolerates the missing state, the swapped tokens, and the
        // misleading zip, and ranks R1 above R3 ("Companions").
        let db = Database::in_memory().unwrap();
        let mut rows = table1();
        for i in 0..20 {
            rows.push(Record::new(&[
                &format!("zorg{i} company"),
                "Tacoma",
                "WA",
                &format!("9{i:04}"),
            ]));
        }
        let m = FuzzyMatcher::build(&db, "org", rows.into_iter(), org_config()).unwrap();
        let input = Record::from_options(vec![
            Some("Company Beoing".into()),
            Some("Seattle".into()),
            None,
            Some("98014".into()),
        ]);
        let result = m.lookup(&input, 3, 0.0).unwrap();
        assert!(!result.matches.is_empty());
        let tids: Vec<u32> = result.matches.iter().map(|m| m.tid).collect();
        let pos1 = tids.iter().position(|&t| t == 1);
        let pos3 = tids.iter().position(|&t| t == 3);
        match (pos1, pos3) {
            (Some(p1), Some(p3)) => assert!(p1 < p3, "R1 must beat R3: {tids:?}"),
            (Some(_), None) => {}
            other => panic!("unexpected ranking {other:?} in {tids:?}"),
        }
    }

    #[test]
    fn exact_match_scores_one() {
        let db = Database::in_memory().unwrap();
        let m = build_table1(&db);
        let result = m
            .lookup(
                &Record::new(&["Boeing Company", "Seattle", "WA", "98004"]),
                1,
                0.0,
            )
            .unwrap();
        assert_eq!(result.matches[0].tid, 1);
        assert!((result.matches[0].similarity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_filters_matches() {
        let db = Database::in_memory().unwrap();
        let m = build_table1(&db);
        let garbage = Record::new(&["zzzzqqqq xyxyxy", "nowhere", "ZZ", "00000"]);
        let result = m.lookup(&garbage, 3, 0.9).unwrap();
        assert!(
            result.matches.is_empty(),
            "garbage should not clear c=0.9: {:?}",
            result.matches
        );
    }

    #[test]
    fn k_limits_result_count() {
        let db = Database::in_memory().unwrap();
        let m = build_table1(&db);
        let input = Record::new(&["Company", "Seattle", "WA", "98004"]);
        let r1 = m.lookup(&input, 1, 0.0).unwrap();
        assert!(r1.matches.len() <= 1);
        let r3 = m.lookup(&input, 3, 0.0).unwrap();
        assert!(r3.matches.len() >= r1.matches.len());
        // Result ordering: non-increasing similarity.
        for w in r3.matches.windows(2) {
            assert!(w[0].similarity >= w[1].similarity);
        }
        let r0 = m.lookup(&input, 0, 0.0).unwrap();
        assert!(r0.matches.is_empty());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let db = Database::in_memory().unwrap();
        let m = build_table1(&db);
        let bad = Record::new(&["only", "three", "columns"]);
        assert!(matches!(
            m.lookup(&bad, 1, 0.0),
            Err(CoreError::Arity {
                expected: 4,
                got: 3
            })
        ));
        assert!(m.insert_reference(&bad).is_err());
    }

    #[test]
    fn empty_input_yields_no_matches() {
        let db = Database::in_memory().unwrap();
        let m = build_table1(&db);
        let empty = Record::from_options(vec![None, None, None, None]);
        let result = m.lookup(&empty, 3, 0.0).unwrap();
        assert!(result.matches.is_empty());
    }

    #[test]
    fn persistence_reopen_and_requery() {
        let mut path = std::env::temp_dir();
        path.push(format!("fm-core-matcher-{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let db = Database::open_file(&path, 256).unwrap();
            let m = FuzzyMatcher::build(&db, "org", table1().into_iter(), org_config()).unwrap();
            assert_eq!(m.relation_size(), 3);
            db.flush().unwrap();
        }
        {
            let db = Database::open_file(&path, 256).unwrap();
            let m = FuzzyMatcher::open(&db, "org").unwrap();
            assert_eq!(m.relation_size(), 3);
            assert_eq!(m.config().strategy_label(), "Q+T_3");
            let result = m
                .lookup(
                    &Record::new(&["Beoing Company", "Seattle", "WA", "98004"]),
                    1,
                    0.0,
                )
                .unwrap();
            assert_eq!(result.matches[0].tid, 1);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_missing_matcher_fails() {
        let db = Database::in_memory().unwrap();
        assert!(matches!(
            FuzzyMatcher::open(&db, "nope"),
            Err(CoreError::BadState(_))
        ));
    }

    #[test]
    fn maintenance_insert_then_match() {
        let db = Database::in_memory().unwrap();
        let m = build_table1(&db);
        let tid = m
            .insert_reference(&Record::new(&[
                "Microsoft Corporation",
                "Redmond",
                "WA",
                "98052",
            ]))
            .unwrap();
        assert_eq!(tid, 4);
        assert_eq!(m.relation_size(), 4);
        // The new tuple is findable through the ETI, with errors.
        let result = m
            .lookup(
                &Record::new(&["Microsft Corp", "Redmond", "WA", "98052"]),
                1,
                0.0,
            )
            .unwrap();
        assert_eq!(result.matches[0].tid, 4);
        // And fetchable directly.
        let rec = m.fetch_reference(4).unwrap();
        assert_eq!(rec.get(0), Some("Microsoft Corporation"));
    }

    #[test]
    fn maintenance_persists_across_reopen() {
        let mut path = std::env::temp_dir();
        path.push(format!("fm-core-maint-{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let db = Database::open_file(&path, 256).unwrap();
            let m = FuzzyMatcher::build(&db, "org", table1().into_iter(), org_config()).unwrap();
            m.insert_reference(&Record::new(&["Amazon Inc", "Seattle", "WA", "98109"]))
                .unwrap();
            db.flush().unwrap();
        }
        {
            let db = Database::open_file(&path, 256).unwrap();
            let m = FuzzyMatcher::open(&db, "org").unwrap();
            assert_eq!(m.relation_size(), 4);
            let result = m
                .lookup(
                    &Record::new(&["Amzon Inc", "Seattle", "WA", "98109"]),
                    1,
                    0.0,
                )
                .unwrap();
            assert_eq!(result.matches[0].tid, 4);
            // tid counter continues correctly.
            let tid = m
                .insert_reference(&Record::new(&["Next Corp", "Kent", "WA", "98030"]))
                .unwrap();
            assert_eq!(tid, 5);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn scan_reference_round_trips() {
        let db = Database::in_memory().unwrap();
        let m = build_table1(&db);
        let rows = m.scan_reference().unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].0, 1);
        assert_eq!(rows[0].1.get(0), Some("Boeing Company"));
        assert_eq!(rows[2].1.get(3), Some("98024"));
    }

    #[test]
    fn duplicate_prefix_rejected() {
        let db = Database::in_memory().unwrap();
        let _m = build_table1(&db);
        assert!(FuzzyMatcher::build(&db, "org", table1().into_iter(), org_config()).is_err());
    }

    #[test]
    fn stats_are_populated() {
        let db = Database::in_memory().unwrap();
        let m = build_table1(&db);
        let result = m
            .lookup(
                &Record::new(&["Beoing Company", "Seattle", "WA", "98004"]),
                1,
                0.0,
            )
            .unwrap();
        assert!(result.stats.eti_lookups > 0);
        assert!(result.stats.tids_processed > 0);
        assert!(result.stats.candidates_fetched > 0);
        let bs = m.build_stats().unwrap();
        assert_eq!(bs.reference_tuples, 3);
        assert!(bs.pre_eti_records > 0);
        assert!(bs.eti_groups > 0);
    }

    #[test]
    fn trace_is_populated_consistent_and_mirrors_stats() {
        let db = Database::in_memory().unwrap();
        let m = build_table1(&db);
        let input = Record::new(&["Beoing Company", "Seattle", "WA", "98004"]);
        for mode in [QueryMode::Basic, QueryMode::Osc] {
            let result = m.lookup_with(&input, 1, 0.0, mode).unwrap();
            let t = result.trace;
            t.check_consistent().unwrap();
            assert!(t.qgrams_probed > 0);
            assert!(t.eti_rows > 0, "every probe should touch B+-tree rows");
            assert!(t.tid_list_entries > 0);
            assert!(t.tid_list_max > 0);
            assert!(t.fms_evals > 0);
            // The legacy stats block is exactly the trace's projection.
            assert_eq!(result.stats, crate::query::QueryStats::from(&t));
        }
    }

    #[test]
    fn metrics_snapshot_accumulates_lookups() {
        let db = Database::in_memory().unwrap();
        let m = build_table1(&db);
        assert_eq!(m.metrics_snapshot().lookups, 0);
        let input = Record::new(&["Beoing Company", "Seattle", "WA", "98004"]);
        let mut expected = crate::metrics::LookupTrace::default();
        let mut latency = 0u64;
        for _ in 0..3 {
            let t = m.lookup(&input, 1, 0.0).unwrap().trace;
            expected.qgrams_probed += t.qgrams_probed;
            expected.tids_processed += t.tids_processed;
            expected.fms_evals += t.fms_evals;
            latency += t.latency_us;
        }
        let snap = m.metrics_snapshot();
        assert_eq!(snap.lookups, 3);
        assert_eq!(snap.qgrams_probed, expected.qgrams_probed);
        assert_eq!(snap.tids_processed, expected.tids_processed);
        assert_eq!(snap.fms_evals, expected.fms_evals);
        assert_eq!(snap.latency.count, 3);
        assert_eq!(snap.latency.sum_us, latency);
        snap.check_invariants().unwrap();
    }

    #[test]
    fn lookup_batch_thread_clamp_regression() {
        // Regression for the old `.max(1).min(len.max(1))` chain: every
        // combination of degenerate thread counts and batch sizes must
        // neither panic nor lose results.
        let db = Database::in_memory().unwrap();
        let m = build_table1(&db);
        let inputs: Vec<Record> = (0..3)
            .map(|_| Record::new(&["Beoing Company", "Seattle", "WA", "98004"]))
            .collect();
        for threads in [0, 1, 2, 3, 64, usize::MAX] {
            // Empty batch: always fine, always empty.
            assert!(m.lookup_batch(&[], 1, 0.0, threads).unwrap().is_empty());
            // Oversubscribed: results complete and ordered.
            let results = m.lookup_batch(&inputs, 1, 0.0, threads).unwrap();
            assert_eq!(results.len(), inputs.len());
            for r in &results {
                assert_eq!(r.matches[0].tid, 1);
            }
        }
    }

    #[test]
    fn lookup_batch_worker_panic_surfaces_as_error() {
        // Regression: a panicking worker used to unwind out of the scope
        // (or, before that, silently leave its share unprocessed). The
        // join handles must convert the panic into an error the caller
        // can handle.
        let db = Database::in_memory().unwrap();
        let m = build_table1(&db);
        let input = Record::new(&["Beoing Company", "Seattle", "WA", "98004"]);
        let result = m.batch_execute(6, 3, |i| {
            if i == 4 {
                panic!("injected worker failure {i}");
            }
            m.lookup(&input, 1, 0.0)
        });
        let err = result.unwrap_err().to_string();
        assert!(
            err.contains("worker panicked") && err.contains("injected worker failure 4"),
            "got: {err}"
        );
        // The matcher stays fully usable afterwards.
        let ok = m
            .lookup_batch(std::slice::from_ref(&input), 1, 0.0, 4)
            .unwrap();
        assert_eq!(ok[0].matches[0].tid, 1);
    }

    #[test]
    fn delete_reference_removes_tuple_everywhere() {
        let db = Database::in_memory().unwrap();
        let m = build_table1(&db);
        // R1 matches before deletion.
        let input = Record::new(&["Beoing Company", "Seattle", "WA", "98004"]);
        assert_eq!(m.lookup(&input, 1, 0.0).unwrap().matches[0].tid, 1);
        let removed = m.delete_reference(1).unwrap();
        assert_eq!(removed.get(0), Some("Boeing Company"));
        assert_eq!(m.relation_size(), 2);
        // Direct fetch fails; lookup no longer returns tid 1.
        assert!(m.fetch_reference(1).is_err());
        let result = m.lookup(&input, 3, 0.0).unwrap();
        assert!(result.matches.iter().all(|x| x.tid != 1), "{result:?}");
        // Deleting again is NotFound.
        assert!(matches!(
            m.delete_reference(1),
            Err(CoreError::Store(StoreError::NotFound(_)))
        ));
        // The remaining tuples still match fine.
        let r2 = m
            .lookup(
                &Record::new(&["Bon Corp", "Seattle", "WA", "98014"]),
                1,
                0.0,
            )
            .unwrap();
        assert_eq!(r2.matches[0].tid, 2);
    }

    #[test]
    fn delete_then_insert_cycle_is_stable() {
        let db = Database::in_memory().unwrap();
        let m = build_table1(&db);
        for round in 0..5u32 {
            let tid = m
                .insert_reference(&Record::new(&[
                    &format!("cyclic corp {round}"),
                    "tacoma",
                    "wa",
                    "98402",
                ]))
                .unwrap();
            let found = m
                .lookup(
                    &Record::new(&[&format!("cyclic corp {round}"), "tacoma", "wa", "98402"]),
                    1,
                    0.0,
                )
                .unwrap();
            assert_eq!(found.matches[0].tid, tid);
            m.delete_reference(tid).unwrap();
        }
        assert_eq!(m.relation_size(), 3);
        // Table 1 still intact.
        let r = m
            .lookup(
                &Record::new(&["Boeing Company", "Seattle", "WA", "98004"]),
                1,
                0.0,
            )
            .unwrap();
        assert!((r.matches[0].similarity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delete_persists_across_reopen() {
        let mut path = std::env::temp_dir();
        path.push(format!("fm-core-delete-{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let db = Database::open_file(&path, 256).unwrap();
            let m = FuzzyMatcher::build(&db, "org", table1().into_iter(), org_config()).unwrap();
            m.delete_reference(2).unwrap();
            db.flush().unwrap();
        }
        {
            let db = Database::open_file(&path, 256).unwrap();
            let m = FuzzyMatcher::open(&db, "org").unwrap();
            assert_eq!(m.relation_size(), 2);
            assert!(m.fetch_reference(2).is_err());
            let r = m
                .lookup(
                    &Record::new(&["Bon Corporation", "Seattle", "WA", "98014"]),
                    1,
                    0.0,
                )
                .unwrap();
            // Best remaining match is not tid 2.
            assert!(r.matches.iter().all(|x| x.tid != 2));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lookup_batch_matches_serial_and_preserves_order() {
        let db = Database::in_memory().unwrap();
        let m = build_table1(&db);
        let inputs: Vec<Record> = (0..40)
            .map(|i| match i % 3 {
                0 => Record::new(&["Beoing Company", "Seattle", "WA", "98004"]),
                1 => Record::new(&["Bon Corp", "Seattle", "WA", "98014"]),
                _ => Record::new(&["Companion", "Seattle", "WA", "98024"]),
            })
            .collect();
        let serial = m.lookup_batch(&inputs, 2, 0.0, 1).unwrap();
        let parallel = m.lookup_batch(&inputs, 2, 0.0, 4).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(
                s.matches.iter().map(|m| m.tid).collect::<Vec<_>>(),
                p.matches.iter().map(|m| m.tid).collect::<Vec<_>>()
            );
        }
        // Order preserved: input i % 3 == 0 must match tid 1.
        assert_eq!(parallel[0].matches[0].tid, 1);
        assert_eq!(parallel[1].matches[0].tid, 2);
        assert_eq!(parallel[2].matches[0].tid, 3);
        // Empty batch and thread oversubscription are fine.
        assert!(m.lookup_batch(&[], 1, 0.0, 8).unwrap().is_empty());
        let one = m.lookup_batch(&inputs[..1], 1, 0.0, 64).unwrap();
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn check_invariants_accepts_built_and_maintained_matcher() {
        let db = Database::in_memory().unwrap();
        let m = build_table1(&db);
        let check = m.check_invariants().unwrap();
        assert_eq!(check.reference_tuples, 3);
        assert!(check.eti.groups > 0);
        // Maintenance churn keeps every cross-object invariant intact.
        let tid = m
            .insert_reference(&Record::new(&[
                "Microsoft Corporation",
                "Redmond",
                "WA",
                "98052",
            ]))
            .unwrap();
        m.delete_reference(2).unwrap();
        m.insert_reference(&Record::new(&["Amazon Inc", "Seattle", "WA", "98109"]))
            .unwrap();
        m.delete_reference(tid).unwrap();
        let check = m.check_invariants().unwrap();
        assert_eq!(check.reference_tuples, 3);
    }

    #[test]
    fn check_invariants_detects_missing_tid_index_entry() {
        let db = Database::in_memory().unwrap();
        let m = build_table1(&db);
        m.tid_index.delete(&tid_key(2)).unwrap();
        let err = m.check_invariants().unwrap_err().to_string();
        assert!(
            err.contains("tid 2") && err.contains("tid index"),
            "got: {err}"
        );
    }

    #[test]
    fn check_invariants_detects_diverged_persisted_frequency() {
        let db = Database::in_memory().unwrap();
        let m = build_table1(&db);
        m.freq_index
            .insert(&freq_key(0, "boeing"), &9u32.to_le_bytes())
            .unwrap();
        let err = m.check_invariants().unwrap_err().to_string();
        assert!(
            err.contains("boeing") && err.contains("persisted"),
            "got: {err}"
        );
    }

    #[test]
    fn check_invariants_detects_stale_relation_size() {
        let db = Database::in_memory().unwrap();
        let m = build_table1(&db);
        m.state_index
            .insert(b"relation_size", &99u64.to_le_bytes())
            .unwrap();
        let err = m.check_invariants().unwrap_err().to_string();
        assert!(err.contains("relation size"), "got: {err}");
    }

    #[test]
    fn check_invariants_detects_rewound_tid_counter() {
        let db = Database::in_memory().unwrap();
        let m = build_table1(&db);
        m.state_index
            .insert(b"next_tid", &2u32.to_le_bytes())
            .unwrap();
        let err = m.check_invariants().unwrap_err().to_string();
        assert!(
            err.contains("next_tid") && err.contains("reissue"),
            "got: {err}"
        );
    }

    #[test]
    fn concurrent_lookups() {
        use std::sync::Arc;
        let db = Database::in_memory().unwrap();
        let m = Arc::new(build_table1(&db));
        let mut handles = Vec::new();
        for t in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let input = if (t + i) % 2 == 0 {
                        Record::new(&["Beoing Company", "Seattle", "WA", "98004"])
                    } else {
                        Record::new(&["Bon Corp", "Seattle", "WA", "98014"])
                    };
                    let result = m.lookup(&input, 1, 0.0).unwrap();
                    assert!(!result.matches.is_empty());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
