//! Matcher configuration.
//!
//! Defaults follow the paper's experimental settings (§6.1): `q = 4`,
//! signature scheme `Q+T` with `H = 3` q-grams (the paper's best-performing
//! strategy), token insertion factor `c_ins = 0.5`, stop q-gram threshold
//! 10 000.

use crate::error::{CoreError, Result};

/// How token signatures are formed (paper §6.2: `Q_H` vs `Q+T_H`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureScheme {
    /// `Q_H`: H min-hash q-grams per token (§4.1/§4.2).
    QGrams,
    /// `Q+T_H`: the token itself as coordinate 0 plus H min-hash q-grams
    /// (§5.1). `Q+T_0` is the tokens-only strategy.
    QGramsPlusToken,
}

impl SignatureScheme {
    /// The paper's display name for this scheme with `h` q-grams,
    /// e.g. `Q_2` or `Q+T_3`.
    pub fn label(self, h: usize) -> String {
        match self {
            SignatureScheme::QGrams => format!("Q_{h}"),
            SignatureScheme::QGramsPlusToken => format!("Q+T_{h}"),
        }
    }
}

/// Cost function for the optional token transposition operation (§5.3):
/// transposing adjacent tokens `(t1, t2)` costs `g(w(t1), w(t2))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TranspositionCost {
    /// `g = (w1 + w2) / 2`.
    Average,
    /// `g = min(w1, w2)`.
    Min,
    /// `g = max(w1, w2)`.
    Max,
    /// A flat cost independent of the weights.
    Constant(f64),
}

impl TranspositionCost {
    /// Evaluate `g(w1, w2)`.
    pub fn cost(self, w1: f64, w2: f64) -> f64 {
        match self {
            TranspositionCost::Average => (w1 + w2) / 2.0,
            TranspositionCost::Min => w1.min(w2),
            TranspositionCost::Max => w1.max(w2),
            TranspositionCost::Constant(c) => c,
        }
    }

    fn code(self) -> (u8, f64) {
        match self {
            TranspositionCost::Average => (1, 0.0),
            TranspositionCost::Min => (2, 0.0),
            TranspositionCost::Max => (3, 0.0),
            TranspositionCost::Constant(c) => (4, c),
        }
    }

    fn from_code(code: u8, arg: f64) -> Result<Option<TranspositionCost>> {
        Ok(match code {
            0 => None,
            1 => Some(TranspositionCost::Average),
            2 => Some(TranspositionCost::Min),
            3 => Some(TranspositionCost::Max),
            4 => Some(TranspositionCost::Constant(arg)),
            other => {
                return Err(CoreError::BadState(format!(
                    "bad transposition code {other}"
                )))
            }
        })
    }
}

/// Which upper bound the OSC stopping test (paper §4.3.2) compares the
/// verified `fms` values against. The paper is internally inconsistent
/// here: its formal test adds the full adjustment term (under which the
/// test can never pass — the bound exceeds 1 until the sweep is nearly
/// done), while its worked example uses the raw score bound
/// ("if `fms(u, R1) ≥ 3.5/4.5`, stop"). See EXPERIMENTS.md for the
/// measured trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OscStopping {
    /// `fms_j ≥ (d_q·w(u) + (2/q)(s_{K+1} + remaining))/w(u)` — the sound
    /// score→fms bound. Preserves accuracy (OSC answers equal the basic
    /// algorithm's w.h.p.) but rarely fires on dirty data. The default.
    #[default]
    Sound,
    /// `fms_j ≥ (s_{K+1} + remaining)/w(u)` — the paper's worked-example
    /// bound. Fires for 50–75%+ of inputs (reproducing Figures 8/10) at
    /// an accuracy cost on heavily corrupted inputs (see the ablation in
    /// EXPERIMENTS.md), because aggregate min-hash scores can rank a
    /// confuser above the true target until `fms` re-ranks them.
    PaperExample,
}

/// Full matcher configuration. Construct with [`Config::default`] and the
/// `with_*` builders; validated by [`Config::validate`] (called by the
/// matcher build).
///
/// ```
/// use fm_core::{Config, SignatureScheme};
///
/// let config = Config::default()
///     .with_columns(&["name", "city", "state", "zip"])
///     .with_signature(SignatureScheme::QGramsPlusToken, 2)
///     .with_q(4)
///     .with_cins(0.5);
/// assert_eq!(config.strategy_label(), "Q+T_2");
/// assert!(config.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Q-gram size (paper default 4).
    pub q: usize,
    /// Min-hash signature size H (number of q-gram coordinates).
    pub h: usize,
    /// Signature scheme: `Q_H` or `Q+T_H`.
    pub scheme: SignatureScheme,
    /// Token insertion factor `c_ins ∈ (0, 1]` (paper default 0.5).
    pub cins: f64,
    /// Q-grams whose tid-list exceeds this become stop q-grams with NULL
    /// tid-lists (paper default 10 000). Set `>= |R|` to disable (required
    /// for the exactness guarantees of Theorems 1–2).
    pub stop_qgram_threshold: usize,
    /// Master seed for the min-hash functions.
    pub seed: u64,
    /// Column names (fixes arity; cosmetic beyond that).
    pub column_names: Vec<String>,
    /// Optional per-column importance weights `W_i` (§5.2). Must be
    /// positive; they are normalized to mean 1 so that uniform weights
    /// coincide with the unweighted matcher.
    pub column_weights: Option<Vec<f64>>,
    /// Optional token transposition operation in `fms` (§5.3).
    pub transposition: Option<TranspositionCost>,
    /// Apply the "insert new tids only while enough weight remains"
    /// optimization (§4.3.1). On by default; off is an ablation knob.
    pub insert_pruning: bool,
    /// Upper bound on reference tuples fetched and verified per query
    /// (0 = unlimited). The score→fms upper bound carries an irreducible
    /// `d_q = 1 − 1/q` slack (see `query`), so on very dirty inputs the
    /// sound early-stop may never trigger; the cap bounds worst-case work
    /// exactly like the candidate limits of production fuzzy-lookup
    /// systems. 64 comfortably covers the paper's measured candidate sets
    /// (~1–60).
    pub max_candidates: usize,
    /// Bound used by the OSC stopping test (see [`OscStopping`]).
    pub osc_stopping: OscStopping,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            q: 4,
            h: 3,
            scheme: SignatureScheme::QGramsPlusToken,
            cins: 0.5,
            stop_qgram_threshold: 10_000,
            seed: 0x5EED_F00D,
            column_names: Vec::new(),
            column_weights: None,
            transposition: None,
            insert_pruning: true,
            max_candidates: 64,
            osc_stopping: OscStopping::default(),
        }
    }
}

impl Config {
    pub fn with_columns(mut self, names: &[&str]) -> Config {
        self.column_names = names.iter().map(|s| s.to_string()).collect();
        self
    }

    pub fn with_q(mut self, q: usize) -> Config {
        self.q = q;
        self
    }

    pub fn with_signature(mut self, scheme: SignatureScheme, h: usize) -> Config {
        self.scheme = scheme;
        self.h = h;
        self
    }

    pub fn with_cins(mut self, cins: f64) -> Config {
        self.cins = cins;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Config {
        self.seed = seed;
        self
    }

    pub fn with_stop_threshold(mut self, t: usize) -> Config {
        self.stop_qgram_threshold = t;
        self
    }

    pub fn with_column_weights(mut self, weights: &[f64]) -> Config {
        self.column_weights = Some(weights.to_vec());
        self
    }

    pub fn with_transposition(mut self, cost: TranspositionCost) -> Config {
        self.transposition = Some(cost);
        self
    }

    pub fn without_insert_pruning(mut self) -> Config {
        self.insert_pruning = false;
        self
    }

    /// Cap on verified candidates per query (0 = unlimited).
    pub fn with_max_candidates(mut self, n: usize) -> Config {
        self.max_candidates = n;
        self
    }

    /// Choose the OSC stopping-test bound.
    pub fn with_osc_stopping(mut self, s: OscStopping) -> Config {
        self.osc_stopping = s;
        self
    }

    /// The paper's display label, e.g. `Q+T_3`.
    pub fn strategy_label(&self) -> String {
        self.scheme.label(self.h)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.column_names.len()
    }

    /// Effective multiplier for column `col` (§5.2): the normalized column
    /// weight, or 1.0 when no weights are configured.
    pub fn column_factor(&self, col: usize) -> f64 {
        match &self.column_weights {
            None => 1.0,
            Some(w) => {
                let mean = w.iter().sum::<f64>() / w.len() as f64;
                w[col] / mean
            }
        }
    }

    /// Check internal consistency.
    pub fn validate(&self) -> Result<()> {
        if self.q == 0 {
            return Err(CoreError::Config("q must be positive".into()));
        }
        if self.h == 0 && self.scheme == SignatureScheme::QGrams {
            return Err(CoreError::Config(
                "Q_0 has no signature at all; use Q+T_0 for a tokens-only index".into(),
            ));
        }
        if !(self.cins > 0.0 && self.cins <= 1.0) {
            return Err(CoreError::Config(format!(
                "cins must be in (0, 1], got {}",
                self.cins
            )));
        }
        if self.column_names.is_empty() {
            return Err(CoreError::Config("column_names must not be empty".into()));
        }
        if let Some(w) = &self.column_weights {
            if w.len() != self.column_names.len() {
                return Err(CoreError::Config(format!(
                    "{} column weights for {} columns",
                    w.len(),
                    self.column_names.len()
                )));
            }
            if w.iter().any(|&x| x <= 0.0 || !x.is_finite()) {
                return Err(CoreError::Config("column weights must be positive".into()));
            }
        }
        if self.stop_qgram_threshold == 0 {
            return Err(CoreError::Config("stop threshold must be positive".into()));
        }
        Ok(())
    }

    /// Serialize for the database catalog (so a matcher reopens with the
    /// exact seeds and scheme it was built with).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.q as u32).to_le_bytes());
        out.extend_from_slice(&(self.h as u32).to_le_bytes());
        out.push(match self.scheme {
            SignatureScheme::QGrams => 0,
            SignatureScheme::QGramsPlusToken => 1,
        });
        out.extend_from_slice(&self.cins.to_le_bytes());
        out.extend_from_slice(&(self.stop_qgram_threshold as u64).to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.push(u8::from(self.insert_pruning));
        out.extend_from_slice(&(self.max_candidates as u64).to_le_bytes());
        out.push(match self.osc_stopping {
            OscStopping::Sound => 0,
            OscStopping::PaperExample => 1,
        });
        let (tcode, targ) = match self.transposition {
            None => (0u8, 0.0),
            Some(t) => t.code(),
        };
        out.push(tcode);
        out.extend_from_slice(&targ.to_le_bytes());
        out.extend_from_slice(&(self.column_names.len() as u32).to_le_bytes());
        for name in &self.column_names {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
        }
        match &self.column_weights {
            None => out.push(0),
            Some(w) => {
                out.push(1);
                for &x in w {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
        }
        out
    }

    /// Deserialize from [`Config::encode`] bytes.
    pub fn decode(bytes: &[u8]) -> Result<Config> {
        // Exact-`N` slice → array as a decode error rather than a panic;
        // cannot fire after a successful `take(N)`.
        fn arr<const N: usize>(bytes: &[u8]) -> Result<[u8; N]> {
            bytes
                .try_into()
                .map_err(|_| CoreError::BadState("truncated config".into()))
        }
        let mut input = bytes;
        let mut take = |n: usize| -> Result<&[u8]> {
            if input.len() < n {
                return Err(CoreError::BadState("truncated config".into()));
            }
            let (head, rest) = input.split_at(n);
            input = rest;
            Ok(head)
        };
        let q = u32::from_le_bytes(arr(take(4)?)?) as usize;
        let h = u32::from_le_bytes(arr(take(4)?)?) as usize;
        let scheme = match take(1)?[0] {
            0 => SignatureScheme::QGrams,
            1 => SignatureScheme::QGramsPlusToken,
            other => return Err(CoreError::BadState(format!("bad scheme code {other}"))),
        };
        let cins = f64::from_le_bytes(arr(take(8)?)?);
        let stop = u64::from_le_bytes(arr(take(8)?)?) as usize;
        let seed = u64::from_le_bytes(arr(take(8)?)?);
        let insert_pruning = take(1)?[0] != 0;
        let max_candidates = u64::from_le_bytes(arr(take(8)?)?) as usize;
        let osc_stopping = match take(1)?[0] {
            0 => OscStopping::Sound,
            1 => OscStopping::PaperExample,
            other => {
                return Err(CoreError::BadState(format!(
                    "bad osc stopping code {other}"
                )))
            }
        };
        let tcode = take(1)?[0];
        let targ = f64::from_le_bytes(arr(take(8)?)?);
        let transposition = TranspositionCost::from_code(tcode, targ)?;
        let ncols = u32::from_le_bytes(arr(take(4)?)?) as usize;
        let mut column_names = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let len = u32::from_le_bytes(arr(take(4)?)?) as usize;
            let name = String::from_utf8(take(len)?.to_vec())
                .map_err(|_| CoreError::BadState("config name not utf-8".into()))?;
            column_names.push(name);
        }
        let column_weights = match take(1)?[0] {
            0 => None,
            _ => {
                let mut w = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    w.push(f64::from_le_bytes(arr(take(8)?)?));
                }
                Some(w)
            }
        };
        Ok(Config {
            q,
            h,
            scheme,
            cins,
            stop_qgram_threshold: stop,
            seed,
            column_names,
            column_weights,
            transposition,
            insert_pruning,
            max_candidates,
            osc_stopping,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Config {
        Config::default().with_columns(&["name", "city", "state", "zip"])
    }

    #[test]
    fn defaults_match_paper_settings() {
        let c = Config::default();
        assert_eq!(c.q, 4);
        assert_eq!(c.cins, 0.5);
        assert_eq!(c.stop_qgram_threshold, 10_000);
        assert_eq!(c.scheme, SignatureScheme::QGramsPlusToken);
    }

    #[test]
    fn labels() {
        assert_eq!(SignatureScheme::QGrams.label(2), "Q_2");
        assert_eq!(SignatureScheme::QGramsPlusToken.label(0), "Q+T_0");
        assert_eq!(base().strategy_label(), "Q+T_3");
    }

    #[test]
    fn validation_catches_bad_configs() {
        assert!(base().validate().is_ok());
        assert!(base().with_q(0).validate().is_err());
        assert!(base().with_cins(0.0).validate().is_err());
        assert!(base().with_cins(1.5).validate().is_err());
        assert!(base()
            .with_signature(SignatureScheme::QGrams, 0)
            .validate()
            .is_err());
        assert!(base()
            .with_signature(SignatureScheme::QGramsPlusToken, 0)
            .validate()
            .is_ok());
        assert!(Config::default().validate().is_err()); // no columns
        assert!(base().with_column_weights(&[1.0]).validate().is_err());
        assert!(base()
            .with_column_weights(&[1.0, 1.0, -2.0, 1.0])
            .validate()
            .is_err());
        assert!(base()
            .with_column_weights(&[2.0, 1.0, 1.0, 4.0])
            .validate()
            .is_ok());
        assert!(base().with_stop_threshold(0).validate().is_err());
    }

    #[test]
    fn column_factor_normalized_to_mean_one() {
        let c = base().with_column_weights(&[2.0, 1.0, 1.0, 4.0]);
        let mean: f64 = (0..4).map(|i| c.column_factor(i)).sum::<f64>() / 4.0;
        assert!((mean - 1.0).abs() < 1e-12);
        assert!(c.column_factor(3) > c.column_factor(1));
        // No weights: factor 1 everywhere.
        assert_eq!(base().column_factor(2), 1.0);
    }

    #[test]
    fn transposition_costs() {
        assert_eq!(TranspositionCost::Average.cost(1.0, 3.0), 2.0);
        assert_eq!(TranspositionCost::Min.cost(1.0, 3.0), 1.0);
        assert_eq!(TranspositionCost::Max.cost(1.0, 3.0), 3.0);
        assert_eq!(TranspositionCost::Constant(0.25).cost(1.0, 3.0), 0.25);
    }

    #[test]
    fn encode_decode_round_trip() {
        let configs = [
            base(),
            base()
                .with_q(3)
                .with_signature(SignatureScheme::QGrams, 2)
                .with_cins(0.7)
                .with_seed(99)
                .with_stop_threshold(500)
                .without_insert_pruning(),
            base()
                .with_column_weights(&[2.0, 1.0, 0.5, 3.0])
                .with_transposition(TranspositionCost::Constant(0.3)),
            base().with_transposition(TranspositionCost::Average),
        ];
        for c in configs {
            let enc = c.encode();
            let dec = Config::decode(&enc).unwrap();
            assert_eq!(dec, c);
        }
    }

    #[test]
    fn decode_rejects_truncation() {
        let enc = base().encode();
        for cut in [0, 5, enc.len() - 1] {
            assert!(Config::decode(&enc[..cut]).is_err(), "cut {cut}");
        }
    }
}
