//! Structured tracing: RAII spans, a per-thread span slab, and a
//! fixed-capacity "flight recorder" of recent and slow traces.
//!
//! [`metrics`](crate::metrics) answers *how much* work a query did;
//! this module answers *where the time went* — the per-phase cost
//! decomposition behind the paper's Figures 6–10. Design constraints,
//! in order:
//!
//! * **Always on, allocation-free on the hot path.** Every thread owns a
//!   preallocated span slab ([`MAX_SPANS`] records); opening a span is a
//!   `thread_local` borrow, a bump, and one monotonic clock read. A query
//!   that would overflow the slab keeps running and counts the overflow
//!   in `dropped_spans` instead of allocating.
//! * **Wait-free publication.** A finished trace is copied into a ring
//!   slot claimed with a relaxed `fetch_add`; the copy itself is guarded
//!   by a per-slot `try_lock` so a *writer never blocks* — under
//!   contention the trace is dropped and counted. (`fm-core` is
//!   `forbid(unsafe_code)`, so this is the honest std-only approximation
//!   of a seqlock: readers lock, writers try-lock.) Relaxed atomics are
//!   confined to this module and `metrics` under the `xtask lint`
//!   boundary.
//! * **Two retention classes.** The `recent` ring keeps the last
//!   [`RECENT_CAPACITY`] completed traces of any speed; the `slow` ring
//!   keeps the last [`SLOW_CAPACITY`] traces whose root span exceeded the
//!   configurable slow-query threshold, so a burst of fast queries cannot
//!   evict the one you care about.
//!
//! A trace is a tree: span 0 is the root (`query` or `build`), every
//! other span holds the index of its parent, and timestamps are
//! microseconds since a process-wide epoch. The query root additionally
//! carries the query's [`LookupTrace`] counters, so counters and timings
//! travel together. Exporters: [`chrome_trace_json`] (loadable in
//! Perfetto / `chrome://tracing`) and [`flame_summary`] (per-phase
//! totals plus p50/p95/p99 from the latency histogram).
//!
//! Compile tracing out entirely with
//! `--no-default-features` on `fm-core` (the `trace` feature): every
//! entry point collapses to an inert constant branch.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

use crate::metrics::{LatencySnapshot, LookupTrace};

/// Per-thread span slab capacity: a trace keeps at most this many spans;
/// extras are counted in [`CompletedTrace::dropped_spans`].
pub const MAX_SPANS: usize = 256;

/// Completed traces retained regardless of speed.
pub const RECENT_CAPACITY: usize = 64;

/// Slow traces retained (root duration ≥ the slow threshold).
pub const SLOW_CAPACITY: usize = 32;

/// Default slow-query threshold, microseconds (10 ms).
pub const DEFAULT_SLOW_THRESHOLD_US: u64 = 10_000;

/// Sentinel parent index for the root span.
pub const NO_PARENT: u32 = u32::MAX;

/// Tracing compiled in? (`trace` is a default feature of `fm-core`.)
pub const COMPILED: bool = cfg!(feature = "trace");

/// Which pipeline a trace covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceKind {
    /// One `FuzzyMatcher` lookup: tokenize → signature probe → score
    /// table → prune → fetch → `fms` verify (→ OSC rounds).
    #[default]
    Query,
    /// One ETI build / maintenance pass: pre-ETI generation, external
    /// sort runs + merge, streaming group-by, WAL checkpoint.
    Build,
}

impl TraceKind {
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::Query => "query",
            TraceKind::Build => "build",
        }
    }
}

/// One closed span: a named interval with a parent link. Timestamps are
/// microseconds since the process trace epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Phase name (static: `"tokenize"`, `"probe"`, `"fms"`, …).
    pub name: &'static str,
    /// Index of the enclosing span in the trace, [`NO_PARENT`] for root.
    pub parent: u32,
    pub start_us: u64,
    pub end_us: u64,
}

impl SpanRecord {
    #[must_use]
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// A finished trace as read back from the flight recorder.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompletedTrace {
    /// Monotone publication number (process-wide, 1-based).
    pub seq: u64,
    pub kind: TraceKind,
    /// Span tree in open order; index 0 is the root.
    pub spans: Vec<SpanRecord>,
    /// The query's scalar counters (query traces only).
    pub counters: Option<LookupTrace>,
    /// Spans discarded because the slab was full.
    pub dropped_spans: u32,
}

impl CompletedTrace {
    /// Root-span duration in microseconds (0 for an empty trace).
    #[must_use]
    pub fn total_us(&self) -> u64 {
        self.spans.first().map_or(0, SpanRecord::duration_us)
    }

    /// Structural invariants every recorded trace obeys: exactly one
    /// root at index 0, every child's parent precedes it, every child's
    /// interval nests inside its parent's, and no span ends before it
    /// starts. The property suite drives random span shapes through the
    /// recorder and asserts this on everything read back.
    pub fn check_well_formed(&self) -> Result<(), String> {
        let Some(root) = self.spans.first() else {
            return Err("trace has no spans".into());
        };
        if root.parent != NO_PARENT {
            return Err(format!("span 0 is not a root (parent {})", root.parent));
        }
        for (i, s) in self.spans.iter().enumerate() {
            if s.end_us < s.start_us {
                return Err(format!(
                    "span {i} `{}` ends at {} before starting at {}",
                    s.name, s.end_us, s.start_us
                ));
            }
            if i == 0 {
                continue;
            }
            if s.parent == NO_PARENT {
                return Err(format!("span {i} `{}` is an orphan second root", s.name));
            }
            let p = s.parent as usize;
            if p >= i {
                return Err(format!("span {i} `{}` links forward to parent {p}", s.name));
            }
            let parent = &self.spans[p];
            if s.start_us < parent.start_us || s.end_us > parent.end_us {
                return Err(format!(
                    "span {i} `{}` [{}, {}] escapes parent `{}` [{}, {}]",
                    s.name, s.start_us, s.end_us, parent.name, parent.start_us, parent.end_us
                ));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Clock

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process trace epoch.
#[must_use]
pub fn now_us() -> u64 {
    // 2^64 µs ≈ 584k years; the u128 → u64 narrowing cannot saturate in
    // practice.
    epoch().elapsed().as_micros() as u64
}

// ---------------------------------------------------------------------------
// Per-thread collector

struct Collector {
    spans: Vec<SpanRecord>,
    /// Open span indices, innermost last. Non-empty iff `active` (the
    /// root stays open for the whole trace).
    stack: Vec<u32>,
    dropped: u32,
    active: bool,
    kind: TraceKind,
    counters: Option<LookupTrace>,
}

impl Collector {
    fn new() -> Collector {
        Collector {
            spans: Vec::with_capacity(MAX_SPANS),
            stack: Vec::with_capacity(64),
            dropped: 0,
            active: false,
            kind: TraceKind::Query,
            counters: None,
        }
    }
}

thread_local! {
    static COLLECTOR: RefCell<Collector> = RefCell::new(Collector::new());
    /// Test hook: a per-thread recorder that replaces the process-wide
    /// one inside [`with_recorder`].
    static OVERRIDE: RefCell<Option<Arc<FlightRecorder>>> = const { RefCell::new(None) };
}

/// Runtime master switch (relaxed: an independent flag, not an ordering
/// edge). Disabled tracing costs one load per span.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enable or disable span collection process-wide. Traces already in the
/// flight recorder are kept.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

#[must_use]
pub fn enabled() -> bool {
    COMPILED && ENABLED.load(Ordering::Relaxed)
}

/// Root guard for one traced pipeline run. Dropping it closes the root
/// span and publishes the trace to the flight recorder.
#[must_use = "dropping the guard immediately records an empty trace"]
pub struct TraceGuard {
    armed: bool,
}

/// Open a root span and arm the current thread's collector. Returns an
/// inert guard when tracing is off or a trace is already active on this
/// thread (nested roots never clobber the outer trace).
pub fn start(kind: TraceKind) -> TraceGuard {
    if !enabled() {
        return TraceGuard { armed: false };
    }
    install_store_hooks();
    COLLECTOR.with(|cell| {
        let mut c = cell.borrow_mut();
        if c.active {
            return TraceGuard { armed: false };
        }
        c.active = true;
        c.kind = kind;
        c.counters = None;
        c.dropped = 0;
        c.spans.clear();
        c.stack.clear();
        c.spans.push(SpanRecord {
            name: kind.as_str(),
            parent: NO_PARENT,
            start_us: now_us(),
            end_us: 0,
        });
        c.stack.push(0);
        TraceGuard { armed: true }
    })
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        COLLECTOR.with(|cell| {
            let mut c = cell.borrow_mut();
            let end = now_us();
            // Close any spans a panic or early return left open, root last.
            while let Some(idx) = c.stack.pop() {
                c.spans[idx as usize].end_us = end;
            }
            c.active = false;
            let published = (c.kind, c.counters.take(), c.dropped);
            OVERRIDE.with(|o| {
                let o = o.borrow();
                let rec = o.as_deref().unwrap_or_else(|| recorder());
                rec.publish(published.0, &c.spans, published.1, published.2);
            });
        });
    }
}

/// Attach the query's scalar counters to the active trace (no-op when no
/// trace is active on this thread).
pub fn attach_counters(t: &LookupTrace) {
    if !COMPILED {
        return;
    }
    COLLECTOR.with(|cell| {
        let mut c = cell.borrow_mut();
        if c.active {
            c.counters = Some(*t);
        }
    });
}

/// RAII handle for one phase span; closes on drop.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing"]
pub struct Span {
    idx: u32,
}

const INERT: u32 = u32::MAX;

/// Open a span under the innermost open span. Inert (and free beyond one
/// flag load) when tracing is off or no trace is active on this thread.
pub fn span(name: &'static str) -> Span {
    Span {
        idx: open_span(name),
    }
}

fn open_span(name: &'static str) -> u32 {
    if !COMPILED {
        return INERT;
    }
    COLLECTOR.with(|cell| {
        let mut c = cell.borrow_mut();
        if !c.active {
            return INERT;
        }
        if c.spans.len() >= MAX_SPANS {
            c.dropped += 1;
            return INERT;
        }
        let parent = c.stack.last().copied().unwrap_or(0);
        let idx = c.spans.len() as u32;
        c.spans.push(SpanRecord {
            name,
            parent,
            start_us: now_us(),
            end_us: 0,
        });
        c.stack.push(idx);
        idx
    })
}

fn close_span(idx: u32) {
    if idx == INERT {
        return;
    }
    COLLECTOR.with(|cell| {
        let mut c = cell.borrow_mut();
        let end = now_us();
        // Spans drop LIFO under RAII; if an inner span leaked past its
        // scope, close the stragglers on the way down (never the root).
        while let Some(&top) = c.stack.last() {
            if top < idx || top == 0 {
                break;
            }
            c.stack.pop();
            c.spans[top as usize].end_us = end;
            if top == idx {
                break;
            }
        }
    });
}

impl Drop for Span {
    fn drop(&mut self) {
        close_span(self.idx);
    }
}

/// Record a zero-duration marker span (e.g. `apx_prune` decision points).
pub fn instant(name: &'static str) {
    if !COMPILED {
        return;
    }
    COLLECTOR.with(|cell| {
        let mut c = cell.borrow_mut();
        if !c.active {
            return;
        }
        if c.spans.len() >= MAX_SPANS {
            c.dropped += 1;
            return;
        }
        let parent = c.stack.last().copied().unwrap_or(0);
        let t = now_us();
        c.spans.push(SpanRecord {
            name,
            parent,
            start_us: t,
            end_us: t,
        });
    });
}

// ---------------------------------------------------------------------------
// fm-store bridge

/// Forwards `fm_store::hooks` span callbacks into the thread's collector.
/// `fm-store` sits below `fm-core` in the layering, so it exposes a sink
/// trait instead of calling us; tokens are slab indices.
struct CoreSink;

static CORE_SINK: CoreSink = CoreSink;

impl fm_store::hooks::SpanSink for CoreSink {
    fn begin(&self, name: &'static str) -> u64 {
        u64::from(open_span(name))
    }

    fn end(&self, token: u64) {
        close_span(token as u32);
    }
}

/// Install the `fm-store` span bridge (idempotent; called on first
/// recorder use and by the matcher entry points).
pub fn install_store_hooks() {
    fm_store::hooks::install_span_sink(&CORE_SINK);
}

// ---------------------------------------------------------------------------
// Flight recorder

/// Per-slot payload; `seq == 0` means never written.
struct Slot {
    seq: u64,
    kind: TraceKind,
    spans: Vec<SpanRecord>,
    counters: Option<LookupTrace>,
    dropped_spans: u32,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: 0,
            kind: TraceKind::Query,
            spans: Vec::with_capacity(MAX_SPANS),
            counters: None,
            dropped_spans: 0,
        }
    }
}

/// A fixed-capacity ring of trace slots. Writers claim a slot with a
/// relaxed `fetch_add` and `try_lock` it — publication never blocks the
/// query thread; a contended slot drops the trace and bumps a counter.
struct Ring {
    slots: Box<[Mutex<Slot>]>,
    next: AtomicU64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        let slots = (0..capacity.max(1))
            .map(|_| Mutex::new(Slot::empty()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring {
            slots,
            next: AtomicU64::new(0),
        }
    }

    fn store(
        &self,
        seq: u64,
        kind: TraceKind,
        spans: &[SpanRecord],
        counters: Option<LookupTrace>,
        dropped_spans: u32,
        contended: &AtomicU64,
    ) {
        let i = (self.next.fetch_add(1, Ordering::Relaxed) as usize) % self.slots.len();
        match self.slots[i].try_lock() {
            Some(mut slot) => {
                slot.seq = seq;
                slot.kind = kind;
                slot.counters = counters;
                slot.dropped_spans = dropped_spans;
                slot.spans.clear();
                // Slot capacity is MAX_SPANS and the collector slab never
                // exceeds it, so this extend never reallocates.
                slot.spans.extend_from_slice(spans);
            }
            None => {
                contended.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn drain_into(&self, out: &mut Vec<CompletedTrace>) {
        for slot in &self.slots {
            let slot = slot.lock();
            if slot.seq == 0 {
                continue;
            }
            out.push(CompletedTrace {
                seq: slot.seq,
                kind: slot.kind,
                spans: slot.spans.clone(),
                counters: slot.counters,
                dropped_spans: slot.dropped_spans,
            });
        }
    }

    fn clear(&self) {
        for slot in &self.slots {
            slot.lock().seq = 0;
        }
    }
}

/// The flight recorder: recent + slow rings plus publication counters.
pub struct FlightRecorder {
    recent: Ring,
    slow: Ring,
    slow_threshold_us: AtomicU64,
    seq: AtomicU64,
    contended_drops: AtomicU64,
}

impl FlightRecorder {
    /// A standalone recorder (tests); production code shares the
    /// process-wide one behind [`recorder`].
    #[must_use]
    pub fn with_capacity(recent: usize, slow: usize) -> FlightRecorder {
        FlightRecorder {
            recent: Ring::new(recent),
            slow: Ring::new(slow),
            slow_threshold_us: AtomicU64::new(DEFAULT_SLOW_THRESHOLD_US),
            seq: AtomicU64::new(0),
            contended_drops: AtomicU64::new(0),
        }
    }

    fn publish(
        &self,
        kind: TraceKind,
        spans: &[SpanRecord],
        counters: Option<LookupTrace>,
        dropped_spans: u32,
    ) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        self.recent.store(
            seq,
            kind,
            spans,
            counters,
            dropped_spans,
            &self.contended_drops,
        );
        let total = spans.first().map_or(0, SpanRecord::duration_us);
        if total >= self.slow_threshold_us.load(Ordering::Relaxed) {
            self.slow.store(
                seq,
                kind,
                spans,
                counters,
                dropped_spans,
                &self.contended_drops,
            );
        }
    }

    /// Traces whose root lasted at least this many µs are additionally
    /// retained in the slow ring.
    pub fn set_slow_threshold_us(&self, us: u64) {
        self.slow_threshold_us.store(us, Ordering::Relaxed);
    }

    #[must_use]
    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_threshold_us.load(Ordering::Relaxed)
    }

    /// Traces published so far (including any dropped under contention).
    #[must_use]
    pub fn published(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Traces dropped because their ring slot was locked by a reader.
    #[must_use]
    pub fn contended_drops(&self) -> u64 {
        self.contended_drops.load(Ordering::Relaxed)
    }

    /// The retained recent traces, oldest first.
    #[must_use]
    pub fn recent(&self) -> Vec<CompletedTrace> {
        let mut out = Vec::new();
        self.recent.drain_into(&mut out);
        out.sort_by_key(|t| t.seq);
        out
    }

    /// Recent ∪ slow, deduplicated by seq, oldest first.
    #[must_use]
    pub fn all(&self) -> Vec<CompletedTrace> {
        let mut out = Vec::new();
        self.recent.drain_into(&mut out);
        self.slow.drain_into(&mut out);
        out.sort_by_key(|t| t.seq);
        out.dedup_by_key(|t| t.seq);
        out
    }

    /// The `k` slowest retained traces, slowest first.
    #[must_use]
    pub fn slowest(&self, k: usize) -> Vec<CompletedTrace> {
        let mut out = self.all();
        out.sort_by_key(|t| std::cmp::Reverse(t.total_us()));
        out.truncate(k);
        out
    }

    /// Forget all retained traces (threshold and counters are kept).
    pub fn clear(&self) {
        self.recent.clear();
        self.slow.clear();
    }
}

/// The process-wide flight recorder.
pub fn recorder() -> &'static FlightRecorder {
    static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();
    RECORDER.get_or_init(|| {
        install_store_hooks();
        FlightRecorder::with_capacity(RECENT_CAPACITY, SLOW_CAPACITY)
    })
}

/// Run `f` with a per-thread recorder replacing the process-wide one —
/// the deterministic harness for the property suite and the CLI tests.
pub fn with_recorder<R>(rec: Arc<FlightRecorder>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<FlightRecorder>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            OVERRIDE.with(|o| *o.borrow_mut() = prev);
        }
    }
    install_store_hooks();
    let prev = OVERRIDE.with(|o| o.borrow_mut().replace(rec));
    let _restore = Restore(prev);
    f()
}

// ---------------------------------------------------------------------------
// Exporters

fn escape_json(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_counter_args(out: &mut String, t: &LookupTrace) {
    out.push_str(&format!(
        "{{\"qgrams_probed\":{},\"stop_qgrams\":{},\"eti_rows\":{},\
         \"tid_list_entries\":{},\"tids_processed\":{},\"candidates\":{},\
         \"apx_pruned\":{},\"candidates_fetched\":{},\"fms_evals\":{},\
         \"osc_attempts\":{},\"osc_round\":{},\"latency_us\":{}}}",
        t.qgrams_probed,
        t.stop_qgrams,
        t.eti_rows,
        t.tid_list_entries,
        t.tids_processed,
        t.candidates,
        t.apx_pruned,
        t.candidates_fetched,
        t.fms_evals,
        t.osc_attempts,
        t.osc_round
            .map_or_else(|| "null".to_string(), |r| r.to_string()),
        t.latency_us,
    ));
}

/// Serialize traces as Chrome trace-event JSON (`"X"` complete events;
/// open the file in Perfetto or `chrome://tracing`). Each trace gets its
/// own `tid` row; the root event carries the query counters as `args`.
#[must_use]
pub fn chrome_trace_json(traces: &[CompletedTrace]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for trace in traces {
        for (i, s) in trace.spans.iter().enumerate() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":\"");
            escape_json(s.name, &mut out);
            out.push_str("\",\"cat\":\"");
            out.push_str(trace.kind.as_str());
            out.push_str("\",\"ph\":\"X\",\"ts\":");
            out.push_str(&s.start_us.to_string());
            out.push_str(",\"dur\":");
            out.push_str(&s.duration_us().to_string());
            out.push_str(",\"pid\":1,\"tid\":");
            out.push_str(&trace.seq.to_string());
            if i == 0 {
                if let Some(t) = &trace.counters {
                    out.push_str(",\"args\":");
                    push_counter_args(&mut out, t);
                }
            }
            out.push('}');
        }
    }
    out.push_str("]}");
    out
}

/// Per-phase totals aggregated over `spans` of one name.
#[derive(Debug, Clone, Copy, Default)]
struct PhaseAgg {
    calls: u64,
    total_us: u64,
    child_us: u64,
}

/// Human-readable flame summary: per-phase call counts, total and self
/// time, share of root time, plus latency percentiles when a histogram
/// snapshot is supplied.
#[must_use]
pub fn flame_summary(traces: &[CompletedTrace], latency: Option<&LatencySnapshot>) -> String {
    let mut order: Vec<&'static str> = Vec::new();
    let mut agg: std::collections::HashMap<&'static str, PhaseAgg> =
        std::collections::HashMap::new();
    let mut root_us = 0u64;
    let mut dropped = 0u64;
    for trace in traces {
        root_us += trace.total_us();
        dropped += u64::from(trace.dropped_spans);
        for s in &trace.spans {
            let e = agg.entry(s.name).or_insert_with(|| {
                order.push(s.name);
                PhaseAgg::default()
            });
            e.calls += 1;
            e.total_us += s.duration_us();
            if s.parent != NO_PARENT {
                let parent = trace.spans[s.parent as usize].name;
                agg.entry(parent).or_default().child_us += s.duration_us();
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "flame summary over {} trace(s), {:.3} ms total\n",
        traces.len(),
        root_us as f64 / 1000.0
    ));
    out.push_str(&format!(
        "{:<20} {:>8} {:>12} {:>12} {:>7}\n",
        "phase", "calls", "total ms", "self ms", "share"
    ));
    order.sort_by_key(|name| std::cmp::Reverse(agg.get(name).map_or(0, |a| a.total_us)));
    for name in &order {
        let a = agg.get(name).copied().unwrap_or_default();
        let self_us = a.total_us.saturating_sub(a.child_us);
        let share = if root_us == 0 {
            0.0
        } else {
            100.0 * a.total_us as f64 / root_us as f64
        };
        out.push_str(&format!(
            "{:<20} {:>8} {:>12.3} {:>12.3} {:>6.1}%\n",
            name,
            a.calls,
            a.total_us as f64 / 1000.0,
            self_us as f64 / 1000.0,
            share
        ));
    }
    if dropped > 0 {
        out.push_str(&format!("({dropped} span(s) dropped: slab full)\n"));
    }
    if let Some(l) = latency {
        out.push_str(&format!(
            "latency over {} lookup(s): mean {:.1} µs, p50 {} µs, p95 {} µs, p99 {} µs\n",
            l.count,
            l.mean_us(),
            l.p50_us(),
            l.p95_us(),
            l.p99_us()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_recorder() -> Arc<FlightRecorder> {
        Arc::new(FlightRecorder::with_capacity(4, 2))
    }

    #[test]
    fn trace_round_trip_is_well_formed() {
        let rec = sample_recorder();
        with_recorder(rec.clone(), || {
            let guard = start(TraceKind::Query);
            {
                let _outer = span("probe");
                let _inner = span("fms");
            }
            attach_counters(&LookupTrace {
                qgrams_probed: 3,
                ..LookupTrace::default()
            });
            drop(guard);
        });
        let traces = rec.recent();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        t.check_well_formed().expect("well-formed");
        assert_eq!(t.kind, TraceKind::Query);
        assert_eq!(t.spans.len(), 3);
        assert_eq!(t.spans[0].name, "query");
        assert_eq!(t.spans[1].parent, 0);
        assert_eq!(t.spans[2].parent, 1);
        assert_eq!(t.counters.map(|c| c.qgrams_probed), Some(3));
    }

    #[test]
    fn ring_wraparound_keeps_latest() {
        let rec = sample_recorder();
        with_recorder(rec.clone(), || {
            for _ in 0..10 {
                let g = start(TraceKind::Query);
                let _s = span("probe");
                drop(_s);
                drop(g);
            }
        });
        let traces = rec.recent();
        assert_eq!(traces.len(), 4);
        assert_eq!(rec.published(), 10);
        // Oldest-first, contiguous tail of the publication sequence.
        let seqs: Vec<u64> = traces.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10]);
        for t in &traces {
            t.check_well_formed().expect("well-formed after wrap");
        }
    }

    #[test]
    fn slow_ring_retains_past_recent_eviction() {
        let rec = sample_recorder();
        rec.set_slow_threshold_us(0); // everything is "slow"
        with_recorder(rec.clone(), || {
            let g = start(TraceKind::Build);
            drop(g);
        });
        rec.set_slow_threshold_us(u64::MAX);
        with_recorder(rec.clone(), || {
            for _ in 0..8 {
                let g = start(TraceKind::Query);
                drop(g);
            }
        });
        let all = rec.all();
        assert!(all.iter().any(|t| t.kind == TraceKind::Build));
        assert!(rec.recent().iter().all(|t| t.kind == TraceKind::Query));
    }

    #[test]
    fn spans_outside_a_trace_are_inert() {
        let rec = sample_recorder();
        with_recorder(rec.clone(), || {
            let _s = span("probe"); // no active trace
        });
        assert_eq!(rec.published(), 0);
    }

    #[test]
    fn slab_overflow_drops_and_counts() {
        let rec = sample_recorder();
        with_recorder(rec.clone(), || {
            let g = start(TraceKind::Query);
            for _ in 0..(MAX_SPANS + 10) {
                let s = span("probe");
                drop(s);
            }
            drop(g);
        });
        let traces = rec.recent();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].spans.len(), MAX_SPANS);
        assert_eq!(traces[0].dropped_spans as usize, 11);
        traces[0].check_well_formed().expect("well-formed at cap");
    }

    #[test]
    fn chrome_export_contains_all_spans() {
        let rec = sample_recorder();
        with_recorder(rec.clone(), || {
            let g = start(TraceKind::Query);
            let s = span("tokenize");
            drop(s);
            let s = span("probe");
            instant("apx_prune");
            drop(s);
            drop(g);
        });
        let json = chrome_trace_json(&rec.recent());
        for name in ["query", "tokenize", "probe", "apx_prune"] {
            assert!(json.contains(&format!("\"name\":\"{name}\"")), "{name}");
        }
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let rec = sample_recorder();
        set_enabled(false);
        with_recorder(rec.clone(), || {
            let g = start(TraceKind::Query);
            let _s = span("probe");
            drop(g);
        });
        set_enabled(true);
        assert_eq!(rec.published(), 0);
    }
}
