//! Input and reference tuples.
//!
//! A [`Record`] is a tuple of nullable string attribute values — the shape
//! of both the paper's reference relation `R[tid, A1..An]` (minus the tid,
//! which the matcher assigns) and its erroneous input tuples (which may
//! carry NULLs, e.g. the missing state in input I4 of Table 2).

use fm_text::Tokenizer;

/// A tuple of nullable string attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    values: Vec<Option<String>>,
}

impl Record {
    /// A record from non-null string values.
    pub fn new(values: &[&str]) -> Record {
        Record {
            values: values.iter().map(|v| Some((*v).to_string())).collect(),
        }
    }

    /// A record from nullable values.
    pub fn from_options(values: Vec<Option<String>>) -> Record {
        Record { values }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Value of column `i` (`None` = NULL).
    pub fn get(&self, i: usize) -> Option<&str> {
        self.values.get(i).and_then(|v| v.as_deref())
    }

    /// All values.
    pub fn values(&self) -> &[Option<String>] {
        &self.values
    }

    /// Mutable access (used by the error injector).
    pub fn set(&mut self, i: usize, value: Option<String>) {
        self.values[i] = value;
    }

    /// Tokenize every column (paper §3): lowercase, whitespace-split, set
    /// semantics per column. NULL columns tokenize to the empty set.
    pub fn tokenize(&self, tokenizer: &Tokenizer) -> TokenizedRecord {
        TokenizedRecord {
            columns: self
                .values
                .iter()
                .map(|v| match v {
                    Some(s) => tokenizer.tokenize(s),
                    None => Vec::new(),
                })
                .collect(),
        }
    }
}

impl std::fmt::Display for Record {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match v {
                Some(s) => write!(f, "{s}")?,
                None => write!(f, "NULL")?,
            }
        }
        write!(f, "]")
    }
}

/// A record with every column tokenized; the unit the similarity functions
/// operate on. Token column property (paper §3) is the index into `columns`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenizedRecord {
    columns: Vec<Vec<String>>,
}

impl TokenizedRecord {
    /// Build directly from per-column token lists (tests).
    pub fn from_columns(columns: Vec<Vec<String>>) -> TokenizedRecord {
        TokenizedRecord { columns }
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Tokens of column `col`.
    pub fn column(&self, col: usize) -> &[String] {
        &self.columns[col]
    }

    /// Iterate `(column, token)` pairs across all columns.
    pub fn iter_tokens(&self) -> impl Iterator<Item = (usize, &str)> + '_ {
        self.columns
            .iter()
            .enumerate()
            .flat_map(|(col, toks)| toks.iter().map(move |t| (col, t.as_str())))
    }

    /// Total number of tokens.
    pub fn token_count(&self) -> usize {
        self.columns.iter().map(|c| c.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let r = Record::new(&["Boeing Company", "Seattle", "WA", "98004"]);
        assert_eq!(r.arity(), 4);
        assert_eq!(r.get(0), Some("Boeing Company"));
        assert_eq!(r.get(3), Some("98004"));
        assert_eq!(r.get(9), None);
    }

    #[test]
    fn nulls() {
        let r = Record::from_options(vec![
            Some("Company Beoing".into()),
            Some("Seattle".into()),
            None,
            Some("98014".into()),
        ]);
        assert_eq!(r.get(2), None);
        assert_eq!(r.to_string(), "[Company Beoing, Seattle, NULL, 98014]");
    }

    #[test]
    fn tokenization_per_column() {
        let r = Record::new(&["Boeing Company", "Seattle", "WA", "98004"]);
        let t = r.tokenize(&Tokenizer::new());
        assert_eq!(t.column(0), &["boeing", "company"]);
        assert_eq!(t.column(1), &["seattle"]);
        assert_eq!(t.token_count(), 5);
    }

    #[test]
    fn null_column_tokenizes_empty() {
        let r = Record::from_options(vec![Some("a b".into()), None]);
        let t = r.tokenize(&Tokenizer::new());
        assert_eq!(t.column(1), &[] as &[String]);
        assert_eq!(t.token_count(), 2);
    }

    #[test]
    fn same_token_in_two_columns_kept_per_column() {
        // Paper §3: 'madison' in name vs city are distinct tokens — the
        // column property is the position in `columns`.
        let r = Record::new(&["Madison Inc", "Madison"]);
        let t = r.tokenize(&Tokenizer::new());
        let pairs: Vec<(usize, &str)> = t.iter_tokens().collect();
        assert_eq!(pairs, vec![(0, "madison"), (0, "inc"), (1, "madison")]);
    }

    #[test]
    fn set_mutation() {
        let mut r = Record::new(&["a", "b"]);
        r.set(1, None);
        assert_eq!(r.get(1), None);
        r.set(0, Some("z".into()));
        assert_eq!(r.get(0), Some("z"));
    }
}
