//! Fuzzy match query processing (paper §4.3).
//!
//! Both algorithms share the same skeleton:
//!
//! 1. **Plan**: tokenize the input, weight every token (IDF × column
//!    factor), expand tokens into signature coordinates with per-coordinate
//!    weight shares, and pre-compute the adjustment term
//!    `Σ_t w(t)·(1 − 1/q)` that corrects for estimating edit distance with
//!    q-gram commonality (Figure 3, step 7).
//! 2. **Score**: look up each coordinate's tid-list in the ETI and
//!    accumulate per-tid scores in a hash table (Figure 3, steps 5–10).
//!    New tids are admitted only while the weight still to be processed
//!    could lift them past the threshold (step 9b).
//! 3. **Verify**: fetch candidate reference tuples in decreasing score
//!    order and compute the exact `fms`, stopping as soon as the current
//!    K-th best verified similarity dominates the score-derived upper bound
//!    `(score + adjustment)/w(u)` of every unfetched candidate (step 11–13;
//!    see DESIGN.md on why the fetch must be ordered).
//!
//! [`basic`] runs the phases in sequence; [`osc`] interleaves phase 3 into
//! phase 2 (optimistic short circuiting, §4.3.2).

pub mod basic;
pub mod osc;

use std::collections::HashMap;

use fm_text::minhash::MinHasher;

use crate::config::Config;
use crate::error::Result;
use crate::eti::{token_signature, Eti};
use crate::metrics::LookupTrace;
use crate::record::TokenizedRecord;
use crate::sim::Similarity;
use crate::weights::WeightProvider;

pub use basic::basic_lookup;
pub use osc::osc_lookup;

/// Which query algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryMode {
    /// Figure 3's basic algorithm.
    Basic,
    /// Basic + optimistic short circuiting (§4.3.2). The default — it is
    /// what the paper evaluates and ships.
    #[default]
    Osc,
}

/// Per-query counters. These are the quantities behind the paper's Figures
/// 8–10.
///
/// `QueryStats` predates [`LookupTrace`] and is derived from it (every
/// field is a projection); it survives as the compact summary the older
/// call sites and experiment binaries consume.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStats {
    /// Logical ETI lookups issued (one per signature coordinate probed).
    pub eti_lookups: u64,
    /// Tid-list entries processed (score increments + insertions) — the
    /// paper's "#tids processed per input tuple" (Figure 9).
    pub tids_processed: u64,
    /// Distinct tids that entered the score table.
    pub distinct_tids: u64,
    /// Reference tuples fetched and verified with `fms` — the paper's
    /// "candidate set size" (Figure 8).
    pub candidates_fetched: u64,
    /// Exact `fms` evaluations (≤ `candidates_fetched`; OSC may re-check a
    /// cached candidate without re-fetching).
    pub fms_evaluations: u64,
    /// Stop q-grams encountered.
    pub stop_qgrams: u64,
    /// Times the OSC fetching test fired.
    pub osc_attempts: u64,
    /// Whether the query was answered by a successful short circuit.
    pub osc_succeeded: bool,
}

impl From<&LookupTrace> for QueryStats {
    fn from(trace: &LookupTrace) -> QueryStats {
        QueryStats {
            eti_lookups: trace.qgrams_probed,
            tids_processed: trace.tids_processed,
            distinct_tids: trace.candidates,
            candidates_fetched: trace.candidates_fetched,
            fms_evaluations: trace.fms_evals,
            stop_qgrams: trace.stop_qgrams,
            osc_attempts: trace.osc_attempts,
            osc_succeeded: trace.osc_round.is_some(),
        }
    }
}

/// A match produced by the query processor: reference tid + exact `fms`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredMatch {
    pub tid: u32,
    pub similarity: f64,
}

/// Provides reference tuples by tid for the verification phase.
pub trait ReferenceFetch {
    fn fetch(&self, tid: u32) -> Result<TokenizedRecord>;
}

/// Everything a query needs, borrowed from the matcher.
pub struct QueryContext<'a, W: WeightProvider + ?Sized, F: ReferenceFetch + ?Sized> {
    pub config: &'a Config,
    pub weights: &'a W,
    pub minhasher: &'a MinHasher,
    pub eti: &'a Eti,
    pub reference: &'a F,
}

/// One signature coordinate scheduled for an ETI lookup.
#[derive(Debug, Clone)]
pub(crate) struct PlannedGram {
    pub column: u8,
    pub coordinate: u8,
    pub gram: String,
    /// Absolute weight of this coordinate: `w(t) × share`.
    pub weight: f64,
}

/// The query plan for one input tuple.
#[derive(Debug, Clone)]
pub(crate) struct QueryPlan {
    pub grams: Vec<PlannedGram>,
    /// `w(u)`: total weight of the input token set.
    pub wu: f64,
    /// `Σ_t w(t)·(1 − 1/q)`: the full adjustment term.
    pub adjustment: f64,
}

impl QueryPlan {
    /// Total weight of all planned coordinates, `w(Q_p)`. Shares sum to 1
    /// per token, so this equals [`QueryPlan::wu`] up to rounding; computed
    /// explicitly for the OSC bookkeeping.
    pub fn total_gram_weight(&self) -> f64 {
        self.grams.iter().map(|g| g.weight).sum()
    }
}

/// Build the query plan (Figure 3, steps 2–4 and 7 precomputed).
pub(crate) fn plan_query<W: WeightProvider + ?Sized>(
    input: &TokenizedRecord,
    config: &Config,
    weights: &W,
    minhasher: &MinHasher,
) -> QueryPlan {
    let dq = 1.0 - 1.0 / config.q as f64;
    let mut grams = Vec::new();
    let mut wu = 0.0;
    let mut adjustment = 0.0;
    for (col, token) in input.iter_tokens() {
        let w = config.column_factor(col) * weights.weight(col, token);
        wu += w;
        adjustment += w * dq;
        for entry in token_signature(token, minhasher, config.scheme) {
            grams.push(PlannedGram {
                column: col as u8,
                coordinate: entry.coordinate,
                gram: entry.gram,
                weight: w * entry.share,
            });
        }
    }
    QueryPlan {
        grams,
        wu,
        adjustment,
    }
}

/// The scoring hash table (Figure 3's `TidScores`).
#[derive(Debug, Default)]
pub(crate) struct ScoreTable {
    scores: HashMap<u32, f64>,
}

impl ScoreTable {
    /// Process one fetched tid-list: bump existing tids; admit new ones only
    /// if `admit_new` (the step-9b pruning decision made by the caller).
    pub fn absorb(&mut self, tids: &[u32], weight: f64, admit_new: bool, trace: &mut LookupTrace) {
        for &tid in tids {
            match self.scores.get_mut(&tid) {
                Some(s) => {
                    *s += weight;
                    trace.tids_processed += 1;
                }
                None if admit_new => {
                    self.scores.insert(tid, weight);
                    trace.tids_processed += 1;
                    trace.candidates += 1;
                }
                None => {}
            }
        }
    }

    /// Scored tids in decreasing `(score, tid asc)` order (deterministic).
    pub fn ranked(&self) -> Vec<(u32, f64)> {
        let mut v: Vec<(u32, f64)> = self.scores.iter().map(|(&t, &s)| (t, s)).collect();
        v.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The `n` highest scores, padded with `floor` when fewer tids are
    /// scored. Used by the OSC fetching test.
    pub fn top_scores(&self, n: usize, floor: f64) -> Vec<(Option<u32>, f64)> {
        let ranked = self.ranked();
        (0..n)
            .map(|i| match ranked.get(i) {
                Some(&(tid, s)) => (Some(tid), s),
                None => (None, floor),
            })
            .collect()
    }

    pub fn len(&self) -> usize {
        self.scores.len()
    }
}

/// The sound aggregate upper bound on a candidate's `fms` given its hash
/// table score `s` (see DESIGN.md §4.2 for the derivation):
///
/// `fms ≤ fms_apx ≤ (Σ_t w(t)·d_q + (2/q)·s) / w(u)`, capped at 1.
///
/// It follows from the per-token cap: each token contributes at most
/// `min(w(t), (2/q)·s_t + d_q·w(t))`, and the worst allocation of the
/// aggregate score saturates tokens one by one. The additive `d_q` floor is
/// irreducible — min-hash agreement genuinely cannot distinguish similarity
/// below `d_q` — which is why [`crate::config::Config::max_candidates`]
/// exists as a work cap for very dirty inputs.
#[inline]
pub(crate) fn score_bound(score: f64, wu: f64, adjustment: f64, q: usize) -> f64 {
    ((adjustment + (2.0 / q as f64) * score) / wu).min(1.0)
}

/// Verification phase (Figure 3 steps 11–13): fetch candidates in
/// decreasing score order, evaluate exact `fms`, early-stop on the upper
/// bound, return the top K at or above `c`.
///
/// The loop terminates when any of these holds for the next candidate:
///
/// * its [`score_bound`] is below `c` (nothing later can clear the
///   threshold; this is Figure 3's step 11 filter);
/// * the K-th verified `fms` already matches or beats its [`score_bound`]
///   (the K best are final, up to ties and min-hash failure probability);
/// * the fetch cap `max_candidates` is reached.
///
/// Candidates skipped by the first two exits are counted as
/// [`LookupTrace::apx_pruned`]: their `fms_apx`-style score bound — not an
/// exact evaluation — ruled them out.
#[allow(clippy::too_many_arguments)]
pub(crate) fn verify_candidates<W, F>(
    ctx: &QueryContext<'_, W, F>,
    sim: &mut Similarity<'_, W>,
    input: &TokenizedRecord,
    ranked: &[(u32, f64)],
    k: usize,
    c: f64,
    wu: f64,
    adjustment: f64,
    fms_cache: &mut HashMap<u32, f64>,
    trace: &mut LookupTrace,
) -> Result<Vec<ScoredMatch>>
where
    W: WeightProvider + ?Sized,
    F: ReferenceFetch + ?Sized,
{
    let _verify_span = crate::tracing::span("verify");
    let mut top: Vec<ScoredMatch> = Vec::with_capacity(k + 1);
    let cap = ctx.config.max_candidates;
    let mut fetched = 0usize;
    for (idx, &(tid, score)) in ranked.iter().enumerate() {
        let bound = score_bound(score, wu, adjustment, ctx.config.q);
        if bound < c {
            // Cannot clear the threshold; neither can anything later.
            trace.apx_pruned += (ranked.len() - idx) as u64;
            crate::tracing::instant("apx_prune");
            break;
        }
        if top.len() == k && top[k - 1].similarity >= bound {
            // The K-th verified match dominates everything unfetched.
            trace.apx_pruned += (ranked.len() - idx) as u64;
            crate::tracing::instant("apx_prune");
            break;
        }
        if cap != 0 && fetched >= cap {
            break; // work cap
        }
        let similarity = match fms_cache.get(&tid) {
            Some(&f) => f,
            None => {
                let tuple = {
                    let _span = crate::tracing::span("fetch");
                    ctx.reference.fetch(tid)?
                };
                trace.candidates_fetched += 1;
                trace.fms_evals += 1;
                fetched += 1;
                let _span = crate::tracing::span("fms");
                let f = sim.fms(input, &tuple);
                fms_cache.insert(tid, f);
                f
            }
        };
        if similarity >= c {
            insert_match(&mut top, ScoredMatch { tid, similarity }, k);
        }
    }
    Ok(top)
}

/// Insert into a K-bounded list kept sorted by (similarity desc, tid asc).
pub(crate) fn insert_match(top: &mut Vec<ScoredMatch>, m: ScoredMatch, k: usize) {
    let pos = top
        .iter()
        .position(|x| {
            m.similarity > x.similarity || (m.similarity == x.similarity && m.tid < x.tid)
        })
        .unwrap_or(top.len());
    top.insert(pos, m);
    top.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::weights::UnitWeights;
    use fm_text::Tokenizer;

    fn tok(values: &[&str]) -> TokenizedRecord {
        Record::new(values).tokenize(&Tokenizer::new())
    }

    #[test]
    fn plan_weights_and_adjustment() {
        let cfg = Config::default()
            .with_columns(&["name", "city"])
            .with_q(4)
            .with_signature(crate::config::SignatureScheme::QGrams, 2);
        let mh = MinHasher::new(2, 4, 7);
        let input = tok(&["boeing company", "seattle"]);
        let plan = plan_query(&input, &cfg, &UnitWeights, &mh);
        // 3 unit-weight tokens.
        assert!((plan.wu - 3.0).abs() < 1e-12);
        assert!((plan.adjustment - 3.0 * 0.75).abs() < 1e-12);
        // Gram weights sum back to w(u).
        assert!((plan.total_gram_weight() - plan.wu).abs() < 1e-9);
        // Every long token contributes H grams; all are 4-grams of their
        // token or whole short tokens.
        assert_eq!(plan.grams.len(), 6);
    }

    #[test]
    fn plan_empty_input() {
        let cfg = Config::default().with_columns(&["name"]);
        let mh = MinHasher::new(2, 4, 7);
        let input = Record::from_options(vec![None]).tokenize(&Tokenizer::new());
        let plan = plan_query(&input, &cfg, &UnitWeights, &mh);
        assert_eq!(plan.wu, 0.0);
        assert!(plan.grams.is_empty());
    }

    #[test]
    fn score_table_absorb_and_rank() {
        let mut trace = LookupTrace::default();
        let mut table = ScoreTable::default();
        table.absorb(&[1, 2, 3], 1.0, true, &mut trace);
        table.absorb(&[2, 3], 0.5, true, &mut trace);
        table.absorb(&[3, 4], 0.25, false, &mut trace); // 4 not admitted
        let ranked = table.ranked();
        assert_eq!(ranked[0], (3, 1.75));
        assert_eq!(ranked[1], (2, 1.5));
        assert_eq!(ranked[2], (1, 1.0));
        assert_eq!(table.len(), 3);
        assert_eq!(trace.candidates, 3);
        assert_eq!(trace.tids_processed, 6); // 3 inserts + 2 bumps + 1 bump
                                             // The legacy summary projects straight out of the trace.
        let stats = QueryStats::from(&trace);
        assert_eq!(stats.distinct_tids, 3);
        assert_eq!(stats.tids_processed, 6);
        assert!(!stats.osc_succeeded);
    }

    #[test]
    fn score_table_rank_breaks_ties_by_tid() {
        let mut trace = LookupTrace::default();
        let mut table = ScoreTable::default();
        table.absorb(&[9, 4, 7], 1.0, true, &mut trace);
        let ranked = table.ranked();
        assert_eq!(ranked, vec![(4, 1.0), (7, 1.0), (9, 1.0)]);
    }

    #[test]
    fn top_scores_pads_with_floor() {
        let mut trace = LookupTrace::default();
        let mut table = ScoreTable::default();
        table.absorb(&[1], 2.0, true, &mut trace);
        let top = table.top_scores(3, 0.5);
        assert_eq!(top[0], (Some(1), 2.0));
        assert_eq!(top[1], (None, 0.5));
        assert_eq!(top[2], (None, 0.5));
    }

    #[test]
    fn insert_match_keeps_k_best_sorted() {
        let mut top = Vec::new();
        for (tid, s) in [(1, 0.5), (2, 0.9), (3, 0.7), (4, 0.9), (5, 0.2)] {
            insert_match(&mut top, ScoredMatch { tid, similarity: s }, 3);
        }
        let tids: Vec<u32> = top.iter().map(|m| m.tid).collect();
        // 0.9 (tid 2), 0.9 (tid 4), 0.7 (tid 3); tie broken by tid.
        assert_eq!(tids, vec![2, 4, 3]);
    }
}
