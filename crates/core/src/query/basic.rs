//! The basic query processing algorithm (paper §4.3.1, Figure 3).

use std::collections::HashMap;

use crate::error::Result;
use crate::metrics::LookupTrace;
use crate::query::{
    plan_query, verify_candidates, QueryContext, ReferenceFetch, ScoreTable, ScoredMatch,
};
use crate::record::TokenizedRecord;
use crate::sim::Similarity;
use crate::weights::WeightProvider;

/// Answer a K-fuzzy-match query with the basic algorithm.
///
/// Looks up **every** signature coordinate of every input token against the
/// ETI, scores tids, then fetches and verifies candidates in decreasing
/// score order.
pub fn basic_lookup<W, F>(
    ctx: &QueryContext<'_, W, F>,
    input: &TokenizedRecord,
    k: usize,
    c: f64,
) -> Result<(Vec<ScoredMatch>, LookupTrace)>
where
    W: WeightProvider + ?Sized,
    F: ReferenceFetch + ?Sized,
{
    let mut trace = LookupTrace::default();
    if k == 0 {
        return Ok((Vec::new(), trace));
    }
    let plan = {
        let _span = crate::tracing::span("plan");
        plan_query(input, ctx.config, ctx.weights, ctx.minhasher)
    };
    if plan.wu == 0.0 {
        return Ok((Vec::new(), trace));
    }

    // Step 4: the admission threshold for new tids.
    let threshold = c * plan.wu;
    let mut remaining = plan.total_gram_weight();
    let mut table = ScoreTable::default();
    // Weight of stop q-grams we could not score: candidates must not be
    // penalized for them, so it joins the adjustment term in every bound.
    let mut stop_credit = 0.0;

    let probe_span = crate::tracing::span("probe");
    for gram in &plan.grams {
        trace.qgrams_probed += 1;
        let (list, rows) = ctx
            .eti
            .lookup_counted(&gram.gram, gram.coordinate, gram.column)?;
        trace.eti_rows += rows;
        if let Some(crate::eti::TidList {
            tids: Some(tids), ..
        }) = &list
        {
            trace.tid_list_entries += tids.len() as u64;
            trace.tid_list_max = trace.tid_list_max.max(tids.len() as u64);
        }
        match list {
            None => {}
            Some(list) => match &list.tids {
                None => {
                    trace.stop_qgrams += 1;
                    stop_credit += gram.weight;
                }
                Some(tids) => {
                    // Step 9b: a new tid's best possible final score is the
                    // weight not yet consumed (this gram included) — plus
                    // the adjustment term, exactly as step 11's filter
                    // subtracts it: a low score does not bound fms without
                    // the d_q slack.
                    let admit_new =
                        !ctx.config.insert_pruning || remaining + plan.adjustment >= threshold;
                    table.absorb(tids, gram.weight, admit_new, &mut trace);
                }
            },
        }
        remaining -= gram.weight;
    }

    drop(probe_span);

    let adjustment = plan.adjustment + stop_credit;
    let ranked = {
        let _span = crate::tracing::span("rank");
        table.ranked()
    };
    let mut sim = Similarity::new(ctx.weights, ctx.config);
    let mut fms_cache: HashMap<u32, f64> = HashMap::new();
    let matches = verify_candidates(
        ctx,
        &mut sim,
        input,
        &ranked,
        k,
        c,
        plan.wu,
        adjustment,
        &mut fms_cache,
        &mut trace,
    )?;
    Ok((matches, trace))
}
