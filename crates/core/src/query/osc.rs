//! Optimistic short circuiting (paper §4.3.2, Figure 4).
//!
//! Token weights vary a lot (that is the whole point of IDF weighting), so
//! the heaviest few q-grams often determine the winner. OSC therefore
//! processes signature coordinates in **decreasing weight order** and,
//! after each tid-list, runs a two-stage gate:
//!
//! * **fetching test** — linearly extrapolate the current K-th best score
//!   over the weight still to come; if even the extrapolation beats the
//!   (K+1)-th candidate's *best possible* final score, optimistically fetch
//!   the current top K reference tuples;
//! * **stopping test** — compute their exact `fms`; if every one of them is
//!   at least the best possible final (normalized) score of any other
//!   tuple, the answer is provably final (w.h.p.) and the remaining — by
//!   construction lighter and higher-frequency, hence more expensive —
//!   q-grams are never looked up.
//!
//! A failed stopping test costs only the (cached) fms evaluations; the
//! algorithm keeps processing q-grams and falls back to the basic
//! verification phase after the last one.

use std::collections::HashMap;

use crate::error::Result;
use crate::metrics::LookupTrace;
use crate::query::{
    insert_match, plan_query, verify_candidates, QueryContext, ReferenceFetch, ScoreTable,
    ScoredMatch,
};
use crate::record::TokenizedRecord;
use crate::sim::Similarity;
use crate::weights::WeightProvider;

/// Answer a K-fuzzy-match query with optimistic short circuiting.
pub fn osc_lookup<W, F>(
    ctx: &QueryContext<'_, W, F>,
    input: &TokenizedRecord,
    k: usize,
    c: f64,
) -> Result<(Vec<ScoredMatch>, LookupTrace)>
where
    W: WeightProvider + ?Sized,
    F: ReferenceFetch + ?Sized,
{
    let mut trace = LookupTrace::default();
    if k == 0 {
        return Ok((Vec::new(), trace));
    }
    let plan_span = crate::tracing::span("plan");
    let mut plan = plan_query(input, ctx.config, ctx.weights, ctx.minhasher);
    if plan.wu == 0.0 {
        return Ok((Vec::new(), trace));
    }
    // Step 3.1: decreasing weight order; ties broken deterministically.
    plan.grams.sort_by(|a, b| {
        b.weight.total_cmp(&a.weight).then_with(|| {
            (a.column, a.coordinate, a.gram.as_str()).cmp(&(
                b.column,
                b.coordinate,
                b.gram.as_str(),
            ))
        })
    });
    drop(plan_span);

    let threshold = c * plan.wu;
    let total = plan.total_gram_weight();
    let mut remaining = total; // w(Q_p) − w(Q_i)
    let mut processed_scored = 0.0; // weight of non-stop grams processed
    let mut stop_credit = 0.0;
    let mut table = ScoreTable::default();
    let mut sim = Similarity::new(ctx.weights, ctx.config);
    let mut fms_cache: HashMap<u32, f64> = HashMap::new();

    let n_grams = plan.grams.len();
    let probe_span = crate::tracing::span("probe");
    for (i, gram) in plan.grams.iter().enumerate() {
        trace.qgrams_probed += 1;
        let (list, rows) = ctx
            .eti
            .lookup_counted(&gram.gram, gram.coordinate, gram.column)?;
        trace.eti_rows += rows;
        if let Some(crate::eti::TidList {
            tids: Some(tids), ..
        }) = &list
        {
            trace.tid_list_entries += tids.len() as u64;
            trace.tid_list_max = trace.tid_list_max.max(tids.len() as u64);
        }
        match list {
            None => {}
            Some(list) => match &list.tids {
                None => {
                    trace.stop_qgrams += 1;
                    stop_credit += gram.weight;
                }
                Some(tids) => {
                    let admit_new =
                        !ctx.config.insert_pruning || remaining + plan.adjustment >= threshold;
                    table.absorb(tids, gram.weight, admit_new, &mut trace);
                    processed_scored += gram.weight;
                }
            },
        }
        remaining -= gram.weight;

        // Step 8.1: the short-circuit procedure — pointless after the last
        // gram (the fallback handles that) or before anything scored.
        if i + 1 == n_grams || processed_scored <= 0.0 || table.len() == 0 {
            continue;
        }
        // Raw scores, with stop-q-gram weight credited (those lists were
        // never scored, so a candidate may own them in full).
        let tops = table.top_scores(k + 1, 0.0);
        let ss_k = tops[k - 1].1 + stop_credit;
        let ss_k1 = tops[k].1 + stop_credit;
        if tops[k - 1].0.is_none() {
            continue; // fewer than K candidates so far
        }
        // Fetching test: extrapolated K-th score vs best possible (K+1)-th.
        // (processed_scored + stop_credit + remaining == total.)
        // When every current top-K candidate has already been fetched (a
        // failed earlier attempt), re-running the stopping test is free —
        // the fetching test only gates *new* reference fetches.
        let estimated = ss_k / (processed_scored + stop_credit) * total;
        let best_next = ss_k1 + remaining;
        let all_cached = tops[..k]
            .iter()
            .all(|(tid, _)| tid.map(|t| fms_cache.contains_key(&t)).unwrap_or(false));
        if estimated <= best_next && !all_cached {
            continue;
        }
        trace.osc_attempts += 1;
        let _attempt_span = crate::tracing::span("osc_round");
        // Stopping-test bound: the best possible *final score* of any tuple
        // outside the current top K is `ss_k1 + remaining`, turned into an
        // fms bound per the configured flavor (see
        // [`crate::config::OscStopping`] for why two exist).
        let bound = match ctx.config.osc_stopping {
            crate::config::OscStopping::Sound => {
                crate::query::score_bound(ss_k1 + remaining, plan.wu, plan.adjustment, ctx.config.q)
            }
            crate::config::OscStopping::PaperExample => ((ss_k1 + remaining) / plan.wu).min(1.0),
        };
        let mut verified: Vec<ScoredMatch> = Vec::with_capacity(k);
        let mut all_pass = true;
        for &(tid, _) in tops[..k].iter() {
            // lint:allow(expect): tops[..k] was filtered to Some just above
            let tid = tid.expect("checked above");
            let similarity = match fms_cache.get(&tid) {
                Some(&f) => f,
                None => {
                    let tuple = {
                        let _span = crate::tracing::span("fetch");
                        ctx.reference.fetch(tid)?
                    };
                    trace.candidates_fetched += 1;
                    trace.fms_evals += 1;
                    let _span = crate::tracing::span("fms");
                    let f = sim.fms(input, &tuple);
                    fms_cache.insert(tid, f);
                    f
                }
            };
            if similarity < bound {
                all_pass = false;
                break;
            }
            insert_match(&mut verified, ScoredMatch { tid, similarity }, k);
        }
        // Stopping test: every fetched tuple dominates anything unfetched.
        if all_pass {
            trace.osc_round = Some(i as u32);
            verified.retain(|m| m.similarity >= c);
            return Ok((verified, trace));
        }
    }

    drop(probe_span);

    // Fall back to the ordered verification phase; fms evaluations done
    // during failed short circuits are reused through the cache.
    let adjustment = plan.adjustment + stop_credit;
    let ranked = {
        let _span = crate::tracing::span("rank");
        table.ranked()
    };
    let matches = verify_candidates(
        ctx,
        &mut sim,
        input,
        &ranked,
        k,
        c,
        plan.wu,
        adjustment,
        &mut fms_cache,
        &mut trace,
    )?;
    Ok((matches, trace))
}
