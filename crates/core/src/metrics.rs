//! Query-path observability (the quantities behind the paper's Figures
//! 7–10).
//!
//! Two layers, both std-only:
//!
//! * [`LookupTrace`] — a per-query record of everything the query processor
//!   did: signature coordinates probed against the ETI, stop q-grams
//!   skipped, physical ETI rows scanned, tid-list lengths, score-table
//!   traffic, candidates admitted past the min-hash filter, candidates
//!   pruned by the `fms_apx`-style score bound, exact `fms` evaluations,
//!   and the OSC short-circuit round. It is a plain `Copy` struct of
//!   scalar counters bumped on the query's own stack — collecting it costs
//!   a handful of register increments, so it is always on.
//! * [`MetricsRegistry`] — a `Sync` aggregate of relaxed atomic counters
//!   plus a fixed-bucket latency histogram, owned by the matcher and fed
//!   one [`LookupTrace`] per query. Worker threads of
//!   `FuzzyMatcher::lookup_batch` record into the same registry; relaxed
//!   ordering is sufficient because each counter is an independent
//!   monotone sum read only by [`MetricsRegistry::snapshot`].
//!
//! This module is the one place in `fm-core` allowed to use relaxed
//! atomics (`cargo xtask lint` enforces the boundary): every other use of
//! `Ordering::Relaxed` must justify itself with a `lint:allow`.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{CoreError, Result};

/// Everything one K-fuzzy-match query did, layer by layer. See each field
/// for the paper figure it supports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LookupTrace {
    /// Signature coordinates probed against the ETI — one logical ETI
    /// lookup each (the x-axis work unit of Figures 9–10).
    pub qgrams_probed: u64,
    /// Probes that hit a stop q-gram (NULL tid-list, §4.2.2) and were
    /// skipped.
    pub stop_qgrams: u64,
    /// Physical chunk rows scanned in the ETI B+-tree (a logical lookup
    /// touches one row per `TIDS_PER_CHUNK` chunk of its tid-list).
    pub eti_rows: u64,
    /// Total length of all non-stop tid-lists returned by the probes.
    pub tid_list_entries: u64,
    /// Longest single tid-list seen.
    pub tid_list_max: u64,
    /// Tid-list entries absorbed into the score table (increments plus
    /// insertions) — the paper's "#tids processed per input tuple"
    /// (Figure 9).
    pub tids_processed: u64,
    /// Distinct tids admitted into the score table — the candidate set
    /// that survived the min-hash filter (Figure 8's "candidate set
    /// size").
    pub candidates: u64,
    /// Candidates never fetched because the score-derived `fms_apx`-style
    /// upper bound ruled them out (Figure 3 steps 11–13 early exits).
    pub apx_pruned: u64,
    /// Reference tuples actually fetched for verification.
    pub candidates_fetched: u64,
    /// Exact `fms` evaluations (≤ `candidates_fetched`; caching re-checks
    /// a candidate without re-fetching).
    pub fms_evals: u64,
    /// Times the OSC fetching test fired (§4.3.2).
    pub osc_attempts: u64,
    /// Index of the signature coordinate after which OSC short-circuited,
    /// or `None` if the query ran to the ordered verification phase.
    pub osc_round: Option<u32>,
    /// Wall-clock latency of the whole lookup, microseconds.
    pub latency_us: u64,
}

impl LookupTrace {
    /// Whether the query was answered by a successful short circuit.
    #[must_use]
    pub fn osc_succeeded(&self) -> bool {
        self.osc_round.is_some()
    }

    /// Check the cross-field invariants every well-formed trace obeys.
    /// The property suite runs this on random queries; `deepcheck` runs it
    /// on a churned matcher.
    pub fn check_consistent(&self) -> Result<()> {
        let checks: [(&str, bool); 6] = [
            (
                "stop_qgrams <= qgrams_probed",
                self.stop_qgrams <= self.qgrams_probed,
            ),
            (
                "tids_processed <= tid_list_entries",
                self.tids_processed <= self.tid_list_entries,
            ),
            (
                "candidates <= tids_processed",
                self.candidates <= self.tids_processed,
            ),
            (
                "candidates_fetched <= candidates",
                self.candidates_fetched <= self.candidates,
            ),
            (
                "fms_evals <= candidates_fetched",
                self.fms_evals <= self.candidates_fetched,
            ),
            (
                "apx_pruned <= candidates",
                self.apx_pruned <= self.candidates,
            ),
        ];
        for (rule, ok) in checks {
            if !ok {
                return Err(CoreError::BadState(format!(
                    "inconsistent lookup trace: {rule} violated in {self:?}"
                )));
            }
        }
        Ok(())
    }
}

/// Number of latency histogram buckets: bucket `i` counts lookups with
/// `latency_us < 2^i`, the last bucket is a catch-all.
pub const LATENCY_BUCKETS: usize = 20;

/// A `Sync` monotone counter. Relaxed ordering: the value is an
/// independent sum, never used to order other memory operations.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket power-of-two latency histogram (microsecond resolution).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [Counter; LATENCY_BUCKETS],
    count: Counter,
    sum_us: Counter,
}

impl LatencyHistogram {
    pub fn observe(&self, latency_us: u64) {
        let bucket = (u64::BITS - latency_us.leading_zeros()) as usize;
        self.buckets[bucket.min(LATENCY_BUCKETS - 1)].add(1);
        self.count.add(1);
        self.sum_us.add(latency_us);
    }

    #[must_use]
    pub fn snapshot(&self) -> LatencySnapshot {
        let mut buckets = [0u64; LATENCY_BUCKETS];
        for (out, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *out = bucket.get();
        }
        LatencySnapshot {
            buckets,
            count: self.count.get(),
            sum_us: self.sum_us.get(),
        }
    }
}

/// Point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// `buckets[i]` counts lookups with `latency_us < 2^i` (last bucket:
    /// everything slower).
    pub buckets: [u64; LATENCY_BUCKETS],
    pub count: u64,
    pub sum_us: u64,
}

impl LatencySnapshot {
    /// Mean lookup latency in microseconds (0 when nothing was recorded).
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (0 ≤ q ≤ 1) in microseconds from the
    /// power-of-two buckets: locate the nearest-rank sample's bucket,
    /// then interpolate linearly by rank position inside it. Exact for
    /// bucket boundaries; off by at most the bucket width otherwise.
    /// Returns 0 when nothing was recorded.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based nearest rank.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lo, hi) = Self::bucket_bounds(i);
                let into = (rank - seen) as f64 / n as f64;
                return lo + ((hi - lo) as f64 * into).round() as u64;
            }
            seen += n;
        }
        Self::bucket_bounds(LATENCY_BUCKETS - 1).1
    }

    /// Value range covered by bucket `i`: `[lo, hi]` inclusive. Bucket 0
    /// holds only 0; bucket `i` holds `[2^(i-1), 2^i)`; the last bucket
    /// is a catch-all reported at its nominal upper edge. Public so the
    /// telemetry exposition can emit the exact inclusive upper bound as
    /// a Prometheus `le` label.
    #[must_use]
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 0)
        } else {
            (1u64 << (i - 1), (1u64 << i) - 1)
        }
    }

    /// Median lookup latency, microseconds.
    #[must_use]
    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    /// 95th-percentile lookup latency, microseconds.
    #[must_use]
    pub fn p95_us(&self) -> u64 {
        self.quantile_us(0.95)
    }

    /// 99th-percentile lookup latency, microseconds.
    #[must_use]
    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }
}

/// The matcher-wide metrics registry: one relaxed atomic per
/// [`LookupTrace`] counter, plus query totals and the latency histogram.
/// [`MetricsRegistry::record`] is a handful of relaxed `fetch_add`s — the
/// whole observability layer's per-query overhead.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    lookups: Counter,
    qgrams_probed: Counter,
    stop_qgrams: Counter,
    eti_rows: Counter,
    tid_list_entries: Counter,
    tids_processed: Counter,
    candidates: Counter,
    apx_pruned: Counter,
    candidates_fetched: Counter,
    fms_evals: Counter,
    osc_attempts: Counter,
    osc_short_circuits: Counter,
    latency: LatencyHistogram,
}

impl MetricsRegistry {
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Fold one finished query into the aggregate.
    pub fn record(&self, trace: &LookupTrace) {
        self.lookups.add(1);
        self.qgrams_probed.add(trace.qgrams_probed);
        self.stop_qgrams.add(trace.stop_qgrams);
        self.eti_rows.add(trace.eti_rows);
        self.tid_list_entries.add(trace.tid_list_entries);
        self.tids_processed.add(trace.tids_processed);
        self.candidates.add(trace.candidates);
        self.apx_pruned.add(trace.apx_pruned);
        self.candidates_fetched.add(trace.candidates_fetched);
        self.fms_evals.add(trace.fms_evals);
        self.osc_attempts.add(trace.osc_attempts);
        if trace.osc_round.is_some() {
            self.osc_short_circuits.add(1);
        }
        self.latency.observe(trace.latency_us);
    }

    /// A consistent-enough copy for reporting: each counter is read
    /// atomically; the set is not a single atomic cut, which is fine for
    /// monotone sums read at quiescent points (tests snapshot after the
    /// batch joins).
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            lookups: self.lookups.get(),
            qgrams_probed: self.qgrams_probed.get(),
            stop_qgrams: self.stop_qgrams.get(),
            eti_rows: self.eti_rows.get(),
            tid_list_entries: self.tid_list_entries.get(),
            tids_processed: self.tids_processed.get(),
            candidates: self.candidates.get(),
            apx_pruned: self.apx_pruned.get(),
            candidates_fetched: self.candidates_fetched.get(),
            fms_evals: self.fms_evals.get(),
            osc_attempts: self.osc_attempts.get(),
            osc_short_circuits: self.osc_short_circuits.get(),
            latency: self.latency.snapshot(),
        }
    }
}

/// Point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Queries recorded.
    pub lookups: u64,
    pub qgrams_probed: u64,
    pub stop_qgrams: u64,
    pub eti_rows: u64,
    pub tid_list_entries: u64,
    pub tids_processed: u64,
    pub candidates: u64,
    pub apx_pruned: u64,
    pub candidates_fetched: u64,
    pub fms_evals: u64,
    pub osc_attempts: u64,
    /// Queries answered by a successful OSC short circuit.
    pub osc_short_circuits: u64,
    pub latency: LatencySnapshot,
}

impl MetricsSnapshot {
    /// The scalar counters as `(name, value)` pairs — the hook the
    /// telemetry layer uses to expose and delta every registry counter
    /// without hand-maintaining a second field list.
    #[must_use]
    pub fn named_counters(&self) -> [(&'static str, u64); 12] {
        [
            ("lookups", self.lookups),
            ("qgrams_probed", self.qgrams_probed),
            ("stop_qgrams", self.stop_qgrams),
            ("eti_rows", self.eti_rows),
            ("tid_list_entries", self.tid_list_entries),
            ("tids_processed", self.tids_processed),
            ("candidates", self.candidates),
            ("apx_pruned", self.apx_pruned),
            ("candidates_fetched", self.candidates_fetched),
            ("fms_evals", self.fms_evals),
            ("osc_attempts", self.osc_attempts),
            ("osc_short_circuits", self.osc_short_circuits),
        ]
    }
}

/// Report from [`MetricsSnapshot::check_invariants`] (run by
/// `cargo xtask deepcheck`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsCheck {
    /// Queries recorded in the registry.
    pub lookups: u64,
    /// Exact `fms` evaluations across all of them.
    pub fms_evals: u64,
    /// Events in the latency histogram (must equal `lookups`).
    pub histogram_events: u64,
}

impl MetricsSnapshot {
    /// Validate the aggregate against the same monotone relationships a
    /// single trace obeys (sums of per-query invariants), plus histogram
    /// conservation: every recorded query landed in exactly one bucket.
    pub fn check_invariants(&self) -> Result<MetricsCheck> {
        let as_trace = LookupTrace {
            qgrams_probed: self.qgrams_probed,
            stop_qgrams: self.stop_qgrams,
            eti_rows: self.eti_rows,
            tid_list_entries: self.tid_list_entries,
            tid_list_max: 0,
            tids_processed: self.tids_processed,
            candidates: self.candidates,
            apx_pruned: self.apx_pruned,
            candidates_fetched: self.candidates_fetched,
            fms_evals: self.fms_evals,
            osc_attempts: self.osc_attempts,
            osc_round: None,
            latency_us: self.latency.sum_us,
        };
        as_trace.check_consistent()?;
        if self.osc_short_circuits > self.osc_attempts {
            return Err(CoreError::BadState(format!(
                "metrics registry records {} short circuits over only {} \
                 attempts",
                self.osc_short_circuits, self.osc_attempts
            )));
        }
        if self.osc_short_circuits > self.lookups {
            return Err(CoreError::BadState(format!(
                "metrics registry records {} short circuits over {} lookups",
                self.osc_short_circuits, self.lookups
            )));
        }
        if self.latency.count != self.lookups {
            return Err(CoreError::BadState(format!(
                "latency histogram holds {} events for {} lookups",
                self.latency.count, self.lookups
            )));
        }
        let bucketed: u64 = self.latency.buckets.iter().sum();
        if bucketed != self.latency.count {
            return Err(CoreError::BadState(format!(
                "latency histogram buckets sum to {bucketed}, count says {}",
                self.latency.count
            )));
        }
        Ok(MetricsCheck {
            lookups: self.lookups,
            fms_evals: self.fms_evals,
            histogram_events: self.latency.count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> LookupTrace {
        LookupTrace {
            qgrams_probed: 12,
            stop_qgrams: 2,
            eti_rows: 14,
            tid_list_entries: 40,
            tid_list_max: 9,
            tids_processed: 30,
            candidates: 8,
            apx_pruned: 5,
            candidates_fetched: 3,
            fms_evals: 3,
            osc_attempts: 1,
            osc_round: Some(4),
            latency_us: 123,
        }
    }

    #[test]
    fn trace_consistency_accepts_well_formed() {
        sample_trace().check_consistent().unwrap();
        LookupTrace::default().check_consistent().unwrap();
    }

    #[test]
    fn trace_consistency_rejects_impossible_counts() {
        let mut t = sample_trace();
        t.fms_evals = t.candidates_fetched + 1;
        let err = t.check_consistent().unwrap_err().to_string();
        assert!(err.contains("fms_evals"), "got: {err}");

        let mut t = sample_trace();
        t.candidates = t.tids_processed + 1;
        assert!(t.check_consistent().is_err());
    }

    #[test]
    fn registry_aggregates_traces_and_passes_invariants() {
        let registry = MetricsRegistry::new();
        let t = sample_trace();
        registry.record(&t);
        registry.record(&LookupTrace::default());
        let snap = registry.snapshot();
        assert_eq!(snap.lookups, 2);
        assert_eq!(snap.qgrams_probed, t.qgrams_probed);
        assert_eq!(snap.osc_short_circuits, 1);
        assert_eq!(snap.latency.count, 2);
        assert_eq!(snap.latency.sum_us, t.latency_us);
        let check = snap.check_invariants().unwrap();
        assert_eq!(check.lookups, 2);
        assert_eq!(check.histogram_events, 2);
    }

    #[test]
    fn registry_is_sync_across_threads() {
        let registry = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        registry.record(&sample_trace());
                    }
                });
            }
        });
        let snap = registry.snapshot();
        assert_eq!(snap.lookups, 4000);
        assert_eq!(snap.qgrams_probed, 4000 * sample_trace().qgrams_probed);
        assert_eq!(snap.latency.count, 4000);
        snap.check_invariants().unwrap();
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let h = LatencyHistogram::default();
        h.observe(0); // bucket 0
        h.observe(1); // bucket 1 (1 < 2)
        h.observe(900); // bucket 10 (900 < 1024)
        h.observe(u64::MAX); // clamped into the last bucket
        let snap = h.snapshot();
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[10], 1);
        assert_eq!(snap.buckets[LATENCY_BUCKETS - 1], 1);
        assert_eq!(snap.count, 4);
    }

    #[test]
    fn quantiles_of_empty_snapshot_are_zero() {
        let snap = LatencySnapshot::default();
        assert_eq!(snap.p50_us(), 0);
        assert_eq!(snap.p95_us(), 0);
        assert_eq!(snap.p99_us(), 0);
        assert_eq!(snap.quantile_us(0.0), 0);
        assert_eq!(snap.quantile_us(1.0), 0);
        assert_eq!(snap.mean_us(), 0.0);
    }

    #[test]
    fn quantiles_of_single_bucket_stay_inside_it() {
        // 100 samples, all in bucket 7 ([64, 127] µs): every quantile
        // interpolates within that one bucket's bounds.
        let h = LatencyHistogram::default();
        for _ in 0..100 {
            h.observe(100);
        }
        let snap = h.snapshot();
        for q in [0.01, 0.50, 0.95, 0.99, 1.0] {
            let v = snap.quantile_us(q);
            assert!((64..=127).contains(&v), "q={q} escaped the bucket: {v}");
        }
        // Rank interpolation is monotone inside the bucket too.
        assert!(snap.p50_us() <= snap.p95_us());
        assert!(snap.p95_us() <= snap.p99_us());
    }

    #[test]
    fn single_sample_quantiles_all_agree() {
        let h = LatencyHistogram::default();
        h.observe(900); // bucket 10: [512, 1023]
        let snap = h.snapshot();
        let p50 = snap.p50_us();
        assert_eq!(p50, snap.p95_us());
        assert_eq!(p50, snap.p99_us());
        assert!((512..=1023).contains(&p50), "got {p50}");
    }

    #[test]
    fn tail_quantiles_find_the_slow_bucket() {
        // 95 fast lookups (~100 µs) and 5 slow ones (~50 ms): the median
        // sits in the fast bucket, the p99 in the slow one.
        let h = LatencyHistogram::default();
        for _ in 0..95 {
            h.observe(100);
        }
        for _ in 0..5 {
            h.observe(50_000);
        }
        let snap = h.snapshot();
        assert!((64..=127).contains(&snap.p50_us()), "p50={}", snap.p50_us());
        assert!(snap.p99_us() >= 32_768, "p99={}", snap.p99_us());
        assert!(snap.p50_us() <= snap.p95_us() && snap.p95_us() <= snap.p99_us());
    }

    #[test]
    fn quantile_clamps_out_of_range_q() {
        let h = LatencyHistogram::default();
        h.observe(10);
        let snap = h.snapshot();
        assert_eq!(snap.quantile_us(-3.0), snap.quantile_us(0.0));
        assert_eq!(snap.quantile_us(7.5), snap.quantile_us(1.0));
    }

    #[test]
    fn check_catches_dropped_histogram_updates() {
        let registry = MetricsRegistry::new();
        registry.record(&sample_trace());
        let mut snap = registry.snapshot();
        snap.lookups += 1; // simulate a lost histogram observation
        let err = snap.check_invariants().unwrap_err().to_string();
        assert!(err.contains("histogram"), "got: {err}");
    }
}
