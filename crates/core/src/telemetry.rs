//! Continuous telemetry: rolling time-series windows and Prometheus
//! text exposition over the [`crate::metrics`] primitives.
//!
//! [`crate::metrics`] answers "what happened since boot"; this module
//! answers "what is happening *right now*". Three std-only pieces:
//!
//! * [`TimeSeries`] — a fixed-capacity ring of per-window
//!   [`WindowSnapshot`]s: counter deltas, gauge samples, and per-verb
//!   latency-histogram deltas covering one sampling window each. One
//!   sampler thread pushes; any reader pulls the newest N windows. The
//!   ring reuses the flight recorder's discipline (a relaxed
//!   `fetch_add` claims a slot, a `try_lock` guards it), so the writer
//!   never blocks behind a reader — a contended push is dropped and
//!   counted instead of stalling the sampler.
//! * Delta/merge/rate helpers ([`histogram_delta`], [`histogram_merge`],
//!   [`rate_per_s`]) that derive windowed rates and quantiles from
//!   cumulative [`LatencySnapshot`]s. A window's histogram delta is
//!   itself a `LatencySnapshot`, so all the quantile machinery applies
//!   to "the last 10 seconds" exactly as it does to "since boot".
//! * [`PromText`] — a Prometheus text-exposition writer for counters,
//!   gauges, and histograms with cumulative `le` buckets, plus
//!   [`validate_exposition`], which re-checks a rendered exposition's
//!   structural invariants (bucket monotonicity, `+Inf` equals
//!   `_count`, `_sum` present). CI runs the validator against a live
//!   scrape.
//!
//! The power-of-two buckets of [`crate::metrics::LatencyHistogram`] map
//! *exactly* onto Prometheus cumulative buckets: bucket `i` counts
//! samples `< 2^i` µs, i.e. `≤ 2^i − 1`, so the exposition emits
//! `le="0"`, `le="1"`, `le="3"`, … `le="2^18−1"`, `le="+Inf"` with no
//! rebinning error, and `_count`/`_sum` equal the registry totals.
//!
//! Like `metrics` and `tracing`, this module is on the relaxed-atomic
//! allowlist (`cargo xtask lint` enforces the boundary): the ring
//! cursor and drop counter are independent monotone values, never used
//! to order other memory operations.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::metrics::{LatencySnapshot, LATENCY_BUCKETS};

/// Everything one sampling window observed: counter deltas over the
/// window, point-in-time gauge samples, and per-verb latency-histogram
/// deltas. Names are owned strings so callers can label dynamically
/// sized families (one counter per replica, one histogram per verb).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowSnapshot {
    /// 1-based window number, assigned by [`TimeSeries::push`];
    /// contiguous even across ring wraparound, so readers can detect
    /// gaps.
    pub seq: u64,
    /// Window start, microseconds since the sampler's epoch.
    pub start_us: u64,
    /// Actual window duration (the sampler's sleep is inexact; rates
    /// divide by this, not by the nominal window).
    pub dur_us: u64,
    /// Monotone counter deltas across the window.
    pub counters: Vec<(String, u64)>,
    /// Instantaneous gauge values sampled at window close.
    pub gauges: Vec<(String, f64)>,
    /// Per-verb service-latency histogram deltas for the window.
    pub verbs: Vec<(String, LatencySnapshot)>,
}

impl WindowSnapshot {
    /// The delta recorded for counter `name` (0 when absent — an absent
    /// counter and a zero-traffic counter mean the same thing to a
    /// rate).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// The gauge sample for `name`, if this window carries one.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The histogram delta recorded for verb `name`, if any.
    #[must_use]
    pub fn verb(&self, name: &str) -> Option<&LatencySnapshot> {
        self.verbs.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Windowed rate of counter `name` in events per second.
    #[must_use]
    pub fn rate_per_s(&self, name: &str) -> f64 {
        rate_per_s(self.counter(name), self.dur_us)
    }
}

/// A fixed-capacity ring of the most recent [`WindowSnapshot`]s.
///
/// Single conceptual writer (the sampler thread), any number of
/// readers. A slot is claimed with a relaxed `fetch_add` and written
/// under `try_lock`; if a reader holds the slot at that instant the
/// push is dropped and counted — the sampler must never block on the
/// serving path's observers.
#[derive(Debug)]
pub struct TimeSeries {
    slots: Box<[Mutex<Option<WindowSnapshot>>]>,
    next: AtomicU64,
    dropped: AtomicU64,
}

impl TimeSeries {
    /// A ring keeping the newest `capacity` windows (minimum 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> TimeSeries {
        let slots = (0..capacity.max(1))
            .map(|_| Mutex::new(None))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        TimeSeries {
            slots,
            next: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots in the ring.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total windows ever pushed (including any dropped on contention).
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Pushes dropped because a reader held the slot.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Publish one window, overwriting the oldest slot. Assigns
    /// `window.seq` (1-based, monotone).
    pub fn push(&self, mut window: WindowSnapshot) {
        let claimed = self.next.fetch_add(1, Ordering::Relaxed);
        window.seq = claimed + 1;
        let slot = &self.slots[(claimed % self.slots.len() as u64) as usize];
        match slot.try_lock() {
            Some(mut guard) => *guard = Some(window),
            None => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The newest `n` windows, oldest first. Fewer are returned while
    /// the ring is still filling (or when pushes were dropped).
    #[must_use]
    pub fn recent(&self, n: usize) -> Vec<WindowSnapshot> {
        let mut windows: Vec<WindowSnapshot> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().clone())
            .collect();
        windows.sort_by_key(|w| w.seq);
        if windows.len() > n {
            windows.drain(..windows.len() - n);
        }
        windows
    }
}

/// Per-field saturating difference of two cumulative histogram
/// snapshots: the histogram of everything observed between `prev` and
/// `cur`. Saturating, so a reset (or torn read) degrades to a partial
/// window instead of an underflow panic.
#[must_use]
pub fn histogram_delta(cur: &LatencySnapshot, prev: &LatencySnapshot) -> LatencySnapshot {
    let mut buckets = [0u64; LATENCY_BUCKETS];
    for (out, (c, p)) in buckets
        .iter_mut()
        .zip(cur.buckets.iter().zip(prev.buckets.iter()))
    {
        *out = c.saturating_sub(*p);
    }
    LatencySnapshot {
        buckets,
        count: cur.count.saturating_sub(prev.count),
        sum_us: cur.sum_us.saturating_sub(prev.sum_us),
    }
}

/// Sum histogram snapshots (e.g. one verb's deltas over the last N
/// windows) into one, so windowed quantiles come from the same
/// [`LatencySnapshot::quantile_us`] machinery as cumulative ones.
#[must_use]
pub fn histogram_merge<'a>(
    snapshots: impl IntoIterator<Item = &'a LatencySnapshot>,
) -> LatencySnapshot {
    let mut merged = LatencySnapshot::default();
    for snap in snapshots {
        for (out, b) in merged.buckets.iter_mut().zip(snap.buckets.iter()) {
            *out = out.saturating_add(*b);
        }
        merged.count = merged.count.saturating_add(snap.count);
        merged.sum_us = merged.sum_us.saturating_add(snap.sum_us);
    }
    merged
}

/// Events per second given a delta and the window it covers.
#[must_use]
pub fn rate_per_s(delta: u64, dur_us: u64) -> f64 {
    if dur_us == 0 {
        0.0
    } else {
        delta as f64 / (dur_us as f64 / 1e6)
    }
}

// ------------------------------------------------- Prometheus exposition

/// Incremental Prometheus text-exposition writer.
///
/// Emits `# HELP`/`# TYPE` headers once per family (labelled series of
/// one family may be appended across multiple calls), counters with the
/// conventional `_total` suffix left to the caller, and histograms with
/// cumulative `le` buckets derived exactly from the power-of-two
/// [`LatencySnapshot`] bins.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
    families: Vec<String>,
}

impl PromText {
    #[must_use]
    pub fn new() -> PromText {
        PromText::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        if self.families.iter().any(|f| f == name) {
            return;
        }
        self.families.push(name.to_string());
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: &str) {
        self.out.push_str(name);
        self.out.push_str(&render_labels(labels));
        self.out.push(' ');
        self.out.push_str(value);
        self.out.push('\n');
    }

    /// One monotone counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.header(name, help, "counter");
        self.sample(name, labels, &value.to_string());
    }

    /// One gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.header(name, help, "gauge");
        let rendered = if value.is_finite() {
            format!("{value}")
        } else {
            "0".to_string()
        };
        self.sample(name, labels, &rendered);
    }

    /// One histogram series: cumulative `le` buckets (inclusive upper
    /// bounds `0, 1, 3, …, 2^(B−1) − 1`, then `+Inf`), `_sum`, and
    /// `_count`. The `+Inf` bucket and `_count` are the snapshot's
    /// total count by construction.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        snap: &LatencySnapshot,
    ) {
        self.header(name, help, "histogram");
        let bucket_name = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for (i, &n) in snap.buckets.iter().enumerate().take(LATENCY_BUCKETS - 1) {
            cumulative += n;
            let le = LatencySnapshot::bucket_bounds(i).1.to_string();
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", &le));
            self.sample(&bucket_name, &with_le, &cumulative.to_string());
        }
        let mut with_inf: Vec<(&str, &str)> = labels.to_vec();
        with_inf.push(("le", "+Inf"));
        self.sample(&bucket_name, &with_inf, &snap.count.to_string());
        self.sample(&format!("{name}_sum"), labels, &snap.sum_us.to_string());
        self.sample(&format!("{name}_count"), labels, &snap.count.to_string());
    }

    /// The finished exposition text.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for ch in v.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                other => out.push(other),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// What [`validate_exposition`] measured on its way to a verdict.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExpositionSummary {
    /// Sample lines (non-comment, non-blank).
    pub samples: usize,
    /// Distinct histogram series (family × label set) validated.
    pub histogram_series: usize,
}

/// Structurally validate a Prometheus text exposition: every sample
/// line parses, every histogram series has monotonically non-decreasing
/// cumulative buckets ending in `+Inf`, the `+Inf` bucket equals
/// `_count`, and `_sum` is present. This is the check CI runs against a
/// live scrape of the `metrics` verb.
pub fn validate_exposition(text: &str) -> Result<ExpositionSummary, String> {
    struct Series {
        buckets: Vec<(f64, f64)>, // (le, cumulative count)
        sum: Option<f64>,
        count: Option<f64>,
    }
    let mut series: Vec<(String, Series)> = Vec::new();
    let mut samples = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, labels, value) =
            parse_sample(line).map_err(|e| format!("line {}: {e}: {line}", lineno + 1))?;
        samples += 1;
        let (family, role) = if let Some(f) = name.strip_suffix("_bucket") {
            (f, "bucket")
        } else if let Some(f) = name.strip_suffix("_sum") {
            (f, "sum")
        } else if let Some(f) = name.strip_suffix("_count") {
            (f, "count")
        } else {
            continue; // plain counter/gauge: nothing more to check
        };
        let le = labels
            .iter()
            .find(|(k, _)| k == "le")
            .map(|(_, v)| v.clone());
        let key_labels: Vec<String> = labels
            .iter()
            .filter(|(k, _)| k != "le")
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        let key = format!("{family}|{}", key_labels.join(","));
        if role == "bucket" && le.is_none() {
            // A `_bucket`-suffixed counter without `le` is not a
            // histogram bucket; leave it alone.
            continue;
        }
        let idx = match series.iter().position(|(k, _)| *k == key) {
            Some(i) => i,
            None => {
                series.push((
                    key.clone(),
                    Series {
                        buckets: Vec::new(),
                        sum: None,
                        count: None,
                    },
                ));
                series.len() - 1
            }
        };
        let entry = &mut series[idx].1;
        match role {
            "bucket" => {
                let le = le.unwrap_or_default();
                let bound = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse::<f64>()
                        .map_err(|_| format!("line {}: bad le {le:?}", lineno + 1))?
                };
                entry.buckets.push((bound, value));
            }
            "sum" => entry.sum = Some(value),
            _ => entry.count = Some(value),
        }
    }
    let mut histogram_series = 0usize;
    for (key, s) in &mut series {
        if s.buckets.is_empty() {
            continue; // `_sum`/`_count`-looking names without buckets
        }
        histogram_series += 1;
        s.buckets
            .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut prev = -1.0f64;
        for &(le, v) in &s.buckets {
            if v < prev {
                return Err(format!(
                    "histogram {key}: bucket le={le} count {v} < previous {prev} \
                     (cumulative buckets must be non-decreasing)"
                ));
            }
            prev = v;
        }
        let Some(&(last_le, inf_count)) = s.buckets.last() else {
            continue;
        };
        if last_le.is_finite() {
            return Err(format!("histogram {key}: missing le=\"+Inf\" bucket"));
        }
        let Some(count) = s.count else {
            return Err(format!("histogram {key}: missing _count"));
        };
        if (inf_count - count).abs() > 1e-9 {
            return Err(format!(
                "histogram {key}: +Inf bucket {inf_count} != _count {count}"
            ));
        }
        if s.sum.is_none() {
            return Err(format!("histogram {key}: missing _sum"));
        }
    }
    Ok(ExpositionSummary {
        samples,
        histogram_series,
    })
}

/// One parsed sample line: `(name, labels, value)`.
type Sample = (String, Vec<(String, String)>, f64);

/// Split one sample line into `(name, labels, value)`.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| "unclosed label block".to_string())?;
            if close < brace {
                return Err("unclosed label block".to_string());
            }
            (&line[..brace], &line[close + 1..])
        }
        None => match line.find(char::is_whitespace) {
            Some(space) => (&line[..space], &line[space..]),
            None => return Err("sample line has no value".to_string()),
        },
    };
    let name = name_part.trim();
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("bad metric name {name:?}"));
    }
    let labels = match line.find('{') {
        Some(brace) => {
            let close = line.rfind('}').unwrap_or(brace);
            parse_labels(&line[brace + 1..close])?
        }
        None => Vec::new(),
    };
    let value = rest
        .trim()
        .parse::<f64>()
        .map_err(|_| format!("bad sample value {:?}", rest.trim()))?;
    Ok((name.to_string(), labels, value))
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(' ') | Some(',')) {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(labels);
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key:?} has no quoted value"));
        }
        let mut value = String::new();
        let mut escaped = false;
        let mut closed = false;
        for c in chars.by_ref() {
            if escaped {
                value.push(match c {
                    'n' => '\n',
                    other => other,
                });
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                closed = true;
                break;
            } else {
                value.push(c);
            }
        }
        if !closed {
            return Err(format!("label {key:?} has an unterminated value"));
        }
        labels.push((key.trim().to_string(), value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::LatencyHistogram;

    fn window(seq_hint: u64, counter: u64) -> WindowSnapshot {
        WindowSnapshot {
            seq: 0, // push assigns
            start_us: seq_hint * 1_000_000,
            dur_us: 1_000_000,
            counters: vec![("frames".to_string(), counter)],
            gauges: vec![("queue_len".to_string(), 2.0)],
            verbs: Vec::new(),
        }
    }

    #[test]
    fn ring_wraps_and_keeps_the_newest_windows_in_order() {
        let series = TimeSeries::with_capacity(4);
        for i in 0..10 {
            series.push(window(i, i));
        }
        assert_eq!(series.pushed(), 10);
        assert_eq!(series.dropped(), 0);
        let last = series.recent(10);
        assert_eq!(last.len(), 4, "ring keeps only its capacity");
        let seqs: Vec<u64> = last.iter().map(|w| w.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10], "newest windows, oldest first");
        // A smaller ask trims from the old end.
        let two = series.recent(2);
        assert_eq!(two.iter().map(|w| w.seq).collect::<Vec<_>>(), vec![9, 10],);
        // Window payloads survive the wraparound intact.
        assert_eq!(last[3].counter("frames"), 9);
        assert_eq!(last[3].gauge("queue_len"), Some(2.0));
    }

    #[test]
    fn ring_seq_is_contiguous_across_wraparound() {
        let series = TimeSeries::with_capacity(3);
        for i in 0..7 {
            series.push(window(i, i));
        }
        let seqs: Vec<u64> = series.recent(3).iter().map(|w| w.seq).collect();
        assert_eq!(seqs, vec![5, 6, 7]);
        for pair in seqs.windows(2) {
            assert_eq!(pair[1], pair[0] + 1, "no gaps without contention");
        }
    }

    #[test]
    fn zero_traffic_window_deltas_are_zero_not_garbage() {
        let h = LatencyHistogram::default();
        h.observe(100);
        h.observe(5_000);
        let before = h.snapshot();
        // No traffic between the two sampler ticks.
        let after = h.snapshot();
        let delta = histogram_delta(&after, &before);
        assert_eq!(delta.count, 0);
        assert_eq!(delta.sum_us, 0);
        assert!(delta.buckets.iter().all(|&b| b == 0));
        assert_eq!(delta.quantile_us(0.99), 0, "empty window has no quantile");
        assert_eq!(rate_per_s(delta.count, 1_000_000), 0.0);
    }

    #[test]
    fn histogram_delta_isolates_the_window() {
        let h = LatencyHistogram::default();
        h.observe(100);
        let before = h.snapshot();
        h.observe(100);
        h.observe(100);
        h.observe(9_000);
        let after = h.snapshot();
        let delta = histogram_delta(&after, &before);
        assert_eq!(delta.count, 3);
        assert_eq!(delta.sum_us, 100 + 100 + 9_000);
        // The delta's median is in the 100µs bucket even though the
        // cumulative snapshot now holds older samples too.
        assert!(
            (64..=127).contains(&delta.p50_us()),
            "p50={}",
            delta.p50_us()
        );
    }

    #[test]
    fn histogram_delta_saturates_on_counter_reset() {
        let h = LatencyHistogram::default();
        h.observe(10);
        let was_bigger = h.snapshot();
        let fresh = LatencySnapshot::default();
        let delta = histogram_delta(&fresh, &was_bigger);
        assert_eq!(delta.count, 0);
        assert_eq!(delta.sum_us, 0);
    }

    #[test]
    fn merge_of_window_deltas_matches_cumulative() {
        let h = LatencyHistogram::default();
        let mut cuts = vec![h.snapshot()];
        for us in [10u64, 100, 1_000, 50_000] {
            h.observe(us);
            cuts.push(h.snapshot());
        }
        let deltas: Vec<LatencySnapshot> = cuts
            .windows(2)
            .map(|pair| histogram_delta(&pair[1], &pair[0]))
            .collect();
        let merged = histogram_merge(deltas.iter());
        assert_eq!(merged, h.snapshot(), "sum of window deltas == cumulative");
    }

    #[test]
    fn quantiles_at_exact_bucket_edges() {
        // Samples pinned to exact power-of-two edges: 2^i lands in
        // bucket i+1 (the histogram counts `latency < 2^(i+1)`), and the
        // quantile must stay inside that bucket's inclusive bounds.
        for i in 3..10u32 {
            let edge = 1u64 << i;
            let h = LatencyHistogram::default();
            for _ in 0..100 {
                h.observe(edge);
            }
            let snap = h.snapshot();
            let (lo, hi) = LatencySnapshot::bucket_bounds(i as usize + 1);
            assert_eq!((lo, hi), (edge, 2 * edge - 1));
            for q in [0.0, 0.5, 0.99, 1.0] {
                let v = snap.quantile_us(q);
                assert!(
                    (lo..=hi).contains(&v),
                    "edge {edge}, q {q}: {v} escaped [{lo}, {hi}]"
                );
            }
        }
        // One µs below the edge falls in the previous bucket.
        let h = LatencyHistogram::default();
        h.observe(63);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[6], 1, "63 < 2^6 lands in bucket 6");
        assert!((32..=63).contains(&snap.quantile_us(0.5)));
    }

    #[test]
    fn push_is_safe_under_concurrent_readers() {
        let series = std::sync::Arc::new(TimeSeries::with_capacity(8));
        std::thread::scope(|scope| {
            let writer = std::sync::Arc::clone(&series);
            scope.spawn(move || {
                for i in 0..500 {
                    writer.push(window(i, i));
                }
            });
            for _ in 0..3 {
                let reader = std::sync::Arc::clone(&series);
                scope.spawn(move || {
                    for _ in 0..200 {
                        let windows = reader.recent(8);
                        for pair in windows.windows(2) {
                            assert!(pair[0].seq < pair[1].seq);
                        }
                    }
                });
            }
        });
        // Every push either landed or was counted as dropped.
        assert_eq!(series.pushed(), 500);
        assert!(series.recent(8).len() <= 8);
    }

    #[test]
    fn prom_text_renders_and_validates() {
        let h = LatencyHistogram::default();
        for us in [0u64, 1, 100, 5_000, 1 << 30] {
            h.observe(us);
        }
        let mut prom = PromText::new();
        prom.counter("fm_lookups_total", "Queries recorded.", &[], 5);
        prom.gauge("fm_queue_len", "Queued jobs.", &[], 3.0);
        prom.histogram("fm_latency_us", "Lookup latency.", &[], &h.snapshot());
        prom.histogram(
            "fm_phase_us",
            "Per-verb phase time.",
            &[("verb", "lookup"), ("phase", "service")],
            &h.snapshot(),
        );
        prom.histogram(
            "fm_phase_us",
            "Per-verb phase time.",
            &[("verb", "lookup"), ("phase", "queue")],
            &h.snapshot(),
        );
        let text = prom.finish();
        // One header per family even with two labelled series.
        assert_eq!(text.matches("# TYPE fm_phase_us histogram").count(), 1);
        assert!(text.contains("fm_latency_us_bucket{le=\"0\"} 1"));
        assert!(text.contains("fm_latency_us_bucket{le=\"1\"} 2"));
        assert!(text.contains("fm_latency_us_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("fm_latency_us_count 5"));
        let summary = validate_exposition(&text).expect("valid exposition");
        assert_eq!(summary.histogram_series, 3);
        assert!(summary.samples > 3 * LATENCY_BUCKETS);
    }

    #[test]
    fn validator_rejects_structural_violations() {
        // Non-monotone cumulative buckets.
        let bad = "x_bucket{le=\"1\"} 5\nx_bucket{le=\"3\"} 4\n\
                   x_bucket{le=\"+Inf\"} 5\nx_sum 10\nx_count 5\n";
        let err = validate_exposition(bad).expect_err("must reject");
        assert!(err.contains("non-decreasing"), "got: {err}");

        // +Inf disagrees with _count.
        let bad = "x_bucket{le=\"1\"} 5\nx_bucket{le=\"+Inf\"} 5\nx_sum 10\nx_count 6\n";
        let err = validate_exposition(bad).expect_err("must reject");
        assert!(err.contains("_count"), "got: {err}");

        // Missing +Inf.
        let bad = "x_bucket{le=\"1\"} 5\nx_sum 10\nx_count 5\n";
        let err = validate_exposition(bad).expect_err("must reject");
        assert!(err.contains("+Inf"), "got: {err}");

        // Missing _sum.
        let bad = "x_bucket{le=\"+Inf\"} 5\nx_count 5\n";
        let err = validate_exposition(bad).expect_err("must reject");
        assert!(err.contains("_sum"), "got: {err}");

        // Garbage line.
        assert!(validate_exposition("not a metric line").is_err());
    }

    #[test]
    fn validator_handles_escaped_label_values() {
        let mut prom = PromText::new();
        prom.counter(
            "fm_weird_total",
            "Labels with quotes.",
            &[("path", "a\"b\\c")],
            1,
        );
        let text = prom.finish();
        validate_exposition(&text).expect("escaped labels still parse");
    }
}
