//! Property-based tests for the similarity layer.

use std::sync::OnceLock;

use fm_core::config::{Config, TranspositionCost};
use fm_core::record::{Record, TokenizedRecord};
use fm_core::sim::{fms_apx, fms_t_apx, Similarity};
use fm_core::weights::{TokenFrequencies, UnitWeights, WeightProvider, WeightTable};
use fm_core::{FuzzyMatcher, QueryMode};
use fm_store::Database;
use fm_text::minhash::MinHasher;
use fm_text::Tokenizer;
use proptest::prelude::*;

fn value() -> impl Strategy<Value = Option<String>> {
    prop_oneof![
        1 => Just(None),
        6 => "[a-z0-9]{1,8}( [a-z0-9]{1,8}){0,3}".prop_map(Some),
    ]
}

fn record() -> impl Strategy<Value = Record> {
    prop::collection::vec(value(), 3).prop_map(Record::from_options)
}

fn tokenize(r: &Record) -> TokenizedRecord {
    r.tokenize(&Tokenizer::new())
}

fn config() -> Config {
    Config::default().with_columns(&["a", "b", "c"])
}

/// A small shared matcher for trace-invariant properties. fm-core's tests
/// may not use fm-datagen (layering), so the reference relation is
/// hand-rolled: overlapping token pools give realistic tid-list sharing.
fn shared_matcher() -> &'static (Database, FuzzyMatcher) {
    static MATCHER: OnceLock<(Database, FuzzyMatcher)> = OnceLock::new();
    MATCHER.get_or_init(|| {
        let rows: Vec<Record> = (0..240)
            .map(|i| {
                Record::new(&[
                    &format!("alpha{} beta{} corp", i % 40, i % 11),
                    &format!("city{}", i % 17),
                    &format!("9{:04}", i),
                ])
            })
            .collect();
        let db = Database::in_memory().expect("in-memory db");
        let matcher = FuzzyMatcher::build(&db, "prop", rows.into_iter(), config()).expect("build");
        (db, matcher)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fms_bounded_and_reflexive(u in record(), v in record()) {
        let cfg = config();
        let mut sim = Similarity::new(&UnitWeights, &cfg);
        let ut = tokenize(&u);
        let vt = tokenize(&v);
        let f = sim.fms(&ut, &vt);
        prop_assert!((0.0..=1.0).contains(&f), "fms {f} out of range");
        prop_assert_eq!(sim.fms(&ut, &ut), 1.0);
    }

    #[test]
    fn transformation_cost_nonnegative(u in record(), v in record()) {
        let cfg = config();
        let mut sim = Similarity::new(&UnitWeights, &cfg);
        let tc = sim.transformation_cost(&tokenize(&u), &tokenize(&v));
        prop_assert!(tc >= 0.0);
    }

    #[test]
    fn transposition_never_increases_cost(u in record(), v in record()) {
        // The transposition operation adds a move to the DP; the optimum
        // can only improve or stay equal.
        let plain = config();
        let with_tr = config().with_transposition(TranspositionCost::Constant(0.1));
        let ut = tokenize(&u);
        let vt = tokenize(&v);
        let c_plain = Similarity::new(&UnitWeights, &plain).transformation_cost(&ut, &vt);
        let c_tr = Similarity::new(&UnitWeights, &with_tr).transformation_cost(&ut, &vt);
        prop_assert!(c_tr <= c_plain + 1e-12, "{c_tr} > {c_plain}");
    }

    #[test]
    fn idf_weights_are_finite_nonnegative(rows in prop::collection::vec(record(), 1..20)) {
        let mut freqs = TokenFrequencies::new(3);
        for r in &rows {
            freqs.observe(&tokenize(r));
        }
        let w = WeightTable::new(freqs);
        for r in &rows {
            for (col, t) in tokenize(r).iter_tokens() {
                let x = w.weight(col, t);
                prop_assert!(x.is_finite() && x >= 0.0);
            }
        }
        // Unseen tokens also finite and non-negative.
        for col in 0..3 {
            let x = w.weight(col, "unseen-token-zzz");
            prop_assert!(x.is_finite() && x >= 0.0);
        }
    }

    #[test]
    fn fms_apx_dominates_fms_at_large_h(u in record(), v in record(), seed in 0u64..64) {
        // With H = 48 the probability of fms_apx < fms is negligible for
        // these token sizes; allow a hair of slack for estimator variance.
        let cfg = config();
        let mh = MinHasher::new(48, cfg.q, seed);
        let ut = tokenize(&u);
        let vt = tokenize(&v);
        let apx = fms_apx(&ut, &vt, &UnitWeights, &cfg, &mh);
        let exact = Similarity::new(&UnitWeights, &cfg).fms(&ut, &vt);
        prop_assert!(apx >= exact - 0.12, "apx {apx} far below fms {exact}");
    }

    #[test]
    fn fms_t_apx_dominates_fms_t_at_large_h(u in record(), v in record(), seed in 0u64..64) {
        // §5.3 analogue of the fms_apx bound: with the transposition edit
        // enabled, fms_t_apx must upper-bound the transposition-enabled fms
        // (same slack for estimator variance at H = 48).
        let cfg = config().with_transposition(TranspositionCost::Constant(0.2));
        let mh = MinHasher::new(48, cfg.q, seed);
        let ut = tokenize(&u);
        let vt = tokenize(&v);
        let apx = fms_t_apx(&ut, &vt, &UnitWeights, &cfg, &mh);
        let exact = Similarity::new(&UnitWeights, &cfg).fms(&ut, &vt);
        prop_assert!(apx >= exact - 0.12, "fms_t_apx {apx} far below fms_t {exact}");
    }

    #[test]
    fn lookup_traces_satisfy_invariants(u in record(), k in 1usize..4, mode_osc in any::<bool>()) {
        // Every query, whatever the input, must leave a consistent trace:
        // the funnel only narrows (tid-list entries ≥ tids processed ≥
        // candidates ≥ fetched = fms evaluations) and stop q-grams are a
        // subset of the probes.
        let (_db, matcher) = shared_matcher();
        let mode = if mode_osc { QueryMode::Osc } else { QueryMode::Basic };
        let result = matcher.lookup_with(&u, k, 0.0, mode).expect("lookup");
        let t = result.trace;
        if let Err(e) = t.check_consistent() {
            prop_assert!(false, "inconsistent trace {t:?}: {e}");
        }
        prop_assert!(t.fms_evals <= t.candidates_fetched + t.apx_pruned + t.candidates,
                     "evals beyond the candidate funnel: {t:?}");
        prop_assert!(t.fms_evals == t.candidates_fetched, "one exact fms per fetch: {t:?}");
        prop_assert!(t.candidates_fetched <= t.candidates, "{t:?}");
        prop_assert!(t.candidates <= t.tids_processed, "{t:?}");
        prop_assert!(t.tids_processed <= t.tid_list_entries, "{t:?}");
        prop_assert!(t.stop_qgrams <= t.qgrams_probed, "{t:?}");
        prop_assert!(t.tid_list_max <= t.tid_list_entries, "{t:?}");
        prop_assert!(result.matches.len() <= k, "more matches than K");
        // The compatibility projection must mirror the trace.
        prop_assert!(result.stats.fms_evaluations == t.fms_evals);
        prop_assert!(result.stats.tids_processed == t.tids_processed);
    }

    #[test]
    fn column_weights_preserve_bounds(u in record(), v in record(),
                                      w1 in 0.1f64..4.0, w2 in 0.1f64..4.0, w3 in 0.1f64..4.0) {
        let cfg = config().with_column_weights(&[w1, w2, w3]);
        let mut sim = Similarity::new(&UnitWeights, &cfg);
        let f = sim.fms(&tokenize(&u), &tokenize(&v));
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert_eq!(sim.fms(&tokenize(&u), &tokenize(&u)), 1.0);
    }

    #[test]
    fn more_corruption_never_helps_much(base in "[a-z]{4,10}", extra in "[a-z]{4,10}") {
        // fms(u, v) with v = u should beat fms(u', v) where u' has an extra
        // mismatched token (sanity of the cost model).
        let cfg = Config::default().with_columns(&["a"]);
        let mut sim = Similarity::new(&UnitWeights, &cfg);
        let v = Record::new(&[base.as_str()]);
        let clean = sim.fms(&tokenize(&v), &tokenize(&v));
        let dirty_rec = Record::new(&[format!("{base} {extra}").as_str()]);
        let dirty = sim.fms(&tokenize(&dirty_rec), &tokenize(&v));
        prop_assert!(clean >= dirty);
    }
}
