//! Direct tests of the query-processing layer against a hand-built ETI and
//! a mock reference store — no matcher, no datagen, every score visible.

use std::collections::HashMap;
use std::sync::Arc;

use fm_core::config::{Config, OscStopping, SignatureScheme};
use fm_core::eti::{token_signature, Eti};
use fm_core::query::{basic_lookup, osc_lookup, QueryContext, ReferenceFetch};
use fm_core::record::{Record, TokenizedRecord};
use fm_core::weights::UnitWeights;
use fm_core::Result;
use fm_store::{BTree, BufferPool, MemPager};
use fm_text::minhash::MinHasher;
use fm_text::Tokenizer;

struct MockRef {
    tuples: HashMap<u32, TokenizedRecord>,
    fetches: std::sync::atomic::AtomicU64,
}

impl ReferenceFetch for MockRef {
    fn fetch(&self, tid: u32) -> Result<TokenizedRecord> {
        self.fetches
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(self.tuples.get(&tid).expect("known tid").clone())
    }
}

struct Fixture {
    config: Config,
    minhasher: MinHasher,
    eti: Eti,
    reference: MockRef,
}

impl Fixture {
    /// Build an ETI + mock store over the given reference tuples.
    fn new(rows: &[(u32, &[&str])], config: Config) -> Fixture {
        let tokenizer = Tokenizer::new();
        let minhasher = MinHasher::new(config.h, config.q, config.seed);
        let pool = Arc::new(BufferPool::new(Box::new(MemPager::new()), 64));
        let eti = Eti::new(BTree::create(pool).unwrap(), config.stop_qgram_threshold);
        // Accumulate (gram, coord, col) → sorted tid set.
        let mut groups: HashMap<(String, u8, u8), Vec<u32>> = HashMap::new();
        let mut tuples = HashMap::new();
        for (tid, values) in rows {
            let tokens = Record::new(values).tokenize(&tokenizer);
            for (col, token) in tokens.iter_tokens() {
                for e in token_signature(token, &minhasher, config.scheme) {
                    let v = groups.entry((e.gram, e.coordinate, col as u8)).or_default();
                    if v.last() != Some(tid) {
                        v.push(*tid);
                    }
                }
            }
            tuples.insert(*tid, tokens);
        }
        let mut keys: Vec<_> = groups.into_iter().collect();
        keys.sort_by(|a, b| a.0.cmp(&b.0));
        for ((gram, coord, col), mut tids) in keys {
            tids.sort_unstable();
            tids.dedup();
            eti.insert_group(&gram, coord, col, &tids).unwrap();
        }
        Fixture {
            config,
            minhasher,
            eti,
            reference: MockRef {
                tuples,
                fetches: Default::default(),
            },
        }
    }

    fn ctx(&self) -> QueryContext<'_, UnitWeights, MockRef> {
        QueryContext {
            config: &self.config,
            weights: &UnitWeights,
            minhasher: &self.minhasher,
            eti: &self.eti,
            reference: &self.reference,
        }
    }

    fn tokenize(&self, values: &[&str]) -> TokenizedRecord {
        Record::new(values).tokenize(&Tokenizer::new())
    }
}

fn base_config() -> Config {
    Config::default().with_columns(&["name", "city"]).with_q(3)
}

const ROWS: &[(u32, &[&str])] = &[
    (1, &["boeing company", "seattle"]),
    (2, &["bon corporation", "seattle"]),
    (3, &["companions", "portland"]),
    (4, &["weyerhaeuser", "tacoma"]),
];

#[test]
fn basic_finds_exact_match_with_one_fetch() {
    let fx = Fixture::new(ROWS, base_config());
    let input = fx.tokenize(&["boeing company", "seattle"]);
    let (matches, stats) = basic_lookup(&fx.ctx(), &input, 1, 0.0).unwrap();
    assert_eq!(matches[0].tid, 1);
    assert!((matches[0].similarity - 1.0).abs() < 1e-12);
    // An exact match (fms = 1) dominates every unfetched bound, so the
    // ordered verification stops immediately.
    assert_eq!(stats.candidates_fetched, 1);
    assert!(stats.qgrams_probed > 0);
}

#[test]
fn osc_and_basic_agree_on_all_rows() {
    let fx = Fixture::new(ROWS, base_config());
    for (tid, values) in ROWS {
        let input = fx.tokenize(values);
        let (b, _) = basic_lookup(&fx.ctx(), &input, 1, 0.0).unwrap();
        let (o, _) = osc_lookup(&fx.ctx(), &input, 1, 0.0).unwrap();
        assert_eq!(b[0].tid, *tid);
        assert_eq!(o[0].tid, *tid);
    }
}

#[test]
fn k_zero_returns_nothing_without_work() {
    let fx = Fixture::new(ROWS, base_config());
    let input = fx.tokenize(&["boeing", "seattle"]);
    let (matches, stats) = basic_lookup(&fx.ctx(), &input, 0, 0.0).unwrap();
    assert!(matches.is_empty());
    assert_eq!(stats.qgrams_probed, 0);
    let (matches, stats) = osc_lookup(&fx.ctx(), &input, 0, 0.0).unwrap();
    assert!(matches.is_empty());
    assert_eq!(stats.qgrams_probed, 0);
}

#[test]
fn empty_input_returns_nothing() {
    let fx = Fixture::new(ROWS, base_config());
    let input = Record::from_options(vec![None, None]).tokenize(&Tokenizer::new());
    for f in [
        basic_lookup::<UnitWeights, MockRef>,
        osc_lookup::<UnitWeights, MockRef>,
    ] {
        let (matches, stats) = f(&fx.ctx(), &input, 3, 0.0).unwrap();
        assert!(matches.is_empty());
        assert_eq!(stats.qgrams_probed, 0);
    }
}

#[test]
fn unknown_tokens_score_no_candidates() {
    let fx = Fixture::new(ROWS, base_config());
    let input = fx.tokenize(&["zzzzxxxx qqqqyyyy", "nowhere"]);
    let (matches, stats) = basic_lookup(&fx.ctx(), &input, 3, 0.0).unwrap();
    assert!(matches.is_empty(), "{matches:?}");
    assert_eq!(stats.candidates_fetched, 0);
    assert!(stats.qgrams_probed > 0, "lookups still issued");
}

#[test]
fn max_candidates_cap_is_honored() {
    // Many rows sharing one token ensure lots of scored candidates.
    let rows: Vec<(u32, Vec<String>)> = (1..=50)
        .map(|i| (i, vec![format!("shared{} common", i), "city".to_string()]))
        .collect();
    let rows_ref: Vec<(u32, Vec<&str>)> = rows
        .iter()
        .map(|(t, v)| (*t, v.iter().map(|s| s.as_str()).collect()))
        .collect();
    let rows_slices: Vec<(u32, &[&str])> =
        rows_ref.iter().map(|(t, v)| (*t, v.as_slice())).collect();
    for cap in [3usize, 10] {
        let fx = Fixture::new(&rows_slices, base_config().with_max_candidates(cap));
        let input = fx.tokenize(&["sharedx common", "city"]);
        let (_, stats) = basic_lookup(&fx.ctx(), &input, 1, 0.0).unwrap();
        assert!(
            stats.candidates_fetched <= cap as u64,
            "cap {cap} violated: {} fetches",
            stats.candidates_fetched
        );
    }
}

#[test]
fn threshold_filters_results_and_bounds_fetches() {
    let fx = Fixture::new(ROWS, base_config());
    // Input sharing only the city token: nothing clears c = 0.99, but the
    // adjusted bound (score + d_q·w(u))/w(u) rightly keeps the shared-city
    // candidates *eligible* for verification (their fms could exceed their
    // score — that slack is the whole point of the adjustment term), so a
    // few fetches are expected; just no results.
    let input = fx.tokenize(&["unrelatedname", "seattle"]);
    let (matches, stats) = basic_lookup(&fx.ctx(), &input, 3, 0.99).unwrap();
    assert!(matches.is_empty());
    assert!(stats.candidates_fetched <= stats.candidates, "{stats:?}");
    // An input matching no coordinate at all fetches nothing.
    let input = fx.tokenize(&["zzzzqqqq", "wwwwxxxx"]);
    let (matches, stats) = basic_lookup(&fx.ctx(), &input, 3, 0.99).unwrap();
    assert!(matches.is_empty());
    assert_eq!(stats.candidates_fetched, 0);
}

#[test]
fn stop_qgrams_are_skipped_but_counted() {
    // Threshold 2 turns the shared 'city' token row (50 tids) into a stop
    // q-gram.
    let rows: Vec<(u32, Vec<String>)> = (1..=50)
        .map(|i| (i, vec![format!("unique{i:03}"), "metropolis".to_string()]))
        .collect();
    let rows_ref: Vec<(u32, Vec<&str>)> = rows
        .iter()
        .map(|(t, v)| (*t, v.iter().map(|s| s.as_str()).collect()))
        .collect();
    let rows_slices: Vec<(u32, &[&str])> =
        rows_ref.iter().map(|(t, v)| (*t, v.as_slice())).collect();
    let fx = Fixture::new(&rows_slices, base_config().with_stop_threshold(2));
    let input = fx.tokenize(&["unique007", "metropolis"]);
    let (matches, stats) = basic_lookup(&fx.ctx(), &input, 1, 0.0).unwrap();
    assert!(stats.stop_qgrams > 0, "city rows should be stop q-grams");
    assert_eq!(matches[0].tid, 7, "unique007 was generated as tid 7");
    assert!((matches[0].similarity - 1.0).abs() < 1e-12);
}

#[test]
fn paper_example_osc_short_circuits_on_clear_winner() {
    let config = base_config().with_osc_stopping(OscStopping::PaperExample);
    let fx = Fixture::new(ROWS, config);
    let input = fx.tokenize(&["weyerhaeuser", "tacoma"]);
    let (matches, stats) = osc_lookup(&fx.ctx(), &input, 1, 0.0).unwrap();
    assert_eq!(matches[0].tid, 4);
    assert!(
        stats.osc_succeeded(),
        "a unique heavy token should trigger the short circuit: {stats:?}"
    );
    // Short circuit skips the remaining coordinate lookups.
    let full_plan_grams = {
        let tokenizer = Tokenizer::new();
        Record::new(&["weyerhaeuser", "tacoma"])
            .tokenize(&tokenizer)
            .iter_tokens()
            .map(|(_, t)| token_signature(t, &fx.minhasher, fx.config.scheme).len() as u64)
            .sum::<u64>()
    };
    assert!(
        stats.qgrams_probed < full_plan_grams,
        "expected skipped lookups: {} vs {}",
        stats.qgrams_probed,
        full_plan_grams
    );
}

#[test]
fn k_larger_than_matches_returns_all_sorted() {
    let fx = Fixture::new(ROWS, base_config());
    let input = fx.tokenize(&["company", "seattle"]);
    let (matches, _) = basic_lookup(&fx.ctx(), &input, 10, 0.0).unwrap();
    assert!(matches.len() <= 4);
    for w in matches.windows(2) {
        assert!(w[0].similarity >= w[1].similarity);
    }
}

#[test]
fn q_scheme_without_tokens_still_matches() {
    let config = Config::default()
        .with_columns(&["name", "city"])
        .with_q(3)
        .with_signature(SignatureScheme::QGrams, 2);
    let fx = Fixture::new(ROWS, config);
    let input = fx.tokenize(&["beoing company", "seattle"]);
    let (matches, _) = basic_lookup(&fx.ctx(), &input, 1, 0.0).unwrap();
    assert_eq!(matches[0].tid, 1);
}

#[test]
fn stats_tids_processed_reflects_list_sizes() {
    let fx = Fixture::new(ROWS, base_config());
    let input = fx.tokenize(&["boeing company", "seattle"]);
    let (_, stats) = basic_lookup(&fx.ctx(), &input, 1, 0.0).unwrap();
    // 'seattle' lists contain 2 tids; name tokens 1 each; multiple
    // coordinates per token → strictly more tid-touches than tokens.
    assert!(stats.tids_processed >= 4, "{stats:?}");
    assert!(stats.candidates >= 2);
    assert!(stats.candidates <= 4);
}
