//! Property-based tests for the structured-tracing subsystem: arbitrary
//! span-nesting programs driven through the real collector must read back
//! from the flight recorder well-formed, in open order, with exact names;
//! the recorder's rings must keep the latest traces across wraparound.

use std::sync::Arc;

use fm_core::tracing::{self, with_recorder, CompletedTrace, FlightRecorder, TraceKind, MAX_SPANS};
use proptest::prelude::*;

/// `span()` takes `&'static str`, so random names come from a fixed pool.
const NAMES: [&str; 8] = [
    "tokenize",
    "plan",
    "probe",
    "fetch",
    "fms",
    "merge",
    "rank",
    "materialize",
];

/// One node of a random span program: an instant marker, or a span
/// enclosing its children.
#[derive(Debug, Clone)]
enum Node {
    Instant(usize),
    Span(usize, Vec<Node>),
}

/// Random span programs with bounded depth (the vendored proptest has no
/// `prop_recursive`, so the recursion lives in `generate` itself).
#[derive(Clone, Copy)]
struct NodeStrategy {
    depth: usize,
}

impl Strategy for NodeStrategy {
    type Value = Node;

    fn generate(&self, rng: &mut proptest::test_runner::TestRng) -> Node {
        let name = rng.usize_between(0, NAMES.len() - 1);
        if self.depth == 0 || rng.usize_between(0, 2) == 0 {
            return Node::Instant(name);
        }
        let child = NodeStrategy {
            depth: self.depth - 1,
        };
        let children = (0..rng.usize_between(0, 3))
            .map(|_| child.generate(rng))
            .collect();
        Node::Span(name, children)
    }
}

fn node() -> NodeStrategy {
    NodeStrategy { depth: 4 }
}

/// Execute the program through the real RAII guards, collecting the
/// expected preorder of names as we go.
fn emit(n: &Node, expected: &mut Vec<&'static str>) {
    match n {
        Node::Instant(i) => {
            expected.push(NAMES[*i]);
            tracing::instant(NAMES[*i]);
        }
        Node::Span(i, children) => {
            expected.push(NAMES[*i]);
            let _guard = tracing::span(NAMES[*i]);
            for child in children {
                emit(child, expected);
            }
        }
    }
}

fn record_program(program: &[Node]) -> (CompletedTrace, Vec<&'static str>) {
    tracing::set_enabled(true);
    let rec = Arc::new(FlightRecorder::with_capacity(4, 4));
    let mut expected = Vec::new();
    with_recorder(Arc::clone(&rec), || {
        let _root = tracing::start(TraceKind::Query);
        for n in program {
            emit(n, &mut expected);
        }
    });
    let mut traces = rec.recent();
    assert_eq!(traces.len(), 1, "one start() must publish one trace");
    (traces.remove(0), expected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Any nesting program yields a structurally valid trace: one root,
    /// backward parent links, child intervals inside parent intervals.
    #[test]
    fn arbitrary_nesting_reads_back_well_formed(
        program in prop::collection::vec(node(), 0..6),
    ) {
        let (trace, expected) = record_program(&program);
        trace.check_well_formed().unwrap();
        prop_assert_eq!(trace.kind, TraceKind::Query);
        prop_assert_eq!(trace.spans[0].name, "query");
        if expected.len() < MAX_SPANS {
            prop_assert_eq!(trace.dropped_spans, 0);
            let names: Vec<&str> = trace.spans[1..].iter().map(|s| s.name).collect();
            prop_assert_eq!(names, expected, "spans must read back in open order");
        }
    }

    /// Spans are recorded in open order, which is chronological: start
    /// timestamps never decrease along the span vector, and every span's
    /// interval sits inside the root's.
    #[test]
    fn span_starts_are_monotone_and_root_covers_all(
        program in prop::collection::vec(node(), 1..6),
    ) {
        let (trace, _) = record_program(&program);
        let root = trace.spans[0];
        for pair in trace.spans.windows(2) {
            prop_assert!(pair[0].start_us <= pair[1].start_us);
        }
        for s in &trace.spans {
            prop_assert!(s.start_us >= root.start_us && s.end_us <= root.end_us);
        }
    }

    /// The recent ring survives wraparound: after `n` publications into a
    /// ring of `cap` slots it holds exactly the latest `min(n, cap)`
    /// traces, oldest first, with per-recorder seq numbers 1..=n.
    #[test]
    fn ring_wraparound_keeps_latest_traces(
        n in 1usize..40,
        cap in 1usize..8,
    ) {
        tracing::set_enabled(true);
        let rec = Arc::new(FlightRecorder::with_capacity(cap, 2));
        // Nothing slow here: a huge threshold keeps the slow ring empty.
        rec.set_slow_threshold_us(u64::MAX);
        with_recorder(Arc::clone(&rec), || {
            for _ in 0..n {
                let _g = tracing::start(TraceKind::Build);
            }
        });
        prop_assert_eq!(rec.published(), n as u64);
        prop_assert_eq!(rec.contended_drops(), 0);
        let recent = rec.recent();
        prop_assert_eq!(recent.len(), n.min(cap));
        for (i, t) in recent.iter().enumerate() {
            // The retained window is the tail: seqs (n - len + 1)..=n.
            let expect = (n - recent.len() + 1 + i) as u64;
            prop_assert_eq!(t.seq, expect);
            t.check_well_formed().unwrap();
        }
    }

    /// With the slow threshold at zero every trace is retained in both
    /// rings; `all()` deduplicates by seq and `slowest(k)` returns at most
    /// `k` traces ordered slowest-first.
    #[test]
    fn slow_ring_dedup_and_slowest_ordering(
        n in 1usize..20,
        k in 0usize..6,
    ) {
        tracing::set_enabled(true);
        let rec = Arc::new(FlightRecorder::with_capacity(6, 6));
        rec.set_slow_threshold_us(0);
        with_recorder(Arc::clone(&rec), || {
            for _ in 0..n {
                let _g = tracing::start(TraceKind::Query);
            }
        });
        let all = rec.all();
        let mut seqs: Vec<u64> = all.iter().map(|t| t.seq).collect();
        let before = seqs.len();
        seqs.dedup();
        prop_assert_eq!(seqs.len(), before, "all() must deduplicate by seq");
        for pair in seqs.windows(2) {
            prop_assert!(pair[0] < pair[1], "all() must be oldest-first");
        }
        let slowest = rec.slowest(k);
        prop_assert!(slowest.len() <= k);
        prop_assert!(slowest.len() <= all.len());
        for pair in slowest.windows(2) {
            prop_assert!(pair[0].total_us() >= pair[1].total_us());
        }
    }
}

/// Overflowing the span slab drops the excess, counts it, and still
/// publishes a well-formed trace (deterministic, so a plain test).
#[test]
fn span_slab_overflow_counts_drops() {
    tracing::set_enabled(true);
    let rec = Arc::new(FlightRecorder::with_capacity(2, 2));
    with_recorder(Arc::clone(&rec), || {
        let _root = tracing::start(TraceKind::Query);
        for _ in 0..MAX_SPANS + 10 {
            tracing::instant("probe");
        }
    });
    let traces = rec.recent();
    assert_eq!(traces.len(), 1);
    let t = &traces[0];
    t.check_well_formed().unwrap();
    assert_eq!(t.spans.len(), MAX_SPANS);
    assert_eq!(t.dropped_spans, 11);
}
