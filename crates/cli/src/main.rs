//! `fuzzymatch` — fuzzy lookup against CSV reference data from the shell.
//!
//! ```text
//! fuzzymatch build  --db customers.fmdb --reference customers.csv
//! fuzzymatch query  --db customers.fmdb --input "Beoing Company,Seattle,WA,98004" [-k 3] [-c 0.8]
//! fuzzymatch batch  --db customers.fmdb --inputs dirty.csv [--out matched.csv] [-k 1] [-c 0.0]
//! fuzzymatch insert --db customers.fmdb --input "New Customer,Tacoma,WA,98401"
//! fuzzymatch info   --db customers.fmdb
//! ```
//!
//! The first CSV row is the header and defines the schema. `build` creates
//! a persistent database file holding the reference relation, its Error
//! Tolerant Index, token frequencies, and the matcher configuration;
//! `query`/`batch` reopen it instantly.

mod csv;

use std::io::{BufReader, BufWriter, Write};
use std::path::PathBuf;
use std::process::ExitCode;

use fm_core::{Config, FuzzyMatcher, OscStopping, Record, SignatureScheme};
use fm_store::Database;

const MATCHER_NAME: &str = "reference";
const USAGE: &str = "\
fuzzymatch — robust fuzzy match against CSV reference data (SIGMOD 2003)

USAGE:
  fuzzymatch build  --db FILE --reference FILE.csv [build options]
  fuzzymatch query  --db FILE --input \"v1,v2,...\" [-k N] [-c MIN_SIM] [--trace]
  fuzzymatch lookup (alias for query)
  fuzzymatch batch  --db FILE --inputs FILE.csv [--out FILE.csv] [-k N] [-c MIN_SIM]
  fuzzymatch insert --db FILE --input \"v1,v2,...\"
  fuzzymatch delete --db FILE --tid N
  fuzzymatch explain --db FILE --input \"v1,v2,...\" [-k N]
  fuzzymatch info   --db FILE
  fuzzymatch stats  --db FILE [--inputs FILE.csv] [-k N] [-c MIN_SIM]
  fuzzymatch trace  dump    (--db FILE | --reference FILE.csv) [--inputs FILE.csv | --input \"...\"]
  fuzzymatch trace  export  (--db FILE | --reference FILE.csv) --chrome [--out FILE] [...]
  fuzzymatch trace  slowest [K] (--db FILE | --reference FILE.csv | --addr HOST:PORT) [...]
  fuzzymatch trace  diff   A.json B.json
  fuzzymatch serve  --db FILE [--addr HOST:PORT] [serve options]
  fuzzymatch ping   --addr HOST:PORT
  fuzzymatch client (lookup|stats|health|timeseries|shutdown) --addr HOST:PORT [...]
  fuzzymatch metrics --addr HOST:PORT [--check]
  fuzzymatch top    --addr HOST:PORT [--interval-ms N] [--iterations N]

BUILD OPTIONS:
  --q N                 q-gram size (default 4)
  --signature SCHEME    q_H or q+t_H, e.g. q+t_3 (default), q_2, q+t_0
  --cins X              token insertion factor in (0,1] (default 0.5)
  --stop-threshold N    stop q-gram threshold (default 10000)
  --seed N              min-hash seed (default paper seed)
  --column-weights CSV  per-column weights, e.g. 2.0,1.0,1.0,0.5
  --fast-osc            use the paper-example OSC bound (faster, less exact)

GLOBAL OPTIONS:
  --durable             open the database with write-ahead logging: every
                        command's changes commit atomically (crash-safe)

QUERY/BATCH OPTIONS:
  -k N                  return up to N matches (default 1)
  -c X                  minimum similarity threshold in [0,1) (default 0.0)
  --trace               print the per-query lookup trace (q-grams probed,
                        ETI rows, candidates, fms evaluations, ...) to stderr

STATS:
  prints IO accounting for the database file plus, when --inputs is given,
  the aggregated query metrics after running every input through lookup.

TRACE:
  runs the given inputs with the structured tracer on and reads the flight
  recorder back. With --reference the matcher is built in-process first, so
  the export also contains the ETI build spans (pre-ETI, extsort, group
  fill). Subcommands:
    dump              per-phase flame summary + p50/p95/p99 latency
    export --chrome   Chrome trace-event JSON (open in Perfetto or
                      chrome://tracing); --out FILE (default trace.json)
    slowest [K]       the K slowest retained traces (default 10); with
                      --addr, read from a running server instead
    diff A B          per-phase delta between two Chrome exports (us / %)
  --slow-us N         slow-query retention threshold in microseconds

SERVE OPTIONS (fuzzymatch serve exposes lookups over TCP; see DESIGN.md \u{a7}9):
  --addr HOST:PORT      listen address (default 127.0.0.1:7407; port 0 = any)
  --workers N           lookup worker threads (default 4)
  --replicas N          matcher read replicas over the shared store
                        (default 0 = one per worker)
  --queue-depth N       bounded request queue (default 64)
  --max-inflight N      admission cap (default workers + queue depth)
  --deadline-ms N       default per-request deadline (default 0 = none)
  --batch-max N         micro-batch fusion limit (default 8)
  --port-file FILE      write the bound address to FILE once listening
  --debug-sleep         honour the sleep_ms test hook (tests/CI only)
  --telemetry-window-ms N   sampler window for the rolling time-series
                        (default 1000; 0 disables the sampler thread)
  --telemetry-windows N retained windows in the time-series ring (default 120)
  --slow-us N           slow-query log threshold in microseconds
                        (default 0 = disabled)
  --slow-log FILE       mirror slow-query records to FILE as JSONL
  --slow-log-cap N      in-memory slow-query records kept (default 256)

CLIENT OPTIONS:
  --addr HOST:PORT      server to talk to (required)
  lookup: --input \"v1,v2,...\" [-k N] [-c MIN_SIM] [--deadline-ms N]
  stats:  print the server's metrics/store/serving counters as JSON

METRICS / TOP (continuous telemetry; see DESIGN.md \u{a7}7.2):
  metrics               scrape the server once and print Prometheus text
                        exposition; --check also validates it (bucket
                        monotonicity, +Inf/_count agreement) and fails
                        non-zero on malformed output
  top                   refreshing terminal view over the `timeseries`
                        verb: qps, per-verb p50/p99, queue depth, pool
                        hit rate, per-replica share
  --interval-ms N       refresh period (default 2000)
  --iterations N        stop after N refreshes (default 0 = run forever)
";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Tiny flag parser: `--name value` pairs plus `-k`/`-c` shorthands.
struct Args {
    flags: std::collections::HashMap<String, String>,
}

impl Args {
    fn parse(args: &[String]) -> Result<Args, String> {
        let mut flags = std::collections::HashMap::new();
        let mut i = 0;
        while i < args.len() {
            let name = args[i]
                .strip_prefix("--")
                .or_else(|| args[i].strip_prefix('-'))
                .ok_or_else(|| format!("unexpected argument {}", args[i]))?;
            if name == "fast-osc"
                || name == "durable"
                || name == "trace"
                || name == "chrome"
                || name == "debug-sleep"
                || name == "check"
            {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
                continue;
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("missing value for --{name}"))?;
            flags.insert(name.to_string(), value.clone());
            i += 2;
        }
        Ok(Args { flags })
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{name}: {v}")),
        }
    }
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        eprint!("{USAGE}");
        return Err("no command given".into());
    };
    if command == "--help" || command == "-h" || command == "help" {
        print!("{USAGE}");
        return Ok(());
    }
    if command == "trace" {
        let sub = argv
            .get(1)
            .map(String::as_str)
            .ok_or("trace: missing subcommand (dump|export|slowest|diff)")?;
        if sub == "diff" {
            let base = argv
                .get(2)
                .ok_or("trace diff: missing base export A.json")?;
            let new = argv.get(3).ok_or("trace diff: missing new export B.json")?;
            return cmd_trace_diff(base, new);
        }
        let mut rest = &argv[2..];
        let mut top = 10usize;
        if sub == "slowest" {
            if let Some(Ok(n)) = rest.first().map(|s| s.parse()) {
                top = n;
                rest = &rest[1..];
            }
        }
        let args = Args::parse(rest)?;
        return cmd_trace(sub, top, &args);
    }
    if command == "client" {
        let sub = argv
            .get(1)
            .map(String::as_str)
            .ok_or("client: missing subcommand (lookup|stats|health|timeseries|shutdown)")?;
        let args = Args::parse(&argv[2..])?;
        return cmd_client(sub, &args);
    }
    let args = Args::parse(&argv[1..])?;
    match command.as_str() {
        "build" => cmd_build(&args),
        "query" | "lookup" => cmd_query(&args),
        "batch" => cmd_batch(&args),
        "insert" => cmd_insert(&args),
        "delete" => cmd_delete(&args),
        "explain" => cmd_explain(&args),
        "info" => cmd_info(&args),
        "stats" => cmd_stats(&args),
        "serve" => cmd_serve(&args),
        "ping" => cmd_ping(&args),
        "metrics" => cmd_metrics(&args),
        "top" => cmd_top(&args),
        other => Err(format!("unknown command {other}; try --help")),
    }
}

fn open_db(args: &Args) -> Result<Database, String> {
    let path = PathBuf::from(args.require("db")?);
    let result = if args.get("durable").is_some() {
        Database::open_file_durable(&path, 4096)
    } else {
        Database::open_file(&path, 4096)
    };
    result.map_err(|e| format!("cannot open {}: {e}", path.display()))
}

fn parse_signature(s: &str) -> Result<(SignatureScheme, usize), String> {
    let lower = s.to_lowercase();
    let (scheme, rest) = if let Some(rest) = lower.strip_prefix("q+t_") {
        (SignatureScheme::QGramsPlusToken, rest)
    } else if let Some(rest) = lower.strip_prefix("q_") {
        (SignatureScheme::QGrams, rest)
    } else {
        return Err(format!("bad signature {s}; expected e.g. q+t_3 or q_2"));
    };
    let h: usize = rest.parse().map_err(|_| format!("bad signature {s}"))?;
    Ok((scheme, h))
}

/// Read a reference CSV: the header row (schema) plus every data row.
fn read_reference_csv(path: &PathBuf) -> Result<(Vec<String>, Vec<Record>), String> {
    let file =
        std::fs::File::open(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    let mut reader = BufReader::new(file);
    let header = csv::read_record(&mut reader)
        .map_err(|e| e.to_string())?
        .ok_or("reference CSV is empty")?;
    let arity = header.len();
    let mut rows: Vec<Record> = Vec::new();
    let mut line_no = 1usize;
    while let Some(rec) = csv::read_record(&mut reader).map_err(|e| e.to_string())? {
        line_no += 1;
        if rec.len() != arity {
            return Err(format!(
                "row {line_no}: {} fields, header has {arity}",
                rec.len()
            ));
        }
        rows.push(Record::from_options(
            rec.into_iter()
                .map(|v| if v.is_empty() { None } else { Some(v) })
                .collect(),
        ));
    }
    Ok((header, rows))
}

fn cmd_build(args: &Args) -> Result<(), String> {
    let reference_path = PathBuf::from(args.require("reference")?);
    let (header, rows) = read_reference_csv(&reference_path)?;
    let columns: Vec<&str> = header.iter().map(String::as_str).collect();

    let mut config = Config::default().with_columns(&columns);
    config.q = args.get_parsed("q", config.q)?;
    if let Some(sig) = args.get("signature") {
        let (scheme, h) = parse_signature(sig)?;
        config = config.with_signature(scheme, h);
    }
    config.cins = args.get_parsed("cins", config.cins)?;
    config.stop_qgram_threshold = args.get_parsed("stop-threshold", config.stop_qgram_threshold)?;
    config.seed = args.get_parsed("seed", config.seed)?;
    if let Some(w) = args.get("column-weights") {
        let weights: Result<Vec<f64>, _> = w.split(',').map(str::parse).collect();
        config =
            config.with_column_weights(&weights.map_err(|_| format!("bad --column-weights {w}"))?);
    }
    if args.get("fast-osc").is_some() {
        config = config.with_osc_stopping(OscStopping::PaperExample);
    }
    let n = rows.len();

    let db = open_db(args)?;
    let start = std::time::Instant::now();
    let matcher = FuzzyMatcher::build(&db, MATCHER_NAME, rows.into_iter(), config)
        .map_err(|e| e.to_string())?;
    db.flush().map_err(|e| e.to_string())?;
    let stats = matcher.build_stats().expect("fresh build");
    eprintln!(
        "built {} over {n} reference tuples in {:.2}s ({} ETI entries, {} pre-ETI rows, {} sort spills)",
        matcher.config().strategy_label(),
        start.elapsed().as_secs_f64(),
        matcher.eti_entry_count().map_err(|e| e.to_string())?,
        stats.pre_eti_records,
        stats.spilled_runs,
    );
    Ok(())
}

fn parse_input(input: &str, arity: usize) -> Result<Record, String> {
    let mut reader = BufReader::new(input.as_bytes());
    let fields = csv::read_record(&mut reader)
        .map_err(|e| e.to_string())?
        .ok_or("empty input")?;
    if fields.len() != arity {
        return Err(format!(
            "input has {} fields, reference has {arity}",
            fields.len()
        ));
    }
    Ok(Record::from_options(
        fields
            .into_iter()
            .map(|v| if v.is_empty() { None } else { Some(v) })
            .collect(),
    ))
}

fn cmd_query(args: &Args) -> Result<(), String> {
    let db = open_db(args)?;
    let matcher = FuzzyMatcher::open(&db, MATCHER_NAME).map_err(|e| e.to_string())?;
    let k: usize = args.get_parsed("k", 1)?;
    let c: f64 = args.get_parsed("c", 0.0)?;
    let input = parse_input(args.require("input")?, matcher.config().arity())?;
    let result = matcher.lookup(&input, k, c).map_err(|e| e.to_string())?;
    if result.matches.is_empty() {
        println!("no match above c = {c}");
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for m in &result.matches {
        let mut fields = vec![format!("{:.4}", m.similarity), m.tid.to_string()];
        fields.extend(
            m.record
                .values()
                .iter()
                .map(|v| v.clone().unwrap_or_default()),
        );
        csv::write_record(&mut out, &fields).map_err(|e| e.to_string())?;
    }
    eprintln!(
        "[{} ETI lookups, {} tuples verified, OSC {}]",
        result.stats.eti_lookups,
        result.stats.candidates_fetched,
        if result.stats.osc_succeeded {
            "hit"
        } else {
            "miss"
        },
    );
    if args.get("trace").is_some() {
        let t = &result.trace;
        eprintln!("trace:");
        eprintln!("  q-grams probed:     {}", t.qgrams_probed);
        eprintln!("  stop q-grams:       {}", t.stop_qgrams);
        eprintln!("  ETI rows touched:   {}", t.eti_rows);
        eprintln!(
            "  tid-list entries:   {} (longest list {})",
            t.tid_list_entries, t.tid_list_max
        );
        eprintln!("  tids processed:     {}", t.tids_processed);
        eprintln!("  candidates:         {}", t.candidates);
        eprintln!("  apx-pruned:         {}", t.apx_pruned);
        eprintln!("  candidates fetched: {}", t.candidates_fetched);
        eprintln!("  fms evaluations:    {}", t.fms_evals);
        match t.osc_round {
            Some(round) => eprintln!(
                "  OSC:                short-circuited after q-gram {} ({} attempts)",
                round + 1,
                t.osc_attempts
            ),
            None => eprintln!(
                "  OSC:                no short circuit ({} attempts)",
                t.osc_attempts
            ),
        }
        eprintln!("  latency:            {} us", t.latency_us);
    }
    Ok(())
}

/// Read an inputs CSV with the `batch` header convention: a first row
/// equal to the schema is skipped.
fn read_inputs_csv(path: &str, matcher: &FuzzyMatcher) -> Result<Vec<Record>, String> {
    let arity = matcher.config().arity();
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut reader = BufReader::new(file);
    let mut inputs: Vec<Record> = Vec::new();
    while let Some(rec) = csv::read_record(&mut reader).map_err(|e| e.to_string())? {
        if inputs.is_empty()
            && rec.iter().map(String::as_str).collect::<Vec<_>>()
                == matcher
                    .config()
                    .column_names
                    .iter()
                    .map(String::as_str)
                    .collect::<Vec<_>>()
        {
            continue;
        }
        if rec.len() != arity {
            return Err(format!(
                "input has {} fields, reference has {arity}",
                rec.len()
            ));
        }
        inputs.push(Record::from_options(
            rec.into_iter()
                .map(|v| if v.is_empty() { None } else { Some(v) })
                .collect(),
        ));
    }
    Ok(inputs)
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let db = open_db(args)?;
    let matcher = FuzzyMatcher::open(&db, MATCHER_NAME).map_err(|e| e.to_string())?;
    if let Some(path) = args.get("inputs") {
        let k: usize = args.get_parsed("k", 1)?;
        let c: f64 = args.get_parsed("c", 0.0)?;
        for input in &read_inputs_csv(path, &matcher)? {
            matcher.lookup(input, k, c).map_err(|e| e.to_string())?;
        }
    }
    let m = matcher.metrics_snapshot();
    println!("query metrics:");
    println!("  lookups:            {}", m.lookups);
    println!("  q-grams probed:     {}", m.qgrams_probed);
    println!("  stop q-grams:       {}", m.stop_qgrams);
    println!("  ETI rows touched:   {}", m.eti_rows);
    println!("  tid-list entries:   {}", m.tid_list_entries);
    println!("  tids processed:     {}", m.tids_processed);
    println!("  candidates:         {}", m.candidates);
    println!("  apx-pruned:         {}", m.apx_pruned);
    println!("  candidates fetched: {}", m.candidates_fetched);
    println!("  fms evaluations:    {}", m.fms_evals);
    println!(
        "  OSC:                {} short circuits / {} attempts",
        m.osc_short_circuits, m.osc_attempts
    );
    println!(
        "  latency:            {:.1} us mean over {} queries",
        m.latency.mean_us(),
        m.latency.count
    );
    let io = db.stats();
    println!("store IO:");
    println!("  pool hits:          {}", io.hits);
    println!("  pool misses:        {}", io.misses);
    println!("  pool evictions:     {}", io.evictions);
    println!("  pages read:         {}", io.pages_read);
    println!("  pages written:      {}", io.pages_written);
    println!("  WAL bytes:          {}", io.wal_bytes);
    Ok(())
}

fn cmd_batch(args: &Args) -> Result<(), String> {
    let db = open_db(args)?;
    let matcher = FuzzyMatcher::open(&db, MATCHER_NAME).map_err(|e| e.to_string())?;
    let k: usize = args.get_parsed("k", 1)?;
    let c: f64 = args.get_parsed("c", 0.0)?;
    let arity = matcher.config().arity();

    let inputs_path = PathBuf::from(args.require("inputs")?);
    let file = std::fs::File::open(&inputs_path)
        .map_err(|e| format!("cannot open {}: {e}", inputs_path.display()))?;
    let mut reader = BufReader::new(file);
    // Optional header: if the first record equals the schema, skip it.
    let mut first = csv::read_record(&mut reader).map_err(|e| e.to_string())?;
    if let Some(rec) = &first {
        if rec.iter().map(String::as_str).collect::<Vec<_>>()
            == matcher
                .config()
                .column_names
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
        {
            first = None;
        }
    }

    let mut out: Box<dyn Write> = match args.get("out") {
        None => Box::new(BufWriter::new(std::io::stdout())),
        Some(path) => Box::new(BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
        )),
    };
    // Output header.
    let mut header = vec!["similarity".to_string(), "tid".to_string()];
    header.extend(matcher.config().column_names.iter().cloned());
    header.push("input".to_string());
    csv::write_record(&mut out, &header).map_err(|e| e.to_string())?;

    let start = std::time::Instant::now();
    let mut processed = 0usize;
    let mut matched = 0usize;
    let mut next = first;
    loop {
        let rec = match next.take() {
            Some(rec) => rec,
            None => match csv::read_record(&mut reader).map_err(|e| e.to_string())? {
                None => break,
                Some(rec) => rec,
            },
        };
        if rec.len() != arity {
            return Err(format!(
                "input row {}: {} fields, reference has {arity}",
                processed + 1,
                rec.len()
            ));
        }
        let joined = rec.join(",");
        let input = Record::from_options(
            rec.into_iter()
                .map(|v| if v.is_empty() { None } else { Some(v) })
                .collect(),
        );
        let result = matcher.lookup(&input, k, c).map_err(|e| e.to_string())?;
        processed += 1;
        if result.matches.is_empty() {
            let mut fields = vec![String::new(), String::new()];
            fields.extend((0..arity).map(|_| String::new()));
            fields.push(joined);
            csv::write_record(&mut out, &fields).map_err(|e| e.to_string())?;
        } else {
            matched += 1;
            for m in &result.matches {
                let mut fields = vec![format!("{:.4}", m.similarity), m.tid.to_string()];
                fields.extend(
                    m.record
                        .values()
                        .iter()
                        .map(|v| v.clone().unwrap_or_default()),
                );
                fields.push(joined.clone());
                csv::write_record(&mut out, &fields).map_err(|e| e.to_string())?;
            }
        }
    }
    out.flush().map_err(|e| e.to_string())?;
    eprintln!(
        "matched {matched}/{processed} inputs in {:.2}s ({:.1}/s)",
        start.elapsed().as_secs_f64(),
        processed as f64 / start.elapsed().as_secs_f64().max(1e-9),
    );
    Ok(())
}

fn cmd_insert(args: &Args) -> Result<(), String> {
    let db = open_db(args)?;
    let matcher = FuzzyMatcher::open(&db, MATCHER_NAME).map_err(|e| e.to_string())?;
    let input = parse_input(args.require("input")?, matcher.config().arity())?;
    let tid = matcher
        .insert_reference(&input)
        .map_err(|e| e.to_string())?;
    db.flush().map_err(|e| e.to_string())?;
    println!("inserted as tid {tid}");
    Ok(())
}

fn cmd_delete(args: &Args) -> Result<(), String> {
    let db = open_db(args)?;
    let matcher = FuzzyMatcher::open(&db, MATCHER_NAME).map_err(|e| e.to_string())?;
    let tid: u32 = args
        .require("tid")?
        .parse()
        .map_err(|_| "bad --tid".to_string())?;
    let removed = matcher.delete_reference(tid).map_err(|e| e.to_string())?;
    db.flush().map_err(|e| e.to_string())?;
    println!("deleted tid {tid}: {removed}");
    Ok(())
}

fn cmd_explain(args: &Args) -> Result<(), String> {
    let db = open_db(args)?;
    let matcher = FuzzyMatcher::open(&db, MATCHER_NAME).map_err(|e| e.to_string())?;
    let limit: usize = args.get_parsed("k", 10)?;
    let input = parse_input(args.require("input")?, matcher.config().arity())?;
    let explain = matcher.explain(&input, limit).map_err(|e| e.to_string())?;
    print!("{explain}");
    Ok(())
}

/// `fuzzymatch trace <dump|export|slowest>`: run lookups (and optionally
/// an in-process build) with the structured tracer, then read the flight
/// recorder back.
fn cmd_trace(sub: &str, top: usize, args: &Args) -> Result<(), String> {
    if !matches!(sub, "dump" | "export" | "slowest") {
        return Err(format!(
            "unknown trace subcommand {sub}; expected dump|export|slowest|diff"
        ));
    }
    if let Some(addr) = args.get("addr") {
        // The flight recorder is per-process, so traces of server
        // traffic live in the server; fetch them over the protocol.
        if sub != "slowest" {
            return Err("--addr is only supported for `trace slowest`".into());
        }
        return remote_trace_slowest(addr, top);
    }
    let recorder = fm_core::tracing::recorder();
    if let Some(us) = args.get("slow-us") {
        recorder.set_slow_threshold_us(us.parse().map_err(|_| "bad --slow-us".to_string())?);
    }
    recorder.clear();

    // With --reference, build the matcher in-process (in memory unless
    // --db is also given) so the recorder captures the build-path spans;
    // with --db alone, reopen the existing database.
    let db = if args.get("reference").is_some() && args.get("db").is_none() {
        Database::in_memory().map_err(|e| e.to_string())?
    } else {
        open_db(args)?
    };
    let matcher = if let Some(path) = args.get("reference") {
        let (header, rows) = read_reference_csv(&PathBuf::from(path))?;
        let columns: Vec<&str> = header.iter().map(String::as_str).collect();
        let config = Config::default().with_columns(&columns);
        FuzzyMatcher::build(&db, MATCHER_NAME, rows.into_iter(), config)
            .map_err(|e| e.to_string())?
    } else {
        FuzzyMatcher::open(&db, MATCHER_NAME).map_err(|e| e.to_string())?
    };

    let k: usize = args.get_parsed("k", 1)?;
    let c: f64 = args.get_parsed("c", 0.0)?;
    let mut queries = 0usize;
    if let Some(path) = args.get("inputs") {
        for input in &read_inputs_csv(path, &matcher)? {
            matcher.lookup(input, k, c).map_err(|e| e.to_string())?;
            queries += 1;
        }
    }
    if let Some(input) = args.get("input") {
        let input = parse_input(input, matcher.config().arity())?;
        matcher.lookup(&input, k, c).map_err(|e| e.to_string())?;
        queries += 1;
    }

    let traces = matcher.recent_traces();
    match sub {
        "dump" => {
            let snapshot = matcher.metrics_snapshot();
            print!(
                "{}",
                fm_core::tracing::flame_summary(&traces, Some(&snapshot.latency))
            );
        }
        "export" => {
            // Only --chrome exists today; require it so a future second
            // format has an unambiguous default story.
            if args.get("chrome").is_none() {
                return Err("trace export: pass --chrome (the only format so far)".into());
            }
            let json = fm_core::tracing::chrome_trace_json(&traces);
            let out = args.get("out").unwrap_or("trace.json");
            std::fs::write(out, &json).map_err(|e| format!("cannot write {out}: {e}"))?;
            eprintln!(
                "wrote {} trace(s) over {queries} quer(ies) to {out} \
                 (load in Perfetto or chrome://tracing)",
                traces.len()
            );
        }
        _ => {
            // "slowest"
            let slow = recorder.slowest(top);
            println!(
                "{:<6} {:<6} {:>12} {:>7}  root counters",
                "seq", "kind", "total ms", "spans"
            );
            for t in &slow {
                let counters = t.counters.map_or_else(String::new, |cnt| {
                    format!(
                        "probed={} fetched={} fms={}",
                        cnt.qgrams_probed, cnt.candidates_fetched, cnt.fms_evals
                    )
                });
                println!(
                    "{:<6} {:<6} {:>12.3} {:>7}  {}",
                    t.seq,
                    t.kind.as_str(),
                    t.total_us() as f64 / 1000.0,
                    t.spans.len(),
                    counters
                );
            }
        }
    }
    Ok(())
}

/// `fuzzymatch serve`: expose the matcher over TCP until a client sends
/// the `shutdown` verb, then print the drained final snapshot.
fn cmd_serve(args: &Args) -> Result<(), String> {
    let db = std::sync::Arc::new(open_db(args)?);
    let matcher = std::sync::Arc::new(
        fm_core::FuzzyMatcher::open(&db, MATCHER_NAME).map_err(|e| e.to_string())?,
    );
    let config = fm_server::ServerConfig {
        workers: args.get_parsed("workers", 4)?,
        queue_depth: args.get_parsed("queue-depth", 64)?,
        max_inflight: args.get_parsed("max-inflight", 0)?,
        deadline_ms: args.get_parsed("deadline-ms", 0)?,
        batch_max: args.get_parsed("batch-max", 8)?,
        allow_sleep: args.get("debug-sleep").is_some(),
        replicas: args.get_parsed("replicas", 0)?,
        telemetry_window_ms: args.get_parsed("telemetry-window-ms", 1000)?,
        telemetry_windows: args.get_parsed("telemetry-windows", 120)?,
        slow_us: args.get_parsed("slow-us", 0)?,
        slow_log: args.get("slow-log").map(PathBuf::from),
        slow_log_cap: args.get_parsed("slow-log-cap", 256)?,
    };
    let addr = args.get("addr").unwrap_or("127.0.0.1:7407");
    let server = fm_server::Server::start(addr, matcher, db, config)
        .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
    let local = server.local_addr();
    if let Some(path) = args.get("port-file") {
        std::fs::write(path, local.to_string()).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    eprintln!("fuzzymatch serving on {local} (send the `shutdown` verb to drain)");
    let report = server.wait();
    let c = report.counters;
    eprintln!("drained: final snapshot");
    eprintln!(
        "  served:   {} responses over {} connections ({} lookups, {:.1} us mean)",
        c.responses,
        c.connections,
        report.metrics.lookups,
        report.metrics.latency.mean_us()
    );
    eprintln!(
        "  rejected: {} overload, {} shutdown, {} past deadline, {} malformed, {} oversized",
        c.rejected_overload, c.rejected_shutdown, c.deadline_expired, c.malformed, c.oversized
    );
    eprintln!(
        "  batching: {} fused calls covering {} lookups (queue high-water {})",
        c.batches, c.batched_lookups, c.max_queue_depth
    );
    eprintln!(
        "  store IO: {} reads, {} writes, {} WAL bytes",
        report.store.pages_read, report.store.pages_written, report.store.wal_bytes
    );
    Ok(())
}

/// `fuzzymatch ping`: one health round-trip with client-side timing.
fn cmd_ping(args: &Args) -> Result<(), String> {
    let addr = args.require("addr")?;
    let start = std::time::Instant::now();
    let mut client =
        fm_server::Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let status = client.health().map_err(|e| e.to_string())?;
    println!(
        "pong from {addr}: {status} ({} us round trip)",
        start.elapsed().as_micros()
    );
    Ok(())
}

/// `fuzzymatch metrics`: scrape the server once and print the
/// Prometheus text exposition, optionally validating it first.
fn cmd_metrics(args: &Args) -> Result<(), String> {
    let addr = args.require("addr")?;
    let mut client =
        fm_server::Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let text = client.metrics_text().map_err(|e| e.to_string())?;
    if args.get("check").is_some() {
        let summary = fm_core::telemetry::validate_exposition(&text)
            .map_err(|e| format!("invalid exposition: {e}"))?;
        eprintln!(
            "[exposition ok: {} samples, {} histogram series]",
            summary.samples, summary.histogram_series
        );
    }
    print!("{text}");
    Ok(())
}

/// Rebuild a [`fm_core::metrics::LatencySnapshot`] from the JSON shape
/// the `timeseries` verb emits for each per-verb window delta.
fn latency_from_json(doc: &fm_server::Json) -> fm_core::metrics::LatencySnapshot {
    use fm_server::Json;
    let mut snap = fm_core::metrics::LatencySnapshot {
        count: doc.get("count").and_then(Json::as_u64).unwrap_or(0),
        sum_us: doc.get("sum_us").and_then(Json::as_u64).unwrap_or(0),
        ..Default::default()
    };
    if let Some(buckets) = doc.get("buckets").and_then(Json::as_arr) {
        for (i, b) in buckets.iter().enumerate().take(snap.buckets.len()) {
            snap.buckets[i] = b.as_u64().unwrap_or(0);
        }
    }
    snap
}

/// One `top` refresh: everything derived from the windows newer than
/// `last_seq`, rendered as a small fixed-layout report.
fn render_top(addr: &str, reply: &fm_server::Json, last_seq: u64) -> Result<(u64, String), String> {
    use fm_server::Json;
    let window_ms = reply.get("window_ms").and_then(Json::as_u64).unwrap_or(0);
    let windows = reply
        .get("windows")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("malformed timeseries reply: {reply}"))?;
    let fresh: Vec<&Json> = windows
        .iter()
        .filter(|w| w.get("seq").and_then(Json::as_u64).unwrap_or(0) > last_seq)
        .collect();
    let newest_seq = windows
        .last()
        .and_then(|w| w.get("seq"))
        .and_then(Json::as_u64)
        .unwrap_or(last_seq);

    let mut dur_us = 0u64;
    let mut counter_sum = std::collections::BTreeMap::<String, u64>::new();
    let mut verb_merged =
        std::collections::BTreeMap::<String, Vec<fm_core::metrics::LatencySnapshot>>::new();
    for w in &fresh {
        dur_us += w.get("dur_us").and_then(Json::as_u64).unwrap_or(0);
        if let Some(Json::Obj(counters)) = w.get("counters") {
            for (name, v) in counters {
                *counter_sum.entry(name.clone()).or_default() += v.as_u64().unwrap_or(0);
            }
        }
        if let Some(Json::Obj(verbs)) = w.get("verbs") {
            for (name, v) in verbs {
                verb_merged
                    .entry(name.clone())
                    .or_default()
                    .push(latency_from_json(v));
            }
        }
    }
    let counter = |name: &str| counter_sum.get(name).copied().unwrap_or(0);
    let secs = (dur_us as f64 / 1e6).max(1e-9);
    let qps = counter("lookups") as f64 / secs;

    // Gauges come from the newest window only: they are point-in-time.
    let gauge = |name: &str| -> Option<f64> {
        windows
            .last()
            .and_then(|w| w.get("gauges"))
            .and_then(|g| g.get(name))
            .and_then(Json::as_f64)
    };
    let pool_denom = counter("pool_hits") + counter("pool_misses");
    let hit_rate = if pool_denom > 0 {
        format!(
            "{:.1}%",
            100.0 * counter("pool_hits") as f64 / pool_denom as f64
        )
    } else {
        "-".to_string()
    };

    let mut out = String::new();
    out.push_str(&format!(
        "fuzzymatch top — {addr} — {} ms windows, {} fresh ({}s span)\n",
        window_ms,
        fresh.len(),
        format_args!("{:.1}", dur_us as f64 / 1e6),
    ));
    out.push_str(&format!(
        "  qps {qps:.1}   queue {}   inflight {}   pool hit rate {hit_rate}\n",
        gauge("queue_len").map_or("-".to_string(), |v| format!("{v:.0}")),
        gauge("inflight").map_or("-".to_string(), |v| format!("{v:.0}")),
    ));
    out.push_str(&format!(
        "  {:<14} {:>8} {:>10} {:>10}\n",
        "verb", "count", "p50 us", "p99 us"
    ));
    if verb_merged.is_empty() {
        out.push_str("  (no verb traffic in these windows)\n");
    }
    for (name, snaps) in &verb_merged {
        let merged = fm_core::telemetry::histogram_merge(snaps.iter());
        out.push_str(&format!(
            "  {:<14} {:>8} {:>10} {:>10}\n",
            name,
            merged.count,
            merged.p50_us(),
            merged.p99_us()
        ));
    }
    let mut replica_shares = Vec::new();
    let served_total: u64 = counter_sum
        .iter()
        .filter(|(name, _)| name.starts_with("replica_served_"))
        .map(|(_, v)| *v)
        .sum();
    if served_total > 0 {
        for (name, v) in &counter_sum {
            if let Some(i) = name.strip_prefix("replica_served_") {
                replica_shares.push(format!(
                    "{i}:{:.0}%",
                    100.0 * *v as f64 / served_total as f64
                ));
            }
        }
    }
    out.push_str(&format!(
        "  replicas: {}   slow logged: {}   dropped frames: {}\n",
        if replica_shares.is_empty() {
            "-".to_string()
        } else {
            replica_shares.join(" ")
        },
        counter("slow_logged"),
        counter("write_failures"),
    ));
    Ok((newest_seq, out))
}

/// `fuzzymatch top`: a refreshing terminal view over the `timeseries`
/// verb — each refresh reports only the windows it has not shown yet.
fn cmd_top(args: &Args) -> Result<(), String> {
    let addr = args.require("addr")?;
    let interval_ms: u64 = args.get_parsed("interval-ms", 2000)?;
    let iterations: u64 = args.get_parsed("iterations", 0)?;
    let mut client =
        fm_server::Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut last_seq = 0u64;
    let mut iter = 0u64;
    loop {
        iter += 1;
        let reply = client.timeseries(256).map_err(|e| e.to_string())?;
        if reply.get("ok").and_then(fm_server::Json::as_bool) != Some(true) {
            return Err(format!("timeseries refused: {reply}"));
        }
        let (newest, text) = render_top(addr, &reply, last_seq)?;
        last_seq = newest;
        if iterations != 1 {
            // Clear the screen between refreshes; a single-shot run
            // (tests, scripts) prints plainly.
            print!("\u{1b}[2J\u{1b}[H");
        }
        print!("{text}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        if iterations > 0 && iter >= iterations {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// Parse a CSV input without knowing the reference arity (the server
/// validates it).
fn parse_input_any_arity(input: &str) -> Result<Record, String> {
    let mut reader = BufReader::new(input.as_bytes());
    let fields = csv::read_record(&mut reader)
        .map_err(|e| e.to_string())?
        .ok_or("empty input")?;
    Ok(Record::from_options(
        fields
            .into_iter()
            .map(|v| if v.is_empty() { None } else { Some(v) })
            .collect(),
    ))
}

/// `fuzzymatch client <lookup|stats|health|timeseries|shutdown>`.
fn cmd_client(sub: &str, args: &Args) -> Result<(), String> {
    let addr = args.require("addr")?;
    let mut client =
        fm_server::Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    match sub {
        "lookup" => {
            let input = parse_input_any_arity(args.require("input")?)?;
            let k: usize = args.get_parsed("k", 1)?;
            let c: f64 = args.get_parsed("c", 0.0)?;
            let deadline_ms: u64 = args.get_parsed("deadline-ms", 0)?;
            let deadline = if deadline_ms == 0 {
                None
            } else {
                Some(deadline_ms)
            };
            let reply = client
                .lookup_with(&input, k, c, deadline, 0)
                .map_err(|e| e.to_string())?;
            if !reply.ok {
                return Err(format!("server error {}: {}", reply.code, reply.error));
            }
            if reply.matches.is_empty() {
                println!("no match above c = {c}");
            }
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            for m in &reply.matches {
                let mut fields = vec![format!("{:.4}", m.similarity), m.tid.to_string()];
                fields.extend(m.record.iter().map(|v| v.clone().unwrap_or_default()));
                csv::write_record(&mut out, &fields).map_err(|e| e.to_string())?;
            }
            eprintln!(
                "[server {} us total, {} us in lookup]",
                reply.latency_us, reply.lookup_us
            );
            Ok(())
        }
        "stats" => {
            let stats = client.stats().map_err(|e| e.to_string())?;
            println!("{stats}");
            Ok(())
        }
        "health" => {
            println!("{}", client.health().map_err(|e| e.to_string())?);
            Ok(())
        }
        "timeseries" => {
            let n: usize = args.get_parsed("n", 60)?;
            let reply = client.timeseries(n).map_err(|e| e.to_string())?;
            println!("{reply}");
            Ok(())
        }
        "shutdown" => {
            client.shutdown().map_err(|e| e.to_string())?;
            println!("draining");
            Ok(())
        }
        other => Err(format!(
            "unknown client subcommand {other}; expected lookup|stats|health|timeseries|shutdown"
        )),
    }
}

/// `fuzzymatch trace slowest K --addr`: read the flight recorder of a
/// running server through the `trace_slowest` verb.
fn remote_trace_slowest(addr: &str, top: usize) -> Result<(), String> {
    let mut client =
        fm_server::Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let reply = client.trace_slowest(top).map_err(|e| e.to_string())?;
    let traces = reply
        .get("traces")
        .and_then(fm_server::Json::as_arr)
        .ok_or_else(|| format!("malformed trace_slowest reply: {reply}"))?;
    println!(
        "{:<6} {:<6} {:>12} {:>7}  root counters",
        "seq", "kind", "total ms", "spans"
    );
    for t in traces {
        let get_u64 = |field: &str| t.get(field).and_then(fm_server::Json::as_u64).unwrap_or(0);
        let counters = t.get("counters").map_or_else(String::new, |c| {
            let cnt = |f: &str| c.get(f).and_then(fm_server::Json::as_u64).unwrap_or(0);
            format!(
                "probed={} fetched={} fms={}",
                cnt("qgrams_probed"),
                cnt("candidates_fetched"),
                cnt("fms_evals")
            )
        });
        println!(
            "{:<6} {:<6} {:>12.3} {:>7}  {}",
            get_u64("seq"),
            t.get("kind")
                .and_then(fm_server::Json::as_str)
                .unwrap_or("?"),
            get_u64("total_us") as f64 / 1000.0,
            get_u64("spans"),
            counters
        );
    }
    Ok(())
}

/// Per-phase aggregate of one Chrome trace export: `name → (calls,
/// total µs)`.
fn load_chrome_phases(
    path: &str,
) -> Result<std::collections::BTreeMap<String, (u64, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = xtask::jsonv::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(xtask::jsonv::Json::as_arr)
        .ok_or_else(|| format!("{path}: no traceEvents array (not a Chrome export?)"))?;
    let mut phases: std::collections::BTreeMap<String, (u64, f64)> =
        std::collections::BTreeMap::new();
    for event in events {
        let Some(name) = event.get("name").and_then(xtask::jsonv::Json::as_str) else {
            continue;
        };
        let dur = event
            .get("dur")
            .and_then(xtask::jsonv::Json::as_f64)
            .unwrap_or(0.0);
        let entry = phases.entry(name.to_string()).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += dur;
    }
    Ok(phases)
}

/// `fuzzymatch trace diff A.json B.json`: per-phase total-time delta
/// between two Chrome exports.
fn cmd_trace_diff(base_path: &str, new_path: &str) -> Result<(), String> {
    let base = load_chrome_phases(base_path)?;
    let new = load_chrome_phases(new_path)?;
    let phases: std::collections::BTreeSet<&String> = base.keys().chain(new.keys()).collect();
    if phases.is_empty() {
        return Err("both exports are empty".into());
    }
    println!("trace diff: {base_path} -> {new_path}");
    println!(
        "{:<16} {:>8} {:>8} {:>12} {:>12} {:>12} {:>9}",
        "phase", "calls A", "calls B", "A us", "B us", "delta us", "delta %"
    );
    let (mut total_a, mut total_b) = (0.0, 0.0);
    for phase in phases {
        let (calls_a, us_a) = base.get(phase).copied().unwrap_or((0, 0.0));
        let (calls_b, us_b) = new.get(phase).copied().unwrap_or((0, 0.0));
        total_a += us_a;
        total_b += us_b;
        let delta = us_b - us_a;
        let pct = if us_a > 0.0 {
            format!("{:+.1}%", 100.0 * delta / us_a)
        } else {
            "new".to_string()
        };
        println!(
            "{phase:<16} {calls_a:>8} {calls_b:>8} {us_a:>12.1} {us_b:>12.1} {delta:>+12.1} {pct:>9}"
        );
    }
    let total_delta = total_b - total_a;
    let total_pct = if total_a > 0.0 {
        format!("{:+.1}%", 100.0 * total_delta / total_a)
    } else {
        "new".to_string()
    };
    println!(
        "{:<16} {:>8} {:>8} {total_a:>12.1} {total_b:>12.1} {total_delta:>+12.1} {total_pct:>9}",
        "TOTAL", "", ""
    );
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let db = open_db(args)?;
    let matcher = FuzzyMatcher::open(&db, MATCHER_NAME).map_err(|e| e.to_string())?;
    let cfg = matcher.config();
    println!("strategy:        {}", cfg.strategy_label());
    println!("q:               {}", cfg.q);
    println!("cins:            {}", cfg.cins);
    println!("stop threshold:  {}", cfg.stop_qgram_threshold);
    println!("columns:         {}", cfg.column_names.join(", "));
    println!("reference size:  {}", matcher.relation_size());
    println!(
        "eti entries:     {}",
        matcher.eti_entry_count().map_err(|e| e.to_string())?
    );
    Ok(())
}
