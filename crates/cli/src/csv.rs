//! Minimal RFC 4180 CSV reading and writing.
//!
//! Hand-rolled to keep the dependency tree at the project's allowed set
//! (see DESIGN.md §5). Supports quoted fields, embedded commas, quotes
//! (doubled), and newlines inside quotes; lenient about `\r\n` vs `\n`.

use std::io::{BufRead, Write};

/// Parse one CSV record from `reader`. Returns `None` at EOF.
///
/// A record may span multiple physical lines when a quoted field contains
/// newlines.
pub fn read_record<R: BufRead>(reader: &mut R) -> std::io::Result<Option<Vec<String>>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    loop {
        match parse_record(&line) {
            Ok(fields) => return Ok(Some(fields)),
            Err(Incomplete) => {
                // Quoted field continues on the next line.
                let n = reader.read_line(&mut line)?;
                if n == 0 {
                    // Unterminated quote at EOF: take what we have,
                    // treating the rest as literal.
                    let mut cleaned = line.clone();
                    cleaned.push('"');
                    return Ok(Some(parse_record(&cleaned).unwrap_or_else(|_| vec![line])));
                }
            }
        }
    }
}

/// Marker error: the record's final quoted field is not terminated yet.
struct Incomplete;

fn parse_record(line: &str) -> Result<Vec<String>, Incomplete> {
    let line = line.strip_suffix('\n').unwrap_or(line);
    let line = line.strip_suffix('\r').unwrap_or(line);
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    loop {
        match chars.peek() {
            None => {
                fields.push(field);
                return Ok(fields);
            }
            Some('"') => {
                chars.next();
                // Quoted field: read until the closing quote.
                loop {
                    match chars.next() {
                        None => return Err(Incomplete),
                        Some('"') => {
                            if chars.peek() == Some(&'"') {
                                chars.next();
                                field.push('"');
                            } else {
                                break;
                            }
                        }
                        Some(c) => field.push(c),
                    }
                }
                // After the closing quote expect a comma or end.
                match chars.next() {
                    None => {
                        fields.push(field);
                        return Ok(fields);
                    }
                    Some(',') => fields.push(std::mem::take(&mut field)),
                    Some(c) => field.push(c), // lenient: stray char after quote
                }
            }
            Some(_) => {
                // Unquoted field: read until comma or end.
                loop {
                    match chars.peek() {
                        None => break,
                        Some(',') => break,
                        Some(_) => field.push(chars.next().unwrap()),
                    }
                }
                match chars.next() {
                    None => {
                        fields.push(field);
                        return Ok(fields);
                    }
                    Some(',') => fields.push(std::mem::take(&mut field)),
                    _ => unreachable!(),
                }
            }
        }
    }
}

/// Write one CSV record with minimal quoting.
pub fn write_record<W: Write>(writer: &mut W, fields: &[String]) -> std::io::Result<()> {
    for (i, field) in fields.iter().enumerate() {
        if i > 0 {
            writer.write_all(b",")?;
        }
        if field.contains(',') || field.contains('"') || field.contains('\n') {
            write!(writer, "\"{}\"", field.replace('"', "\"\""))?;
        } else {
            writer.write_all(field.as_bytes())?;
        }
    }
    writer.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn read_all(input: &str) -> Vec<Vec<String>> {
        let mut reader = BufReader::new(input.as_bytes());
        let mut out = Vec::new();
        while let Some(rec) = read_record(&mut reader).unwrap() {
            out.push(rec);
        }
        out
    }

    #[test]
    fn simple_records() {
        let recs = read_all("a,b,c\nd,e,f\n");
        assert_eq!(recs, vec![vec!["a", "b", "c"], vec!["d", "e", "f"]]);
    }

    #[test]
    fn missing_trailing_newline() {
        let recs = read_all("a,b");
        assert_eq!(recs, vec![vec!["a", "b"]]);
    }

    #[test]
    fn empty_fields_and_crlf() {
        let recs = read_all("a,,c\r\n,,\r\n");
        assert_eq!(recs, vec![vec!["a", "", "c"], vec!["", "", ""]]);
    }

    #[test]
    fn quoted_fields() {
        let recs = read_all("\"Boeing, Company\",\"say \"\"hi\"\"\",plain\n");
        assert_eq!(recs, vec![vec!["Boeing, Company", "say \"hi\"", "plain"]]);
    }

    #[test]
    fn newline_inside_quotes() {
        let recs = read_all("\"two\nlines\",x\nnext,y\n");
        assert_eq!(recs, vec![vec!["two\nlines", "x"], vec!["next", "y"]]);
    }

    #[test]
    fn unterminated_quote_at_eof_is_lenient() {
        let recs = read_all("\"oops,never closed\n");
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn write_round_trips() {
        let rows = vec![
            vec!["plain".to_string(), "with,comma".to_string()],
            vec!["with\"quote".to_string(), "multi\nline".to_string()],
            vec!["".to_string(), "x".to_string()],
        ];
        let mut buf = Vec::new();
        for row in &rows {
            write_record(&mut buf, row).unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(read_all(&text), rows);
    }
}
