//! End-to-end tests driving the `fuzzymatch` binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fuzzymatch"))
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let mut p = std::env::temp_dir();
        p.push(format!("fm-cli-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }

    fn path(&self, file: &str) -> PathBuf {
        self.0.join(file)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const REFERENCE_CSV: &str = "\
name,city,state,zip
Boeing Company,Seattle,WA,98004
Bon Corporation,Seattle,WA,98014
Companions,Seattle,WA,98024
\"Smith, Jones & Co\",Tacoma,WA,98401
";

fn build_db(dir: &TempDir) -> PathBuf {
    let db = dir.path("ref.fmdb");
    std::fs::write(dir.path("ref.csv"), REFERENCE_CSV).unwrap();
    let out = bin()
        .args(["build", "--db"])
        .arg(&db)
        .arg("--reference")
        .arg(dir.path("ref.csv"))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "build failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    db
}

#[test]
fn build_query_round_trip() {
    let dir = TempDir::new("roundtrip");
    let db = build_db(&dir);
    let out = bin()
        .args(["query", "--db"])
        .arg(&db)
        .args(["--input", "Beoing Company,Seattle,WA,98004"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("Boeing Company"), "got: {stdout}");
    assert!(
        stdout.starts_with("0.8") || stdout.starts_with("0.9"),
        "got: {stdout}"
    );
}

#[test]
fn query_with_quoted_commas_and_threshold() {
    let dir = TempDir::new("quoted");
    let db = build_db(&dir);
    let out = bin()
        .args(["query", "--db"])
        .arg(&db)
        .args(["--input", "\"Smith Jones Co\",Tacoma,WA,98401", "-c", "0.5"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("Smith, Jones & Co"), "got: {stdout}");
    // A garbage query above the threshold returns nothing.
    let out = bin()
        .args(["query", "--db"])
        .arg(&db)
        .args(["--input", "zzz,qqq,XX,00000", "-c", "0.9"])
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("no match"), "got: {stdout}");
}

#[test]
fn batch_writes_csv_with_header() {
    let dir = TempDir::new("batch");
    let db = build_db(&dir);
    std::fs::write(
        dir.path("dirty.csv"),
        "Beoing Company,Seattle,WA,98004\nNonsense Entity,Nowhere,XX,00000\n",
    )
    .unwrap();
    let out_path = dir.path("matched.csv");
    let out = bin()
        .args(["batch", "--db"])
        .arg(&db)
        .arg("--inputs")
        .arg(dir.path("dirty.csv"))
        .arg("--out")
        .arg(&out_path)
        .args(["-c", "0.5"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&out_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines[0], "similarity,tid,name,city,state,zip,input");
    assert!(lines[1].contains("Boeing Company"));
    assert!(
        lines[2].starts_with(",,"),
        "unmatched row should be empty: {}",
        lines[2]
    );
    let summary = String::from_utf8(out.stderr).unwrap();
    assert!(summary.contains("matched 1/2"), "got: {summary}");
}

#[test]
fn insert_then_match_persists() {
    let dir = TempDir::new("insert");
    let db = build_db(&dir);
    let out = bin()
        .args(["insert", "--db"])
        .arg(&db)
        .args(["--input", "Microsoft Corporation,Redmond,WA,98052"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("inserted as tid 5"));
    // New process, same file: the maintained tuple matches fuzzily.
    let out = bin()
        .args(["query", "--db"])
        .arg(&db)
        .args(["--input", "Microsft Corp,Redmond,WA,98052"])
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("Microsoft Corporation"), "got: {stdout}");
}

#[test]
fn info_reports_configuration() {
    let dir = TempDir::new("info");
    let db = build_db(&dir);
    let out = bin().args(["info", "--db"]).arg(&db).output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("Q+T_3"));
    assert!(stdout.contains("reference size:  4"));
    assert!(stdout.contains("name, city, state, zip"));
}

#[test]
fn build_options_are_applied() {
    let dir = TempDir::new("options");
    let db = dir.path("opt.fmdb");
    std::fs::write(dir.path("ref.csv"), REFERENCE_CSV).unwrap();
    let out = bin()
        .args(["build", "--db"])
        .arg(&db)
        .arg("--reference")
        .arg(dir.path("ref.csv"))
        .args(["--signature", "q_2", "--q", "3", "--cins", "0.7"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = bin().args(["info", "--db"]).arg(&db).output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("Q_2"), "got: {stdout}");
    assert!(stdout.contains("q:               3"), "got: {stdout}");
    assert!(stdout.contains("cins:            0.7"), "got: {stdout}");
}

#[test]
fn errors_are_reported_not_panicked() {
    let dir = TempDir::new("errors");
    // Missing db.
    let out = bin()
        .args(["query", "--db"])
        .arg(dir.path("missing.fmdb"))
        .args(["--input", "x"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // Arity mismatch.
    let db = build_db(&dir);
    let out = bin()
        .args(["query", "--db"])
        .arg(&db)
        .args(["--input", "only,three,fields"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("fields"));
    // Unknown command.
    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    // Ragged reference CSV.
    std::fs::write(dir.path("bad.csv"), "a,b\n1,2,3\n").unwrap();
    let out = bin()
        .args(["build", "--db"])
        .arg(dir.path("bad.fmdb"))
        .arg("--reference")
        .arg(dir.path("bad.csv"))
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn delete_removes_reference() {
    let dir = TempDir::new("delete");
    let db = build_db(&dir);
    let out = bin()
        .args(["delete", "--db"])
        .arg(&db)
        .args(["--tid", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("Companions"));
    let out = bin().args(["info", "--db"]).arg(&db).output().unwrap();
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("reference size:  3"));
    // Deleting a missing tid fails cleanly.
    let out = bin()
        .args(["delete", "--db"])
        .arg(&db)
        .args(["--tid", "99"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn explain_shows_trace() {
    let dir = TempDir::new("explain");
    let db = build_db(&dir);
    let out = bin()
        .args(["explain", "--db"])
        .arg(&db)
        .args(["--input", "Beoing Company,Seattle,WA,98004", "-k", "2"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("input tokens"), "got: {stdout}");
    assert!(
        stdout.contains("unseen"),
        "beoing should be flagged unseen: {stdout}"
    );
    assert!(stdout.contains("Boeing Company"), "got: {stdout}");
}

#[test]
fn help_prints_usage() {
    let out = bin().args(["--help"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("USAGE"));
}

/// Minimal structural check that a file is plausible Chrome trace JSON:
/// balanced braces/brackets outside strings and the expected top-level key.
fn assert_chrome_trace_shape(json: &str) {
    assert!(json.contains("\"traceEvents\""), "missing traceEvents");
    let mut depth = 0i64;
    let mut in_str = false;
    let mut escaped = false;
    for ch in json.chars() {
        if in_str {
            if escaped {
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                in_str = false;
            }
            continue;
        }
        match ch {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced close in trace JSON");
            }
            _ => {}
        }
    }
    assert!(!in_str, "unterminated string in trace JSON");
    assert_eq!(depth, 0, "unbalanced braces in trace JSON");
}

#[test]
fn trace_export_chrome_has_query_and_build_spans() {
    let dir = TempDir::new("trace-export");
    std::fs::write(dir.path("ref.csv"), REFERENCE_CSV).unwrap();
    let out_path = dir.path("trace.json");
    let out = bin()
        .args(["trace", "export", "--reference"])
        .arg(dir.path("ref.csv"))
        .args(["--input", "Beoing Company,Seattle,WA,98004", "--chrome"])
        .arg("--out")
        .arg(&out_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "trace export failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&out_path).unwrap();
    assert_chrome_trace_shape(&json);
    // Query-path phases (the acceptance bar is >= 6 distinct ones).
    for phase in [
        "query",
        "tokenize",
        "plan",
        "probe",
        "fetch",
        "fms",
        "materialize",
    ] {
        assert!(
            json.contains(&format!("\"name\":\"{phase}\"")),
            "missing {phase}: {json}"
        );
    }
    // ETI-build phases from the in-process build.
    for phase in ["build", "pre_eti", "group_fill"] {
        assert!(
            json.contains(&format!("\"name\":\"{phase}\"")),
            "missing {phase}: {json}"
        );
    }
    // Root query event carries the LookupTrace counters.
    assert!(
        json.contains("\"qgrams_probed\""),
        "missing counters: {json}"
    );
}

#[test]
fn trace_dump_and_slowest_run_against_existing_db() {
    let dir = TempDir::new("trace-dump");
    let db = build_db(&dir);
    let out = bin()
        .args(["trace", "dump", "--db"])
        .arg(&db)
        .args(["--input", "Beoing Company,Seattle,WA,98004"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "trace dump failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("flame summary"), "got: {stdout}");
    assert!(stdout.contains("probe"), "got: {stdout}");
    assert!(stdout.contains("p95"), "got: {stdout}");

    let out = bin()
        .args(["trace", "slowest", "3", "--db"])
        .arg(&db)
        .args(["--input", "Beoing Company,Seattle,WA,98004"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "trace slowest failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("query"), "got: {stdout}");

    // export without --chrome is an error, not a silent default.
    let out = bin()
        .args(["trace", "export", "--db"])
        .arg(&db)
        .args(["--input", "Beoing Company,Seattle,WA,98004"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
