//! Property-based tests for the data generator and error injector.

use fm_datagen::{generate_customers, make_inputs, ErrorModel, ErrorSpec, GeneratorConfig};
use proptest::prelude::*;

fn any_model() -> impl Strategy<Value = ErrorModel> {
    prop_oneof![Just(ErrorModel::TypeI), Just(ErrorModel::TypeII)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generator_shape_holds_for_any_seed(size in 1usize..400, seed in any::<u64>()) {
        let rows = generate_customers(&GeneratorConfig::new(size, seed));
        prop_assert_eq!(rows.len(), size);
        for r in &rows {
            prop_assert_eq!(r.arity(), 4);
            for col in 0..4 {
                let v = r.get(col);
                prop_assert!(v.is_some(), "generator never emits NULLs");
                prop_assert!(!v.unwrap().is_empty());
            }
            let zip = r.get(3).unwrap();
            prop_assert_eq!(zip.len(), 5);
            prop_assert!(zip.chars().all(|c| c.is_ascii_digit()));
            prop_assert_eq!(r.get(2).unwrap().len(), 2);
        }
    }

    #[test]
    fn generator_is_a_pure_function_of_its_config(size in 1usize..200, seed in any::<u64>()) {
        let cfg = GeneratorConfig::new(size, seed);
        prop_assert_eq!(generate_customers(&cfg), generate_customers(&cfg));
    }

    #[test]
    fn injector_invariants_for_any_probs(
        p0 in 0.0f64..=1.0, p1 in 0.0f64..=1.0, p2 in 0.0f64..=1.0, p3 in 0.0f64..=1.0,
        model in any_model(),
        seed in any::<u64>(),
        count in 1usize..60,
    ) {
        let reference = generate_customers(&GeneratorConfig::new(120, seed ^ 0xABCD));
        let spec = ErrorSpec::new(&[p0, p1, p2, p3], model, seed);
        let ds = make_inputs(&reference, count, &spec);
        prop_assert_eq!(ds.inputs.len(), count);
        prop_assert_eq!(ds.targets.len(), count);
        for (input, &target) in ds.inputs.iter().zip(&ds.targets) {
            prop_assert!(target < reference.len());
            prop_assert_eq!(input.arity(), 4);
            // The name column never goes missing (it would be unmatchable).
            prop_assert!(input.get(0).is_some());
            // Every input differs from its seed tuple.
            prop_assert_ne!(input.values(), reference[target].values());
        }
    }

    #[test]
    fn injector_is_deterministic(seed in any::<u64>(), model in any_model()) {
        let reference = generate_customers(&GeneratorConfig::new(80, 7));
        let spec = ErrorSpec::new(&fm_datagen::D2_PROBS, model, seed);
        let a = make_inputs(&reference, 30, &spec);
        let b = make_inputs(&reference, 30, &spec);
        prop_assert_eq!(a.inputs, b.inputs);
        prop_assert_eq!(a.targets, b.targets);
    }

    #[test]
    fn zero_probs_still_force_one_error(seed in any::<u64>()) {
        // With all probabilities zero the injector must still guarantee one
        // injected error (a clean "input" would be a trivial exact match).
        let reference = generate_customers(&GeneratorConfig::new(60, 3));
        let spec = ErrorSpec::new(&[0.0; 4], ErrorModel::TypeI, seed);
        let ds = make_inputs(&reference, 20, &spec);
        for (input, &target) in ds.inputs.iter().zip(&ds.targets) {
            prop_assert_ne!(input.values(), reference[target].values());
            // The forced error lands in the name column; others untouched.
            for col in 1..4 {
                prop_assert_eq!(input.get(col), reference[target].get(col));
            }
        }
    }
}
