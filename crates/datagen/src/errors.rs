//! Error injection per the paper's §6.1 and Table 4.
//!
//! For each input tuple we start from a randomly chosen clean reference
//! tuple (so "all characteristics of real data … are preserved in the
//! erroneous input tuples") and then, independently per column `i`, inject
//! an error with probability `p_i`. The error type is drawn from Table 4's
//! conditional distribution (name column vs others — names never go
//! missing because "input tuples with a missing name cannot possibly be
//! matched"):
//!
//! | error                | i = name | i ≠ name |
//! |----------------------|----------|----------|
//! | spelling             | 0.50     | 0.40     |
//! | token replacement    | 0.25     | 0.25     |
//! | missing value        | 0.00     | 0.10     |
//! | truncation (≤5 ch)   | 0.10     | 0.10     |
//! | token merge          | 0.10     | 0.10     |
//! | token transposition  | 0.05     | 0.05     |
//!
//! (The published table is slightly garbled in extraction; these values
//! match the legible entries and make each column sum to 1 — recorded in
//! EXPERIMENTS.md.)
//!
//! **Type I** picks the token to corrupt uniformly; **Type II** picks it
//! proportionally to its frequency in the reference relation ("the more
//! frequently a token occurs the more likely it is to have erroneous
//! versions", e.g. 'corporation' → 'corp, co., corpn, inc.'), which favors
//! `fms` because errors land on low-weight tokens.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fm_core::Record;
use fm_text::Tokenizer;

/// Error probabilities for the §6.2.1.1 ed-vs-fms comparison.
pub const ED_VS_FMS_PROBS: [f64; 4] = [0.90, 0.5, 0.5, 0.6];
/// Table 5's dataset D1 (dirtiest).
pub const D1_PROBS: [f64; 4] = [0.90, 0.90, 0.90, 0.90];
/// Table 5's dataset D2.
pub const D2_PROBS: [f64; 4] = [0.80, 0.5, 0.5, 0.6];
/// Table 5's dataset D3 (cleanest).
pub const D3_PROBS: [f64; 4] = [0.70, 0.5, 0.5, 0.25];

/// Token selection method (paper §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorModel {
    /// Errors hit all tokens of a column with equal probability.
    TypeI,
    /// Errors hit tokens with probability proportional to their frequency
    /// in the reference relation.
    TypeII,
}

/// Full error injection specification.
#[derive(Debug, Clone)]
pub struct ErrorSpec {
    /// Per-column error probability `p_i`.
    pub column_probs: Vec<f64>,
    pub model: ErrorModel,
    pub seed: u64,
}

impl ErrorSpec {
    pub fn new(column_probs: &[f64], model: ErrorModel, seed: u64) -> ErrorSpec {
        assert!(
            column_probs.iter().all(|p| (0.0..=1.0).contains(p)),
            "probabilities must be in [0,1]"
        );
        ErrorSpec {
            column_probs: column_probs.to_vec(),
            model,
            seed,
        }
    }
}

/// An erroneous input dataset with ground truth.
#[derive(Debug, Clone)]
pub struct InputDataset {
    /// The corrupted input tuples.
    pub inputs: Vec<Record>,
    /// For each input, the index into the reference slice of the seed tuple
    /// it was generated from (the paper's accuracy metric counts an answer
    /// correct iff the matcher returns exactly this tuple).
    pub targets: Vec<usize>,
}

/// Common abbreviation dictionary for the "token replacement" error.
const ABBREVIATIONS: &[(&str, &[&str])] = &[
    ("corporation", &["corp", "co", "corpn", "inc"]),
    ("company", &["co", "comp", "cmpy"]),
    ("incorporated", &["inc", "incorp"]),
    ("limited", &["ltd", "lmtd"]),
    ("enterprises", &["ent", "entps"]),
    ("international", &["intl", "int"]),
    ("associates", &["assoc", "assocs"]),
    ("services", &["svcs", "svc"]),
    ("industries", &["ind", "inds"]),
    ("holdings", &["hldgs"]),
    ("group", &["grp"]),
    ("partners", &["ptnrs"]),
    ("solutions", &["soln", "solns"]),
    ("william", &["wm", "will", "bill"]),
    ("robert", &["rob", "bob", "robt"]),
    ("richard", &["rich", "dick", "richd"]),
    ("james", &["jas", "jim"]),
    ("thomas", &["thos", "tom"]),
    ("charles", &["chas", "chuck"]),
    ("john", &["jno", "jon"]),
    ("joseph", &["jos", "joe"]),
    ("michael", &["mike", "michl"]),
    ("junior", &["jr"]),
    ("senior", &["sr"]),
    ("saint", &["st"]),
    ("fort", &["ft"]),
    ("north", &["n"]),
    ("south", &["s"]),
    ("east", &["e"]),
    ("west", &["w"]),
    ("new", &["nw"]),
    ("city", &["cty"]),
    ("beach", &["bch"]),
];

fn abbreviate(token: &str, rng: &mut StdRng) -> Option<String> {
    ABBREVIATIONS
        .iter()
        .find(|(full, _)| *full == token)
        .map(|(_, abbrs)| abbrs[rng.gen_range(0..abbrs.len())].to_string())
}

/// Introduce a 1–2 character spelling error into a token. Guaranteed to
/// change the token (a substitution can draw the original letter; retry).
fn misspell(token: &str, rng: &mut StdRng) -> String {
    for _ in 0..16 {
        let out = misspell_once(token, rng);
        if out != token {
            return out;
        }
    }
    format!("{token}x")
}

fn misspell_once(token: &str, rng: &mut StdRng) -> String {
    let mut chars: Vec<char> = token.chars().collect();
    if chars.is_empty() {
        return token.to_string();
    }
    let edits = if chars.len() > 4 && rng.gen_bool(0.3) {
        2
    } else {
        1
    };
    for _ in 0..edits {
        let pos = rng.gen_range(0..chars.len());
        match rng.gen_range(0..4u8) {
            // substitute
            0 => chars[pos] = (b'a' + rng.gen_range(0..26u8)) as char,
            // delete (keep at least one char)
            1 if chars.len() > 1 => {
                chars.remove(pos);
            }
            // insert
            2 => chars.insert(pos, (b'a' + rng.gen_range(0..26u8)) as char),
            // adjacent character swap (the 'beoing' error)
            _ => {
                if pos + 1 < chars.len() {
                    chars.swap(pos, pos + 1);
                } else if pos > 0 {
                    chars.swap(pos - 1, pos);
                }
            }
        }
        if chars.is_empty() {
            chars.push('x');
        }
    }
    chars.into_iter().collect()
}

/// Pick the index of the token to corrupt, per the error model.
fn pick_token(
    tokens: &[String],
    col: usize,
    model: ErrorModel,
    token_freq: &HashMap<(usize, String), u32>,
    rng: &mut StdRng,
) -> usize {
    match model {
        ErrorModel::TypeI => rng.gen_range(0..tokens.len()),
        ErrorModel::TypeII => {
            let weights: Vec<f64> = tokens
                .iter()
                .map(|t| {
                    f64::from(
                        token_freq
                            .get(&(col, t.clone()))
                            .copied()
                            .unwrap_or(1)
                            .max(1),
                    )
                })
                .collect();
            let total: f64 = weights.iter().sum();
            let mut x = rng.gen_range(0.0..total);
            for (i, w) in weights.iter().enumerate() {
                if x < *w {
                    return i;
                }
                x -= w;
            }
            tokens.len() - 1
        }
    }
}

/// Error types of Table 4 in row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ErrorKind {
    Spelling,
    Replacement,
    Missing,
    Truncation,
    Merge,
    Transposition,
}

fn draw_error_kind(is_name_column: bool, rng: &mut StdRng) -> ErrorKind {
    let dist: [(ErrorKind, f64); 6] = if is_name_column {
        [
            (ErrorKind::Spelling, 0.50),
            (ErrorKind::Replacement, 0.25),
            (ErrorKind::Missing, 0.00),
            (ErrorKind::Truncation, 0.10),
            (ErrorKind::Merge, 0.10),
            (ErrorKind::Transposition, 0.05),
        ]
    } else {
        [
            (ErrorKind::Spelling, 0.40),
            (ErrorKind::Replacement, 0.25),
            (ErrorKind::Missing, 0.10),
            (ErrorKind::Truncation, 0.10),
            (ErrorKind::Merge, 0.10),
            (ErrorKind::Transposition, 0.05),
        ]
    };
    let mut x = rng.gen_range(0.0..1.0);
    for (kind, p) in dist {
        if x < p {
            return kind;
        }
        x -= p;
    }
    ErrorKind::Spelling
}

/// Corrupt one column value. Returns `None` for a "missing value" error.
fn corrupt_column(
    value: &str,
    col: usize,
    model: ErrorModel,
    token_freq: &HashMap<(usize, String), u32>,
    rng: &mut StdRng,
) -> Option<String> {
    let tokenizer = Tokenizer::new().keep_duplicates();
    let mut tokens = tokenizer.tokenize(value);
    if tokens.is_empty() {
        return Some(value.to_string());
    }
    let kind = draw_error_kind(col == 0, rng);
    match kind {
        ErrorKind::Spelling => {
            let i = pick_token(&tokens, col, model, token_freq, rng);
            tokens[i] = misspell(&tokens[i], rng);
            Some(tokens.join(" "))
        }
        ErrorKind::Replacement => {
            // Replace a commonly-abbreviated or convention-dependent token:
            // either abbreviate it ('corporation' → 'corp') or swap it for
            // an equivalent convention ('company' → 'corporation' — the
            // exact error of the paper's input I3, "inconsistent
            // conventions across data sources"). Falls back to a spelling
            // error when no token qualifies.
            let suffixes = crate::pools::BUSINESS_SUFFIXES;
            let replaceable: Vec<usize> = (0..tokens.len())
                .filter(|&i| {
                    ABBREVIATIONS.iter().any(|(f, _)| *f == tokens[i])
                        || suffixes.contains(&tokens[i].as_str())
                })
                .collect();
            match replaceable.as_slice() {
                [] => {
                    let i = pick_token(&tokens, col, model, token_freq, rng);
                    tokens[i] = misspell(&tokens[i], rng);
                }
                options => {
                    let i = options[rng.gen_range(0..options.len())];
                    let is_suffix = suffixes.contains(&tokens[i].as_str());
                    if is_suffix && rng.gen_bool(0.5) {
                        // Convention swap to a different suffix.
                        let mut other = suffixes[rng.gen_range(0..suffixes.len())];
                        while other == tokens[i] {
                            other = suffixes[rng.gen_range(0..suffixes.len())];
                        }
                        tokens[i] = other.to_string();
                    } else if let Some(abbr) = abbreviate(&tokens[i], rng) {
                        tokens[i] = abbr;
                    } else {
                        tokens[i] = misspell(&tokens[i], rng);
                    }
                }
            }
            Some(tokens.join(" "))
        }
        ErrorKind::Missing => None,
        ErrorKind::Truncation => {
            let s = tokens.join(" ");
            let chars: Vec<char> = s.chars().collect();
            let cut = rng.gen_range(1..=5usize).min(chars.len().saturating_sub(1));
            Some(chars[..chars.len() - cut].iter().collect())
        }
        ErrorKind::Merge => {
            if tokens.len() < 2 {
                // Nothing to merge: degrade to a spelling error.
                tokens[0] = misspell(&tokens[0], rng);
                Some(tokens.join(" "))
            } else {
                // Remove the delimiter after a random position.
                let i = rng.gen_range(0..tokens.len() - 1);
                let merged = format!("{}{}", tokens[i], tokens[i + 1]);
                tokens[i] = merged;
                tokens.remove(i + 1);
                Some(tokens.join(" "))
            }
        }
        ErrorKind::Transposition => {
            if tokens.len() < 2 {
                tokens[0] = misspell(&tokens[0], rng);
            } else {
                let i = rng.gen_range(0..tokens.len() - 1);
                tokens.swap(i, i + 1);
            }
            Some(tokens.join(" "))
        }
    }
}

/// Generate `count` erroneous input tuples from `reference` per `spec`.
///
/// Guarantees at least one injected error per input tuple (an "input" equal
/// to its seed would make accuracy trivially correct): tuples that come out
/// clean are re-rolled with the name-column error forced.
pub fn make_inputs(reference: &[Record], count: usize, spec: &ErrorSpec) -> InputDataset {
    assert!(!reference.is_empty());
    let arity = reference[0].arity();
    assert_eq!(spec.column_probs.len(), arity, "one probability per column");
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xE44_0125EEDu64);

    // Token frequencies for Type II selection.
    let mut token_freq: HashMap<(usize, String), u32> = HashMap::new();
    if spec.model == ErrorModel::TypeII {
        let tokenizer = Tokenizer::new();
        for r in reference {
            for (col, tok) in r.tokenize(&tokenizer).iter_tokens() {
                *token_freq.entry((col, tok.to_string())).or_insert(0) += 1;
            }
        }
    }

    let mut inputs = Vec::with_capacity(count);
    let mut targets = Vec::with_capacity(count);
    for _ in 0..count {
        let target = rng.gen_range(0..reference.len());
        let seed_tuple = &reference[target];
        let mut corrupted = false;
        let mut values: Vec<Option<String>> = Vec::with_capacity(arity);
        for col in 0..arity {
            let original = seed_tuple.get(col);
            let inject = rng.gen_bool(spec.column_probs[col]);
            match (original, inject) {
                (None, _) => values.push(None),
                (Some(v), false) => values.push(Some(v.to_string())),
                (Some(v), true) => {
                    let new = corrupt_column(v, col, spec.model, &token_freq, &mut rng);
                    if new.as_deref() != Some(v) {
                        corrupted = true;
                    }
                    values.push(new);
                }
            }
        }
        if !corrupted {
            // Force an error in the name column so every input is dirty.
            if let Some(v) = seed_tuple.get(0) {
                let mut forced = corrupt_column(v, 0, spec.model, &token_freq, &mut rng);
                while forced.as_deref() == Some(v) {
                    forced = corrupt_column(v, 0, spec.model, &token_freq, &mut rng);
                }
                values[0] = forced;
            }
        }
        inputs.push(Record::from_options(values));
        targets.push(target);
    }
    InputDataset { inputs, targets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::customer::{generate_customers, GeneratorConfig};

    fn reference() -> Vec<Record> {
        generate_customers(&GeneratorConfig::new(300, 77))
    }

    #[test]
    fn deterministic_given_seed() {
        let refs = reference();
        let spec = ErrorSpec::new(&D2_PROBS, ErrorModel::TypeI, 5);
        let a = make_inputs(&refs, 50, &spec);
        let b = make_inputs(&refs, 50, &spec);
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.targets, b.targets);
        let c = make_inputs(&refs, 50, &ErrorSpec::new(&D2_PROBS, ErrorModel::TypeI, 6));
        assert_ne!(a.inputs, c.inputs);
    }

    #[test]
    fn every_input_differs_from_its_seed() {
        let refs = reference();
        for model in [ErrorModel::TypeI, ErrorModel::TypeII] {
            let spec = ErrorSpec::new(&D3_PROBS, model, 9);
            let ds = make_inputs(&refs, 200, &spec);
            for (input, &target) in ds.inputs.iter().zip(&ds.targets) {
                assert_ne!(
                    input.values(),
                    refs[target].values(),
                    "input identical to seed under {model:?}"
                );
            }
        }
    }

    #[test]
    fn name_column_never_missing() {
        let refs = reference();
        let spec = ErrorSpec::new(&D1_PROBS, ErrorModel::TypeI, 13);
        let ds = make_inputs(&refs, 400, &spec);
        for input in &ds.inputs {
            assert!(input.get(0).is_some(), "name column went missing");
        }
    }

    #[test]
    fn missing_values_do_occur_in_other_columns() {
        let refs = reference();
        let spec = ErrorSpec::new(&D1_PROBS, ErrorModel::TypeI, 21);
        let ds = make_inputs(&refs, 400, &spec);
        let missing = ds
            .inputs
            .iter()
            .filter(|r| (1..4).any(|c| r.get(c).is_none()))
            .count();
        assert!(missing > 10, "expected some NULLs, got {missing}");
    }

    #[test]
    fn error_rate_tracks_column_probabilities() {
        let refs = reference();
        let spec = ErrorSpec::new(&[0.9, 0.1, 0.1, 0.1], ErrorModel::TypeI, 31);
        let ds = make_inputs(&refs, 500, &spec);
        let mut changed = [0usize; 4];
        for (input, &target) in ds.inputs.iter().zip(&ds.targets) {
            for (col, count) in changed.iter_mut().enumerate() {
                if input.get(col) != refs[target].get(col) {
                    *count += 1;
                }
            }
        }
        // Name column changes ~90% of the time (some errors are invisible
        // after re-tokenization, so allow slack); others far less.
        assert!(changed[0] > 350, "name changes: {changed:?}");
        for col in 1..4 {
            assert!(changed[col] < changed[0] / 2, "col {col}: {changed:?}");
        }
    }

    #[test]
    fn type_ii_prefers_frequent_tokens() {
        // Build a reference where 'corporation' is everywhere and the other
        // name token is unique; Type II must corrupt 'corporation' far more
        // often than Type I does.
        let refs: Vec<Record> = (0..200)
            .map(|i| {
                Record::new(&[
                    &format!("unique{i:04} corporation"),
                    "seattle",
                    "wa",
                    "98004",
                ])
            })
            .collect();
        let count_corp_hits = |model: ErrorModel| -> usize {
            let spec = ErrorSpec::new(&[1.0, 0.0, 0.0, 0.0], model, 17);
            let ds = make_inputs(&refs, 300, &spec);
            ds.inputs
                .iter()
                .filter(|r| {
                    // 'corporation' no longer present intact.
                    !r.get(0).unwrap().split(' ').any(|t| t == "corporation")
                })
                .count()
        };
        let type1 = count_corp_hits(ErrorModel::TypeI);
        let type2 = count_corp_hits(ErrorModel::TypeII);
        // Type II: corporation weight ≈ 200 vs 1 → nearly always hit when
        // the error kind touches a token. Type I: ~50%.
        assert!(
            type2 > type1 + 30,
            "TypeII ({type2}) should hit 'corporation' more than TypeI ({type1})"
        );
    }

    #[test]
    fn misspell_changes_token_but_stays_close() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let out = misspell("corporation", &mut rng);
            assert!(!out.is_empty());
            let d = fm_text::levenshtein("corporation", &out);
            assert!(
                (1..=4).contains(&d),
                "edit distance {d} out of range for {out}"
            );
        }
        // Single-char tokens survive.
        for _ in 0..20 {
            assert!(!misspell("a", &mut rng).is_empty());
        }
    }

    #[test]
    fn abbreviation_table_is_well_formed() {
        for (full, abbrs) in ABBREVIATIONS {
            assert!(!abbrs.is_empty());
            for a in *abbrs {
                assert!(!a.is_empty());
                assert_ne!(a, full);
            }
        }
        let mut rng = StdRng::seed_from_u64(4);
        assert!(abbreviate("corporation", &mut rng).is_some());
        assert!(abbreviate("xyzzy", &mut rng).is_none());
    }

    #[test]
    fn truncation_shortens_by_at_most_five() {
        let refs: Vec<Record> = vec![Record::new(&["abcdefghijklmnop", "seattle", "wa", "98004"])];
        // Run many seeds; whenever the name is a pure truncation of the
        // original, verify the cut size.
        let mut seen_truncation = false;
        for seed in 0..300 {
            let spec = ErrorSpec::new(&[1.0, 0.0, 0.0, 0.0], ErrorModel::TypeI, seed);
            let ds = make_inputs(&refs, 1, &spec);
            let name = ds.inputs[0].get(0).unwrap();
            if name.len() < 16 && "abcdefghijklmnop".starts_with(name) {
                seen_truncation = true;
                assert!(16 - name.len() <= 5, "cut too deep: {name}");
            }
        }
        assert!(seen_truncation, "no truncation in 300 seeds");
    }

    #[test]
    fn merge_removes_a_delimiter() {
        let refs: Vec<Record> = vec![Record::new(&["alpha beta gamma", "x", "y", "z"])];
        let mut seen_merge = false;
        for seed in 0..300 {
            let spec = ErrorSpec::new(&[1.0, 0.0, 0.0, 0.0], ErrorModel::TypeI, seed);
            let ds = make_inputs(&refs, 1, &spec);
            let name = ds.inputs[0].get(0).unwrap();
            if name == "alphabeta gamma" || name == "alpha betagamma" {
                seen_merge = true;
            }
        }
        assert!(seen_merge, "no token merge in 300 seeds");
    }

    #[test]
    fn transposition_swaps_adjacent_tokens() {
        let refs: Vec<Record> = vec![Record::new(&["alpha beta", "x", "y", "z"])];
        let mut seen = false;
        for seed in 0..400 {
            let spec = ErrorSpec::new(&[1.0, 0.0, 0.0, 0.0], ErrorModel::TypeI, seed);
            let ds = make_inputs(&refs, 1, &spec);
            if ds.inputs[0].get(0).unwrap() == "beta alpha" {
                seen = true;
                break;
            }
        }
        assert!(seen, "no token transposition in 400 seeds");
    }

    #[test]
    #[should_panic(expected = "one probability per column")]
    fn wrong_probability_count_panics() {
        let refs = reference();
        let spec = ErrorSpec::new(&[0.5], ErrorModel::TypeI, 1);
        let _ = make_inputs(&refs, 1, &spec);
    }
}
