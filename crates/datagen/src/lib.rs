//! # fm-datagen — synthetic evaluation data
//!
//! The paper evaluates on a **proprietary** 1.7M-tuple
//! `Customer[name, city, state, zipcode]` relation from an internal
//! Microsoft warehouse, creating erroneous input datasets by corrupting
//! randomly chosen reference tuples (§6.1). That relation is unavailable;
//! this crate synthesizes a stand-in that reproduces the properties the
//! evaluation actually depends on (see DESIGN.md §1):
//!
//! * Zipf-skewed token frequencies — the fuel for IDF weighting and OSC;
//! * realistic token length variation — what separates `ed` from `fms`;
//! * multi-token names, correlated city/state/zip;
//! * full determinism from a `u64` seed.
//!
//! [`errors`] implements the paper's Table 4 exactly: per-column error
//! probabilities, six error types with the published conditional
//! probabilities, and the **Type I** (uniform token choice) / **Type II**
//! (frequency-proportional token choice) injection methods.

#![forbid(unsafe_code)]

pub mod customer;
pub mod errors;
pub mod pools;

pub use customer::{generate_customers, GeneratorConfig, CUSTOMER_COLUMNS};
pub use errors::{
    make_inputs, ErrorModel, ErrorSpec, InputDataset, D1_PROBS, D2_PROBS, D3_PROBS, ED_VS_FMS_PROBS,
};
