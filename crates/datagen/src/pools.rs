//! Token pools and Zipf sampling.
//!
//! Core pools are hand-curated; the surname pool is extended with
//! deterministically synthesized syllable combinations so that a 1.7M-tuple
//! relation reaches a realistic distinct-token count (the paper reports
//! ~367 500 distinct tokens). Sampling is Zipf-distributed so a handful of
//! tokens are very frequent (low IDF) while the long tail is rare (high
//! IDF) — the skew both IDF weighting and optimistic short circuiting feed
//! on.

use rand::Rng;

/// Common first names.
pub const FIRST_NAMES: &[&str] = &[
    "james",
    "mary",
    "robert",
    "patricia",
    "john",
    "jennifer",
    "michael",
    "linda",
    "david",
    "elizabeth",
    "william",
    "barbara",
    "richard",
    "susan",
    "joseph",
    "jessica",
    "thomas",
    "sarah",
    "charles",
    "karen",
    "christopher",
    "lisa",
    "daniel",
    "nancy",
    "matthew",
    "betty",
    "anthony",
    "margaret",
    "mark",
    "sandra",
    "donald",
    "ashley",
    "steven",
    "kimberly",
    "paul",
    "emily",
    "andrew",
    "donna",
    "joshua",
    "michelle",
    "kenneth",
    "carol",
    "kevin",
    "amanda",
    "brian",
    "dorothy",
    "george",
    "melissa",
    "timothy",
    "deborah",
    "ronald",
    "stephanie",
    "edward",
    "rebecca",
    "jason",
    "sharon",
    "jeffrey",
    "laura",
    "ryan",
    "cynthia",
    "jacob",
    "kathleen",
    "gary",
    "amy",
    "nicholas",
    "angela",
    "eric",
    "shirley",
    "jonathan",
    "anna",
    "stephen",
    "brenda",
    "larry",
    "pamela",
    "justin",
    "emma",
    "scott",
    "nicole",
    "brandon",
    "helen",
    "benjamin",
    "samantha",
    "samuel",
    "katherine",
    "gregory",
    "christine",
    "frank",
    "debra",
    "alexander",
    "rachel",
    "raymond",
    "carolyn",
    "patrick",
    "janet",
    "jack",
    "catherine",
    "dennis",
    "maria",
    "jerry",
    "heather",
    "tyler",
    "diane",
    "aaron",
    "ruth",
    "jose",
    "julie",
    "adam",
    "olivia",
    "nathan",
    "joyce",
    "henry",
    "virginia",
    "douglas",
    "victoria",
    "zachary",
    "kelly",
    "peter",
    "lauren",
    "kyle",
    "christina",
    "ethan",
    "joan",
];

/// Core surnames (the head of the Zipf distribution).
pub const SURNAMES: &[&str] = &[
    "smith",
    "johnson",
    "williams",
    "brown",
    "jones",
    "garcia",
    "miller",
    "davis",
    "rodriguez",
    "martinez",
    "hernandez",
    "lopez",
    "gonzalez",
    "wilson",
    "anderson",
    "thomas",
    "taylor",
    "moore",
    "jackson",
    "martin",
    "lee",
    "perez",
    "thompson",
    "white",
    "harris",
    "sanchez",
    "clark",
    "ramirez",
    "lewis",
    "robinson",
    "walker",
    "young",
    "allen",
    "king",
    "wright",
    "scott",
    "torres",
    "nguyen",
    "hill",
    "flores",
    "green",
    "adams",
    "nelson",
    "baker",
    "hall",
    "rivera",
    "campbell",
    "mitchell",
    "carter",
    "roberts",
    "gomez",
    "phillips",
    "evans",
    "turner",
    "diaz",
    "parker",
    "cruz",
    "edwards",
    "collins",
    "reyes",
    "stewart",
    "morris",
    "morales",
    "murphy",
    "cook",
    "rogers",
    "gutierrez",
    "ortiz",
    "morgan",
    "cooper",
    "peterson",
    "bailey",
    "reed",
    "kelly",
    "howard",
    "ramos",
    "kim",
    "cox",
    "ward",
    "richardson",
    "watson",
    "brooks",
    "chavez",
    "wood",
    "james",
    "bennett",
    "gray",
    "mendoza",
    "ruiz",
    "hughes",
    "price",
    "alvarez",
    "castillo",
    "sanders",
    "patel",
    "myers",
    "long",
    "ross",
    "foster",
    "jimenez",
];

/// Business-name filler tokens (the very frequent, low-IDF tokens like the
/// paper's 'corporation').
pub const BUSINESS_SUFFIXES: &[&str] = &[
    "company",
    "corporation",
    "incorporated",
    "limited",
    "enterprises",
    "group",
    "services",
    "holdings",
    "associates",
    "partners",
    "industries",
    "international",
    "solutions",
];

/// Name suffixes appearing occasionally.
pub const NAME_SUFFIXES: &[&str] = &["jr", "sr", "ii", "iii"];

/// Abbreviated spellings of the business suffixes that occur *inside the
/// reference relation itself* — real warehouses are internally inconsistent
/// ("Boeing Company" and "Vance Corp" coexist), which is precisely what
/// makes the abbreviated forms frequent, low-IDF tokens. Without them,
/// every abbreviation in an input would be an unseen (column-average
/// weight) token and the paper's Type-II advantage of `fms` disappears.
pub const SUFFIX_ABBREVIATIONS: &[(&str, &[&str])] = &[
    ("company", &["co"]),
    ("corporation", &["corp", "inc"]),
    ("incorporated", &["inc"]),
    ("limited", &["ltd"]),
    ("enterprises", &["ent"]),
    ("international", &["intl"]),
    ("associates", &["assoc"]),
    ("services", &["svcs"]),
    ("industries", &["inds"]),
    ("group", &["grp"]),
];

/// Mid-frequency industry/descriptor words used in business names
/// ("pacific barker company"). They create the confusable structure the
/// paper's motivating example relies on: tuples sharing long frequent
/// tokens while differing in short rare ones.
pub const INDUSTRY_WORDS: &[&str] = &[
    "pacific",
    "northwest",
    "united",
    "general",
    "national",
    "american",
    "premier",
    "global",
    "advanced",
    "quality",
    "allied",
    "summit",
    "cascade",
    "evergreen",
    "pioneer",
    "golden",
    "liberty",
    "sterling",
    "coastal",
    "metro",
    "valley",
    "mountain",
    "superior",
    "integrated",
    "dynamic",
    "precision",
    "reliable",
];

/// Cities with their state abbreviation and base zip prefix (3 digits).
pub const CITIES: &[(&str, &str, u32)] = &[
    ("seattle", "wa", 980),
    ("tacoma", "wa", 984),
    ("spokane", "wa", 992),
    ("bellevue", "wa", 980),
    ("redmond", "wa", 980),
    ("portland", "or", 972),
    ("salem", "or", 973),
    ("eugene", "or", 974),
    ("san francisco", "ca", 941),
    ("los angeles", "ca", 900),
    ("san diego", "ca", 921),
    ("sacramento", "ca", 958),
    ("san jose", "ca", 951),
    ("oakland", "ca", 946),
    ("fresno", "ca", 937),
    ("phoenix", "az", 850),
    ("tucson", "az", 857),
    ("denver", "co", 802),
    ("boulder", "co", 803),
    ("las vegas", "nv", 891),
    ("reno", "nv", 895),
    ("salt lake city", "ut", 841),
    ("boise", "id", 837),
    ("albuquerque", "nm", 871),
    ("dallas", "tx", 752),
    ("houston", "tx", 770),
    ("austin", "tx", 787),
    ("san antonio", "tx", 782),
    ("fort worth", "tx", 761),
    ("el paso", "tx", 799),
    ("oklahoma city", "ok", 731),
    ("tulsa", "ok", 741),
    ("kansas city", "mo", 641),
    ("saint louis", "mo", 631),
    ("chicago", "il", 606),
    ("springfield", "il", 627),
    ("milwaukee", "wi", 532),
    ("madison", "wi", 537),
    ("minneapolis", "mn", 554),
    ("saint paul", "mn", 551),
    ("detroit", "mi", 482),
    ("grand rapids", "mi", 495),
    ("indianapolis", "in", 462),
    ("columbus", "oh", 432),
    ("cleveland", "oh", 441),
    ("cincinnati", "oh", 452),
    ("louisville", "ky", 402),
    ("nashville", "tn", 372),
    ("memphis", "tn", 381),
    ("atlanta", "ga", 303),
    ("savannah", "ga", 314),
    ("miami", "fl", 331),
    ("orlando", "fl", 328),
    ("tampa", "fl", 336),
    ("jacksonville", "fl", 322),
    ("charlotte", "nc", 282),
    ("raleigh", "nc", 276),
    ("richmond", "va", 232),
    ("virginia beach", "va", 234),
    ("washington", "dc", 200),
    ("baltimore", "md", 212),
    ("philadelphia", "pa", 191),
    ("pittsburgh", "pa", 152),
    ("newark", "nj", 71),
    ("jersey city", "nj", 73),
    ("new york", "ny", 100),
    ("brooklyn", "ny", 112),
    ("buffalo", "ny", 142),
    ("rochester", "ny", 146),
    ("albany", "ny", 122),
    ("boston", "ma", 21),
    ("worcester", "ma", 16),
    ("providence", "ri", 29),
    ("hartford", "ct", 61),
    ("new haven", "ct", 65),
    ("manchester", "nh", 31),
    ("burlington", "vt", 54),
    ("portland maine", "me", 41),
    ("anchorage", "ak", 995),
    ("honolulu", "hi", 968),
    ("omaha", "ne", 681),
    ("des moines", "ia", 503),
    ("wichita", "ks", 672),
    ("little rock", "ar", 722),
    ("new orleans", "la", 701),
    ("baton rouge", "la", 708),
    ("jackson", "ms", 392),
    ("birmingham", "al", 352),
    ("charleston", "sc", 294),
    ("columbia", "sc", 292),
];

/// Syllables for synthesizing the surname tail.
const SYL_A: &[&str] = &[
    "bar", "bel", "ber", "bor", "bran", "cal", "car", "chan", "dan", "del", "don", "dra", "fal",
    "far", "fer", "gal", "gar", "gor", "hal", "har", "hol", "kar", "kel", "kor", "lan", "lar",
    "lin", "mal", "mar", "mel", "mor", "nor", "pal", "par", "per", "ral", "ram", "ros", "sal",
    "san", "sel", "sor", "tal", "tar", "ter", "tor", "val", "van", "ver", "vor", "wal", "war",
    "wil", "zan",
];
const SYL_B: &[&str] = &[
    "a", "an", "ar", "den", "der", "do", "dor", "e", "el", "en", "er", "i", "in", "is", "ker",
    "ki", "ko", "la", "lan", "ler", "li", "lo", "man", "mer", "mi", "mon", "na", "ner", "ni", "no",
    "o", "on", "or", "ra", "ren", "ri", "ro", "sen", "ser", "si", "son", "ston", "ta", "ten",
    "ter", "ti", "to", "ton", "u", "va", "ven", "vi", "vo", "win",
];
const SYL_C: &[&str] = &[
    "berg", "by", "dale", "dez", "don", "dorf", "er", "es", "ett", "ez", "feld", "field", "ford",
    "gan", "ger", "ham", "hart", "ini", "ino", "itz", "kin", "kins", "land", "ley", "lin", "low",
    "man", "mann", "mer", "mont", "more", "ney", "ni", "nov", "off", "osa", "ova", "ow", "quist",
    "rell", "rez", "ri", "rio", "ris", "ron", "rup", "sen", "shaw", "sky", "son", "stein", "stone",
    "strom", "ton", "vale", "ville", "vitz", "wald", "way", "well", "wick", "witz", "wood",
    "worth",
];

/// Deterministically synthesize the `i`-th tail surname.
pub fn tail_surname(i: usize) -> String {
    let a = SYL_A[i % SYL_A.len()];
    let b = SYL_B[(i / SYL_A.len()) % SYL_B.len()];
    let c = SYL_C[(i / (SYL_A.len() * SYL_B.len())) % SYL_C.len()];
    format!("{a}{b}{c}")
}

/// Maximum distinct tail surnames available.
pub fn tail_surname_capacity() -> usize {
    SYL_A.len() * SYL_B.len() * SYL_C.len()
}

/// A Zipf sampler over `n` ranks with exponent `s`: rank `r` (0-based) has
/// probability ∝ `1/(r+1)^s`. Sampling is O(log n) via binary search over
/// the cumulative distribution.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0);
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for r in 0..n {
            total += 1.0 / ((r + 1) as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Sample a rank in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let x: f64 = rng.gen();
        self.cumulative
            .partition_point(|&c| c < x)
            .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pools_are_nonempty_lowercase_tokens() {
        for pool in [FIRST_NAMES, SURNAMES, BUSINESS_SUFFIXES, NAME_SUFFIXES] {
            assert!(!pool.is_empty());
            for t in pool {
                assert!(!t.is_empty());
                assert_eq!(*t, t.to_lowercase().as_str());
                assert!(!t.contains(' '), "{t} should be a single token");
            }
        }
    }

    #[test]
    fn cities_have_valid_states_and_zips() {
        for (city, state, zip) in CITIES {
            assert!(!city.is_empty());
            assert_eq!(state.len(), 2);
            assert!(*zip < 1000);
        }
    }

    #[test]
    fn tail_surnames_distinct_and_deterministic() {
        let n = 5000;
        let mut set = std::collections::HashSet::new();
        for i in 0..n {
            let s = tail_surname(i);
            assert_eq!(s, tail_surname(i));
            assert!(set.insert(s), "collision at {i}");
        }
        assert!(tail_surname_capacity() > 100_000);
    }

    #[test]
    fn zipf_skew_is_present() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should dominate rank 99 by roughly 100/1 (Zipf s = 1).
        assert!(counts[0] > counts[99] * 20);
        // The tail is still reachable.
        assert!(counts[500..].iter().sum::<usize>() > 0);
    }

    #[test]
    fn zipf_samples_in_range() {
        let z = Zipf::new(5, 1.2);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 5);
        }
        assert_eq!(z.len(), 5);
        assert!(!z.is_empty());
    }

    #[test]
    fn zipf_deterministic_given_seed() {
        let z = Zipf::new(100, 1.0);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
