//! Synthetic `Customer[name, city, state, zipcode]` generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fm_core::Record;

use crate::pools::{
    tail_surname, Zipf, BUSINESS_SUFFIXES, CITIES, FIRST_NAMES, INDUSTRY_WORDS, NAME_SUFFIXES,
    SUFFIX_ABBREVIATIONS, SURNAMES,
};

/// Column names of the generated relation (matches the paper's Customer
/// schema).
pub const CUSTOMER_COLUMNS: [&str; 4] = ["name", "city", "state", "zip"];

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of tuples to generate.
    pub size: usize,
    /// Master seed; everything is a pure function of it.
    pub seed: u64,
    /// Extra synthesized surnames appended to the core pool. More tail →
    /// more distinct tokens → higher average IDF, like a real customer
    /// base. Scaled so the paper's ratio (~0.2 distinct tokens per tuple)
    /// is approached at large sizes.
    pub surname_tail: usize,
    /// Fraction of business-style customers (two content tokens plus a
    /// frequent suffix token like 'corporation').
    pub business_fraction: f64,
    /// Probability that a generated tuple spawns a *confuser sibling* — a
    /// distinct real-world entity sharing most tokens (same name in another
    /// city, same distinctive token with another suffix, a neighboring
    /// surname, another first name in the same family). Real warehouse
    /// data is full of these near-misses; they are what make the matching
    /// problem non-trivial and what separates `fms` from `ed`.
    pub sibling_probability: f64,
}

impl GeneratorConfig {
    /// Defaults scaled to `size`. The business fraction mirrors an
    /// enterprise customer warehouse (the paper's relation belongs to one):
    /// a large share of organization names full of frequent low-IDF tokens
    /// like 'corporation' — the regime the paper's similarity argument is
    /// about.
    pub fn new(size: usize, seed: u64) -> GeneratorConfig {
        GeneratorConfig {
            size,
            seed,
            surname_tail: (size / 8).clamp(1000, 150_000),
            business_fraction: 0.45,
            sibling_probability: 0.35,
        }
    }
}

/// Generate the reference relation.
pub fn generate_customers(config: &GeneratorConfig) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xC057_0AE0_D47A_6E4Eu64);
    let surname_count = SURNAMES.len() + config.surname_tail;
    let surname_zipf = Zipf::new(surname_count, 1.05);
    let first_zipf = Zipf::new(FIRST_NAMES.len(), 0.9);
    let city_zipf = Zipf::new(CITIES.len(), 1.0);
    let suffix_zipf = Zipf::new(BUSINESS_SUFFIXES.len(), 0.8);

    let surname_at = |rank: usize| -> String {
        if rank < SURNAMES.len() {
            SURNAMES[rank].to_string()
        } else {
            tail_surname(rank - SURNAMES.len())
        }
    };
    // Real reference data is internally inconsistent about conventions:
    // a quarter of business suffixes appear in an abbreviated spelling.
    let pick_suffix = {
        let suffix_zipf = suffix_zipf.clone();
        move |rng: &mut StdRng| -> &'static str {
            let canonical = BUSINESS_SUFFIXES[suffix_zipf.sample(rng)];
            if rng.gen_bool(0.25) {
                if let Some((_, abbrs)) = SUFFIX_ABBREVIATIONS
                    .iter()
                    .find(|(full, _)| *full == canonical)
                {
                    return abbrs[rng.gen_range(0..abbrs.len())];
                }
            }
            canonical
        }
    };

    let mut rows: Vec<Record> = Vec::with_capacity(config.size);
    while rows.len() < config.size {
        {
            let name = if rng.gen_bool(config.business_fraction) {
                // Business customer: "[industry] <surname> <suffix>". The
                // industry words are mid-frequency and the suffixes very
                // frequent, reproducing the paper's 'boeing company' vs
                // 'bon corporation' confusability.
                let a = surname_at(surname_zipf.sample(&mut rng));
                let suffix = pick_suffix(&mut rng);
                if rng.gen_bool(0.5) {
                    let industry = INDUSTRY_WORDS[rng.gen_range(0..INDUSTRY_WORDS.len())];
                    format!("{industry} {a} {suffix}")
                } else if rng.gen_bool(0.3) {
                    let b = surname_at(surname_zipf.sample(&mut rng));
                    format!("{a} {b} {suffix}")
                } else {
                    format!("{a} {suffix}")
                }
            } else {
                // Individual: "first [m] last [suffix]".
                let first = FIRST_NAMES[first_zipf.sample(&mut rng)];
                let last = surname_at(surname_zipf.sample(&mut rng));
                let mut name = first.to_string();
                if rng.gen_bool(0.15) {
                    let initial = (b'a' + rng.gen_range(0..26u8)) as char;
                    name.push(' ');
                    name.push(initial);
                }
                name.push(' ');
                name.push_str(&last);
                if rng.gen_bool(0.03) {
                    name.push(' ');
                    name.push_str(NAME_SUFFIXES[rng.gen_range(0..NAME_SUFFIXES.len())]);
                }
                name
            };
            let (city, state, zip_base) = CITIES[city_zipf.sample(&mut rng)];
            let zip = format!("{:03}{:02}", zip_base, rng.gen_range(0..100u32));
            rows.push(Record::new(&[&name, city, state, &zip]));
        }

        // Optionally spawn confuser siblings of the tuple just created.
        while rows.len() < config.size && rng.gen_bool(config.sibling_probability) {
            let base = rows.last().unwrap().clone();
            let name = base.get(0).unwrap().to_string();
            let mut tokens: Vec<String> = name.split(' ').map(str::to_string).collect();
            let variant = rng.gen_range(0..4u8);
            let (new_name, relocate) = match variant {
                // (a) same name, different city (a branch office).
                0 => (name.clone(), true),
                // (b) swap the trailing suffix-like token for another
                //     frequent one ("barker company" vs "barker corporation").
                1 => {
                    let last = tokens.len() - 1;
                    let current = tokens[last].clone();
                    let mut replacement = pick_suffix(&mut rng).to_string();
                    if replacement == current {
                        replacement = BUSINESS_SUFFIXES
                            [(suffix_zipf.sample(&mut rng) + 1) % BUSINESS_SUFFIXES.len()]
                        .to_string();
                    }
                    tokens[last] = replacement;
                    (tokens.join(" "), rng.gen_bool(0.5))
                }
                // (c) swap the leading token (another first name / industry
                //     word) while keeping the rest.
                2 => {
                    tokens[0] = if rng.gen_bool(0.5) {
                        FIRST_NAMES[first_zipf.sample(&mut rng)].to_string()
                    } else {
                        INDUSTRY_WORDS[rng.gen_range(0..INDUSTRY_WORDS.len())].to_string()
                    };
                    (tokens.join(" "), false)
                }
                // (d) replace the most distinctive token with a neighboring
                //     synthesized surname (small edit distance).
                _ => {
                    let i = if tokens.len() >= 2 { 1 } else { 0 };
                    tokens[i] = tail_surname(rng.gen_range(0..1000));
                    (tokens.join(" "), rng.gen_bool(0.5))
                }
            };
            let (city, state, zip) = if relocate {
                let (c, s, z) = CITIES[city_zipf.sample(&mut rng)];
                (
                    c.to_string(),
                    s.to_string(),
                    format!("{:03}{:02}", z, rng.gen_range(0..100u32)),
                )
            } else {
                // Same city; usually a nearby zip.
                let city = base.get(1).unwrap().to_string();
                let state = base.get(2).unwrap().to_string();
                let base_zip = base.get(3).unwrap();
                let zip = format!("{}{:02}", &base_zip[..3], rng.gen_range(0..100u32));
                (city, state, zip)
            };
            if new_name == name && !relocate {
                break; // would be an exact duplicate; skip
            }
            rows.push(Record::new(&[&new_name, &city, &state, &zip]));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_core::record::TokenizedRecord;
    use fm_text::Tokenizer;
    use std::collections::{HashMap, HashSet};

    fn tokenize_all(rows: &[Record]) -> Vec<TokenizedRecord> {
        let t = Tokenizer::new();
        rows.iter().map(|r| r.tokenize(&t)).collect()
    }

    #[test]
    fn deterministic_for_a_seed() {
        let cfg = GeneratorConfig::new(500, 42);
        assert_eq!(generate_customers(&cfg), generate_customers(&cfg));
        let other = GeneratorConfig::new(500, 43);
        assert_ne!(generate_customers(&cfg), generate_customers(&other));
    }

    #[test]
    fn shape_and_columns() {
        let rows = generate_customers(&GeneratorConfig::new(200, 7));
        assert_eq!(rows.len(), 200);
        for r in &rows {
            assert_eq!(r.arity(), 4);
            let name = r.get(0).unwrap();
            assert!(name.split(' ').count() >= 2, "name {name} too short");
            let state = r.get(2).unwrap();
            assert_eq!(state.len(), 2);
            let zip = r.get(3).unwrap();
            assert_eq!(zip.len(), 5);
            assert!(zip.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn city_state_zip_are_correlated() {
        let rows = generate_customers(&GeneratorConfig::new(2000, 11));
        // Every city maps to exactly one state and one zip prefix.
        let mut city_state: HashMap<&str, &str> = HashMap::new();
        let mut city_zip3: HashMap<&str, &str> = HashMap::new();
        for r in &rows {
            let city = r.get(1).unwrap();
            let state = r.get(2).unwrap();
            let zip3 = &r.get(3).unwrap()[..3];
            if let Some(prev) = city_state.insert(city, state) {
                assert_eq!(prev, state, "city {city} maps to two states");
            }
            if let Some(prev) = city_zip3.insert(city, zip3) {
                assert_eq!(prev, zip3, "city {city} maps to two zip prefixes");
            }
        }
    }

    #[test]
    fn token_frequencies_are_skewed() {
        let rows = generate_customers(&GeneratorConfig::new(5000, 3));
        let tokenized = tokenize_all(&rows);
        let mut name_counts: HashMap<&str, usize> = HashMap::new();
        for t in &tokenized {
            for tok in t.column(0) {
                *name_counts.entry(tok).or_insert(0) += 1;
            }
        }
        let mut counts: Vec<usize> = name_counts.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // Heavy head...
        assert!(counts[0] > 100, "head token too rare: {}", counts[0]);
        // ...and a long tail of rare tokens.
        let singletons = counts.iter().filter(|&&c| c <= 2).count();
        assert!(
            singletons > counts.len() / 3,
            "tail too thin: {singletons}/{}",
            counts.len()
        );
    }

    #[test]
    fn distinct_token_growth() {
        // Distinct tokens should grow with relation size (the paper's 1.7M
        // relation has ~367k distinct tokens; at small scale we just check
        // monotone growth and a sane ratio).
        let count_distinct = |n: usize| -> usize {
            let rows = generate_customers(&GeneratorConfig::new(n, 5));
            let tokenized = tokenize_all(&rows);
            let mut set: HashSet<(usize, String)> = HashSet::new();
            for t in &tokenized {
                for (col, tok) in t.iter_tokens() {
                    set.insert((col, tok.to_string()));
                }
            }
            set.len()
        };
        let d1 = count_distinct(1000);
        let d2 = count_distinct(8000);
        assert!(d2 > d1);
        assert!(d2 > 800, "too few distinct tokens: {d2}");
    }

    #[test]
    fn business_fraction_respected() {
        let rows = generate_customers(&GeneratorConfig {
            size: 4000,
            seed: 9,
            surname_tail: 2000,
            business_fraction: 0.5,
            sibling_probability: 0.0,
        });
        let mut suffixes: HashSet<&str> = BUSINESS_SUFFIXES.iter().copied().collect();
        for (_, abbrs) in SUFFIX_ABBREVIATIONS {
            suffixes.extend(abbrs.iter().copied());
        }
        let businesses = rows
            .iter()
            .filter(|r| {
                r.get(0)
                    .unwrap()
                    .split(' ')
                    .next_back()
                    .map(|t| suffixes.contains(t))
                    .unwrap_or(false)
            })
            .count();
        let frac = businesses as f64 / rows.len() as f64;
        assert!((0.4..0.6).contains(&frac), "business fraction {frac}");
    }
}
