//! Liveness proof for every `xtask analyze` rule: each seeded-violation
//! fixture under `tests/fixtures/` must produce exactly the expected
//! findings when run through [`xtask::analyze::analyze_sources`] with a
//! synthetic project config — and the negative controls in the same
//! fixtures must stay silent. If a rule rots into a no-op, these fail.

use xtask::analyze::{analyze_sources, Config, CrateCfg, Finding, LockClass};

/// The synthetic two-crate project the fixtures form: `fixa` holds one file
/// per rule, `fixb` is the zero-unsafe crate missing `forbid(unsafe_code)`.
fn fixture_config() -> Config {
    let class = |name: &str, file: &str, field: &str| LockClass {
        name: name.to_string(),
        file: format!("fixa/src/{file}"),
        field: field.to_string(),
    };
    Config {
        crates: vec![
            CrateCfg {
                name: "fixa".to_string(),
                src_dir: "fixa/src".to_string(),
                root: "fixa/src/lib.rs".to_string(),
            },
            CrateCfg {
                name: "fixb".to_string(),
                src_dir: "fixb/src".to_string(),
                root: "fixb/src/lib.rs".to_string(),
            },
        ],
        lock_order: vec![
            class("alpha", "locks.rs", "alpha"),
            class("beta", "locks.rs", "beta"),
            class("gamma", "lockio.rs", "gamma"),
            class("delta", "exempt_io.rs", "delta"),
        ],
        wal_allowed_files: vec!["fixa/src/wal.rs".to_string()],
        wal_checkpoint_file: "fixa/src/wal.rs".to_string(),
        wal_main_field: "main".to_string(),
        wal_sync_call: "sync_data".to_string(),
        codec_files: vec!["fixa/src/codec.rs".to_string()],
        float_det_dirs: vec!["fixa/src/sim".to_string()],
        io_methods: vec!["read_page".to_string(), "sync_data".to_string()],
        lockio_exempt_files: vec!["fixa/src/exempt_io.rs".to_string()],
        atomics_allowed_files: vec!["fixa/src/metrics.rs".to_string()],
        worker_files: vec!["fixa/src/worker.rs".to_string()],
        worker_lock_fields: vec!["state".to_string()],
        worker_guard_fns: vec!["lock_state".to_string()],
        blocking_calls: vec![
            "sleep".to_string(),
            "recv".to_string(),
            "wait".to_string(),
            "join".to_string(),
        ],
        mutmap_roots: vec!["Hot::lookup".to_string()],
        racecheck_entries: vec![],
        latch_proto: None,
    }
}

fn fixture_sources() -> Vec<(String, String)> {
    vec![
        (
            "fixa/src/lib.rs".to_string(),
            include_str!("fixtures/unsafe_blocks.rs").to_string(),
        ),
        (
            "fixa/src/locks.rs".to_string(),
            include_str!("fixtures/locks.rs").to_string(),
        ),
        (
            "fixa/src/wal.rs".to_string(),
            include_str!("fixtures/wal_checkpoint.rs").to_string(),
        ),
        (
            "fixa/src/bypass.rs".to_string(),
            include_str!("fixtures/wal_bypass.rs").to_string(),
        ),
        (
            "fixa/src/codec.rs".to_string(),
            include_str!("fixtures/codec.rs").to_string(),
        ),
        (
            "fixa/src/sim/kernel.rs".to_string(),
            include_str!("fixtures/float_kernel.rs").to_string(),
        ),
        (
            "fixa/src/lockio.rs".to_string(),
            include_str!("fixtures/lock_across_io.rs").to_string(),
        ),
        (
            "fixa/src/exempt_io.rs".to_string(),
            include_str!("fixtures/exempt_io.rs").to_string(),
        ),
        (
            "fixa/src/atomics.rs".to_string(),
            include_str!("fixtures/atomics_ordering.rs").to_string(),
        ),
        (
            "fixa/src/metrics.rs".to_string(),
            include_str!("fixtures/atomics_metrics.rs").to_string(),
        ),
        (
            "fixa/src/worker.rs".to_string(),
            include_str!("fixtures/blocking_worker.rs").to_string(),
        ),
        (
            "fixa/src/hot.rs".to_string(),
            include_str!("fixtures/mutmap_hot.rs").to_string(),
        ),
        (
            "fixa/src/util.rs".to_string(),
            include_str!("fixtures/mutmap_util.rs").to_string(),
        ),
        (
            "fixb/src/lib.rs".to_string(),
            include_str!("fixtures/safe_lib.rs").to_string(),
        ),
    ]
}

fn by_rule<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn lock_order_rule_catches_seeded_violations() {
    let findings = analyze_sources(fixture_sources(), &fixture_config());
    let locks = by_rule(&findings, "lock-order");
    assert_eq!(
        locks.len(),
        3,
        "expected inverted + reentrant + propagated, got: {locks:#?}"
    );
    assert!(
        locks
            .iter()
            .any(|f| f.message.contains("acquires `alpha` while holding `beta`")),
        "direct inversion not reported: {locks:#?}"
    );
    assert!(
        locks
            .iter()
            .any(|f| f.message.contains("re-acquires `alpha`")),
        "self-deadlock not reported: {locks:#?}"
    );
    assert!(
        locks
            .iter()
            .any(|f| f.message.contains("holds `beta` while calling")
                && f.message.contains("touch_alpha")
                && f.message.contains("may acquire `alpha`")),
        "propagated edge not reported: {locks:#?}"
    );
    // Negative controls: the well-ordered, dropped-early, and block-scoped
    // functions sit on specific lines; none of them may be flagged.
    let src = include_str!("fixtures/locks.rs");
    for control in ["balanced", "released", "scoped"] {
        let sig_line = 1 + src
            .lines()
            .position(|l| l.contains(&format!("pub fn {control}")))
            .expect("control fn present") as u32;
        let body_end = sig_line + 8;
        assert!(
            !locks
                .iter()
                .any(|f| f.line >= sig_line && f.line <= body_end),
            "control `{control}` (lines {sig_line}..{body_end}) was flagged: {locks:#?}"
        );
    }
}

#[test]
fn wal_write_rule_catches_bypass_and_checkpoint_order() {
    let findings = analyze_sources(fixture_sources(), &fixture_config());
    let wal = by_rule(&findings, "wal-write");
    assert_eq!(wal.len(), 2, "expected bypass + reorder, got: {wal:#?}");
    assert!(
        wal.iter()
            .any(|f| f.path == "fixa/src/bypass.rs"
                && f.message.contains("outside the WAL-aware layer")),
        "confinement breach not reported: {wal:#?}"
    );
    assert!(
        wal.iter()
            .any(|f| f.path == "fixa/src/wal.rs" && f.message.contains("sync_data")),
        "checkpoint reorder not reported: {wal:#?}"
    );
}

#[test]
fn panic_path_rule_propagates_and_respects_allow() {
    let findings = analyze_sources(fixture_sources(), &fixture_config());
    let panics = by_rule(&findings, "panic-path");
    assert_eq!(panics.len(), 1, "got: {panics:#?}");
    let f = panics[0];
    assert_eq!(f.path, "fixa/src/codec.rs");
    assert!(
        f.message.contains("`Codec::decode`") && f.message.contains("decode_inner"),
        "chain not explained: {}",
        f.message
    );
    // decode_checked carries the same transitive facts but is suppressed
    // with `lint:allow(panic-path)` at its signature; decode_inner is
    // private and must not be flagged at all.
    assert!(
        !f.message.contains("decode_checked"),
        "allow at signature ignored: {}",
        f.message
    );
}

#[test]
fn unsafe_audit_rule_demands_safety_comments_and_forbid() {
    let findings = analyze_sources(fixture_sources(), &fixture_config());
    let unsafety = by_rule(&findings, "unsafe-audit");
    assert_eq!(unsafety.len(), 2, "got: {unsafety:#?}");
    // The undocumented block (the documented one above it is the control).
    let src = include_str!("fixtures/unsafe_blocks.rs");
    let undocumented_line = 1 + src
        .lines()
        .position(|l| l.contains("pub fn read_raw_undocumented"))
        .expect("fixture fn present") as u32;
    assert!(
        unsafety.iter().any(|f| f.path == "fixa/src/lib.rs"
            && f.message.contains("SAFETY")
            && f.line > undocumented_line),
        "missing-SAFETY-comment not reported: {unsafety:#?}"
    );
    assert!(
        unsafety
            .iter()
            .any(|f| f.path == "fixb/src/lib.rs" && f.message.contains("forbid(unsafe_code)")),
        "missing forbid in zero-unsafe crate not reported: {unsafety:#?}"
    );
}

#[test]
fn float_det_rule_bans_hash_containers_in_kernels() {
    let findings = analyze_sources(fixture_sources(), &fixture_config());
    let float = by_rule(&findings, "float-det");
    assert_eq!(float.len(), 1, "got: {float:#?}");
    assert_eq!(float[0].path, "fixa/src/sim/kernel.rs");
    assert!(float[0].message.contains("HashMap"));
}

#[test]
fn lock_across_io_rule_catches_io_under_guard() {
    let findings = analyze_sources(fixture_sources(), &fixture_config());
    let io = by_rule(&findings, "lock-across-io");
    assert_eq!(
        io.len(),
        2,
        "expected read + sync under guard, got: {io:#?}"
    );
    assert!(
        io.iter()
            .any(|f| f.message.contains("`read_page`") && f.message.contains("`gamma`")),
        "read under guard not reported: {io:#?}"
    );
    assert!(
        io.iter().any(|f| f.message.contains("`sync_data`")),
        "sync under guard not reported: {io:#?}"
    );
    // The exempt file carries the same violating shape but is config-
    // exempted (the WAL-layer model) — nothing may come from it.
    assert!(
        io.iter().all(|f| f.path == "fixa/src/lockio.rs"),
        "exempt file leaked findings: {io:#?}"
    );
    // Negative controls: dropped-early, block-scoped, and allow-vetted
    // functions sit on specific lines; none of them may be flagged.
    let src = include_str!("fixtures/lock_across_io.rs");
    for control in ["staged", "scoped", "vetted"] {
        let sig_line = 1 + src
            .lines()
            .position(|l| l.contains(&format!("pub fn {control}")))
            .expect("control fn present") as u32;
        let body_end = sig_line + 8;
        assert!(
            !io.iter().any(|f| f.line >= sig_line && f.line <= body_end),
            "control `{control}` (lines {sig_line}..{body_end}) was flagged: {io:#?}"
        );
    }
}

#[test]
fn atomics_ordering_rule_catches_relaxed_flags_only() {
    let findings = analyze_sources(fixture_sources(), &fixture_config());
    let atomics = by_rule(&findings, "atomics-ordering");
    assert_eq!(
        atomics.len(),
        2,
        "expected Relaxed store + load on the flag, got: {atomics:#?}"
    );
    assert!(
        atomics
            .iter()
            .any(|f| f.message.contains("`running.store(… Relaxed …)`")),
        "Relaxed flag store not reported: {atomics:#?}"
    );
    assert!(
        atomics
            .iter()
            .any(|f| f.message.contains("`running.load(… Relaxed …)`")),
        "Relaxed flag load not reported: {atomics:#?}"
    );
    // Counter ops, Release/Acquire pairs, the allow-vetted site, and the
    // allowlisted metrics file must all stay silent.
    assert!(
        atomics.iter().all(|f| f.path == "fixa/src/atomics.rs"),
        "allowlisted file leaked findings: {atomics:#?}"
    );
    assert!(
        !atomics.iter().any(|f| f.message.contains("total")),
        "the Relaxed counter is a negative control: {atomics:#?}"
    );
    let src = include_str!("fixtures/atomics_ordering.rs");
    for control in ["stop_published", "is_running", "bump", "stop_vetted"] {
        let sig_line = 1 + src
            .lines()
            .position(|l| l.contains(&format!("pub fn {control}(")))
            .expect("control fn present") as u32;
        let body_end = sig_line + 4;
        assert!(
            !atomics
                .iter()
                .any(|f| f.line >= sig_line && f.line <= body_end),
            "control `{control}` (lines {sig_line}..{body_end}) was flagged: {atomics:#?}"
        );
    }
}

#[test]
fn blocking_in_worker_rule_catches_blocking_under_guard() {
    let findings = analyze_sources(fixture_sources(), &fixture_config());
    let blocking = by_rule(&findings, "blocking-in-worker");
    assert_eq!(
        blocking.len(),
        2,
        "expected sleep-under-helper-guard + recv-under-lock, got: {blocking:#?}"
    );
    assert!(
        blocking
            .iter()
            .any(|f| f.message.contains("`sleep`") && f.message.contains("`lock_state`")),
        "helper-guard acquisition not tracked: {blocking:#?}"
    );
    assert!(
        blocking
            .iter()
            .any(|f| f.message.contains("`recv`") && f.message.contains("`state`")),
        "direct .lock() acquisition not tracked: {blocking:#?}"
    );
    let src = include_str!("fixtures/blocking_worker.rs");
    for control in ["drain_then_sleep", "scoped", "wait_ready"] {
        let sig_line = 1 + src
            .lines()
            .position(|l| l.contains(&format!("pub fn {control}")))
            .expect("control fn present") as u32;
        let body_end = sig_line + 8;
        assert!(
            !blocking
                .iter()
                .any(|f| f.line >= sig_line && f.line <= body_end),
            "control `{control}` (lines {sig_line}..{body_end}) was flagged: {blocking:#?}"
        );
    }
}

#[test]
fn mutmap_lists_reachable_mutation_and_skips_unreachable() {
    use xtask::analyze::{graph::CallGraph, items::FileIndex, mutmap};

    let cfg = fixture_config();
    let files: Vec<FileIndex> = fixture_sources()
        .into_iter()
        .map(|(path, src)| FileIndex::build(path, src))
        .collect();
    let graph = CallGraph::build(&files);
    let report = mutmap::compute(&files, &graph, &cfg);

    assert_eq!(report.roots, vec!["Hot::lookup".to_string()]);
    assert!(report.missing_roots.is_empty(), "{report:#?}");
    // Root + module-qualified free fn + Self:: method + clean self.probe.
    assert_eq!(report.reachable, 4, "{report:#?}");

    let bump = report
        .sites
        .iter()
        .find(|s| s.qual == "bump")
        .expect("module-qualified free fn must be in the map");
    assert_eq!(bump.kinds, vec!["mut-param"]);
    assert_eq!(
        bump.chain,
        vec!["Hot::lookup".to_string(), "bump".to_string()],
        "chain must start at the root"
    );

    let record = report
        .sites
        .iter()
        .find(|s| s.qual == "Hot::record")
        .expect("Self::-qualified method must be in the map");
    assert_eq!(record.kinds, vec!["atomic-store", "lock"]);

    // The clean callee and the unreachable mutator stay out.
    assert!(
        !report.sites.iter().any(|s| s.qual == "Hot::probe"),
        "clean fn listed: {report:#?}"
    );
    assert!(
        !report.sites.iter().any(|s| s.qual == "Hot::rebuild"),
        "unreachable fn listed: {report:#?}"
    );
    assert_eq!(report.mutation_sites(), 2, "{report:#?}");
}

#[test]
fn mutmap_json_roundtrips_through_jsonv() {
    use xtask::analyze::{graph::CallGraph, items::FileIndex, mutmap};
    use xtask::jsonv::{self, Json};

    let cfg = fixture_config();
    let files: Vec<FileIndex> = fixture_sources()
        .into_iter()
        .map(|(path, src)| FileIndex::build(path, src))
        .collect();
    let graph = CallGraph::build(&files);
    let report = mutmap::compute(&files, &graph, &cfg);

    // The exact seam `cargo xtask ci` gates on: render to JSON, re-parse
    // with the std-only parser, read the count back.
    let doc = jsonv::parse(&mutmap::to_json(&report)).expect("mut-map JSON must parse");
    assert_eq!(
        doc.get("mutation_sites").and_then(Json::as_f64),
        Some(2.0),
        "gate count mismatch"
    );
    let sites = doc
        .get("sites")
        .and_then(Json::as_arr)
        .expect("sites array");
    assert_eq!(sites.len(), 2, "bump + record");
    assert!(sites.iter().any(|s| {
        s.get("fn").and_then(Json::as_str) == Some("bump")
            && s.get("mutates").and_then(Json::as_bool) == Some(true)
    }));
}

#[test]
fn every_rule_has_an_explain_entry() {
    // `analyze --explain` and the per-module RULE constants must not
    // drift: each rule that can produce findings has rationale text.
    use xtask::analyze::{atomics, blocking, latchproto, lockio, locks, lockset, panics, RULES};
    let documented: Vec<&str> = RULES.iter().map(|(name, _, _)| *name).collect();
    let rules = [
        locks::RULE,
        "wal-write",
        panics::RULE,
        "unsafe-audit",
        "float-det",
        lockio::RULE,
        atomics::RULE,
        blocking::RULE,
        lockset::RULE,
        latchproto::RULE,
    ];
    for rule in rules {
        assert!(
            documented.contains(&rule),
            "rule `{rule}` has no --explain entry"
        );
    }
    // …and nothing documented that no module can emit: the table and the
    // RULE constants are the same 10-rule set (`racecheck` delegates its
    // --explain here, so this covers both commands).
    assert_eq!(
        documented.len(),
        rules.len(),
        "RULES table drifted: {documented:?}"
    );
}

#[test]
fn clean_sources_produce_no_findings() {
    // A crate with forbid(unsafe_code), ordered locking, and no panics —
    // the analyzer must stay silent (rules fire on violations, not style).
    let sources = vec![(
        "fixb/src/lib.rs".to_string(),
        "#![forbid(unsafe_code)]\n\npub fn answer() -> u32 {\n    42\n}\n".to_string(),
    )];
    let mut cfg = fixture_config();
    cfg.crates.retain(|c| c.name == "fixb");
    let findings = analyze_sources(sources, &cfg);
    assert!(findings.is_empty(), "got: {findings:#?}");
}
