//! Liveness proof for every `xtask analyze` rule: each seeded-violation
//! fixture under `tests/fixtures/` must produce exactly the expected
//! findings when run through [`xtask::analyze::analyze_sources`] with a
//! synthetic project config — and the negative controls in the same
//! fixtures must stay silent. If a rule rots into a no-op, these fail.

use xtask::analyze::{analyze_sources, Config, CrateCfg, Finding, LockClass};

/// The synthetic two-crate project the fixtures form: `fixa` holds one file
/// per rule, `fixb` is the zero-unsafe crate missing `forbid(unsafe_code)`.
fn fixture_config() -> Config {
    let class = |name: &str, field: &str| LockClass {
        name: name.to_string(),
        file: "fixa/src/locks.rs".to_string(),
        field: field.to_string(),
    };
    Config {
        crates: vec![
            CrateCfg {
                name: "fixa".to_string(),
                src_dir: "fixa/src".to_string(),
                root: "fixa/src/lib.rs".to_string(),
            },
            CrateCfg {
                name: "fixb".to_string(),
                src_dir: "fixb/src".to_string(),
                root: "fixb/src/lib.rs".to_string(),
            },
        ],
        lock_order: vec![class("alpha", "alpha"), class("beta", "beta")],
        wal_allowed_files: vec!["fixa/src/wal.rs".to_string()],
        wal_checkpoint_file: "fixa/src/wal.rs".to_string(),
        wal_main_field: "main".to_string(),
        wal_sync_call: "sync_data".to_string(),
        codec_files: vec!["fixa/src/codec.rs".to_string()],
        float_det_dirs: vec!["fixa/src/sim".to_string()],
    }
}

fn fixture_sources() -> Vec<(String, String)> {
    vec![
        (
            "fixa/src/lib.rs".to_string(),
            include_str!("fixtures/unsafe_blocks.rs").to_string(),
        ),
        (
            "fixa/src/locks.rs".to_string(),
            include_str!("fixtures/locks.rs").to_string(),
        ),
        (
            "fixa/src/wal.rs".to_string(),
            include_str!("fixtures/wal_checkpoint.rs").to_string(),
        ),
        (
            "fixa/src/bypass.rs".to_string(),
            include_str!("fixtures/wal_bypass.rs").to_string(),
        ),
        (
            "fixa/src/codec.rs".to_string(),
            include_str!("fixtures/codec.rs").to_string(),
        ),
        (
            "fixa/src/sim/kernel.rs".to_string(),
            include_str!("fixtures/float_kernel.rs").to_string(),
        ),
        (
            "fixb/src/lib.rs".to_string(),
            include_str!("fixtures/safe_lib.rs").to_string(),
        ),
    ]
}

fn by_rule<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn lock_order_rule_catches_seeded_violations() {
    let findings = analyze_sources(fixture_sources(), &fixture_config());
    let locks = by_rule(&findings, "lock-order");
    assert_eq!(
        locks.len(),
        3,
        "expected inverted + reentrant + propagated, got: {locks:#?}"
    );
    assert!(
        locks
            .iter()
            .any(|f| f.message.contains("acquires `alpha` while holding `beta`")),
        "direct inversion not reported: {locks:#?}"
    );
    assert!(
        locks
            .iter()
            .any(|f| f.message.contains("re-acquires `alpha`")),
        "self-deadlock not reported: {locks:#?}"
    );
    assert!(
        locks
            .iter()
            .any(|f| f.message.contains("holds `beta` while calling")
                && f.message.contains("touch_alpha")
                && f.message.contains("may acquire `alpha`")),
        "propagated edge not reported: {locks:#?}"
    );
    // Negative controls: the well-ordered, dropped-early, and block-scoped
    // functions sit on specific lines; none of them may be flagged.
    let src = include_str!("fixtures/locks.rs");
    for control in ["balanced", "released", "scoped"] {
        let sig_line = 1 + src
            .lines()
            .position(|l| l.contains(&format!("pub fn {control}")))
            .expect("control fn present") as u32;
        let body_end = sig_line + 8;
        assert!(
            !locks
                .iter()
                .any(|f| f.line >= sig_line && f.line <= body_end),
            "control `{control}` (lines {sig_line}..{body_end}) was flagged: {locks:#?}"
        );
    }
}

#[test]
fn wal_write_rule_catches_bypass_and_checkpoint_order() {
    let findings = analyze_sources(fixture_sources(), &fixture_config());
    let wal = by_rule(&findings, "wal-write");
    assert_eq!(wal.len(), 2, "expected bypass + reorder, got: {wal:#?}");
    assert!(
        wal.iter()
            .any(|f| f.path == "fixa/src/bypass.rs"
                && f.message.contains("outside the WAL-aware layer")),
        "confinement breach not reported: {wal:#?}"
    );
    assert!(
        wal.iter()
            .any(|f| f.path == "fixa/src/wal.rs" && f.message.contains("sync_data")),
        "checkpoint reorder not reported: {wal:#?}"
    );
}

#[test]
fn panic_path_rule_propagates_and_respects_allow() {
    let findings = analyze_sources(fixture_sources(), &fixture_config());
    let panics = by_rule(&findings, "panic-path");
    assert_eq!(panics.len(), 1, "got: {panics:#?}");
    let f = panics[0];
    assert_eq!(f.path, "fixa/src/codec.rs");
    assert!(
        f.message.contains("`Codec::decode`") && f.message.contains("decode_inner"),
        "chain not explained: {}",
        f.message
    );
    // decode_checked carries the same transitive facts but is suppressed
    // with `lint:allow(panic-path)` at its signature; decode_inner is
    // private and must not be flagged at all.
    assert!(
        !f.message.contains("decode_checked"),
        "allow at signature ignored: {}",
        f.message
    );
}

#[test]
fn unsafe_audit_rule_demands_safety_comments_and_forbid() {
    let findings = analyze_sources(fixture_sources(), &fixture_config());
    let unsafety = by_rule(&findings, "unsafe-audit");
    assert_eq!(unsafety.len(), 2, "got: {unsafety:#?}");
    // The undocumented block (the documented one above it is the control).
    let src = include_str!("fixtures/unsafe_blocks.rs");
    let undocumented_line = 1 + src
        .lines()
        .position(|l| l.contains("pub fn read_raw_undocumented"))
        .expect("fixture fn present") as u32;
    assert!(
        unsafety.iter().any(|f| f.path == "fixa/src/lib.rs"
            && f.message.contains("SAFETY")
            && f.line > undocumented_line),
        "missing-SAFETY-comment not reported: {unsafety:#?}"
    );
    assert!(
        unsafety
            .iter()
            .any(|f| f.path == "fixb/src/lib.rs" && f.message.contains("forbid(unsafe_code)")),
        "missing forbid in zero-unsafe crate not reported: {unsafety:#?}"
    );
}

#[test]
fn float_det_rule_bans_hash_containers_in_kernels() {
    let findings = analyze_sources(fixture_sources(), &fixture_config());
    let float = by_rule(&findings, "float-det");
    assert_eq!(float.len(), 1, "got: {float:#?}");
    assert_eq!(float[0].path, "fixa/src/sim/kernel.rs");
    assert!(float[0].message.contains("HashMap"));
}

#[test]
fn clean_sources_produce_no_findings() {
    // A crate with forbid(unsafe_code), ordered locking, and no panics —
    // the analyzer must stay silent (rules fire on violations, not style).
    let sources = vec![(
        "fixb/src/lib.rs".to_string(),
        "#![forbid(unsafe_code)]\n\npub fn answer() -> u32 {\n    42\n}\n".to_string(),
    )];
    let mut cfg = fixture_config();
    cfg.crates.retain(|c| c.name == "fixb");
    let findings = analyze_sources(sources, &cfg);
    assert!(findings.is_empty(), "got: {findings:#?}");
}
