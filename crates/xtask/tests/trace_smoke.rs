//! The `cargo xtask ci` tracing smoke test, runnable on its own.

#[test]
fn trace_smoke_passes() {
    xtask::ci::trace_smoke().expect("trace smoke");
}
