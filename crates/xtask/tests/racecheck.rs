//! Liveness proof for the `cargo xtask racecheck` rules: the seeded
//! violations in `fixtures/lockset_shared.rs` and
//! `fixtures/latch_protocol.rs` must each produce exactly the expected
//! finding, and every negative control in the same fixtures must stay
//! silent. The acceptance bar for the static race gate: a rule that rots
//! into a no-op fails here, not in production.

use xtask::analyze::latchproto::LatchProtoCfg;
use xtask::analyze::racecheck::racecheck_sources;
use xtask::analyze::{Config, CrateCfg, Finding, LockClass};

/// The synthetic crate: one file of shared-state races, one buffer pool.
fn fixture_config() -> Config {
    let class = |name: &str, field: &str| LockClass {
        name: name.to_string(),
        file: "fixr/src/shared.rs".to_string(),
        field: field.to_string(),
    };
    Config {
        crates: vec![CrateCfg {
            name: "fixr".to_string(),
            src_dir: "fixr/src".to_string(),
            root: "fixr/src/lib.rs".to_string(),
        }],
        lock_order: vec![class("a_lock", "a_lock"), class("b_lock", "b_lock")],
        wal_allowed_files: vec![],
        wal_checkpoint_file: String::new(),
        wal_main_field: "main".to_string(),
        wal_sync_call: "sync_data".to_string(),
        codec_files: vec![],
        float_det_dirs: vec![],
        io_methods: vec![
            "read_page".to_string(),
            "write_page".to_string(),
            "sync_data".to_string(),
        ],
        lockio_exempt_files: vec![],
        atomics_allowed_files: vec![],
        worker_files: vec![],
        worker_lock_fields: vec![],
        worker_guard_fns: vec![],
        blocking_calls: vec![],
        mutmap_roots: vec![],
        // A configured always-concurrent root alongside the two
        // spawn-inferred entries; it is the only path to `solo`, which
        // must stay below the ≥2-entries bar.
        racecheck_entries: vec!["Owner::maintenance".to_string()],
        latch_proto: Some(LatchProtoCfg {
            pool_file: "fixr/src/pool.rs".to_string(),
            shard_field: "state".to_string(),
            frame_field: "data".to_string(),
            page_io: vec!["read_page".to_string(), "write_page".to_string()],
        }),
    }
}

fn findings() -> Vec<Finding> {
    racecheck_sources(
        vec![
            (
                "fixr/src/shared.rs".to_string(),
                include_str!("fixtures/lockset_shared.rs").to_string(),
            ),
            (
                "fixr/src/pool.rs".to_string(),
                include_str!("fixtures/latch_protocol.rs").to_string(),
            ),
        ],
        &fixture_config(),
    )
}

fn by_rule(rule: &str) -> Vec<Finding> {
    findings().into_iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn lockset_flags_the_field_with_no_common_lock() {
    let hits = by_rule("lockset");
    assert_eq!(
        hits.len(),
        1,
        "exactly the seeded `torn` field must be flagged: {hits:#?}"
    );
    let f = &hits[0];
    assert_eq!(f.path, "fixr/src/shared.rs");
    assert!(f.anchor.contains("torn"), "anchors the declaration: {f:#?}");
    for needle in [
        "Registry.torn",
        "{a_lock}",
        "{b_lock}",
        "2 thread entries",
        "Owner::writer_entry",
        "Owner::reader_entry",
        "witness: ",
    ] {
        assert!(
            f.message.contains(needle),
            "message must contain {needle:?}: {}",
            f.message
        );
    }
}

#[test]
fn lockset_witness_chain_crosses_the_handle_boundary() {
    // The reader reaches `torn` only through a `clone_handle()`-bound
    // local — if the graph dead-ends there, the entry count drops to 1
    // and the finding vanishes. The previous test would fail, but pin the
    // reason here explicitly.
    let hits = by_rule("lockset");
    assert!(
        hits[0].message.contains("Owner::reader_entry"),
        "the handle-bound reader must count as a reaching entry: {}",
        hits[0].message
    );
}

#[test]
fn lockset_negative_controls_stay_silent() {
    let hits = by_rule("lockset");
    for control in ["guarded", "hits", "capacity", "solo", "annotated"] {
        assert!(
            !hits.iter().any(|f| f.message.contains(control)),
            "negative control `{control}` must not be flagged: {hits:#?}"
        );
    }
}

#[test]
fn latch_protocol_rejects_each_seeded_deviation_once() {
    let hits = by_rule("latch-protocol");
    assert_eq!(
        hits.len(),
        4,
        "one finding per seeded deviation, none for the good path: {hits:#?}"
    );
    for needle in [
        "while holding the shard lock",
        "outside the frame latch",
        "inverts the shard → frame order",
        "waiters spin forever",
    ] {
        assert_eq!(
            hits.iter().filter(|f| f.message.contains(needle)).count(),
            1,
            "exactly one finding must say {needle:?}: {hits:#?}"
        );
    }
}

#[test]
fn latch_protocol_good_path_and_allow_stay_silent() {
    // `fault_in_ok` follows the protocol and `flush_sync` carries a
    // lint:allow — neither may contribute. The anchors of the four real
    // findings all sit in the violation functions.
    let hits = by_rule("latch-protocol");
    for f in &hits {
        assert!(
            !f.anchor.contains("sync_data"),
            "the allow-suppressed sync must stay silent: {f:#?}"
        );
    }
    // The shard-across-IO finding must be the seeded write-back, not a
    // misfire on the canonical path's read_page.
    let across = hits
        .iter()
        .find(|f| f.message.contains("while holding the shard lock"))
        .expect("checked above");
    assert!(
        across.anchor.contains("write_page"),
        "the shard-across-IO witness is the write-back: {across:#?}"
    );
}
