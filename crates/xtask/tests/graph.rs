//! Call-graph resolution unit tests: the qualified call shapes every flow
//! rule depends on must produce edges. `Self::m(…)`, `Type::m(…)` across
//! files, module-qualified free-function calls (`util::f(…)` — the
//! shape the lookup hot path uses for the keycode and hashing helpers),
//! and handle-bound locals (`let h = self.field.clone_handle(); h.m(…)` —
//! the shared-handle boundary the racecheck lockset walks through) each
//! get a positive test, and the deliberate under-approximations (unknown
//! `Type::m`, ambiguous module fallbacks, non-handle bindings) get
//! negative ones.

use xtask::analyze::graph::{CallGraph, FnId};
use xtask::analyze::items::FileIndex;

fn build(sources: &[(&str, &str)]) -> Vec<FileIndex> {
    sources
        .iter()
        .map(|(path, src)| FileIndex::build(path.to_string(), src.to_string()))
        .collect()
}

fn id_of(files: &[FileIndex], qual: &str) -> FnId {
    for (fi, file) in files.iter().enumerate() {
        for (ki, f) in file.functions.iter().enumerate() {
            if f.qual == qual {
                return (fi, ki);
            }
        }
    }
    panic!("no function `{qual}` in the fixture");
}

fn edges(graph: &CallGraph, from: FnId) -> Vec<FnId> {
    graph
        .callees
        .get(&from)
        .into_iter()
        .flatten()
        .map(|&(id, _)| id)
        .collect()
}

#[test]
fn self_qualified_calls_resolve_within_the_impl() {
    let files = build(&[(
        "a/src/engine.rs",
        "pub struct Engine;\n\
         impl Engine {\n\
             pub fn outer(&self) {\n\
                 Self::inner(self);\n\
             }\n\
             fn inner(&self) {}\n\
         }\n",
    )]);
    let graph = CallGraph::build(&files);
    assert_eq!(
        edges(&graph, id_of(&files, "Engine::outer")),
        vec![id_of(&files, "Engine::inner")],
        "Self::inner(..) must link to the enclosing impl's method"
    );
}

#[test]
fn type_qualified_calls_resolve_across_files() {
    let files = build(&[
        (
            "a/src/codec.rs",
            "pub struct Codec;\n\
             impl Codec {\n\
                 pub fn encode(v: u32) -> u32 {\n\
                     v + 1\n\
                 }\n\
             }\n",
        ),
        (
            "a/src/caller.rs",
            "pub fn call_it() -> u32 {\n\
                 Codec::encode(7)\n\
             }\n",
        ),
    ]);
    let graph = CallGraph::build(&files);
    assert_eq!(
        edges(&graph, id_of(&files, "call_it")),
        vec![id_of(&files, "Codec::encode")],
        "Type::method(..) must link across files"
    );
}

#[test]
fn module_qualified_free_fn_resolves_by_file_path() {
    let files = build(&[
        (
            "a/src/util.rs",
            "pub fn bump(n: &mut u64) {\n\
                 *n += 1;\n\
             }\n",
        ),
        (
            "a/src/hot.rs",
            "pub fn lookup(key: u64) -> u64 {\n\
                 let mut acc = key;\n\
                 util::bump(&mut acc);\n\
                 acc\n\
             }\n",
        ),
    ]);
    let graph = CallGraph::build(&files);
    assert_eq!(
        edges(&graph, id_of(&files, "lookup")),
        vec![id_of(&files, "bump")],
        "util::bump(..) must link to the free fn declared in …/util.rs"
    );
}

#[test]
fn module_qualified_free_fn_resolves_mod_rs_layout() {
    let files = build(&[
        (
            "a/src/keycode/mod.rs",
            "pub fn decode(input: &[u8]) -> u32 {\n\
                 input.len() as u32\n\
             }\n",
        ),
        (
            "a/src/reader.rs",
            "pub fn read(input: &[u8]) -> u32 {\n\
                 keycode::decode(input)\n\
             }\n",
        ),
    ]);
    let graph = CallGraph::build(&files);
    assert_eq!(
        edges(&graph, id_of(&files, "read")),
        vec![id_of(&files, "decode")],
        "keycode::decode(..) must link through the …/keycode/mod.rs layout"
    );
}

#[test]
fn module_qualified_fallback_requires_uniqueness() {
    // `helpers::tally` with no helpers.rs file: a lowercase module path
    // still resolves when exactly one free `tally` exists…
    let files = build(&[
        (
            "a/src/support.rs",
            "pub fn tally(n: u64) -> u64 {\n\
                 n + 1\n\
             }\n",
        ),
        (
            "a/src/caller.rs",
            "pub fn call_it() -> u64 {\n\
                 helpers::tally(7)\n\
             }\n",
        ),
    ]);
    let graph = CallGraph::build(&files);
    assert_eq!(
        edges(&graph, id_of(&files, "call_it")),
        vec![id_of(&files, "tally")],
        "a unique free fn must still resolve without a matching file"
    );

    // …but two candidate frees make the same call ambiguous: no edge,
    // rather than wiring the graph to both.
    let files = build(&[
        (
            "a/src/support.rs",
            "pub fn tally(n: u64) -> u64 {\n\
                 n + 1\n\
             }\n",
        ),
        (
            "a/src/other.rs",
            "pub fn tally(n: u64) -> u64 {\n\
                 n + 2\n\
             }\n",
        ),
        (
            "a/src/caller.rs",
            "pub fn call_it() -> u64 {\n\
                 helpers::tally(7)\n\
             }\n",
        ),
    ]);
    let graph = CallGraph::build(&files);
    assert!(
        edges(&graph, id_of(&files, "call_it")).is_empty(),
        "an ambiguous module-qualified call must stay unresolved"
    );
}

#[test]
fn handle_bound_locals_resolve_through_the_field_type() {
    // `let h = self.field.clone_handle(); h.m(…)` — the PR 7 shared-handle
    // boundary. The alias must dispatch on the field's base type or the
    // lockset propagation dead-ends at every reader clone.
    let files = build(&[
        (
            "a/src/owner.rs",
            "pub struct Owner {\n\
                 registry: Arc<Registry>,\n\
             }\n\
             impl Owner {\n\
                 pub fn run(&self) {\n\
                     let h = self.registry.clone_handle();\n\
                     h.snapshot();\n\
                 }\n\
             }\n",
        ),
        (
            "a/src/registry.rs",
            "pub struct Registry;\n\
             impl Registry {\n\
                 pub fn clone_handle(&self) -> Arc<Registry> {\n\
                     todo!()\n\
                 }\n\
                 pub fn snapshot(&self) -> u64 {\n\
                     7\n\
                 }\n\
             }\n",
        ),
    ]);
    let graph = CallGraph::build(&files);
    let run_edges = edges(&graph, id_of(&files, "Owner::run"));
    assert!(
        run_edges.contains(&id_of(&files, "Registry::snapshot")),
        "a clone_handle-bound local must dispatch on the field's base type"
    );
}

#[test]
fn self_handle_bound_locals_resolve_within_the_impl() {
    // `let view = self.replicate(); view.m(…)` — same aliasing, receiver
    // is the enclosing impl type itself.
    let files = build(&[(
        "a/src/registry.rs",
        "pub struct Registry;\n\
         impl Registry {\n\
             pub fn reader(&self) {\n\
                 let view = self.replicate();\n\
                 view.snapshot();\n\
             }\n\
             pub fn replicate(&self) -> Registry {\n\
                 todo!()\n\
             }\n\
             pub fn snapshot(&self) -> u64 {\n\
                 7\n\
             }\n\
         }\n",
    )]);
    let graph = CallGraph::build(&files);
    let reader_edges = edges(&graph, id_of(&files, "Registry::reader"));
    assert!(
        reader_edges.contains(&id_of(&files, "Registry::snapshot")),
        "a replicate-bound local must dispatch on the enclosing impl type"
    );
}

#[test]
fn non_handle_bound_locals_stay_ambiguous() {
    // The same `h.m(…)` shape bound from a *non*-handle call falls back to
    // bare-name resolution, and with two impls of `probe` in scope that is
    // ambiguous: no edge, rather than guessing the field's type.
    let files = build(&[
        (
            "a/src/owner.rs",
            "pub struct Owner {\n\
                 registry: Arc<Registry>,\n\
             }\n\
             impl Owner {\n\
                 pub fn run(&self) {\n\
                     let h = self.registry.fresh_view();\n\
                     h.probe();\n\
                 }\n\
             }\n",
        ),
        (
            "a/src/registry.rs",
            "pub struct Registry;\n\
             impl Registry {\n\
                 pub fn fresh_view(&self) -> Registry {\n\
                     todo!()\n\
                 }\n\
                 pub fn probe(&self) -> u64 {\n\
                     7\n\
                 }\n\
             }\n",
        ),
        (
            "a/src/gauge.rs",
            "pub struct Gauge;\n\
             impl Gauge {\n\
                 pub fn probe(&self) -> u64 {\n\
                     9\n\
                 }\n\
             }\n",
        ),
    ]);
    let graph = CallGraph::build(&files);
    let run_edges = edges(&graph, id_of(&files, "Owner::run"));
    assert!(
        !run_edges.contains(&id_of(&files, "Registry::probe"))
            && !run_edges.contains(&id_of(&files, "Gauge::probe")),
        "only HANDLE_FNS bindings may alias the receiver type"
    );
}

#[test]
fn unknown_uppercase_qualified_call_produces_no_edge() {
    // `Mystery::poke(…)` with no `impl Mystery` anywhere: an uppercase
    // path segment is a type, and guessing a free fn would wire rules to
    // unrelated code. Under-approximation is the contract.
    let files = build(&[
        (
            "a/src/free.rs",
            "pub fn poke(n: u64) -> u64 {\n\
                 n\n\
             }\n",
        ),
        (
            "a/src/caller.rs",
            "pub fn call_it() -> u64 {\n\
                 Mystery::poke(7)\n\
             }\n",
        ),
    ]);
    let graph = CallGraph::build(&files);
    assert!(
        edges(&graph, id_of(&files, "call_it")).is_empty(),
        "Type::m with no impl must not fall back to unrelated free fns"
    );
}
