//! Seeded-violation fixtures for the line lints, driven through
//! [`xtask::lint::lint_source_for_tests`] so no real tree is touched.

use xtask::lint::lint_source_for_tests;

const RELAXED_COUNTER: &str = r#"
use std::sync::atomic::{AtomicU64, Ordering};
static HITS: AtomicU64 = AtomicU64::new(0);
pub fn bump() {
    HITS.fetch_add(1, Ordering::Relaxed);
}
"#;

#[test]
fn relaxed_atomic_fires_outside_allowed_modules() {
    let findings = lint_source_for_tests("fm-core", "crates/core/src/matcher.rs", RELAXED_COUNTER);
    let relaxed: Vec<_> = findings
        .iter()
        .filter(|(rule, _, _)| rule == "relaxed-atomic")
        .collect();
    assert_eq!(relaxed.len(), 1, "expected one finding, got {findings:?}");
    assert_eq!(relaxed[0].1, 5, "should anchor on the fetch_add line");
    assert!(
        relaxed[0].2.contains("crates/core/src/metrics.rs")
            && relaxed[0].2.contains("crates/core/src/tracing.rs")
            && relaxed[0].2.contains("crates/core/src/telemetry.rs"),
        "message should name every allowed module: {}",
        relaxed[0].2
    );
}

#[test]
fn relaxed_atomic_is_silent_in_metrics_and_tracing() {
    for home in [
        "crates/core/src/metrics.rs",
        "crates/core/src/tracing.rs",
        "crates/core/src/telemetry.rs",
    ] {
        let findings = lint_source_for_tests("fm-core", home, RELAXED_COUNTER);
        assert!(
            findings.iter().all(|(rule, _, _)| rule != "relaxed-atomic"),
            "{home} is an allowed module, got {findings:?}"
        );
    }
}

#[test]
fn relaxed_atomic_is_scoped_to_fm_core() {
    let findings = lint_source_for_tests("fm-store", "crates/store/src/pool.rs", RELAXED_COUNTER);
    assert!(
        findings.iter().all(|(rule, _, _)| rule != "relaxed-atomic"),
        "rule only applies to fm-core, got {findings:?}"
    );
}

#[test]
fn relaxed_atomic_respects_line_allow() {
    let allowed = RELAXED_COUNTER.replace(
        "HITS.fetch_add(1, Ordering::Relaxed);",
        "// lint:allow(relaxed-atomic): independent counter, never read back\n    \
         HITS.fetch_add(1, Ordering::Relaxed);",
    );
    let findings = lint_source_for_tests("fm-core", "crates/core/src/matcher.rs", &allowed);
    assert!(
        findings.iter().all(|(rule, _, _)| rule != "relaxed-atomic"),
        "lint:allow should suppress, got {findings:?}"
    );
}

#[test]
fn server_crate_is_held_to_library_hygiene() {
    // fm-server joined LIB_CRATES with the serving layer: prints and
    // unwraps in its src/ must fire like any other library crate...
    let text = r#"
pub fn log_request(n: u64) {
    println!("request {n}");
    let v: Option<u32> = None;
    v.unwrap();
}
"#;
    let findings = lint_source_for_tests("fm-server", "crates/server/src/server.rs", text);
    assert!(
        findings.iter().any(|(rule, _, _)| rule == "print"),
        "print should fire in fm-server src, got {findings:?}"
    );
    assert!(
        findings.iter().any(|(rule, _, _)| rule == "unwrap"),
        "unwrap should fire in fm-server src, got {findings:?}"
    );
    // ...while relaxed-atomic stays scoped to fm-core (the serving
    // counters are independent monotonic totals, like a registry).
    let findings =
        lint_source_for_tests("fm-server", "crates/server/src/server.rs", RELAXED_COUNTER);
    assert!(
        findings.iter().all(|(rule, _, _)| rule != "relaxed-atomic"),
        "relaxed-atomic only applies to fm-core, got {findings:?}"
    );
}

#[test]
fn other_line_lints_still_fire_through_the_fixture_entry() {
    let text = r#"
pub fn f(v: &[u32]) -> u32 {
    *v.first().unwrap()
}
"#;
    let findings = lint_source_for_tests("fm-core", "crates/core/src/matcher.rs", text);
    assert!(
        findings
            .iter()
            .any(|(rule, line, _)| rule == "unwrap" && *line == 3),
        "got {findings:?}"
    );
}
