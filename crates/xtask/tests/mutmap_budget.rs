//! No-stale-budget gate: `xtask-mutmap.budget` must equal the *live*
//! mut-map count on the real tree, exactly.
//!
//! The CI gate (`cargo xtask ci` → `mutmap_gate`) only fails when the
//! live count *exceeds* the budget — that stops growth, but lets the
//! budget silently rot above reality when a refactor retires sites,
//! and a rotted ceiling hides the next regression inside the slack.
//! This test closes that gap: any drift in either direction means the
//! budget file must be edited (with its ratchet history) in the same
//! change that moved the count.

use xtask::analyze::mutmap_report;

fn read_budget() -> usize {
    let path = xtask::workspace_root().join("xtask-mutmap.budget");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
        .lines()
        .find(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .expect("xtask-mutmap.budget has no budget line")
        .trim()
        .parse()
        .expect("xtask-mutmap.budget is not a number")
}

#[test]
fn budget_file_matches_live_mut_map_exactly() {
    let report = mutmap_report();
    assert!(
        report.missing_roots.is_empty(),
        "mut-map roots not found: {} — fix analyze::project_config",
        report.missing_roots.join(", ")
    );
    let live = report.mutation_sites();
    let budget = read_budget();
    assert_eq!(
        live, budget,
        "xtask-mutmap.budget ({budget}) does not match the live mut-map \
         count ({live}); run `cargo xtask analyze --mut-map` and set the \
         budget to the real number in the same change"
    );
}
