//! Seeded `latch-protocol` violations with negative controls. Lexed by
//! the analyzer, never compiled.
//!
//! `MiniPool` models the sharded buffer pool: `state` is the shard lock,
//! `data` the per-frame latch, `pager` the device. One function per
//! protocol deviation, plus the canonical miss path and an allow-
//! suppressed startup helper as negative controls.

pub struct MiniPool {
    state: Mutex<ShardState>,
    data: RwLock<PageBuf>,
    pager: Box<dyn Pager>,
}

impl MiniPool {
    /// Negative control: the canonical miss protocol — claim under the
    /// shard lock, latch the frame, release the shard, stage the IO under
    /// only the latch, drop it, re-lock the shard to publish.
    pub fn fault_in_ok(&self, id: u32) {
        let mut st = self.state.lock();
        st.claim(id);
        let mut data = self.data.write();
        drop(st);
        self.pager.read_page(id, &mut data);
        drop(data);
        let mut st = self.state.lock();
        st.publish(id);
    }

    /// VIOLATION: the shard lock is still held across the write-back IO —
    /// every same-shard hit serializes behind the disk.
    pub fn writeback_under_shard_lock(&self, id: u32) {
        let st = self.state.lock();
        let data = self.data.write();
        self.pager.write_page(id, &data);
        drop(data);
        drop(st);
        let st2 = self.state.lock();
        st2.publish(id);
    }

    /// VIOLATION: fault-in with no frame latch — concurrent readers of
    /// the frame can observe torn bytes.
    pub fn fault_in_unlatched(&self, id: u32) {
        let mut st = self.state.lock();
        st.claim(id);
        drop(st);
        let mut buf = scratch();
        self.pager.read_page(id, &mut buf);
        let mut st = self.state.lock();
        st.publish(id);
    }

    /// VIOLATION: publishes while the frame latch is still held —
    /// inverts the shard → frame order against a faulting peer.
    pub fn publish_under_latch(&self, id: u32) {
        let mut st = self.state.lock();
        st.claim(id);
        let mut data = self.data.write();
        drop(st);
        self.pager.read_page(id, &mut data);
        let mut st = self.state.lock();
        st.publish(id);
        drop(data);
    }

    /// VIOLATION: the loading mapping is never published or rolled back —
    /// waiters spin on `loading` forever.
    pub fn load_without_publish(&self, id: u32) {
        let mut st = self.state.lock();
        st.claim(id);
        let mut data = self.data.write();
        drop(st);
        self.pager.read_page(id, &mut data);
    }

    /// Negative control: a justified deviation stays silent.
    pub fn flush_sync(&self) {
        let st = self.state.lock();
        st.quiesce();
        // lint:allow(latch-protocol): startup-only, no concurrent readers exist yet
        self.pager.sync_data();
    }
}
