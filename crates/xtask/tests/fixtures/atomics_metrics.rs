//! Negative control for atomics-ordering's config allowlist: a Relaxed
//! flag operation in a file listed in `atomics_allowed_files` (modelling
//! the metrics/tracing modules) must stay silent. Never compiled.

use std::sync::atomic::{AtomicBool, Ordering};

pub struct Gauge {
    visible: AtomicBool,
}

impl Gauge {
    /// Would be a violation anywhere else: Relaxed store on a flag.
    pub fn hide(&self) {
        self.visible.store(false, Ordering::Relaxed);
    }
}
