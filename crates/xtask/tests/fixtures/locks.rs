//! Seeded lock-order violations. The fixture config declares the canonical
//! order `alpha < beta` with both classes living in this file. Never
//! compiled — lexed and analyzed by `tests/analyze.rs`.

use parking_lot::Mutex;

pub struct Engine {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Engine {
    /// Legal: alpha then beta, in canonical order.
    pub fn balanced(&self) -> u32 {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        *a + *b
    }

    /// VIOLATION (direct edge): acquires alpha while holding beta.
    pub fn inverted(&self) -> u32 {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        *a + *b
    }

    /// VIOLATION (self-deadlock): re-acquires alpha while holding it.
    pub fn reentrant(&self) -> u32 {
        let a = self.alpha.lock();
        let again = self.alpha.lock();
        *a + *again
    }

    /// Acquires alpha — the seed the call graph must propagate.
    fn touch_alpha(&self) -> u32 {
        *self.alpha.lock()
    }

    /// VIOLATION (propagated edge): holds beta while calling a function
    /// that may acquire alpha.
    pub fn indirect(&self) -> u32 {
        let b = self.beta.lock();
        *b + self.touch_alpha()
    }

    /// Legal: the guard is dropped before the call.
    pub fn released(&self) -> u32 {
        let b = self.beta.lock();
        let snapshot = *b;
        drop(b);
        snapshot + self.touch_alpha()
    }

    /// Legal: block scoping releases beta before alpha is taken.
    pub fn scoped(&self) -> u32 {
        let first = {
            let b = self.beta.lock();
            *b
        };
        first + *self.alpha.lock()
    }
}
