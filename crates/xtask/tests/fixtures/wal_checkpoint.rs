//! Seeded wal-write checkpoint-ordering violation: the main file is
//! written before the WAL is made durable, so a crash between the two
//! leaves the main file ahead of the log. Never compiled.

use parking_lot::Mutex;

pub struct CheckpointPager {
    wal: Mutex<WalState>,
    main: FilePager,
}

impl CheckpointPager {
    /// VIOLATION: copies pages into the main file before `sync_data`.
    pub fn sync(&self) -> Result<()> {
        let wal = self.wal.lock();
        for (page, payload) in wal.resident_pages() {
            self.main.write_page(page, payload)?;
        }
        wal.file.sync_data()?;
        Ok(())
    }
}
