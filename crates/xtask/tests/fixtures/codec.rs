//! Seeded panic-path violation: a plain-`pub` fn that transitively reaches
//! `unwrap` and slice indexing through a private helper. The fixture config
//! lists this file under `codec_files`, so indexing is a panic fact too.
//! Never compiled.

pub struct Codec;

impl Codec {
    /// Both facts live here: indexing into the buffer and an `unwrap`.
    fn decode_inner(&self, buf: &[u8]) -> u32 {
        u32::from_le_bytes(buf[0..4].try_into().unwrap())
    }

    /// VIOLATION: pub API that may panic via the helper.
    pub fn decode(&self, buf: &[u8]) -> u32 {
        self.decode_inner(buf)
    }

    // lint:allow(panic-path): fixture — contract documents the panic
    pub fn decode_checked(&self, buf: &[u8]) -> u32 {
        self.decode_inner(buf)
    }
}
