//! Seeded atomics-ordering violations: `Relaxed` on an `AtomicBool` flag
//! field. The `AtomicU64` counter is the deliberate negative control —
//! monotonic counters are exactly where `Relaxed` is right, and the rule
//! must not flag them. Never compiled — lexed and analyzed by
//! `tests/analyze.rs`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub struct Flags {
    running: AtomicBool,
    total: AtomicU64,
}

impl Flags {
    /// VIOLATION: Relaxed store on a flag — readers can see the flag
    /// without the writes it publishes.
    pub fn stop(&self) {
        self.running.store(false, Ordering::Relaxed);
    }

    /// VIOLATION: Relaxed load on the consuming side.
    pub fn is_running_racy(&self) -> bool {
        self.running.load(Ordering::Relaxed)
    }

    /// Legal: Release on the store side.
    pub fn stop_published(&self) {
        self.running.store(false, Ordering::Release);
    }

    /// Legal: Acquire on the load side.
    pub fn is_running(&self) -> bool {
        self.running.load(Ordering::Acquire)
    }

    /// Legal: a monotonic counter wants Relaxed; only flag (AtomicBool)
    /// fields are in scope.
    pub fn bump(&self) {
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Vetted: the justified shape the allow marker suppresses.
    pub fn stop_vetted(&self) {
        // lint:allow(atomics-ordering): seeded vetted site
        self.running.store(false, Ordering::Relaxed);
    }
}
