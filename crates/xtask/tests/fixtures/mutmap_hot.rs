//! Mut-map fixture: a hot path whose root (`Hot::lookup`) reaches
//! mutation through the three call shapes the resolver must handle —
//! a module-qualified free fn (`util::bump`), a fully-qualified `Self::`
//! method, and a plain `self.` method. `rebuild` is the negative
//! control: mutating but unreachable from the root, so it must not
//! appear in the map. Never compiled — lexed and analyzed by
//! `tests/analyze.rs`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub struct Hot {
    cache: Mutex<Vec<u64>>,
    hits: AtomicU64,
}

impl Hot {
    /// The mut-map root.
    pub fn lookup(&self, key: u64) -> u64 {
        let mut acc = key;
        util::bump(&mut acc);
        Self::record(self, acc);
        self.probe(acc)
    }

    /// Mutating: takes the cache lock and bumps an atomic counter.
    fn record(&self, key: u64) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        let mut c = match self.cache.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        c.push(key);
    }

    /// Clean: reachable but touches nothing shared.
    fn probe(&self, key: u64) -> u64 {
        key.wrapping_mul(3)
    }

    /// Mutating but UNREACHABLE from the root — must not be listed.
    pub fn rebuild(&mut self) {
        self.hits.store(0, Ordering::Relaxed);
    }
}
