//! Seeded float-det violation: hash-ordered f64 accumulation inside a
//! similarity-kernel directory (`fixa/src/sim` in the fixture config).
//! Iteration order of a HashMap varies run to run, and float addition is
//! not associative, so the sum is nondeterministic. Never compiled.

/// VIOLATION: HashMap in a float kernel.
pub fn accumulate(weights: &std::collections::HashMap<String, f64>) -> f64 {
    weights.values().sum()
}
