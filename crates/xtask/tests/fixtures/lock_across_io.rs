//! Seeded lock-across-io violations. The fixture config declares the
//! `gamma` class in this file and `read_page`/`sync_data` as IO methods.
//! Never compiled — lexed and analyzed by `tests/analyze.rs`.

use parking_lot::Mutex;

pub struct Cache {
    gamma: Mutex<u32>,
    pager: Pager,
}

impl Cache {
    /// VIOLATION: device read while the gamma guard is live.
    pub fn fault_in(&self, id: u32, buf: &mut [u8]) -> Result<(), Error> {
        let g = self.gamma.lock();
        self.pager.read_page(id, buf)?;
        drop(g);
        Ok(())
    }

    /// VIOLATION: fsync while the gamma guard is live.
    pub fn sync_under_guard(&self) -> Result<(), Error> {
        let g = self.gamma.lock();
        self.pager.sync_data()?;
        drop(g);
        Ok(())
    }

    /// Legal: the guard is dropped before the IO happens.
    pub fn staged(&self, id: u32, buf: &mut [u8]) -> Result<(), Error> {
        let g = self.gamma.lock();
        let snapshot = *g;
        drop(g);
        self.pager.read_page(snapshot + id, buf)
    }

    /// Legal: block scoping releases gamma before the IO.
    pub fn scoped(&self, id: u32, buf: &mut [u8]) -> Result<(), Error> {
        {
            let _g = self.gamma.lock();
        }
        self.pager.read_page(id, buf)
    }

    /// Vetted: the justified shape the allow marker suppresses.
    pub fn vetted(&self, id: u32, buf: &mut [u8]) -> Result<(), Error> {
        let _g = self.gamma.lock();
        // lint:allow(lock-across-io): seeded vetted site
        self.pager.read_page(id, buf)
    }
}
