//! Free-function module for the mut-map fixture: `hot.rs` calls
//! `util::bump(&mut …)` module-qualified, so the resolver must link the
//! call to this file for the `mut-param` site to appear in the map.
//! Never compiled — lexed and analyzed by `tests/analyze.rs`.

/// Mutates through an exclusive borrow — a `mut-param` mut-map site.
pub fn bump(n: &mut u64) {
    *n = n.wrapping_add(1);
}

/// Clean free function: reachable code without shared state stays out
/// of the map.
pub fn fold(n: u64) -> u64 {
    n ^ (n >> 7)
}
