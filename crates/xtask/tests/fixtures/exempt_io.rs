//! Negative control for lock-across-io's config exemption: this file
//! declares the `delta` class and holds its guard across device IO — the
//! same shape the rule flags — but the fixture config lists the file in
//! `lockio_exempt_files` (modelling the WAL layer, whose lock *is* the
//! IO serializer), so it must stay silent. Never compiled.

use parking_lot::Mutex;

pub struct Journal {
    delta: Mutex<u64>,
    pager: Pager,
}

impl Journal {
    /// Would be a violation anywhere else: IO under the delta guard.
    pub fn append(&self, id: u32, buf: &mut [u8]) -> Result<(), Error> {
        let g = self.delta.lock();
        self.pager.read_page(id, buf)?;
        self.pager.sync_data()?;
        drop(g);
        Ok(())
    }
}
