//! Seeded blocking-in-worker violations. The fixture config lists this
//! file in `worker_files`, `state` in `worker_lock_fields`, `lock_state`
//! in `worker_guard_fns`, and `sleep`/`recv`/`wait`/`join` as blocking
//! verbs. Never compiled — lexed and analyzed by `tests/analyze.rs`.

use std::sync::{Condvar, Mutex, MutexGuard};

pub struct Worker {
    state: Mutex<Vec<u32>>,
    ready: Condvar,
}

/// Poison-recovering guard helper — the acquisition shape the rule must
/// track in addition to direct `.lock()` calls.
fn lock_state(state: &Mutex<Vec<u32>>) -> MutexGuard<'_, Vec<u32>> {
    match state.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl Worker {
    /// VIOLATION: sleeps while holding the guard from the helper.
    pub fn drain_slowly(&self) {
        let g = lock_state(&self.state);
        sleep(10);
        drop(g);
    }

    /// VIOLATION: blocking recv while holding a direct `.lock()` guard.
    pub fn pull(&self, rx: &Receiver) {
        let g = self.state.lock();
        let _ = rx.recv();
        drop(g);
    }

    /// Legal: the guard is dropped before blocking.
    pub fn drain_then_sleep(&self) {
        let g = lock_state(&self.state);
        drop(g);
        sleep(10);
    }

    /// Legal: block scoping releases the guard before blocking.
    pub fn scoped(&self, rx: &Receiver) {
        {
            let _g = lock_state(&self.state);
        }
        let _ = rx.recv();
    }

    /// Vetted: Condvar::wait atomically releases the handed-in mutex.
    pub fn wait_ready(&self) {
        let g = lock_state(&self.state);
        // lint:allow(blocking-in-worker): wait releases the mutex
        let _g = self.ready.wait(g);
    }
}
