//! Seeded wal-write confinement violation: a page write from outside the
//! WAL-aware layer (this file is not in `wal_allowed_files`). Never
//! compiled.

pub struct Sneaky {
    pager: Box<dyn Pager>,
}

impl Sneaky {
    /// VIOLATION: writes a page without going through the WAL layer.
    pub fn poke(&self, id: PageId, buf: &[u8]) -> Result<()> {
        self.pager.write_page(id, buf)
    }
}
