//! Crate root of the synthetic `fixa` crate: one documented unsafe block
//! (the control) and one undocumented (the seeded unsafe-audit violation).
//! Because the crate contains unsafe code, no `#![forbid(unsafe_code)]` is
//! demanded of it. Never compiled.

pub fn read_raw(ptr: *const u8) -> u8 {
    // SAFETY: caller guarantees `ptr` is valid for reads (fixture control).
    unsafe { *ptr }
}

/// VIOLATION: unsafe block without a SAFETY comment.
pub fn read_raw_undocumented(ptr: *const u8) -> u8 {
    unsafe { *ptr }
}
