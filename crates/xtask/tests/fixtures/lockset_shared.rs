//! Seeded `lockset` violations with negative controls. Lexed by the
//! analyzer, never compiled — the point is the token shapes, not the
//! borrow checker.
//!
//! `Registry` is shared (an `Arc<Registry>` field marks it), two threads
//! are spawned over it, and its fields exercise every verdict:
//!
//! * `torn`       — written under `a_lock`, read under `b_lock`: VIOLATION.
//! * `guarded`    — every access (including one through a lock-free helper
//!                  that is only *called* with `a_lock` held) holds
//!                  `a_lock`: silent.
//! * `hits`       — atomic, its own synchronization: silent.
//! * `capacity`   — disjoint locksets but read-only: silent.
//! * `solo`       — disjoint locksets but reachable from exactly one
//!                  thread entry: silent.
//! * `annotated`  — same races as `torn`, justified with a lint:allow:
//!                  silent.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub struct Registry {
    a_lock: Mutex<()>,
    b_lock: Mutex<()>,
    torn: u64,
    guarded: u64,
    hits: AtomicU64,
    capacity: u64,
    solo: u64,
    // lint:allow(lockset): epoch handoff — writers quiesce before readers attach
    annotated: u64,
}

pub struct Owner {
    registry: Arc<Registry>,
}

impl Owner {
    pub fn start(&self) {
        std::thread::spawn(move || self.writer_entry());
        std::thread::spawn(move || self.reader_entry());
    }

    fn writer_entry(&self) {
        self.registry.bump();
    }

    fn reader_entry(&self) {
        let h = self.registry.clone_handle();
        h.snapshot();
        h.total();
    }

    /// Named in `racecheck_entries` by the test config — a configured
    /// entry, not a spawn-inferred one — and the only path to `solo`.
    pub fn maintenance(&self) {
        self.registry.mixed_solo();
    }
}

impl Registry {
    pub fn clone_handle(&self) -> Arc<Registry> {
        todo!()
    }

    pub fn bump(&self) {
        let _g = self.a_lock.lock();
        self.torn = self.torn + 1;
        self.guarded = self.guarded + 1;
        self.annotated = 0;
        self.hits.fetch_add(1, Ordering::Relaxed);
        let _c = self.capacity;
        self.raw_touch();
    }

    pub fn snapshot(&self) -> u64 {
        let _g = self.b_lock.lock();
        let _a = self.annotated;
        let _c = self.capacity;
        let _h = self.hits.load(Ordering::Relaxed);
        self.torn
    }

    pub fn total(&self) -> u64 {
        let _g = self.a_lock.lock();
        self.guarded
    }

    /// No intraprocedural lock — but its single call site holds `a_lock`,
    /// so the narrowing fixed point carries `{a_lock}` in on entry.
    fn raw_touch(&self) {
        self.guarded = 0;
    }

    pub fn mixed_solo(&self) -> u64 {
        let g = self.a_lock.lock();
        self.solo = 1;
        drop(g);
        let _h = self.b_lock.lock();
        self.solo
    }
}
