//! Crate root of the synthetic `fixb` crate: nothing unsafe anywhere, yet
//! the root is missing the crate-level attribute that would lock that in —
//! the seeded unsafe-audit violation for the zero-unsafe-crate rule.
//! Never compiled.

pub fn answer() -> u32 {
    42
}
