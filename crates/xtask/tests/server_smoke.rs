//! The `cargo xtask ci` serving smoke test, runnable on its own.

#[test]
fn server_smoke_passes() {
    xtask::ci::server_smoke().expect("server smoke");
}
