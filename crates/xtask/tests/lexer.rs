//! Lexer unit tests (the tricky token shapes), the lossless round-trip
//! property, and the satellite parsing/fingerprinting helpers: multi-rule
//! `lint:allow(…)` and content-fingerprinted baselines.

use proptest::prelude::*;

use xtask::analyze::lexer::{lex, Token, TokenKind};
use xtask::baseline;
use xtask::lint::allows;

fn texts(src: &str) -> Vec<(TokenKind, &str)> {
    lex(src)
        .iter()
        .map(|t: &Token| (t.kind, &src[t.start..t.end]))
        .collect()
}

/// Code tokens only (no whitespace/comments), as text.
fn code(src: &str) -> Vec<&str> {
    texts(src)
        .into_iter()
        .filter(|(k, _)| {
            !matches!(
                k,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .map(|(_, s)| s)
        .collect()
}

fn roundtrip(src: &str) -> String {
    lex(src).iter().map(|t| &src[t.start..t.end]).collect()
}

#[test]
fn raw_strings_lex_as_single_tokens() {
    let src = r####"let s = r#"quote " inside"#; let t = r##"nested "# inside"##;"####;
    let toks = texts(src);
    let strs: Vec<&str> = toks
        .iter()
        .filter(|(k, _)| *k == TokenKind::Str)
        .map(|&(_, s)| s)
        .collect();
    assert_eq!(
        strs,
        [r##"r#"quote " inside"#"##, r###"r##"nested "# inside"##"###]
    );
    assert_eq!(roundtrip(src), src);
}

#[test]
fn byte_and_raw_byte_strings() {
    let src = r###"let a = b"bytes"; let b = br#"raw "bytes""#;"###;
    let strs: Vec<&str> = texts(src)
        .into_iter()
        .filter(|(k, _)| *k == TokenKind::Str)
        .map(|(_, s)| s)
        .collect();
    assert_eq!(strs, [r#"b"bytes""#, r##"br#"raw "bytes""#"##]);
    assert_eq!(roundtrip(src), src);
}

#[test]
fn nested_block_comments_close_at_matching_depth() {
    let src = "a /* outer /* inner */ still comment */ b";
    let toks = texts(src);
    let comments: Vec<&str> = toks
        .iter()
        .filter(|(k, _)| *k == TokenKind::BlockComment)
        .map(|&(_, s)| s)
        .collect();
    assert_eq!(comments, ["/* outer /* inner */ still comment */"]);
    assert_eq!(code(src), ["a", "b"]);
}

#[test]
fn lifetimes_are_not_char_literals() {
    let src = "fn f<'a>(x: &'a str) -> char { 'a' }";
    let toks = texts(src);
    let lifetimes: Vec<&str> = toks
        .iter()
        .filter(|(k, _)| *k == TokenKind::Lifetime)
        .map(|&(_, s)| s)
        .collect();
    let chars: Vec<&str> = toks
        .iter()
        .filter(|(k, _)| *k == TokenKind::Char)
        .map(|&(_, s)| s)
        .collect();
    assert_eq!(lifetimes, ["'a", "'a"]);
    assert_eq!(chars, ["'a'"]);
}

#[test]
fn tricky_char_literals() {
    let src = r"let a = '\''; let b = '\u{1F600}'; let c = b'x'; let s = 'static;";
    let toks = texts(src);
    let chars: Vec<&str> = toks
        .iter()
        .filter(|(k, _)| *k == TokenKind::Char)
        .map(|&(_, s)| s)
        .collect();
    assert_eq!(chars, [r"'\''", r"'\u{1F600}'", "b'x'"]);
    assert!(toks
        .iter()
        .any(|&(k, s)| k == TokenKind::Lifetime && s == "'static"));
}

#[test]
fn numbers_with_suffixes_and_exponents() {
    let src = "let x = 0xFFu8 + 1.5e-3 + 1_000_000 + 0b1010i64;";
    let nums: Vec<&str> = texts(src)
        .into_iter()
        .filter(|(k, _)| *k == TokenKind::Num)
        .map(|(_, s)| s)
        .collect();
    assert_eq!(nums, ["0xFFu8", "1.5e-3", "1_000_000", "0b1010i64"]);
}

#[test]
fn doc_comments_are_comments() {
    let src = "/// outer doc\n//! inner doc\n/** block doc */ fn f() {}";
    assert_eq!(code(src), ["fn", "f", "(", ")", "{", "}"]);
    assert_eq!(roundtrip(src), src);
}

#[test]
fn roundtrip_of_unterminated_forms_is_still_lossless() {
    // The lexer must be total: broken input lexes to something, losslessly.
    for src in [
        "let s = \"unterminated",
        "let s = r#\"unterminated",
        "/* unterminated",
        "let c = '",
        "let c = '\\",
    ] {
        assert_eq!(roundtrip(src), src, "lossy lex of {src:?}");
    }
}

proptest! {
    /// Concatenating every token's text reproduces the input byte-for-byte,
    /// for arbitrary (including non-Rust) input.
    #[test]
    fn lex_is_lossless(src in "\\PC*") {
        prop_assert_eq!(roundtrip(&src), src);
    }

    /// Same property over input shaped like the token soup the lexer
    /// actually has to disambiguate (quotes, slashes, braces, lifetimes).
    #[test]
    fn lex_is_lossless_on_token_soup(parts in proptest::collection::vec(
        prop_oneof![
            Just("r#\"x\"#".to_string()),
            Just("'a".to_string()),
            Just("'a'".to_string()),
            Just("/*".to_string()),
            Just("*/".to_string()),
            Just("//".to_string()),
            Just("\n".to_string()),
            Just("\"".to_string()),
            Just("b'".to_string()),
            Just("1e5".to_string()),
            Just("r#match".to_string()),
            "[a-z{}();.]{0,4}".prop_map(|s| s),
        ],
        0..16,
    )) {
        let src: String = parts.concat();
        prop_assert_eq!(roundtrip(&src), src.clone());
        // Token spans must also tile the input: contiguous, in order.
        let mut pos = 0;
        for t in lex(&src) {
            prop_assert_eq!(t.start, pos);
            prop_assert!(t.end > t.start);
            pos = t.end;
        }
        prop_assert_eq!(pos, src.len());
    }
}

#[test]
fn allows_parses_multiple_rules_and_cr() {
    let line = "let x = v[0]; // lint:allow(unwrap, panic-path): fixture\r";
    assert!(allows(line, "unwrap"));
    assert!(allows(line, "panic-path"));
    assert!(!allows(line, "expect"));

    // Whitespace-heavy variant.
    let line = "foo(); // lint:allow( lock-order ,  wal-write ): vetted";
    assert!(allows(line, "lock-order"));
    assert!(allows(line, "wal-write"));
    assert!(!allows(line, "lock"));

    // Two allow markers on one line.
    let line = "x(); // lint:allow(a): one // lint:allow(b): two";
    assert!(allows(line, "a"));
    assert!(allows(line, "b"));

    // Unclosed paren must not panic and must still match the listed rule.
    let line = "y(); // lint:allow(unwrap";
    assert!(allows(line, "unwrap"));
    assert!(!allows("no marker here", "unwrap"));
}

#[test]
fn baseline_fingerprints_distinguish_occurrences_not_lines() {
    let a = baseline::fingerprint("rule", "src/a.rs", "x.unwrap()", 0);
    let b = baseline::fingerprint("rule", "src/a.rs", "x.unwrap()", 1);
    let c = baseline::fingerprint("rule", "src/b.rs", "x.unwrap()", 0);
    assert_ne!(a, b, "occurrence must disambiguate identical anchors");
    assert_ne!(a, c, "path is part of the identity");
    // Same content again → same fingerprint (line moves don't matter).
    assert_eq!(
        a,
        baseline::fingerprint("rule", "src/a.rs", "x.unwrap()", 0)
    );
}

#[test]
fn baseline_rename_invalidates_entries_but_line_moves_do_not() {
    // Freeze one finding in `src/old.rs`, then model two refactors: the
    // offending line moving within the file (baseline must keep matching,
    // since line numbers are not part of the identity) and the file being
    // renamed/moved (the path IS part of the identity, so the entry must
    // go stale and the finding resurface as new).
    let dir = std::env::temp_dir();
    let path = dir.join(format!("xtask-test-rename-{}.baseline", std::process::id()));
    let anchor = "let v = x.unwrap();";
    let frozen = baseline::fingerprint("unwrap", "src/old.rs", anchor, 0);
    baseline::write(
        &path,
        "lint",
        &[(
            "unwrap".to_string(),
            frozen,
            "src/old.rs".to_string(),
            anchor.to_string(),
        )],
    )
    .expect("write baseline");
    let base = baseline::load(&path);
    std::fs::remove_file(&path).ok();
    assert!(!base.legacy);

    // Line move within the file: same rule/path/anchor → still baselined.
    assert!(
        base.contains(baseline::fingerprint("unwrap", "src/old.rs", anchor, 0)),
        "moving the line within the file must not invalidate the entry"
    );
    // Rename: same content, new path → new fingerprint, not baselined.
    let renamed = baseline::fingerprint("unwrap", "src/new.rs", anchor, 0);
    assert_ne!(frozen, renamed);
    assert!(
        !base.contains(renamed),
        "a renamed file must resurface its findings as new"
    );
    // And the frozen entry is now stale: no current finding produces it.
    let current = [renamed];
    assert!(
        !current.contains(&frozen),
        "the old-path entry no longer corresponds to any finding"
    );
}

#[test]
fn baseline_assign_numbers_duplicate_anchors_in_order() {
    let items = vec![
        ("r".to_string(), "f.rs".to_string(), "anchor".to_string()),
        ("r".to_string(), "f.rs".to_string(), "anchor".to_string()),
        ("r".to_string(), "f.rs".to_string(), "other".to_string()),
    ];
    let fps = baseline::assign(&items, |i| i.clone());
    assert_eq!(fps.len(), 3);
    assert_ne!(fps[0], fps[1], "duplicates get distinct occurrences");
    assert_eq!(fps[0], baseline::fingerprint("r", "f.rs", "anchor", 0));
    assert_eq!(fps[1], baseline::fingerprint("r", "f.rs", "anchor", 1));
}

#[test]
fn baseline_load_detects_legacy_and_fingerprint_formats() {
    let dir = std::env::temp_dir();
    let legacy = dir.join(format!("xtask-test-legacy-{}.baseline", std::process::id()));
    std::fs::write(&legacy, "# comment\nunwrap src/a.rs 3\n").expect("write");
    let b = baseline::load(&legacy);
    assert!(b.legacy, "count-format entry must flag legacy");
    let _ = std::fs::remove_file(&legacy);

    let modern = dir.join(format!("xtask-test-modern-{}.baseline", std::process::id()));
    let fp = baseline::fingerprint("unwrap", "src/a.rs", "x.unwrap()", 0);
    std::fs::write(
        &modern,
        format!("# comment\nunwrap {fp:016x} src/a.rs x.unwrap()\n"),
    )
    .expect("write");
    let b = baseline::load(&modern);
    assert!(!b.legacy);
    assert!(b.contains(fp));
    assert!(!b.contains(fp ^ 1));
    let _ = std::fs::remove_file(&modern);

    // A missing file is an empty, non-legacy baseline.
    let missing = dir.join("xtask-test-definitely-missing.baseline");
    let b = baseline::load(&missing);
    assert!(!b.legacy);
    assert!(b.entries.is_empty());
}
