//! Content-fingerprinted baselines, shared by `xtask lint` and
//! `xtask analyze`.
//!
//! The original baseline froze debt as `(rule, file) → count`, which has a
//! masking failure mode: delete one vetted `unwrap` and add a brand-new one
//! in the same file, and the count — and therefore CI — never moves. Each
//! entry now fingerprints the *content* of one finding:
//!
//! ```text
//! <rule> <16-hex-fnv1a64> <path> <anchor excerpt…>
//! ```
//!
//! The hash covers `(rule, path, trimmed anchor text, occurrence index)`,
//! where the anchor is the offending source line (or fn signature) and the
//! occurrence index distinguishes identical lines in one file. Line
//! *numbers* are deliberately excluded: moving code around a file does not
//! invalidate its baseline entry, but editing the offending line does. The
//! excerpt after the hash is informational only — the hash is authoritative.
//!
//! Legacy count-format files (`<rule> <path> <count>`) are detected so the
//! one-shot `--rebaseline` migration can tell the user what happened.

use std::collections::HashSet;
use std::fs;
use std::path::Path;

/// 64-bit FNV-1a: tiny, stable, and dependency-free. Collision resistance
/// is irrelevant here — entries are human-reviewed, not attacker-supplied.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The fingerprint of one finding.
pub fn fingerprint(rule: &str, path: &str, anchor: &str, occurrence: usize) -> u64 {
    let mut buf = Vec::with_capacity(rule.len() + path.len() + anchor.len() + 24);
    buf.extend_from_slice(rule.as_bytes());
    buf.push(0);
    buf.extend_from_slice(path.as_bytes());
    buf.push(0);
    buf.extend_from_slice(anchor.trim().as_bytes());
    buf.push(0);
    buf.extend_from_slice(occurrence.to_string().as_bytes());
    fnv1a64(&buf)
}

/// Assign fingerprints to findings in order: the `n`-th finding with the
/// same `(rule, path, anchor)` key gets occurrence index `n`, so duplicated
/// offending lines in one file stay distinct and stable.
pub fn assign<T>(items: &[T], key: impl Fn(&T) -> (String, String, String)) -> Vec<u64> {
    let mut seen: std::collections::HashMap<(String, String, String), usize> =
        std::collections::HashMap::new();
    items
        .iter()
        .map(|item| {
            let k = key(item);
            let occ = seen.entry(k.clone()).or_insert(0);
            let fp = fingerprint(&k.0, &k.1, &k.2, *occ);
            *occ += 1;
            fp
        })
        .collect()
}

/// A parsed baseline file.
pub struct Baseline {
    pub entries: HashSet<u64>,
    /// The file (or part of it) was in the legacy `(rule, file, count)`
    /// format; those entries are ignored and a migration is required.
    pub legacy: bool,
}

impl Baseline {
    pub fn contains(&self, fp: u64) -> bool {
        self.entries.contains(&fp)
    }
}

/// Load `path`; a missing file is an empty (non-legacy) baseline.
pub fn load(path: &Path) -> Baseline {
    let mut baseline = Baseline {
        entries: HashSet::new(),
        legacy: false,
    };
    let Ok(text) = fs::read_to_string(path) else {
        return baseline;
    };
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(_rule), Some(second)) = (parts.next(), parts.next()) else {
            continue;
        };
        if second.len() == 16 && second.bytes().all(|b| b.is_ascii_hexdigit()) {
            if let Ok(fp) = u64::from_str_radix(second, 16) {
                baseline.entries.insert(fp);
                continue;
            }
        }
        // Anything else — in particular `<rule> <path> <count>` — is the
        // pre-fingerprint format.
        baseline.legacy = true;
    }
    baseline
}

/// Write a baseline: entries are `(rule, fingerprint, path, anchor)`.
pub fn write(
    path: &Path,
    tool: &str,
    entries: &[(String, u64, String, String)],
) -> std::io::Result<()> {
    let mut out = format!(
        "# Frozen `{tool}` debt, one finding per line:\n\
         #   <rule> <fnv1a64 of rule/path/anchor/occurrence> <path> <anchor excerpt>\n\
         # The hash is authoritative; the excerpt is for the reviewer. Editing or\n\
         # fixing the offending line invalidates its entry (moving it does not).\n\
         # Regenerate with `cargo xtask {tool} --rebaseline` after paying debt down.\n"
    );
    let mut sorted: Vec<_> = entries.to_vec();
    sorted.sort_by(|a, b| (&a.0, &a.2, a.1).cmp(&(&b.0, &b.2, b.1)));
    for (rule, fp, path, anchor) in &sorted {
        let excerpt: String = anchor.split_whitespace().collect::<Vec<_>>().join(" ");
        let excerpt: String = excerpt.chars().take(80).collect();
        out.push_str(&format!("{rule} {fp:016x} {path} {excerpt}\n"));
    }
    fs::write(path, out)
}
