//! Rule `lockset`: Eraser-style lockset analysis of shared-state fields.
//!
//! The classic Eraser discipline: every shared variable must be protected
//! by *some* lock that is held at every access. Statically we approximate
//! it over the analyzed sources:
//!
//! 1. **Shared structs** — a struct is shared when some field anywhere
//!    wraps it in `Arc` (directly, or via a `dyn Trait` object whose
//!    impls are then all shared), plus the transitive closure over plain
//!    (unwrapped) fields: a plain field of a shared struct aliases shared
//!    state too.
//! 2. **Candidate fields** — plain or `Cell`/`RefCell`/`UnsafeCell`
//!    fields of a shared struct. Fields that are themselves the
//!    synchronization (`Mutex`/`RwLock`/`Atomic*`) or an `Arc` handle are
//!    not candidates: their access is safe by construction.
//! 3. **Access sites** — `self.field` uses inside the struct's impl
//!    methods, classified read vs write (assignment operators, `&mut`
//!    borrows, interior-mutation methods like `set`/`borrow_mut`).
//!    Methods taking `&mut self`/`mut self` are exempt: an exclusive
//!    borrow of a shared struct proves no concurrent access.
//! 4. **Locksets** — the lock classes of [`super::Config::lock_order`]
//!    held at each site: intraprocedural guard liveness (the
//!    [`super::locks`] scope simulation) unioned with the locks *always*
//!    held on entry to the enclosing function, computed by a narrowing
//!    fixed point over the call graph (`H(f) = ⋂ over call sites of
//!    H(caller) ∪ live-at-site`; thread entries and externally callable
//!    functions start at ∅).
//! 5. **Thread entries** — functions named inside a `spawn(…)` argument
//!    span (`thread::spawn`, `scope.spawn`, the server loops), plus
//!    `Config::racecheck_entries` for public API called from arbitrary
//!    threads.
//!
//! A candidate field with ≥1 write site, whose access-site locksets have
//! an **empty intersection**, and which is reachable from **≥2 thread
//! entries**, is reported with a witness chain from an entry to an access.
//! Suppress a justified field with `// lint:allow(lockset): <why>` on or
//! above the field declaration.
//!
//! Like every rule here this is a lint, not a proof: resolution is
//! name-and-shape based and safe Rust already rules out data races on
//! plain fields — the rule earns its keep on `unsafe impl Sync` types,
//! interior-mutability cells, and as a protocol check that the declared
//! lock classes actually cover the state they claim to.

use std::collections::{BTreeSet, HashMap, HashSet};

use super::graph::{CallGraph, FnId};
use super::items::{FieldDecl, FileIndex};
use super::{Config, Finding};

pub const RULE: &str = "lockset";

/// Wrappers that make a field its own synchronization (not a candidate).
const SYNC_WRAPPERS: &[&str] = &["Mutex", "RwLock", "Condvar"];
/// Wrappers that mark interior mutability (always a candidate).
const CELL_WRAPPERS: &[&str] = &["Cell", "RefCell", "UnsafeCell"];
/// Container/pointer wrappers skipped when finding a field's base type.
const TRANSPARENT: &[&str] = &["Arc", "Box", "Rc", "Option", "Vec", "dyn"];
/// Methods that mutate through a shared reference (interior mutability).
const WRITE_METHODS: &[&str] = &[
    "set",
    "replace",
    "replace_with",
    "borrow_mut",
    "get_mut",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "push",
    "insert",
    "remove",
    "clear",
    "take",
];

/// One `self.field` access site.
struct Access {
    file_idx: usize,
    fn_id: FnId,
    line: u32,
    /// Bitmask over `cfg.lock_order` of classes live at the site
    /// (intraprocedural only; entry locks are unioned in later).
    intra: u64,
    write: bool,
}

/// Per-function facts from one guard-liveness pass.
#[derive(Default)]
struct FnFacts {
    /// `(callee, lockset live at the call)` — the interprocedural edges.
    calls: Vec<(FnId, u64)>,
    /// Candidate-field accesses, keyed by `(struct, field)`.
    accesses: Vec<((String, String), Access)>,
}

pub fn check(files: &[FileIndex], graph: &CallGraph, cfg: &Config, out: &mut Vec<Finding>) {
    let shared = shared_structs(files);
    let candidates = candidate_fields(files, &shared);
    if candidates.is_empty() {
        return;
    }

    // One pass per function: guard liveness + call edges + access sites.
    let mut facts: HashMap<FnId, FnFacts> = HashMap::new();
    for (fi, file) in files.iter().enumerate() {
        let classes: Vec<(usize, &str)> = cfg
            .lock_order
            .iter()
            .enumerate()
            .filter(|(_, c)| c.file == file.path)
            .map(|(i, c)| (i, c.field.as_str()))
            .collect();
        for (ki, f) in file.functions.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let fields: Vec<&str> = f
                .impl_type
                .as_deref()
                .map(|ty| {
                    candidates
                        .keys()
                        .filter(|(s, _)| s == ty)
                        .map(|(_, field)| field.as_str())
                        .collect()
                })
                .unwrap_or_default();
            let ff = scan_fn(files, file, fi, (fi, ki), f, &classes, &fields, graph);
            facts.insert((fi, ki), ff);
        }
    }

    let entries = thread_entries(files, graph, cfg);
    let on_entry = entry_locks(&facts, &entries);
    let reaching = entry_reachability(graph, &entries);

    // Group the accesses per candidate field and judge each one.
    let mut per_field: HashMap<(String, String), Vec<Access>> = HashMap::new();
    for ff in facts.values() {
        for (key, acc) in &ff.accesses {
            per_field.entry(key.clone()).or_default().push(Access {
                file_idx: acc.file_idx,
                fn_id: acc.fn_id,
                line: acc.line,
                intra: acc.intra | on_entry.get(&acc.fn_id).copied().unwrap_or(0),
                write: acc.write,
            });
        }
    }

    let mut findings = Vec::new();
    for ((ty, field), mut sites) in per_field {
        if sites.is_empty() || !sites.iter().any(|s| s.write) {
            continue;
        }
        let inter = sites.iter().fold(u64::MAX, |m, s| m & s.intra);
        if inter != 0 {
            continue;
        }
        // Which thread entries reach some accessing function?
        let mut reached: BTreeSet<usize> = BTreeSet::new();
        for s in &sites {
            if let Some(es) = reaching.get(&s.fn_id) {
                reached.extend(es.iter().copied());
            }
        }
        if reached.len() < 2 {
            continue;
        }
        let Some((decl_fi, decl)) = candidates.get(&(ty.clone(), field.clone())) else {
            continue;
        };
        let decl_file = &files[*decl_fi];
        if decl_file.allowed(decl.line, RULE) {
            continue;
        }
        sites.sort_by_key(|s| (s.file_idx, s.line, s.write));
        findings.push(field_finding(
            files, graph, cfg, &entries, decl_file, decl, &ty, &field, &sites, &reached,
        ));
    }
    findings.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    out.append(&mut findings);
}

/// Structs (and traits, via `dyn`) whose instances are shared between
/// threads: `Arc<T>` seeds, closed over plain-field aliasing and trait
/// impls.
fn shared_structs(files: &[FileIndex]) -> HashSet<String> {
    let mut shared: HashSet<String> = HashSet::new();
    for file in files {
        for decl in file.field_decls.values() {
            if decl.ty_idents.iter().any(|t| t == "Arc") {
                if let Some(base) = interesting_base(&decl.ty_idents) {
                    shared.insert(base);
                }
            }
        }
    }
    // Close: plain fields of shared structs alias shared state; a shared
    // trait shares every impl.
    loop {
        let before = shared.len();
        for file in files {
            for ((ty, _), decl) in &file.field_decls {
                if !shared.contains(ty) || is_sync_field(decl) || has_arc(decl) {
                    continue;
                }
                if let Some(base) = interesting_base(&decl.ty_idents) {
                    shared.insert(base);
                }
            }
            for f in &file.functions {
                if let (Some(ty), Some(tr)) = (&f.impl_type, &f.trait_name) {
                    if shared.contains(tr) {
                        shared.insert(ty.clone());
                    }
                }
            }
        }
        if shared.len() == before {
            return shared;
        }
    }
}

fn has_arc(decl: &FieldDecl) -> bool {
    decl.ty_idents.iter().any(|t| t == "Arc")
}

fn is_sync_field(decl: &FieldDecl) -> bool {
    decl.ty_idents
        .iter()
        .any(|t| SYNC_WRAPPERS.contains(&t.as_str()) || t.starts_with("Atomic"))
}

/// The first type ident that is not a transparent wrapper — the type whose
/// sharing matters. `Vec<Shard>` → `Shard`; `Box<dyn Pager>` → `Pager`.
fn interesting_base(idents: &[String]) -> Option<String> {
    idents
        .iter()
        .find(|t| {
            !TRANSPARENT.contains(&t.as_str())
                && !CELL_WRAPPERS.contains(&t.as_str())
                && t.chars().next().is_some_and(|c| c.is_uppercase())
        })
        .cloned()
}

/// `(struct, field) → (declaring file index, declaration)` for every
/// race-candidate field.
fn candidate_fields<'a>(
    files: &'a [FileIndex],
    shared: &HashSet<String>,
) -> HashMap<(String, String), (usize, &'a FieldDecl)> {
    let mut out = HashMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (key, decl) in &file.field_decls {
            if !shared.contains(&key.0) || is_sync_field(decl) || has_arc(decl) {
                continue;
            }
            // Plain data or an interior-mutability cell: both candidates.
            out.insert(key.clone(), (fi, decl));
        }
    }
    out
}

/// Does the function take an exclusive receiver (`&mut self` / `mut self`)?
fn exclusive_receiver(file: &FileIndex, f: &super::items::Function) -> bool {
    for k in f.sig_start..f.body.start {
        if file.sig_text(k) == "self" && k > f.sig_start && file.sig_text(k - 1) == "mut" {
            return true;
        }
    }
    false
}

/// Guard-liveness walk of one body (the `locks`/`lockio` scope simulation)
/// recording per-call locksets and candidate-field access sites.
#[allow(clippy::too_many_arguments)]
fn scan_fn(
    files: &[FileIndex],
    file: &FileIndex,
    fi: usize,
    id: FnId,
    f: &super::items::Function,
    classes: &[(usize, &str)],
    fields: &[&str],
    graph: &CallGraph,
) -> FnFacts {
    struct Held {
        class: usize,
        binding: Option<String>,
        depth: usize,
        temporary: bool,
    }
    let mut ff = FnFacts::default();
    let exclusive = exclusive_receiver(file, f);
    let ty = f.impl_type.clone().unwrap_or_default();
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0usize;
    let mut next_call = 0usize;
    for k in f.body.clone() {
        let t = file.sig_text(k);
        match t {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                held.retain(|a| a.depth <= depth);
            }
            ";" => held.retain(|a| !(a.temporary && a.depth >= depth)),
            _ => {}
        }
        if t == "drop" && k + 2 < file.sig.len() && file.sig_text(k + 1) == "(" {
            let victim = file.sig_text(k + 2);
            held.retain(|a| a.binding.as_deref() != Some(victim));
        }
        let mask = held.iter().fold(0u64, |m, a| m | (1 << a.class));
        // Interprocedural edges: lockset live at each resolved call.
        while next_call < f.calls.len() && f.calls[next_call].sig_idx <= k {
            let c = &f.calls[next_call];
            if c.sig_idx == k {
                for target in graph.resolve(files, fi, f.impl_type.as_deref(), &c.callee) {
                    ff.calls.push((target, mask));
                }
            }
            next_call += 1;
        }
        // Candidate-field access: `self . field` (not a method call).
        if !exclusive
            && k >= 2
            && file.sig_text(k - 1) == "."
            && file.sig_text(k - 2) == "self"
            && fields.contains(&t)
            && (k + 1 >= file.sig.len() || file.sig_text(k + 1) != "(")
        {
            ff.accesses.push((
                (ty.clone(), t.to_string()),
                Access {
                    file_idx: fi,
                    fn_id: id,
                    line: file.sig_line(k),
                    intra: mask,
                    write: is_write_site(file, k),
                },
            ));
        }
        // Acquisition: `<field> . (lock|read|write) (` of a declared class.
        if !matches!(t, "lock" | "read" | "write")
            || k < 2
            || k + 1 >= file.sig.len()
            || file.sig_text(k + 1) != "("
            || file.sig_text(k - 1) != "."
        {
            continue;
        }
        let field = file.sig_text(k - 2);
        let Some(&(class, _)) = classes.iter().find(|(_, name)| *name == field) else {
            continue;
        };
        let (binding, temporary) = super::locks::binding_for(file, k - 2, f.body.start);
        held.push(Held {
            class,
            binding,
            depth,
            temporary,
        });
    }
    ff
}

/// Classify the access whose field token sits at significant index `k`:
/// assignment operators (`=`, `+=`, `<<=`, … — the lexer splits compound
/// operators into single-char puncts), `&mut self.f` borrows, and
/// interior-mutation method calls all count as writes.
fn is_write_site(file: &FileIndex, k: usize) -> bool {
    // `& mut self . f`
    if k >= 4 && file.sig_text(k - 3) == "mut" && file.sig_text(k - 4) == "&" {
        return true;
    }
    // Skip a balanced index expression: `self.f[i] = …`.
    let mut p = k + 1;
    if p < file.sig.len() && file.sig_text(p) == "[" {
        let mut d = 0usize;
        while p < file.sig.len() {
            match file.sig_text(p) {
                "[" => d += 1,
                "]" => {
                    d -= 1;
                    if d == 0 {
                        p += 1;
                        break;
                    }
                }
                _ => {}
            }
            p += 1;
        }
    }
    if p >= file.sig.len() {
        return false;
    }
    let next = |i: usize| {
        if i < file.sig.len() {
            file.sig_text(i)
        } else {
            ""
        }
    };
    match next(p) {
        // `=` alone (not `==`, not `=>`).
        "=" => next(p + 1) != "=" && next(p + 1) != ">",
        // `+=` `-=` `*=` `/=` `%=` `&=` `|=` `^=`.
        "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^" => next(p + 1) == "=",
        // `<<=` / `>>=`.
        "<" => next(p + 1) == "<" && next(p + 2) == "=",
        ">" => next(p + 1) == ">" && next(p + 2) == "=",
        // `self.f.set(…)` and friends.
        "." => WRITE_METHODS.contains(&next(p + 1)) && next(p + 2) == "(",
        _ => false,
    }
}

/// Thread entry points: targets of calls made inside a `spawn(…)` argument
/// span, plus the configured always-concurrent API roots. Returns
/// `(id, qual)` pairs, deduped, in deterministic order.
fn thread_entries(files: &[FileIndex], graph: &CallGraph, cfg: &Config) -> Vec<(FnId, String)> {
    let mut entries: Vec<(FnId, String)> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for f in &file.functions {
            if f.is_test {
                continue;
            }
            for c in &f.calls {
                if call_name(&c.callee) != "spawn" {
                    continue;
                }
                let close = file.matching_paren(c.sig_idx + 1);
                for inner in &f.calls {
                    if inner.sig_idx <= c.sig_idx + 1 || inner.sig_idx >= close {
                        continue;
                    }
                    if call_name(&inner.callee) == "spawn" {
                        continue;
                    }
                    for target in graph.resolve(files, fi, f.impl_type.as_deref(), &inner.callee) {
                        let qual = files[target.0].functions[target.1].qual.clone();
                        entries.push((target, qual));
                    }
                }
            }
        }
    }
    for name in &cfg.racecheck_entries {
        for (fi, file) in files.iter().enumerate() {
            for (ki, f) in file.functions.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                if &f.qual == name || (!name.contains("::") && &f.name == name) {
                    entries.push(((fi, ki), f.qual.clone()));
                }
            }
        }
    }
    entries.sort();
    entries.dedup();
    entries
}

fn call_name(c: &super::items::CalleeRef) -> &str {
    use super::items::CalleeRef::*;
    match c {
        SelfMethod(m) | Bare(m) | Method(m) => m,
        FieldMethod { method, .. } | Qualified { method, .. } | HandleMethod { method, .. } => {
            method
        }
    }
}

/// Locks always held on entry: narrowing fixed point of
/// `H(f) = ⋂ over call sites (H(caller) ∪ live-at-site)`, with thread
/// entries (and functions with no known callers — externally callable)
/// pinned at ∅.
fn entry_locks(facts: &HashMap<FnId, FnFacts>, entries: &[(FnId, String)]) -> HashMap<FnId, u64> {
    let entry_set: HashSet<FnId> = entries.iter().map(|(id, _)| *id).collect();
    // Invert: callee → (caller, mask at site).
    let mut callers: HashMap<FnId, Vec<(FnId, u64)>> = HashMap::new();
    for (&caller, ff) in facts {
        for &(callee, mask) in &ff.calls {
            callers.entry(callee).or_default().push((caller, mask));
        }
    }
    let mut h: HashMap<FnId, u64> = HashMap::new();
    for &id in facts.keys() {
        let pinned = entry_set.contains(&id) || !callers.contains_key(&id);
        h.insert(id, if pinned { 0 } else { u64::MAX });
    }
    loop {
        let mut changed = false;
        for (&id, incoming) in &callers {
            if entry_set.contains(&id) {
                continue;
            }
            let merged = incoming.iter().fold(u64::MAX, |m, &(caller, mask)| {
                m & (h.get(&caller).copied().unwrap_or(0) | mask)
            });
            if h.get(&id).copied().unwrap_or(0) != merged {
                h.insert(id, merged);
                changed = true;
            }
        }
        if !changed {
            // Anything still at ⊤ is unreachable dead code: treat as ∅.
            for v in h.values_mut() {
                if *v == u64::MAX {
                    *v = 0;
                }
            }
            return h;
        }
    }
}

/// Which entries (by index into `entries`) reach each function.
fn entry_reachability(
    graph: &CallGraph,
    entries: &[(FnId, String)],
) -> HashMap<FnId, BTreeSet<usize>> {
    let mut out: HashMap<FnId, BTreeSet<usize>> = HashMap::new();
    for (ei, (start, _)) in entries.iter().enumerate() {
        let mut seen: HashSet<FnId> = HashSet::new();
        let mut stack = vec![*start];
        while let Some(cur) = stack.pop() {
            if !seen.insert(cur) {
                continue;
            }
            out.entry(cur).or_default().insert(ei);
            for (next, _) in graph.callees.get(&cur).into_iter().flatten() {
                stack.push(*next);
            }
        }
    }
    out
}

/// Render the finding for one inconsistent field, with representative
/// sites and a witness chain from a thread entry.
#[allow(clippy::too_many_arguments)]
fn field_finding(
    files: &[FileIndex],
    graph: &CallGraph,
    cfg: &Config,
    entries: &[(FnId, String)],
    decl_file: &FileIndex,
    decl: &FieldDecl,
    ty: &str,
    field: &str,
    sites: &[Access],
    reached: &BTreeSet<usize>,
) -> Finding {
    let lockset_names = |mask: u64| -> String {
        if mask == 0 {
            return "∅".to_string();
        }
        let names: Vec<&str> = cfg
            .lock_order
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, c)| c.name.as_str())
            .collect();
        format!("{{{}}}", names.join(", "))
    };
    // Show the write plus the site most disjoint from it.
    let write = sites.iter().find(|s| s.write).expect("≥1 write checked");
    let other = sites
        .iter()
        .min_by_key(|s| (write.intra & s.intra).count_ones())
        .expect("sites nonempty");
    let entry_names: Vec<&str> = reached.iter().map(|&ei| entries[ei].1.as_str()).collect();
    let chain = graph
        .chain_to(entries[*reached.iter().next().expect("nonempty")].0, |id| {
            id == write.fn_id
        })
        .map(|ids| {
            ids.iter()
                .map(|&(fi, ki)| files[fi].functions[ki].qual.as_str())
                .collect::<Vec<_>>()
                .join(" → ")
        })
        .unwrap_or_else(|| entries[*reached.iter().next().expect("nonempty")].1.clone());
    Finding {
        rule: RULE,
        path: decl_file.path.clone(),
        line: decl.line,
        message: format!(
            "shared field `{ty}.{field}` has no common lock across its accesses: \
             written at {}:{} holding {}, accessed at {}:{} holding {} \
             (reachable from {} thread entries: {}; witness: {chain})",
            files[write.file_idx].path,
            write.line,
            lockset_names(write.intra),
            files[other.file_idx].path,
            other.line,
            lockset_names(other.intra),
            reached.len(),
            entry_names.join(", "),
        ),
        anchor: decl_file.src_line(decl.line).trim().to_string(),
    }
}
