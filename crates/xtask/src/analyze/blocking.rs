//! Rule `blocking-in-worker`: fm-server worker/acceptor code must not
//! block (IO, sleeps, unbounded waits) while holding the queue or
//! connection-registry lock.
//!
//! The serving layer's liveness argument is that every lock in the
//! request path is held for O(instructions): the queue mutex guards a
//! `VecDeque` and a flag, the registry mutex guards a `Vec` of handles.
//! A blocking call under either turns a micro-critical-section into a
//! convoy — every producer and worker stalls behind one sleeping thread —
//! and during drain it can deadlock the `wait`/`join` handshake.
//!
//! Scope is configured, not global: `Config::worker_files` lists the
//! serving-layer files, `worker_lock_fields` the guarded fields
//! (acquired as `<field>.lock()/read()/write()`), and `worker_guard_fns`
//! the guard-returning helpers (`lock_state`, `lock_conns` — the
//! poison-recovery wrappers the crate uses instead of bare `.lock()`).
//! `Config::blocking_calls` names the blocking verbs (`sleep`, `wait`,
//! `recv`, `accept`, `connect`, `join`, …). A justified site — e.g. a
//! `Condvar::wait`, which atomically releases the mutex it is handed —
//! takes `// lint:allow(blocking-in-worker): <why>`.

use super::items::FileIndex;
use super::{Config, Finding};

pub const RULE: &str = "blocking-in-worker";

pub fn check(files: &[FileIndex], cfg: &Config, out: &mut Vec<Finding>) {
    for file in files {
        if !cfg.worker_files.contains(&file.path) {
            continue;
        }
        for f in &file.functions {
            if f.is_test {
                continue;
            }
            scan_fn(file, f, cfg, out);
        }
    }
}

fn scan_fn(file: &FileIndex, f: &super::items::Function, cfg: &Config, out: &mut Vec<Finding>) {
    struct Held {
        source: String,
        binding: Option<String>,
        depth: usize,
        temporary: bool,
    }
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0usize;
    for k in f.body.clone() {
        let t = file.sig_text(k);
        match t {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                held.retain(|a| a.depth <= depth);
            }
            ";" => held.retain(|a| !(a.temporary && a.depth >= depth)),
            _ => {}
        }
        if t == "drop" && k + 2 < file.sig.len() && file.sig_text(k + 1) == "(" {
            let victim = file.sig_text(k + 2);
            held.retain(|a| a.binding.as_deref() != Some(victim));
        }
        let is_call = k + 1 < file.sig.len() && file.sig_text(k + 1) == "(";
        if !is_call {
            continue;
        }
        let preceded_by_fn = k >= 1 && file.sig_text(k - 1) == "fn";
        // Blocking call while a guard is live.
        if !preceded_by_fn && cfg.blocking_calls.iter().any(|b| b == t) && !held.is_empty() {
            let line = file.sig_line(k);
            if !file.allowed(line, RULE) {
                for a in &held {
                    out.push(Finding {
                        rule: RULE,
                        path: file.path.clone(),
                        line,
                        message: format!(
                            "blocking call `{t}` while holding the `{}` guard — \
                             worker/acceptor critical sections must stay O(instructions)",
                            a.source
                        ),
                        anchor: file.src_line(line).trim().to_string(),
                    });
                }
            }
        }
        // Acquisition, shape 1: guard-returning helper `lock_state(…)`.
        if !preceded_by_fn && cfg.worker_guard_fns.iter().any(|g| g == t) {
            let (binding, temporary) = super::locks::binding_for(file, k, f.body.start);
            held.push(Held {
                source: t.to_string(),
                binding,
                depth,
                temporary,
            });
            continue;
        }
        // Acquisition, shape 2: `<field> . (lock|read|write) (`.
        if matches!(t, "lock" | "read" | "write")
            && k >= 2
            && file.sig_text(k - 1) == "."
            && cfg
                .worker_lock_fields
                .iter()
                .any(|fld| fld == file.sig_text(k - 2))
        {
            let (binding, temporary) = super::locks::binding_for(file, k - 2, f.body.start);
            held.push(Held {
                source: file.sig_text(k - 2).to_string(),
                binding,
                depth,
                temporary,
            });
        }
    }
}
