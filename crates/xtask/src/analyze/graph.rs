//! Call-graph resolution across the analyzed file set.
//!
//! Resolution is name-and-shape based — there is no type inference — with
//! the precision ladder documented in DESIGN.md §8:
//!
//! 1. `Type::m(…)` resolves to methods of `Type`'s impl blocks (`Self::m`
//!    through the enclosing impl), or (when `Type` is a trait) to every
//!    `impl Type for …` method of that name; when neither matches, the
//!    segment is treated as a module path — `module::f(…)` links the free
//!    functions declared in `…/module.rs` / `…/module/mod.rs`, and a
//!    lowercase segment still links a globally unique free function;
//! 2. `self.m(…)` resolves within the enclosing impl type;
//! 3. `self.field.m(…)` resolves through the field's declared base type
//!    (smart-pointer and lock wrappers stripped), including trait objects:
//!    `pager: Box<dyn Pager>` + `self.pager.write_page(…)` links every
//!    `impl Pager for …` `write_page`;
//! 4. `h.m(…)` through a local bound from a handle-preserving call
//!    (`let h = self.field.clone_handle()` / `let h = self.replicate()`)
//!    resolves on the aliased receiver's type — the shared-handle
//!    boundary introduced by the concurrent read path must not dead-end
//!    the lockset propagation;
//! 5. bare `m(…)` resolves to free functions, same file preferred;
//! 6. `expr.m(…)` on an unknown receiver resolves by bare name — but only
//!    when the name is unambiguous: names on the deny list of ubiquitous
//!    std methods (`insert`, `get`, `lock`, …) and names implemented by
//!    more than one type in the workspace (`check_invariants`, `fms`)
//!    would wire the graph to everything, so they produce no edge.
//!    Missing edges under-approximate; the rules stay lints, not proofs.

use std::collections::HashMap;

use super::items::{CalleeRef, FileIndex};

/// Methods too common in std to resolve by bare name.
const DENY_METHODS: &[&str] = &[
    "insert",
    "get",
    "get_mut",
    "remove",
    "push",
    "pop",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "read",
    "write",
    "lock",
    "clone",
    "contains",
    "contains_key",
    "entry",
    "drain",
    "extend",
    "fill",
    "copy_from_slice",
    "to_vec",
    "to_string",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "ok_or",
    "ok_or_else",
    "filter",
    "collect",
    "join",
    "load",
    "store",
    "swap",
    "take",
    "new",
    "default",
    "drop",
    "min",
    "max",
    "abs",
    "from",
    "into",
    "eq",
    "cmp",
];

/// A function's global id: `(file index, function index within file)`.
pub type FnId = (usize, usize);

pub struct CallGraph {
    /// Resolved callees per function.
    pub callees: HashMap<FnId, Vec<(FnId, u32)>>,
    /// `(impl type, method) → ids`.
    by_qual: HashMap<(String, String), Vec<FnId>>,
    /// `trait name → method name → ids` (all impls of the trait).
    by_trait: HashMap<(String, String), Vec<FnId>>,
    /// bare name → ids (all functions).
    by_name: HashMap<String, Vec<FnId>>,
    /// free functions (no impl) by name → ids.
    free_by_name: HashMap<String, Vec<FnId>>,
}

impl CallGraph {
    pub fn build(files: &[FileIndex]) -> CallGraph {
        let mut g = CallGraph {
            callees: HashMap::new(),
            by_qual: HashMap::new(),
            by_trait: HashMap::new(),
            by_name: HashMap::new(),
            free_by_name: HashMap::new(),
        };
        for (fi, file) in files.iter().enumerate() {
            for (ki, f) in file.functions.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                let id = (fi, ki);
                g.by_name.entry(f.name.clone()).or_default().push(id);
                match (&f.impl_type, &f.trait_name) {
                    (Some(ty), tr) => {
                        g.by_qual
                            .entry((ty.clone(), f.name.clone()))
                            .or_default()
                            .push(id);
                        if let Some(tr) = tr {
                            g.by_trait
                                .entry((tr.clone(), f.name.clone()))
                                .or_default()
                                .push(id);
                        }
                    }
                    (None, _) => {
                        g.free_by_name.entry(f.name.clone()).or_default().push(id);
                    }
                }
            }
        }
        // Second pass: resolve every call site.
        for (fi, file) in files.iter().enumerate() {
            for (ki, f) in file.functions.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                let mut resolved = Vec::new();
                for call in &f.calls {
                    for target in g.resolve(files, fi, f.impl_type.as_deref(), &call.callee) {
                        resolved.push((target, call.line));
                    }
                }
                g.callees.insert((fi, ki), resolved);
            }
        }
        g
    }

    /// Resolve one callee reference to zero or more function ids.
    pub fn resolve(
        &self,
        files: &[FileIndex],
        file_idx: usize,
        impl_type: Option<&str>,
        callee: &CalleeRef,
    ) -> Vec<FnId> {
        match callee {
            CalleeRef::SelfMethod(m) => impl_type
                .and_then(|ty| self.by_qual.get(&(ty.to_string(), m.clone())))
                .cloned()
                .unwrap_or_default(),
            CalleeRef::FieldMethod { field, method } => {
                let Some(ty) = impl_type else {
                    return Vec::new();
                };
                let base = files
                    .iter()
                    .find_map(|f| f.field_types.get(&(ty.to_string(), field.clone())));
                let Some(base) = base else {
                    return Vec::new();
                };
                let mut out = self
                    .by_qual
                    .get(&(base.clone(), method.clone()))
                    .cloned()
                    .unwrap_or_default();
                out.extend(
                    self.by_trait
                        .get(&(base.clone(), method.clone()))
                        .cloned()
                        .unwrap_or_default(),
                );
                out.sort_unstable();
                out.dedup();
                out
            }
            CalleeRef::Qualified { ty, method } => {
                let ty = if ty == "Self" {
                    match impl_type {
                        Some(t) => t.to_string(),
                        None => return Vec::new(),
                    }
                } else {
                    ty.clone()
                };
                let mut out = self
                    .by_qual
                    .get(&(ty.clone(), method.clone()))
                    .cloned()
                    .unwrap_or_default();
                out.extend(
                    self.by_trait
                        .get(&(ty.clone(), method.clone()))
                        .cloned()
                        .unwrap_or_default(),
                );
                if out.is_empty() {
                    // Not a type: `module::free_fn(…)`. Resolve to free
                    // functions whose file names the module (`…/ty.rs` or
                    // `…/ty/mod.rs`); when no file matches, a module-cased
                    // (lowercase) path segment still resolves to a unique
                    // free function by name. An uppercase `Type::m` with no
                    // impl stays unresolved rather than guessing.
                    let frees = self.free_by_name.get(method).cloned().unwrap_or_default();
                    let file_rs = format!("/{ty}.rs");
                    let file_mod = format!("/{ty}/mod.rs");
                    let in_module: Vec<FnId> = frees
                        .iter()
                        .copied()
                        .filter(|&(fi, _)| {
                            let p = &files[fi].path;
                            p.ends_with(&file_rs)
                                || p.ends_with(&file_mod)
                                || *p == format!("{ty}.rs")
                        })
                        .collect();
                    let module_cased = ty.chars().next().is_some_and(|c| c.is_lowercase());
                    if !in_module.is_empty() {
                        out = in_module;
                    } else if module_cased && frees.len() == 1 {
                        out = frees;
                    }
                }
                out.sort_unstable();
                out.dedup();
                out
            }
            CalleeRef::Bare(m) => {
                let all = self.free_by_name.get(m).cloned().unwrap_or_default();
                let same_file: Vec<FnId> =
                    all.iter().copied().filter(|id| id.0 == file_idx).collect();
                if same_file.is_empty() {
                    all
                } else {
                    same_file
                }
            }
            CalleeRef::HandleMethod { field, method } => {
                // The handle aliases its receiver: `let h = self.field
                // .clone_handle(); h.m(…)` dispatches on the field's base
                // type, `let h = self.clone_handle(); h.m(…)` on the
                // enclosing impl type. Without this the lockset propagation
                // would dead-end at every PR 7 handle boundary.
                let base = match field {
                    Some(f) => {
                        let Some(ty) = impl_type else {
                            return Vec::new();
                        };
                        match files
                            .iter()
                            .find_map(|file| file.field_types.get(&(ty.to_string(), f.clone())))
                        {
                            Some(b) => b.clone(),
                            None => return Vec::new(),
                        }
                    }
                    None => match impl_type {
                        Some(t) => t.to_string(),
                        None => return Vec::new(),
                    },
                };
                let mut out = self
                    .by_qual
                    .get(&(base.clone(), method.clone()))
                    .cloned()
                    .unwrap_or_default();
                out.extend(
                    self.by_trait
                        .get(&(base, method.clone()))
                        .cloned()
                        .unwrap_or_default(),
                );
                out.sort_unstable();
                out.dedup();
                out
            }
            CalleeRef::Method(m) => {
                if DENY_METHODS.contains(&m.as_str()) {
                    return Vec::new();
                }
                let candidates = self.by_name.get(m).cloned().unwrap_or_default();
                // Ambiguity gate: `x.m(…)` with `m` implemented by several
                // types resolves to nothing rather than to all of them.
                let mut types: Vec<&Option<String>> = candidates
                    .iter()
                    .map(|&(fi, ki)| &files[fi].functions[ki].impl_type)
                    .collect();
                types.sort_unstable();
                types.dedup();
                if types.len() > 1 {
                    return Vec::new();
                }
                candidates
            }
        }
    }

    /// Fixed-point propagation: starting from per-function seed facts,
    /// union each function's set with its callees' until stable. Returns
    /// the transitive set per function, plus for each function one callee
    /// that contributed (for building an explanatory chain).
    pub fn propagate<T: Clone + Ord>(
        &self,
        seeds: &HashMap<FnId, Vec<T>>,
    ) -> HashMap<FnId, Vec<T>> {
        let mut facts: HashMap<FnId, Vec<T>> = seeds.clone();
        loop {
            let mut changed = false;
            let ids: Vec<FnId> = self.callees.keys().copied().collect();
            for id in ids {
                let mut merged: Vec<T> = facts.get(&id).cloned().unwrap_or_default();
                let before = merged.len();
                for (callee, _) in self.callees.get(&id).into_iter().flatten() {
                    if let Some(extra) = facts.get(callee) {
                        merged.extend(extra.iter().cloned());
                    }
                }
                merged.sort_unstable();
                merged.dedup();
                if merged.len() != before {
                    facts.insert(id, merged);
                    changed = true;
                }
            }
            if !changed {
                return facts;
            }
        }
    }

    /// Shortest call chain (as function ids) from `from` to any function
    /// satisfying `target`, following resolved edges. Returns the chain
    /// including both endpoints, or `None`.
    pub fn chain_to(&self, from: FnId, target: impl Fn(FnId) -> bool) -> Option<Vec<FnId>> {
        use std::collections::VecDeque;
        let mut prev: HashMap<FnId, FnId> = HashMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(from);
        prev.insert(from, from);
        while let Some(cur) = queue.pop_front() {
            if target(cur) {
                let mut chain = vec![cur];
                let mut at = cur;
                while at != from {
                    at = prev[&at];
                    chain.push(at);
                }
                chain.reverse();
                return Some(chain);
            }
            for (next, _) in self.callees.get(&cur).into_iter().flatten() {
                if !prev.contains_key(next) {
                    prev.insert(*next, cur);
                    queue.push_back(*next);
                }
            }
        }
        None
    }
}
