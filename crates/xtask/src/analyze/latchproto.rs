//! Rule `latch-protocol`: static verification of the buffer-pool miss
//! protocol (DESIGN.md §11).
//!
//! The sharded pool's contract, in temporal order:
//!
//! 1. claim the victim and install the `loading` mapping under the
//!    **shard lock** (`state`), take the **frame write latch** (`data`),
//!    release the shard lock;
//! 2. do the eviction write-back and the fault-in (**page IO**) holding
//!    *only* the frame latch — never a shard lock;
//! 3. drop the frame latch, then **re-acquire the shard lock** to publish
//!    the loaded frame or roll the mapping back.
//!
//! The state machine walks every function in the configured pool file
//! with the [`super::locks`] guard-scope simulation, tracking the shard
//! and frame guards separately, and reports four deviations:
//!
//! * an IO call made while a shard guard is live (the sin the sharding
//!   exists to remove — every same-shard hit serializes behind the disk);
//! * a page IO (`read_page`/`write_page`) with **no** frame latch live
//!   (concurrent readers of that frame can observe torn bytes);
//! * a shard re-acquisition while the frame latch is still held (inverts
//!   the shard → frame order and deadlocks against a faulting peer);
//! * a frame-latched page IO never followed by a shard re-acquisition
//!   (the `loading` mapping is stranded — waiters spin forever).
//!
//! Direct-call-only like `lock-across-io`: the transitive story is
//! `lock-order`'s job. Justify an intentional deviation with
//! `// lint:allow(latch-protocol): <why>`.

use super::items::FileIndex;
use super::{Config, Finding};

pub const RULE: &str = "latch-protocol";

/// What `latch-protocol` verifies; `None` disables the rule (fixtures
/// that don't model a buffer pool).
pub struct LatchProtoCfg {
    /// The buffer-pool file the protocol governs.
    pub pool_file: String,
    /// The shard-lock field (`state: Mutex<ShardState>`).
    pub shard_field: String,
    /// The per-frame latch field (`data: RwLock<…>`).
    pub frame_field: String,
    /// Page-IO methods that must run under the frame latch.
    pub page_io: Vec<String>,
}

pub fn check(files: &[FileIndex], cfg: &Config, out: &mut Vec<Finding>) {
    let Some(lp) = &cfg.latch_proto else {
        return;
    };
    let mut findings = Vec::new();
    for file in files {
        if file.path != lp.pool_file {
            continue;
        }
        for f in &file.functions {
            if f.is_test {
                continue;
            }
            scan_fn(file, f, cfg, lp, &mut findings);
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    findings.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.message == b.message);
    out.append(&mut findings);
}

struct Held {
    binding: Option<String>,
    depth: usize,
    temporary: bool,
}

fn scan_fn(
    file: &FileIndex,
    f: &super::items::Function,
    cfg: &Config,
    lp: &LatchProtoCfg,
    findings: &mut Vec<Finding>,
) {
    let mut shard: Vec<Held> = Vec::new();
    let mut frame: Vec<Held> = Vec::new();
    // A frame-latched page IO happened and its publish/rollback shard
    // re-acquisition has not been seen yet; carries the IO line for the
    // end-of-function report.
    let mut publish_pending: Option<u32> = None;
    let mut depth = 0usize;
    let push = |findings: &mut Vec<Finding>, line: u32, message: String| {
        if !file.allowed(line, RULE) {
            findings.push(Finding {
                rule: RULE,
                path: file.path.clone(),
                line,
                message,
                anchor: file.src_line(line).trim().to_string(),
            });
        }
    };
    for k in f.body.clone() {
        let t = file.sig_text(k);
        match t {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                shard.retain(|a| a.depth <= depth);
                frame.retain(|a| a.depth <= depth);
            }
            ";" => {
                shard.retain(|a| !(a.temporary && a.depth >= depth));
                frame.retain(|a| !(a.temporary && a.depth >= depth));
            }
            _ => {}
        }
        if t == "drop" && k + 2 < file.sig.len() && file.sig_text(k + 1) == "(" {
            let victim = file.sig_text(k + 2);
            shard.retain(|a| a.binding.as_deref() != Some(victim));
            frame.retain(|a| a.binding.as_deref() != Some(victim));
        }
        // IO calls: `.method(` shapes only (a bare `sync(…)` helper is not
        // device IO).
        let is_call = k >= 1
            && k + 1 < file.sig.len()
            && file.sig_text(k + 1) == "("
            && file.sig_text(k - 1) == ".";
        if is_call && cfg.io_methods.iter().any(|m| m == t) {
            let line = file.sig_line(k);
            if !shard.is_empty() {
                push(
                    findings,
                    line,
                    format!(
                        "calls `{t}` while holding the shard lock (`{}`) — the miss \
                         protocol stages IO under only the frame latch",
                        lp.shard_field
                    ),
                );
            }
            if lp.page_io.iter().any(|m| m == t) {
                if frame.is_empty() {
                    push(
                        findings,
                        line,
                        format!(
                            "page IO `{t}` outside the frame latch (`{}`) — concurrent \
                             readers of the frame can observe torn bytes",
                            lp.frame_field
                        ),
                    );
                } else {
                    publish_pending = Some(line);
                }
            }
        }
        // Acquisitions of the two protocol locks.
        if matches!(t, "lock" | "read" | "write")
            && k >= 2
            && k + 1 < file.sig.len()
            && file.sig_text(k + 1) == "("
            && file.sig_text(k - 1) == "."
        {
            let field = file.sig_text(k - 2);
            let (binding, temporary) = super::locks::binding_for(file, k - 2, f.body.start);
            let held = Held {
                binding,
                depth,
                temporary,
            };
            if field == lp.shard_field {
                if publish_pending.is_some() {
                    if !frame.is_empty() {
                        push(
                            findings,
                            file.sig_line(k),
                            format!(
                                "re-acquires the shard lock (`{}`) with the frame latch \
                                 (`{}`) still held — inverts the shard → frame order",
                                lp.shard_field, lp.frame_field
                            ),
                        );
                    }
                    // Either way the publish step happened (well or badly):
                    // one deviation, one finding.
                    publish_pending = None;
                }
                shard.push(held);
            } else if field == lp.frame_field {
                frame.push(held);
            }
        }
    }
    if let Some(io_line) = publish_pending {
        push(
            findings,
            io_line,
            format!(
                "frame-latched page IO is never followed by a shard-lock (`{}`) \
                 re-acquisition — the `loading` mapping is stranded and waiters \
                 spin forever",
                lp.shard_field
            ),
        );
    }
}
