//! Item and call extraction over the token stream.
//!
//! [`FileIndex`] turns one lexed file into the facts the flow rules need:
//!
//! * **functions** — name, `impl` context (so `Pager::write_page` and
//!   `BTree::get` are distinct), visibility, body span, whether the
//!   function lives under `#[cfg(test)]` or `#[test]`;
//! * **struct field types** — `pool: Arc<BufferPool>` records
//!   `(Struct, pool) → BufferPool` after stripping smart-pointer/lock
//!   wrappers, which lets `self.pool.get(…)` resolve to `BufferPool::get`;
//! * **calls** — every `…(`-shaped call site inside a body, classified by
//!   receiver shape ([`CalleeRef`]) for the resolver in `graph`.
//!
//! This is deliberately not a parser: brace matching plus a handful of
//! token patterns covers the project's idioms, and every approximation is
//! written down where it is made.

use std::collections::HashMap;
use std::ops::Range;

use super::lexer::{lex, Token};

/// How a call site names its callee (before resolution).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalleeRef {
    /// `self.m(…)`
    SelfMethod(String),
    /// `self.field.m(…)` — resolvable through the field's declared type.
    FieldMethod { field: String, method: String },
    /// `Type::m(…)` (the last two path segments).
    Qualified { ty: String, method: String },
    /// `m(…)` — a free function.
    Bare(String),
    /// `h.m(…)` where `h` was bound from a handle-preserving call:
    /// `let h = self.field.clone_handle()` (field `Some`) or
    /// `let h = self.clone_handle()` / `self.replicate()` (field `None`,
    /// receiver type = the enclosing impl type). Resolves like
    /// `FieldMethod` / `SelfMethod` — the handle shares the same object.
    HandleMethod {
        field: Option<String>,
        method: String,
    },
    /// `expr.m(…)` with an unknown receiver.
    Method(String),
}

/// Methods that return a shared handle to their receiver (`Arc`-clone
/// constructors introduced by the concurrent read path). A local bound from
/// one of these aliases the receiver, so calls through it must not
/// dead-end in the call graph.
pub const HANDLE_FNS: &[&str] = &["clone_handle", "replicate"];

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    pub callee: CalleeRef,
    /// Index into the file's significant-token list (for ordering checks).
    pub sig_idx: usize,
    pub line: u32,
}

/// One function (or method) defined in a file.
#[derive(Debug, Clone)]
pub struct Function {
    /// Bare name, e.g. `write_page`.
    pub name: String,
    /// `Type::name` for methods, `name` for free functions.
    pub qual: String,
    /// The `impl` target type, if inside an `impl` block.
    pub impl_type: Option<String>,
    /// The trait being implemented, for `impl Trait for Type` blocks.
    pub trait_name: Option<String>,
    pub is_pub: bool,
    /// Under `#[cfg(test)]` or carrying `#[test]`.
    pub is_test: bool,
    pub line: u32,
    /// The signature line's trimmed text (fingerprint anchor).
    pub sig_text: String,
    /// Significant-token index of the `fn` keyword; the parameter list
    /// lives between here and `body.start` (the mut-map scans it for
    /// `&mut` receivers and parameters).
    pub sig_start: usize,
    /// Body span as a range of significant-token indices (excl. braces).
    pub body: Range<usize>,
    pub calls: Vec<Call>,
}

/// One struct field declaration, with the *full* type ident chain — the
/// lockset analysis needs the wrappers (`Arc`, `Mutex`, `AtomicU64`, …)
/// that `field_types` strips for call resolution.
#[derive(Debug, Clone)]
pub struct FieldDecl {
    /// Every type identifier in declaration order: `Arc<Mutex<Vec<u8>>>`
    /// records `["Arc", "Mutex", "Vec", "u8"]`.
    pub ty_idents: Vec<String>,
    pub line: u32,
}

/// A lexed file plus the item facts extracted from it.
pub struct FileIndex {
    /// Workspace-relative path.
    pub path: String,
    pub src: String,
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of code tokens (no whitespace/comments).
    pub sig: Vec<usize>,
    pub functions: Vec<Function>,
    /// `(struct name, field name) → base type` (wrappers stripped).
    pub field_types: HashMap<(String, String), String>,
    /// `(struct name, field name) → full declaration` (wrappers kept).
    pub field_decls: HashMap<(String, String), FieldDecl>,
}

impl FileIndex {
    pub fn build(path: String, src: String) -> FileIndex {
        let tokens = lex(&src);
        let sig: Vec<usize> = (0..tokens.len()).filter(|&i| tokens[i].is_code()).collect();
        let mut index = FileIndex {
            path,
            src,
            tokens,
            sig,
            functions: Vec::new(),
            field_types: HashMap::new(),
            field_decls: HashMap::new(),
        };
        index.scan_items();
        index
    }

    /// Text of the `i`-th significant token.
    pub fn sig_text(&self, i: usize) -> &str {
        self.tokens[self.sig[i]].text(&self.src)
    }

    /// Line of the `i`-th significant token.
    pub fn sig_line(&self, i: usize) -> u32 {
        self.tokens[self.sig[i]].line
    }

    /// The raw source line (1-based), for `lint:allow` suppression lookups.
    pub fn src_line(&self, line: u32) -> &str {
        self.src.lines().nth(line as usize - 1).unwrap_or("")
    }

    /// Does `line` (or the line above it) carry `lint:allow(rule)`?
    pub fn allowed(&self, line: u32, rule: &str) -> bool {
        crate::lint::allows(self.src_line(line), rule)
            || (line > 1 && crate::lint::allows(self.src_line(line - 1), rule))
    }

    /// Find the significant-token index of the matching close brace, given
    /// the index of an open brace.
    fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        for i in open..self.sig.len() {
            match self.sig_text(i) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        self.sig.len() // unbalanced: treat the rest of the file as the body
    }

    /// Find the significant-token index of the matching close paren, given
    /// the index of an open paren (for scanning call-argument spans, e.g.
    /// the closure handed to `thread::spawn`).
    pub fn matching_paren(&self, open: usize) -> usize {
        let mut depth = 0usize;
        for i in open..self.sig.len() {
            match self.sig_text(i) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        self.sig.len()
    }

    // ------------------------------------------------------------- scanning

    fn scan_items(&mut self) {
        let mut impl_stack: Vec<(usize, String, Option<String>)> = Vec::new(); // (close idx, type, trait)
        let mut test_until = 0usize; // significant-token index bounding a #[cfg(test)] mod
        let mut i = 0usize;
        while i < self.sig.len() {
            while let Some(&(close, _, _)) = impl_stack.last() {
                if i > close {
                    impl_stack.pop();
                } else {
                    break;
                }
            }
            match self.sig_text(i) {
                "impl" => {
                    if let Some((close, ty, tr, body_open)) = self.parse_impl_header(i) {
                        impl_stack.push((close, ty, tr));
                        i = body_open + 1;
                        continue;
                    }
                }
                "struct" => {
                    self.scan_struct_fields(i);
                }
                "mod" if self.attr_before(i, "cfg") && self.cfg_test_before(i) => {
                    // `#[cfg(test)] mod …` — everything inside is test code.
                    if let Some(open) = self.find_ahead(i, "{", 4) {
                        test_until = test_until.max(self.matching_brace(open));
                    }
                }
                "fn" => {
                    let in_test = i < test_until || self.attr_before(i, "test");
                    let (ty, tr) = impl_stack
                        .last()
                        .map(|(_, t, tr)| (Some(t.clone()), tr.clone()))
                        .unwrap_or((None, None));
                    if let Some(f) = self.parse_fn(i, ty, tr, in_test) {
                        let next = f.body.end.max(i + 1);
                        self.functions.push(f);
                        i = next;
                        continue;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.extract_calls();
    }

    /// Is there an `#[attr…]` (by leading ident) directly before token `i`,
    /// scanning back over at most a few attribute tokens?
    fn attr_before(&self, i: usize, attr: &str) -> bool {
        // Look back over contiguous `]`-terminated attribute groups and
        // visibility/async/unsafe markers for `# [ attr` shapes.
        let mut j = i;
        let mut budget = 24usize;
        while j > 0 && budget > 0 {
            j -= 1;
            budget -= 1;
            let t = self.sig_text(j);
            if t == ";" || t == "{" || t == "}" {
                return false;
            }
            if t == attr && j >= 2 && self.sig_text(j - 1) == "[" && self.sig_text(j - 2) == "#" {
                return true;
            }
        }
        false
    }

    /// Does the attribute group before `i` contain `cfg ( test )`?
    fn cfg_test_before(&self, i: usize) -> bool {
        let mut j = i;
        let mut budget = 24usize;
        while j > 3 && budget > 0 {
            j -= 1;
            budget -= 1;
            let t = self.sig_text(j);
            if t == ";" || t == "{" || t == "}" {
                return false;
            }
            if t == "test" && self.sig_text(j - 1) == "(" && self.sig_text(j - 2) == "cfg" {
                return true;
            }
        }
        false
    }

    /// Find `needle` within the next `span` significant tokens after `i`.
    fn find_ahead(&self, i: usize, needle: &str, span: usize) -> Option<usize> {
        (i + 1..(i + 1 + span).min(self.sig.len())).find(|&j| self.sig_text(j) == needle)
    }

    /// Parse `impl [<…>] Path [for Path] {`, returning
    /// `(close brace idx, impl type, trait name, open brace idx)`.
    fn parse_impl_header(&self, i: usize) -> Option<(usize, String, Option<String>, usize)> {
        let mut j = i + 1;
        let mut first_path_last_ident = None;
        let mut second_path_last_ident = None;
        let mut saw_for = false;
        let mut angle = 0usize;
        while j < self.sig.len() {
            let t = self.sig_text(j);
            match t {
                "<" => angle += 1,
                ">" => angle = angle.saturating_sub(1),
                "{" if angle == 0 => {
                    let ty = if saw_for {
                        second_path_last_ident
                    } else {
                        first_path_last_ident.clone()
                    }?;
                    let tr = if saw_for { first_path_last_ident } else { None };
                    return Some((self.matching_brace(j), ty, tr, j));
                }
                ";" => return None, // e.g. stray; not an impl block
                "for" if angle == 0 => saw_for = true,
                "where" if angle == 0 => {} // keep scanning to the brace
                _ => {
                    if angle == 0 && is_ident(t) && !is_keyword(t) {
                        if saw_for {
                            second_path_last_ident = Some(t.to_string());
                        } else {
                            first_path_last_ident = Some(t.to_string());
                        }
                    }
                }
            }
            j += 1;
        }
        None
    }

    /// Record `(struct, field) → base type` for a `struct Name { … }`.
    fn scan_struct_fields(&mut self, i: usize) {
        let Some(name) = self
            .sig
            .get(i + 1)
            .map(|_| self.sig_text(i + 1).to_string())
        else {
            return;
        };
        if !is_ident(&name) {
            return;
        }
        // Find the field-block brace (tuple structs and unit structs have
        // none before the `;`).
        let mut j = i + 2;
        let mut angle = 0usize;
        loop {
            if j >= self.sig.len() {
                return;
            }
            match self.sig_text(j) {
                "<" => angle += 1,
                ">" => angle = angle.saturating_sub(1),
                "{" if angle == 0 => break,
                "(" | ";" if angle == 0 => return,
                _ => {}
            }
            j += 1;
        }
        let close = self.matching_brace(j);
        // Fields: `ident :` at depth 1, then type tokens until `,` at depth 1.
        let mut depth = 1usize;
        let mut k = j + 1;
        while k < close {
            let t = self.sig_text(k);
            match t {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => depth = depth.saturating_sub(1),
                _ => {
                    if depth == 1
                        && is_ident(t)
                        && k + 1 < close
                        && self.sig_text(k + 1) == ":"
                        && (k == j + 1 || matches!(self.sig_text(k - 1), "," | "{" | "]"))
                    {
                        let field = t.to_string();
                        // Collect type idents until `,` at depth 1.
                        let mut ty_idents = Vec::new();
                        let mut m = k + 2;
                        let mut d2 = depth;
                        while m < close {
                            let tt = self.sig_text(m);
                            match tt {
                                "{" | "(" | "[" => d2 += 1,
                                "}" | ")" | "]" => d2 -= 1,
                                "," if d2 == 1 => break,
                                _ => {
                                    if is_ident(tt) && !is_keyword(tt) || tt == "dyn" {
                                        ty_idents.push(tt.to_string());
                                    }
                                }
                            }
                            m += 1;
                        }
                        if let Some(base) = base_type(&ty_idents) {
                            self.field_types.insert((name.clone(), field.clone()), base);
                        }
                        self.field_decls.insert(
                            (name.clone(), field),
                            FieldDecl {
                                ty_idents,
                                line: self.sig_line(k),
                            },
                        );
                        k = m;
                        continue;
                    }
                }
            }
            k += 1;
        }
    }

    /// Parse a `fn` item starting at significant index `i` (the `fn` token).
    fn parse_fn(
        &self,
        i: usize,
        impl_type: Option<String>,
        trait_name: Option<String>,
        is_test: bool,
    ) -> Option<Function> {
        let name = self.sig_text(i + 1).to_string();
        if !is_ident(&name) {
            return None;
        }
        let is_pub = self.pub_before(i);
        let line = self.sig_line(i);
        // Scan forward for the body `{` or a trailing `;` (trait decl).
        let mut j = i + 2;
        let mut angle = 0usize;
        let mut paren = 0usize;
        let body_open = loop {
            if j >= self.sig.len() {
                return None;
            }
            match self.sig_text(j) {
                "<" => angle += 1,
                ">" => angle = angle.saturating_sub(1),
                "(" => paren += 1,
                ")" => paren = paren.saturating_sub(1),
                "{" if angle == 0 && paren == 0 => break j,
                ";" if angle == 0 && paren == 0 => return None, // no body
                _ => {}
            }
            j += 1;
        };
        let body_close = self.matching_brace(body_open);
        let qual = match &impl_type {
            Some(t) => format!("{t}::{name}"),
            None => name.clone(),
        };
        Some(Function {
            name,
            qual,
            impl_type,
            trait_name,
            is_pub,
            is_test,
            line,
            sig_text: self.src_line(line).trim().to_string(),
            sig_start: i,
            body: body_open + 1..body_close,
            calls: Vec::new(),
        })
    }

    /// Is the `fn` at `i` preceded by `pub` within its item prefix?
    fn pub_before(&self, i: usize) -> bool {
        let mut j = i;
        let mut budget = 12usize;
        while j > 0 && budget > 0 {
            j -= 1;
            budget -= 1;
            match self.sig_text(j) {
                "pub" => return true,
                ";" | "{" | "}" => return false,
                _ => {}
            }
        }
        false
    }

    // ---------------------------------------------------------------- calls

    /// Populate `calls` for every function from the `ident (` sites in its
    /// body. Macro invocations (`ident ! (`) never match because the `!`
    /// sits between the identifier and the paren.
    fn extract_calls(&mut self) {
        let mut functions = std::mem::take(&mut self.functions);
        for f in &mut functions {
            for k in f.body.clone() {
                if k + 1 >= self.sig.len() || k >= f.body.end {
                    break;
                }
                if self.sig_text(k + 1) != "(" || !is_ident(self.sig_text(k)) {
                    continue;
                }
                let name = self.sig_text(k);
                if is_keyword(name) {
                    continue;
                }
                let callee = self.classify_call(k, f.body.start);
                if let Some(callee) = callee {
                    f.calls.push(Call {
                        callee,
                        sig_idx: k,
                        line: self.sig_line(k),
                    });
                }
            }
        }
        self.functions = functions;
    }

    /// Classify the call whose name token sits at significant index `k`.
    fn classify_call(&self, k: usize, body_start: usize) -> Option<CalleeRef> {
        let name = self.sig_text(k).to_string();
        if k == 0 || k <= body_start {
            return Some(CalleeRef::Bare(name));
        }
        let prev = self.sig_text(k - 1);
        if prev == "." {
            // Receiver shapes: `self . m`, `self . field . m`, `expr . m`.
            if k >= 2 && self.sig_text(k - 2) == "self" {
                return Some(CalleeRef::SelfMethod(name));
            }
            if k >= 4
                && self.sig_text(k - 3) == "."
                && self.sig_text(k - 4) == "self"
                && is_ident(self.sig_text(k - 2))
            {
                return Some(CalleeRef::FieldMethod {
                    field: self.sig_text(k - 2).to_string(),
                    method: name,
                });
            }
            // `h.m(…)` where `h` is a plain local: if `h` was bound from a
            // handle-preserving call (`let h = self.field.clone_handle()`),
            // the receiver type is known and the call need not fall into
            // the ambiguous-receiver bucket.
            if k >= 2 && is_ident(self.sig_text(k - 2)) && (k < 3 || self.sig_text(k - 3) != ".") {
                let recv = self.sig_text(k - 2).to_string();
                if let Some(field) = self.handle_binding(body_start, k, &recv) {
                    return Some(CalleeRef::HandleMethod {
                        field,
                        method: name,
                    });
                }
            }
            return Some(CalleeRef::Method(name));
        }
        if prev == ":" && k >= 3 && self.sig_text(k - 2) == ":" {
            // `Path :: m (` — take the segment before the `::`.
            let ty = self.sig_text(k - 3);
            if is_ident(ty) {
                return Some(CalleeRef::Qualified {
                    ty: ty.to_string(),
                    method: name,
                });
            }
            return None;
        }
        if prev == "fn" {
            return None; // a definition, not a call
        }
        Some(CalleeRef::Bare(name))
    }

    /// Was local `recv` bound (earlier in this body, before token `before`)
    /// from a handle-preserving call? Recognized shapes:
    ///
    /// * `let [mut] recv = self . field . clone_handle (` → `Some(Some(field))`
    /// * `let [mut] recv = self . clone_handle (` (or `replicate`) → `Some(None)`
    ///
    /// Linear back-scan; bodies are small and rebinding is rare, so the
    /// *last* matching binding before the call wins.
    fn handle_binding(
        &self,
        body_start: usize,
        before: usize,
        recv: &str,
    ) -> Option<Option<String>> {
        let mut j = before;
        while j > body_start + 2 {
            j -= 1;
            if self.sig_text(j) != "let" {
                continue;
            }
            let mut k = j + 1;
            if self.sig_text(k) == "mut" {
                k += 1;
            }
            if self.sig_text(k) != recv || k + 3 >= before || self.sig_text(k + 1) != "=" {
                continue;
            }
            // `self . <a> [. <b>] (` with the last segment a handle fn.
            if self.sig_text(k + 2) != "self" || self.sig_text(k + 3) != "." {
                continue;
            }
            let a = self.sig_text(k + 4);
            if !is_ident(a) {
                continue;
            }
            if HANDLE_FNS.contains(&a) && k + 5 < self.sig.len() && self.sig_text(k + 5) == "(" {
                return Some(None);
            }
            if k + 7 < self.sig.len()
                && self.sig_text(k + 5) == "."
                && HANDLE_FNS.contains(&self.sig_text(k + 6))
                && self.sig_text(k + 7) == "("
            {
                return Some(Some(a.to_string()));
            }
        }
        None
    }
}

/// The "interesting" base type of a field: strip smart-pointer and lock
/// wrappers, then take the first remaining type identifier.
/// `Arc<BufferPool>` → `BufferPool`; `Box<dyn Pager>` → `Pager`;
/// `Mutex<WalState>` → `WalState`.
fn base_type(idents: &[String]) -> Option<String> {
    const WRAPPERS: &[&str] = &[
        "Arc", "Box", "Rc", "RefCell", "Cell", "Mutex", "RwLock", "Option", "dyn",
    ];
    idents
        .iter()
        .find(|t| !WRAPPERS.contains(&t.as_str()))
        .or(idents.first())
        .cloned()
}

pub fn is_ident(t: &str) -> bool {
    t.chars()
        .next()
        .is_some_and(|c| c == '_' || c.is_ascii_alphabetic())
}

pub fn is_keyword(t: &str) -> bool {
    matches!(
        t,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "fn"
            | "pub"
            | "use"
            | "mod"
            | "impl"
            | "trait"
            | "struct"
            | "enum"
            | "type"
            | "const"
            | "static"
            | "where"
            | "as"
            | "in"
            | "self"
            | "Self"
            | "super"
            | "crate"
            | "dyn"
            | "unsafe"
            | "async"
            | "await"
    )
}
