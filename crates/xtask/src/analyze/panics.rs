//! Rule `panic-path`: a library `pub fn` must not *transitively* panic.
//!
//! The line lints already flag direct `unwrap`/`expect`/`panic!` sites (and
//! freeze vetted ones in the baseline). What they cannot see is a public
//! entry point whose callee three frames down still unwraps — the caller's
//! signature promises `Result`, but the function can abort the process
//! anyway. This rule collects *panic facts* per function:
//!
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!` invocations
//!   (`assert!`/`debug_assert!` are deliberate invariant checks, excluded);
//! * `.unwrap()` / `.expect(` calls;
//! * slice indexing (`expr[…]`) in the codec files from
//!   `Config::codec_files`, where an out-of-range offset means a corrupt
//!   page rather than a logic bug;
//!
//! then walks the call graph: a plain-`pub` function (not `pub(crate)`)
//! with a call chain reaching a fact is flagged once, with the shortest
//! chain as the explanation. Facts on lines carrying the corresponding
//! line-lint allowance (`lint:allow(unwrap)` etc.) are vetted invariants
//! and do not seed the propagation; the fn-level finding itself is
//! suppressed with `// lint:allow(panic-path): <why>` above the signature.

use std::collections::HashMap;

use super::graph::{CallGraph, FnId};
use super::items::{is_ident, is_keyword, FileIndex};
use super::{Config, Finding};

pub const RULE: &str = "panic-path";

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// One direct panic site: what it is and where.
#[derive(Debug, Clone)]
struct Fact {
    kind: &'static str,
    line: u32,
}

pub fn check(files: &[FileIndex], graph: &CallGraph, cfg: &Config, out: &mut Vec<Finding>) {
    let mut direct: HashMap<FnId, Vec<Fact>> = HashMap::new();
    for (fi, file) in files.iter().enumerate() {
        let codec = cfg.codec_files.contains(&file.path);
        for (ki, f) in file.functions.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let mut facts = Vec::new();
            for k in f.body.clone() {
                let t = file.sig_text(k);
                let next = |n: usize| {
                    if k + n < file.sig.len() {
                        file.sig_text(k + n)
                    } else {
                        ""
                    }
                };
                let line = file.sig_line(k);
                if PANIC_MACROS.contains(&t) && next(1) == "!" {
                    if !file.allowed(line, "panic") && !file.allowed(line, RULE) {
                        facts.push(Fact {
                            kind: "panic!",
                            line,
                        });
                    }
                } else if t == "unwrap" && k > 0 && file.sig_text(k - 1) == "." && next(1) == "(" {
                    if !file.allowed(line, "unwrap") && !file.allowed(line, RULE) {
                        facts.push(Fact {
                            kind: ".unwrap()",
                            line,
                        });
                    }
                } else if t == "expect" && k > 0 && file.sig_text(k - 1) == "." && next(1) == "(" {
                    if !file.allowed(line, "expect") && !file.allowed(line, RULE) {
                        facts.push(Fact {
                            kind: ".expect()",
                            line,
                        });
                    }
                } else if codec
                    && t == "["
                    && k > 0
                    && is_index_base(file.sig_text(k - 1))
                    && !file.allowed(line, RULE)
                {
                    facts.push(Fact {
                        kind: "slice index",
                        line,
                    });
                }
            }
            if !facts.is_empty() {
                direct.insert((fi, ki), facts);
            }
        }
    }

    for (fi, file) in files.iter().enumerate() {
        for (ki, f) in file.functions.iter().enumerate() {
            let id = (fi, ki);
            // Only the crate-external surface: plain `pub fn`.
            if f.is_test || !f.is_pub || !f.sig_text.contains("pub fn ") {
                continue;
            }
            if file.allowed(f.line, RULE) {
                continue;
            }
            // Transitive only — the direct sites are the line lints' job.
            let Some(chain) = graph.chain_to(id, |g| g != id && direct.contains_key(&g)) else {
                continue;
            };
            let last = chain[chain.len() - 1];
            let fact = &direct[&last][0];
            let route = chain
                .iter()
                .map(|&(cf, ck)| files[cf].functions[ck].qual.clone())
                .collect::<Vec<_>>()
                .join(" → ");
            out.push(Finding {
                rule: RULE,
                path: file.path.clone(),
                line: f.line,
                message: format!(
                    "pub fn `{}` may panic via {route} ({} at {}:{})",
                    f.qual, fact.kind, files[last.0].path, fact.line
                ),
                anchor: f.sig_text.clone(),
            });
        }
    }
}

/// Does a `[` after this token open an *index* expression (vs. an array
/// literal, attribute, or type)? Heuristic: indexing follows an identifier,
/// a close bracket, or a close paren.
fn is_index_base(prev: &str) -> bool {
    prev == "]" || prev == ")" || (is_ident(prev) && !is_keyword(prev) && prev != "mut")
}
