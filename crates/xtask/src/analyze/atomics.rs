//! Rule `atomics-ordering`: `Ordering::Relaxed` on a flag atomic is
//! fence-free publication — a reader can observe the flag without the
//! writes it was supposed to publish.
//!
//! The rule targets the shape that actually bites: an `AtomicBool`
//! struct field operated on with `Relaxed`. Flag fields gate *other*
//! state — `shutting_down` guards the
//! queue close, `dirty` guards frame bytes — so their store side needs
//! `Release` (or stronger) and their load side `Acquire`; `Relaxed` only
//! orders the flag itself. Monotonic counters (`AtomicU64` totals, the
//! work-stealing cursor) are exactly the case where `Relaxed` is right,
//! so they are not flagged — that keeps the server's counter block and
//! the metrics registry clean without a pile of allows.
//!
//! Detection is field-typed: the receiver of
//! `<field>.store/load/swap/fetch_*/compare_exchange*(… Relaxed …)` must
//! be a struct field declared `AtomicBool` in the same file. Files in
//! `Config::atomics_allowed_files` (the metrics/tracing modules, whose
//! relaxed counters are the documented fast path) are exempt; individual
//! sites take `// lint:allow(atomics-ordering): <why>`.

use std::collections::HashSet;

use super::items::FileIndex;
use super::{Config, Finding};

pub const RULE: &str = "atomics-ordering";

/// Atomic operations whose `Ordering` argument the rule inspects.
const ATOMIC_OPS: &[&str] = &[
    "store",
    "load",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Field types treated as publication flags.
const FLAG_TYPES: &[&str] = &["AtomicBool"];

pub fn check(files: &[FileIndex], cfg: &Config, out: &mut Vec<Finding>) {
    for file in files {
        if cfg.atomics_allowed_files.contains(&file.path) {
            continue;
        }
        // Flag-typed fields declared in this file, by name.
        let flag_fields: HashSet<&str> = file
            .field_types
            .iter()
            .filter(|(_, ty)| FLAG_TYPES.contains(&ty.as_str()))
            .map(|((_, field), _)| field.as_str())
            .collect();
        if flag_fields.is_empty() {
            continue;
        }
        for f in &file.functions {
            if f.is_test {
                continue;
            }
            for k in f.body.clone() {
                let t = file.sig_text(k);
                if !ATOMIC_OPS.contains(&t)
                    || k < 2
                    || k + 1 >= file.sig.len()
                    || file.sig_text(k + 1) != "("
                    || file.sig_text(k - 1) != "."
                    || !flag_fields.contains(file.sig_text(k - 2))
                {
                    continue;
                }
                // Scan the argument list for a `Relaxed` token.
                let mut depth = 0usize;
                let mut relaxed = false;
                for j in k + 1..file.sig.len() {
                    match file.sig_text(j) {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        "Relaxed" => relaxed = true,
                        _ => {}
                    }
                }
                if !relaxed {
                    continue;
                }
                let line = file.sig_line(k);
                if file.allowed(line, RULE) {
                    continue;
                }
                let field = file.sig_text(k - 2);
                out.push(Finding {
                    rule: RULE,
                    path: file.path.clone(),
                    line,
                    message: format!(
                        "`{field}.{t}(… Relaxed …)` on a flag atomic — publication \
                         needs Release on the store side and Acquire on the load side"
                    ),
                    anchor: file.src_line(line).trim().to_string(),
                });
            }
        }
    }
}
