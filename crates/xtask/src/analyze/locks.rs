//! Rule `lock-order`: every `Mutex`/`RwLock` acquisition must respect the
//! declared canonical order.
//!
//! Lock classes are declared in the [`super::Config`] as
//! `(class name, declaring file, field name)`, in canonical order —
//! outermost first. The extractor recognizes `<field>.lock()`,
//! `<field>.read()` and `<field>.write()` token patterns in the declaring
//! file, simulates guard scopes (a `let`-bound guard lives to the end of
//! its block or an explicit `drop(guard)`; an unbound temporary lives to
//! the end of its statement), and records:
//!
//! * **direct edges** — lock B acquired while a guard for lock A is live;
//! * **calls under lock** — function calls made while holding A, closed
//!   over the call graph (`acquires*` of the callee) to get the propagated
//!   may-hold-while-acquiring edges.
//!
//! An edge A→B is legal iff A strictly precedes B in the declared order.
//! Same-class edges (A→A) are violations too: re-acquiring a non-reentrant
//! lock is a self-deadlock. Suppress a justified edge with
//! `// lint:allow(lock-order): <why>` on or above the acquiring line (for
//! propagated edges, on the call line).

use std::collections::HashMap;

use super::graph::{CallGraph, FnId};
use super::items::FileIndex;
use super::{Config, Finding};

pub const RULE: &str = "lock-order";

/// One live guard during the linear scan of a function body.
#[derive(Debug, Clone)]
struct Held {
    class: usize,
    /// Guard binding, if `let <ident> = …` shaped.
    binding: Option<String>,
    /// Brace depth (within the body) at the binding site; the guard dies
    /// when the scan closes back below this depth.
    depth: usize,
    /// Unbound temporary: released at the next `;` at its depth.
    temporary: bool,
}

pub fn check(files: &[FileIndex], graph: &CallGraph, cfg: &Config, out: &mut Vec<Finding>) {
    let mut acquired_seed: HashMap<FnId, Vec<usize>> = HashMap::new();
    // (held class, caller id, callee id, call line) — edges to close later.
    let mut calls_holding: Vec<(usize, FnId, FnId, u32)> = Vec::new();
    let mut findings: Vec<Finding> = Vec::new();

    for (fi, file) in files.iter().enumerate() {
        let classes: Vec<(usize, &str)> = cfg
            .lock_order
            .iter()
            .enumerate()
            .filter(|(_, c)| c.file == file.path)
            .map(|(i, c)| (i, c.field.as_str()))
            .collect();
        for (ki, f) in file.functions.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let id = (fi, ki);
            let mut held: Vec<Held> = Vec::new();
            let mut depth = 0usize;
            let mut next_call = 0usize;
            for k in f.body.clone() {
                let t = file.sig_text(k);
                match t {
                    "{" => depth += 1,
                    "}" => {
                        depth = depth.saturating_sub(1);
                        held.retain(|a| a.depth <= depth);
                    }
                    ";" => held.retain(|a| !(a.temporary && a.depth >= depth)),
                    _ => {}
                }
                // Explicit `drop(guard)` releases a named guard early.
                if t == "drop" && k + 2 < file.sig.len() && file.sig_text(k + 1) == "(" {
                    let victim = file.sig_text(k + 2);
                    held.retain(|a| a.binding.as_deref() != Some(victim));
                }
                // Record calls made while holding a lock (for propagation).
                while next_call < f.calls.len() && f.calls[next_call].sig_idx <= k {
                    let c = &f.calls[next_call];
                    if c.sig_idx == k && !held.is_empty() {
                        for target in graph.resolve(files, fi, f.impl_type.as_deref(), &c.callee) {
                            for a in &held {
                                calls_holding.push((a.class, id, target, c.line));
                            }
                        }
                    }
                    next_call += 1;
                }
                // Acquisition: `<field> . (lock|read|write) (`.
                if !matches!(t, "lock" | "read" | "write")
                    || k < 2
                    || k + 1 >= file.sig.len()
                    || file.sig_text(k + 1) != "("
                    || file.sig_text(k - 1) != "."
                {
                    continue;
                }
                let field = file.sig_text(k - 2);
                let Some(&(class, _)) = classes.iter().find(|(_, name)| *name == field) else {
                    continue;
                };
                let line = file.sig_line(k);
                if !file.allowed(line, RULE) {
                    for a in &held {
                        if a.class >= class {
                            findings.push(direct_finding(a.class, class, file, line, cfg));
                        }
                    }
                }
                let (binding, temporary) = binding_for(file, k - 2, f.body.start);
                acquired_seed.entry(id).or_default().push(class);
                held.push(Held {
                    class,
                    binding,
                    depth,
                    temporary,
                });
            }
            if let Some(v) = acquired_seed.get_mut(&id) {
                v.sort_unstable();
                v.dedup();
            }
        }
    }

    // Close the call edges over the graph: holding A while calling g is a
    // violation when g may (transitively) acquire a class not after A.
    let acquires = graph.propagate(&acquired_seed);
    for (held_class, caller, callee, line) in calls_holding {
        let caller_file = &files[caller.0];
        if caller_file.allowed(line, RULE) {
            continue;
        }
        let callee_fn = &files[callee.0].functions[callee.1];
        for &inner in acquires.get(&callee).into_iter().flatten() {
            if held_class < inner {
                continue; // legal nesting
            }
            findings.push(Finding {
                rule: RULE,
                path: caller_file.path.clone(),
                line,
                message: format!(
                    "holds `{}` while calling `{}`, which may acquire `{}` \
                     (canonical order: {})",
                    cfg.lock_order[held_class].name,
                    callee_fn.qual,
                    cfg.lock_order[inner].name,
                    order_string(cfg),
                ),
                anchor: caller_file.src_line(line).trim().to_string(),
            });
        }
    }

    findings.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    findings.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.message == b.message);
    out.append(&mut findings);
}

fn direct_finding(
    held: usize,
    acquired: usize,
    file: &FileIndex,
    line: u32,
    cfg: &Config,
) -> Finding {
    let message = if held == acquired {
        format!(
            "re-acquires `{}` while already holding it (self-deadlock on a \
             non-reentrant lock)",
            cfg.lock_order[held].name
        )
    } else {
        format!(
            "acquires `{}` while holding `{}` — against the canonical order ({})",
            cfg.lock_order[acquired].name,
            cfg.lock_order[held].name,
            order_string(cfg),
        )
    };
    Finding {
        rule: RULE,
        path: file.path.clone(),
        line,
        message,
        anchor: file.src_line(line).trim().to_string(),
    }
}

fn order_string(cfg: &Config) -> String {
    cfg.lock_order
        .iter()
        .map(|c| c.name.as_str())
        .collect::<Vec<_>>()
        .join(" < ")
}

/// Determine the binding of the acquisition whose receiver-field token sits
/// at significant index `recv`: scan back to the statement start for a
/// `let [mut] <ident> =` prefix. Shared with the other guard-scope rules
/// (`lock-across-io`, `blocking-in-worker`).
pub(super) fn binding_for(
    file: &FileIndex,
    recv: usize,
    body_start: usize,
) -> (Option<String>, bool) {
    let mut j = recv;
    while j > body_start && recv - j < 24 {
        j -= 1;
        match file.sig_text(j) {
            ";" | "{" | "}" => break,
            "let" => {
                let mut k = j + 1;
                if file.sig_text(k) == "mut" {
                    k += 1;
                }
                let ident = file.sig_text(k);
                if ident != "_" && super::items::is_ident(ident) {
                    return (Some(ident.to_string()), false);
                }
                return (None, true); // `let _ =` (or a pattern): treat as temp
            }
            _ => {}
        }
    }
    (None, true) // temporary: statement-scoped
}
