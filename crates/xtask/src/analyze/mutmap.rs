//! `analyze --mut-map` — the shared-mutability map of the lookup hot path.
//!
//! The ROADMAP's concurrent-read-path refactor needs a work list: which
//! functions reachable from `FuzzyMatcher::lookup` / `lookup_batch` mutate
//! state, and how. This pass walks the call graph from the configured
//! roots and classifies every reachable function by the way it touches
//! shared state:
//!
//! * `mut-self` / `mut-param` — exclusive borrows in the signature;
//! * `lock` / `rwlock-write` — `Mutex::lock` / `RwLock::write` receivers;
//! * `atomic-store` — atomic RMW or store calls (`store`, `swap`,
//!   `fetch_*`, `compare_exchange*`);
//! * `refcell` — `borrow_mut` on a `RefCell`;
//! * `rwlock-read` / `atomic-load` / `refcell-read` — shared-side interior
//!   accesses, listed for completeness but not counted as mutations.
//!
//! The report is a *map*, not a gate with a baseline: `--json` emits it
//! machine-readably and `cargo xtask ci` asserts the mutation-site count
//! against the committed budget in `xtask-mutmap.budget`, so the hot read
//! path's mutation count can only go down without an explicit decision.
//!
//! Like every analyze pass this is name-and-shape based: a `.lock()` on a
//! non-lock receiver would be misclassified, and unresolved calls make the
//! map under-approximate. Both are acceptable for a work list; the flow
//! rules (`lock-across-io`, `atomics-ordering`) carry the hard guarantees.

use std::collections::{BTreeSet, VecDeque};

use super::graph::{CallGraph, FnId};
use super::items::FileIndex;
use super::Config;

/// Atomic calls that publish (RMW or store side).
const ATOMIC_STORES: &[&str] = &[
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_max",
    "fetch_min",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Kinds that count toward the gated mutation-site budget.
const MUTATING_KINDS: &[&str] = &[
    "mut-self",
    "mut-param",
    "lock",
    "rwlock-write",
    "atomic-store",
    "refcell",
];

/// One reachable function that touches shared or exclusive state.
#[derive(Debug, Clone)]
pub struct MutSite {
    /// `Type::name` (or bare name) of the function.
    pub qual: String,
    pub path: String,
    pub line: u32,
    /// Sorted, deduplicated kind labels (see module docs).
    pub kinds: Vec<&'static str>,
    /// Shortest call chain from a root, as qualified names (root first).
    pub chain: Vec<String>,
}

impl MutSite {
    /// Does any kind count as a mutation (vs a shared-side access)?
    pub fn mutates(&self) -> bool {
        self.kinds.iter().any(|k| MUTATING_KINDS.contains(k))
    }
}

/// The whole map: roots, reachability census, and the classified sites.
#[derive(Debug)]
pub struct Report {
    /// Roots that actually resolved to functions (missing ones are a
    /// config error surfaced by the caller).
    pub roots: Vec<String>,
    pub missing_roots: Vec<String>,
    /// Functions reachable from any root (including clean ones).
    pub reachable: usize,
    pub sites: Vec<MutSite>,
}

impl Report {
    /// Sites with at least one mutating kind — the gated count.
    pub fn mutation_sites(&self) -> usize {
        self.sites.iter().filter(|s| s.mutates()).count()
    }
}

/// Compute the map over an analyzed file set.
pub fn compute(files: &[FileIndex], graph: &CallGraph, cfg: &Config) -> Report {
    // Resolve roots by qualified name.
    let mut root_ids: Vec<FnId> = Vec::new();
    let mut roots = Vec::new();
    let mut missing_roots = Vec::new();
    for root in &cfg.mutmap_roots {
        let mut found = false;
        for (fi, file) in files.iter().enumerate() {
            for (ki, f) in file.functions.iter().enumerate() {
                if !f.is_test && &f.qual == root {
                    root_ids.push((fi, ki));
                    found = true;
                }
            }
        }
        if found {
            roots.push(root.clone());
        } else {
            missing_roots.push(root.clone());
        }
    }

    // BFS reachability over resolved edges.
    let mut reachable: BTreeSet<FnId> = BTreeSet::new();
    let mut queue: VecDeque<FnId> = root_ids.iter().copied().collect();
    reachable.extend(root_ids.iter().copied());
    while let Some(cur) = queue.pop_front() {
        for (next, _) in graph.callees.get(&cur).into_iter().flatten() {
            if reachable.insert(*next) {
                queue.push_back(*next);
            }
        }
    }

    // Classify every reachable function; chain from the first root that
    // reaches it (roots are tried in declaration order).
    let mut sites = Vec::new();
    for &id in &reachable {
        let kinds = classify(files, id);
        if kinds.is_empty() {
            continue;
        }
        let chain = root_ids
            .iter()
            .find_map(|&r| graph.chain_to(r, |t| t == id))
            .map(|ids| {
                ids.iter()
                    .map(|&(fi, ki)| files[fi].functions[ki].qual.clone())
                    .collect()
            })
            .unwrap_or_default();
        let f = &files[id.0].functions[id.1];
        sites.push(MutSite {
            qual: f.qual.clone(),
            path: files[id.0].path.clone(),
            line: f.line,
            kinds,
            chain,
        });
    }
    sites.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Report {
        roots,
        missing_roots,
        reachable: reachable.len(),
        sites,
    }
}

/// Kind labels for one function: signature `&mut` borrows plus interior
/// mutability touched in the body.
fn classify(files: &[FileIndex], id: FnId) -> Vec<&'static str> {
    let file = &files[id.0];
    let f = &file.functions[id.1];
    let mut kinds: BTreeSet<&'static str> = BTreeSet::new();

    // Parameter list: `& mut self` / `& mut <other>` between the `fn`
    // token and the body brace.
    let sig_end = f.body.start.saturating_sub(1);
    for k in f.sig_start..sig_end {
        if file.sig_text(k) == "&" && k + 2 < sig_end && file.sig_text(k + 1) == "mut" {
            if file.sig_text(k + 2) == "self" {
                kinds.insert("mut-self");
            } else {
                kinds.insert("mut-param");
            }
        }
    }

    // Body: interior-mutability method calls (`recv . name (` shapes).
    for k in f.body.clone() {
        if k + 1 >= file.sig.len() || k < 1 {
            continue;
        }
        if file.sig_text(k + 1) != "(" || file.sig_text(k - 1) != "." {
            continue;
        }
        match file.sig_text(k) {
            "lock" => {
                kinds.insert("lock");
            }
            "write" => {
                kinds.insert("rwlock-write");
            }
            "read" => {
                kinds.insert("rwlock-read");
            }
            "load" => {
                kinds.insert("atomic-load");
            }
            "borrow_mut" => {
                kinds.insert("refcell");
            }
            "borrow" => {
                kinds.insert("refcell-read");
            }
            m if ATOMIC_STORES.contains(&m) => {
                kinds.insert("atomic-store");
            }
            _ => {}
        }
    }
    kinds.into_iter().collect()
}

/// Human-readable report.
pub fn render(report: &Report) -> Vec<String> {
    let mut out = Vec::new();
    out.push(format!(
        "mut-map: roots [{}], {} reachable function(s), {} touching shared state, \
         {} mutation site(s)",
        report.roots.join(", "),
        report.reachable,
        report.sites.len(),
        report.mutation_sites(),
    ));
    for root in &report.missing_roots {
        out.push(format!("mut-map: WARNING root `{root}` not found"));
    }
    for site in &report.sites {
        let marker = if site.mutates() { "MUT" } else { "   " };
        out.push(format!(
            "  {marker} {}:{} {} [{}]",
            site.path,
            site.line,
            site.qual,
            site.kinds.join(", ")
        ));
        if site.chain.len() > 1 {
            out.push(format!("        via {}", site.chain.join(" -> ")));
        }
    }
    out
}

/// Machine-readable report (std-only, hence by hand — same dialect the
/// findings array uses; `xtask::jsonv` parses it back in CI).
pub fn to_json(report: &Report) -> String {
    use super::json_str;
    let mut out = String::from("{");
    out.push_str(&format!(
        "\n  \"roots\": [{}],",
        report
            .roots
            .iter()
            .map(|r| json_str(r))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "\n  \"missing_roots\": [{}],",
        report
            .missing_roots
            .iter()
            .map(|r| json_str(r))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!("\n  \"reachable\": {},", report.reachable));
    out.push_str(&format!(
        "\n  \"mutation_sites\": {},",
        report.mutation_sites()
    ));
    out.push_str("\n  \"sites\": [");
    for (i, site) in report.sites.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"fn\":{},\"path\":{},\"line\":{},\"mutates\":{},\"kinds\":[{}],\"chain\":[{}]}}",
            json_str(&site.qual),
            json_str(&site.path),
            site.line,
            site.mutates(),
            site.kinds
                .iter()
                .map(|k| json_str(k))
                .collect::<Vec<_>>()
                .join(","),
            site.chain
                .iter()
                .map(|c| json_str(c))
                .collect::<Vec<_>>()
                .join(","),
        ));
    }
    out.push_str("\n  ]\n}");
    out
}
