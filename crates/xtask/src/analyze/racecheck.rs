//! `cargo xtask racecheck` — the concurrency rules (`lockset`,
//! `latch-protocol`) as a standalone gate.
//!
//! Race findings earn their own command and baseline because their
//! lifecycle differs from the general `analyze` rules: they are expected
//! to be **empty on the real tree** (a nonzero baseline here is a known
//! data race, not tolerable debt), and they run the heavier
//! interprocedural lockset machinery that `analyze` does not need.
//! Flags mirror `analyze`: `--json` for machine-readable findings (the
//! CI smoke re-parses it with [`crate::jsonv`]), `--rebaseline` to
//! freeze, `--explain <rule>` for the rationale table (shared with
//! `analyze`, so the 10-rule exhaustiveness test covers both commands).

use super::graph::CallGraph;
use super::items::FileIndex;
use super::{latchproto, lockset, Config, Finding};

pub const BASELINE_FILE: &str = "xtask-racecheck.baseline";

/// Run the two concurrency rules over in-memory sources — the seam the
/// fixture tests drive; [`run`] feeds it the real workspace.
pub fn racecheck_sources(sources: Vec<(String, String)>, cfg: &Config) -> Vec<Finding> {
    let files: Vec<FileIndex> = sources
        .into_iter()
        .map(|(path, src)| FileIndex::build(path, src))
        .collect();
    let graph = CallGraph::build(&files);
    let mut out = Vec::new();
    lockset::check(&files, &graph, cfg, &mut out);
    latchproto::check(&files, cfg, &mut out);
    out.sort_by(|a, b| {
        (a.rule, &a.path, a.line, &a.message).cmp(&(b.rule, &b.path, b.line, &b.message))
    });
    out
}

/// The `--json` document for the current tree — the seam `xtask ci`'s
/// smoke re-parses with [`crate::jsonv`] without spawning a process.
pub fn json_report() -> String {
    let cfg = super::project_config();
    let findings = racecheck_sources(super::workspace_sources(&cfg), &cfg);
    let fps = crate::baseline::assign(&findings, |f| {
        (f.rule.to_string(), f.path.clone(), f.anchor.clone())
    });
    let base = crate::baseline::load(&crate::workspace_root().join(BASELINE_FILE));
    super::to_json(&findings, &fps, &base)
}

pub fn run(args: &[String]) -> i32 {
    let json = args.iter().any(|a| a == "--json");
    let rebaseline = args.iter().any(|a| a == "--rebaseline");
    if let Some(pos) = args.iter().position(|a| a == "--explain") {
        // The rationale table lives with `analyze`; delegate so the two
        // commands cannot drift.
        return super::run(&args[pos..]);
    }
    let root = crate::workspace_root();
    let cfg = super::project_config();
    let findings = racecheck_sources(super::workspace_sources(&cfg), &cfg);
    let fps = crate::baseline::assign(&findings, |f| {
        (f.rule.to_string(), f.path.clone(), f.anchor.clone())
    });
    let baseline_path = root.join(BASELINE_FILE);

    if rebaseline {
        let entries: Vec<(String, u64, String, String)> = findings
            .iter()
            .zip(&fps)
            .map(|(f, &fp)| (f.rule.to_string(), fp, f.path.clone(), f.anchor.clone()))
            .collect();
        if let Err(e) = crate::baseline::write(&baseline_path, "racecheck", &entries) {
            eprintln!("racecheck: cannot write {BASELINE_FILE}: {e}");
            return 1;
        }
        println!(
            "racecheck: baseline rewritten with {} findings",
            entries.len()
        );
        return 0;
    }

    let base = crate::baseline::load(&baseline_path);
    if base.legacy {
        eprintln!(
            "racecheck: {BASELINE_FILE} is in the legacy count format; run \
             `cargo xtask racecheck --rebaseline` once to migrate"
        );
        return 1;
    }
    let new: Vec<&Finding> = findings
        .iter()
        .zip(fps.iter())
        .filter(|(_, fp)| !base.contains(**fp))
        .map(|(f, _)| f)
        .collect();
    let matched = fps.iter().filter(|fp| base.contains(**fp)).count();
    let current: std::collections::HashSet<u64> = fps.iter().copied().collect();
    let stale = base
        .entries
        .iter()
        .filter(|fp| !current.contains(fp))
        .count();

    if json {
        println!("{}", super::to_json(&findings, &fps, &base));
    } else {
        for f in &new {
            eprintln!("  {}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        }
        if stale > 0 {
            println!(
                "racecheck: note: {stale} baselined findings no longer occur; run \
                 `cargo xtask racecheck --rebaseline` to lock in the progress"
            );
        }
    }
    if new.is_empty() {
        if !json {
            println!("racecheck: ok ({matched} baselined findings, 0 new)");
        }
        0
    } else {
        eprintln!("racecheck: FAILED ({} new findings)", new.len());
        1
    }
}
