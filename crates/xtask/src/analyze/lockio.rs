//! Rule `lock-across-io`: no lock-class guard may be live across a pager
//! read/write or WAL append.
//!
//! Holding a latch while the device does IO serializes every other thread
//! that needs the latch behind a disk (or at best a syscall): the exact
//! pattern the concurrent-read-path refactor has to drive out of the hot
//! path. The rule reuses the lock classes declared in
//! [`super::Config::lock_order`] and the guard-scope simulation of
//! [`super::locks`], and flags any **direct** call to a configured IO
//! method (`Config::io_methods` — `read_page`, `write_page`,
//! `read_exact_at`, `write_all_at`, `sync_data`, `sync` in the real tree)
//! made while a guard is live.
//!
//! Deliberately direct-call-only: closing the check over the call graph
//! would flag the whole B-tree (which by design holds its latch across
//! buffer-pool access and *may* fault), drowning the signal. The
//! transitive story is `lock-order`'s propagation job; this rule pins the
//! sites where the IO itself happens under a guard.
//!
//! Files listed in `Config::lockio_exempt_files` (the WAL layer, whose
//! lock *is* the IO serializer by design) are skipped wholesale. Justify
//! an individual site with `// lint:allow(lock-across-io): <why>`.

use super::graph::CallGraph;
use super::items::FileIndex;
use super::{Config, Finding};

pub const RULE: &str = "lock-across-io";

pub fn check(files: &[FileIndex], _graph: &CallGraph, cfg: &Config, out: &mut Vec<Finding>) {
    let mut findings: Vec<Finding> = Vec::new();
    for file in files {
        if cfg.lockio_exempt_files.contains(&file.path) {
            continue;
        }
        let classes: Vec<(usize, &str)> = cfg
            .lock_order
            .iter()
            .enumerate()
            .filter(|(_, c)| c.file == file.path)
            .map(|(i, c)| (i, c.field.as_str()))
            .collect();
        if classes.is_empty() {
            continue;
        }
        for f in &file.functions {
            if f.is_test {
                continue;
            }
            scan_fn(file, f, &classes, cfg, &mut findings);
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    findings.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.message == b.message);
    out.append(&mut findings);
}

/// Guard-scope walk of one body (same shape as `locks::check`): track
/// live guards for this file's lock classes, flag IO-method calls made
/// while any guard is live.
fn scan_fn(
    file: &FileIndex,
    f: &super::items::Function,
    classes: &[(usize, &str)],
    cfg: &Config,
    findings: &mut Vec<Finding>,
) {
    struct Held {
        class: usize,
        binding: Option<String>,
        depth: usize,
        temporary: bool,
    }
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0usize;
    for k in f.body.clone() {
        let t = file.sig_text(k);
        match t {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                held.retain(|a| a.depth <= depth);
            }
            ";" => held.retain(|a| !(a.temporary && a.depth >= depth)),
            _ => {}
        }
        if t == "drop" && k + 2 < file.sig.len() && file.sig_text(k + 1) == "(" {
            let victim = file.sig_text(k + 2);
            held.retain(|a| a.binding.as_deref() != Some(victim));
        }
        // An IO call while any guard is live.
        if cfg.io_methods.iter().any(|m| m == t)
            && k >= 1
            && k + 1 < file.sig.len()
            && file.sig_text(k + 1) == "("
            && file.sig_text(k - 1) == "."
            && !held.is_empty()
        {
            let line = file.sig_line(k);
            if !file.allowed(line, RULE) {
                for a in &held {
                    findings.push(Finding {
                        rule: RULE,
                        path: file.path.clone(),
                        line,
                        message: format!(
                            "calls `{t}` (device IO) while holding `{}` — the guard \
                             serializes every waiter behind the IO",
                            cfg.lock_order[a.class].name
                        ),
                        anchor: file.src_line(line).trim().to_string(),
                    });
                }
            }
        }
        // Acquisition: `<field> . (lock|read|write) (` for this file's
        // classes.
        if !matches!(t, "lock" | "read" | "write")
            || k < 2
            || k + 1 >= file.sig.len()
            || file.sig_text(k + 1) != "("
            || file.sig_text(k - 1) != "."
        {
            continue;
        }
        let field = file.sig_text(k - 2);
        let Some(&(class, _)) = classes.iter().find(|(_, name)| *name == field) else {
            continue;
        };
        let (binding, temporary) = super::locks::binding_for(file, k - 2, f.body.start);
        held.push(Held {
            class,
            binding,
            depth,
            temporary,
        });
    }
}
