//! `cargo xtask analyze` — flow-aware static analysis over a real lexer.
//!
//! Where `xtask lint` judges single lines, `analyze` reasons about *paths*:
//! it lexes every library source file ([`lexer`]), extracts functions,
//! struct field types, and call sites ([`items`]), resolves calls into a
//! workspace call graph ([`graph`]), and runs four project-specific flow
//! rules on top:
//!
//! * [`locks`] — `lock-order`: lock acquisitions must respect the declared
//!   canonical order, including through calls (`may-hold-while-acquiring`);
//! * [`walwrite`] — `wal-write`: page writes are confined to the WAL-aware
//!   layer, and the checkpoint syncs the WAL before touching the main file;
//! * [`panics`] — `panic-path`: a plain-`pub` fn must not transitively
//!   reach `panic!`/`unwrap`/`expect`/codec indexing;
//! * [`unsafety`] — `unsafe-audit` (SAFETY comments, `forbid(unsafe_code)`
//!   for unsafe-free crates) and `float-det` (no hash-order float
//!   accumulation in the similarity kernels);
//! * [`lockio`] — `lock-across-io`: no lock-class guard live across a
//!   direct pager read/write or WAL append;
//! * [`atomics`] — `atomics-ordering`: no `Relaxed` on flag atomics
//!   outside the allowlisted metrics/tracing modules;
//! * [`blocking`] — `blocking-in-worker`: no blocking call in the serving
//!   layer while the queue or connection-registry lock is held.
//!
//! On top of the rules, [`mutmap`] (`analyze --mut-map`) reports the
//! shared-mutability map of the lookup hot path — the concurrent-read-path
//! refactor's work list, gated in CI against `xtask-mutmap.budget`.
//! `analyze --explain <rule>` prints each rule's rationale and fix
//! guidance.
//!
//! The concurrency rules ship as their own command, `cargo xtask
//! racecheck` ([`racecheck`]), with a separate (expected-empty) baseline:
//!
//! * [`lockset`] — Eraser-style shared-field lockset analysis with
//!   interprocedural held-on-entry propagation and spawn-site thread
//!   entry inference;
//! * [`latchproto`] — `latch-protocol`: the buffer-pool miss protocol
//!   (shard lock never across IO, frame latch across the IO window,
//!   shard re-lock to publish/rollback) as a state machine.
//!
//! Known findings are frozen per content fingerprint in
//! `xtask-analyze.baseline` (see [`crate::baseline`]); `--rebaseline`
//! regenerates it, `--json` emits machine-readable findings. Every rule is
//! proven live by seeded-violation fixtures under
//! `crates/xtask/tests/fixtures/` (see DESIGN.md §8).

pub mod atomics;
pub mod blocking;
pub mod graph;
pub mod items;
pub mod latchproto;
pub mod lexer;
pub mod lockio;
pub mod locks;
pub mod lockset;
pub mod mutmap;
pub mod panics;
pub mod racecheck;
pub mod unsafety;
pub mod walwrite;

use std::fs;

use graph::CallGraph;
use items::FileIndex;

pub const BASELINE_FILE: &str = "xtask-analyze.baseline";

/// One lock class: a named `Mutex`/`RwLock` field, identified by the file
/// that declares it. `Config::lock_order` lists these outermost-first.
pub struct LockClass {
    pub name: String,
    /// Workspace-relative path of the declaring file.
    pub file: String,
    /// The struct field holding the lock (`state` for `state: Mutex<…>`).
    pub field: String,
}

/// One analyzed crate, for the per-crate `unsafe` census.
pub struct CrateCfg {
    pub name: String,
    /// Workspace-relative `src` directory.
    pub src_dir: String,
    /// Workspace-relative crate root (`…/src/lib.rs`).
    pub root: String,
}

/// Everything project-specific the rules need — kept as data so the
/// fixture tests can run the same rules against a synthetic project.
pub struct Config {
    pub crates: Vec<CrateCfg>,
    /// Canonical lock order, outermost first.
    pub lock_order: Vec<LockClass>,
    /// Files allowed to call `.write_page(` (the WAL-aware layer).
    pub wal_allowed_files: Vec<String>,
    /// The file holding the checkpoint (WAL → main copy).
    pub wal_checkpoint_file: String,
    /// Field naming the main (non-WAL) pager inside the checkpoint file.
    pub wal_main_field: String,
    /// The call that makes the WAL durable (`sync_data`).
    pub wal_sync_call: String,
    /// Codec files where slice indexing is a panic fact.
    pub codec_files: Vec<String>,
    /// Path prefixes of the float kernels banned from hash containers.
    pub float_det_dirs: Vec<String>,
    /// Method names that perform device IO (`lock-across-io`).
    pub io_methods: Vec<String>,
    /// Files exempt from `lock-across-io` (the WAL layer, whose lock is
    /// the IO serializer by design).
    pub lockio_exempt_files: Vec<String>,
    /// Files exempt from `atomics-ordering` (metrics/tracing, whose
    /// relaxed counters are the documented fast path).
    pub atomics_allowed_files: Vec<String>,
    /// Serving-layer files `blocking-in-worker` scans.
    pub worker_files: Vec<String>,
    /// Guarded fields in the worker files (acquired via `.lock()` etc.).
    pub worker_lock_fields: Vec<String>,
    /// Guard-returning helper functions in the worker files.
    pub worker_guard_fns: Vec<String>,
    /// Blocking verbs `blocking-in-worker` flags under a guard.
    pub blocking_calls: Vec<String>,
    /// Qualified roots of the mut-map reachability walk.
    pub mutmap_roots: Vec<String>,
    /// Extra thread-entry roots for `lockset` (public API called from
    /// arbitrary threads), beyond the spawn sites inferred from sources.
    pub racecheck_entries: Vec<String>,
    /// The buffer-pool miss protocol `latch-protocol` verifies; `None`
    /// disables the rule.
    pub latch_proto: Option<latchproto::LatchProtoCfg>,
}

/// One rule finding. `anchor` is the content the baseline fingerprints —
/// the offending source line, fn signature, or a synthetic stable string.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub message: String,
    pub anchor: String,
}

/// The real workspace's configuration, including the canonical lock order
/// justified in DESIGN.md §8:
///
/// `weights < objects < latch < tail_hint < state < frame-data < wal < mem-pages`
pub fn project_config() -> Config {
    let krate = |name: &str, dir: &str| CrateCfg {
        name: name.to_string(),
        src_dir: format!("crates/{dir}/src"),
        root: format!("crates/{dir}/src/lib.rs"),
    };
    let lock = |name: &str, file: &str, field: &str| LockClass {
        name: name.to_string(),
        file: format!("crates/{file}"),
        field: field.to_string(),
    };
    Config {
        crates: vec![
            krate("fm-text", "text"),
            krate("fm-store", "store"),
            krate("fm-core", "core"),
            krate("fm-datagen", "datagen"),
            krate("fm-server", "server"),
        ],
        lock_order: vec![
            lock("weights", "core/src/matcher.rs", "weights"),
            lock("objects", "store/src/catalog.rs", "objects"),
            lock("latch", "store/src/btree.rs", "latch"),
            lock("tail_hint", "store/src/heap.rs", "tail_hint"),
            lock("state", "store/src/buffer.rs", "state"),
            lock("frame-data", "store/src/buffer.rs", "data"),
            lock("wal", "store/src/wal.rs", "wal"),
            lock("mem-pages", "store/src/pager.rs", "pages"),
        ],
        wal_allowed_files: vec![
            "crates/store/src/pager.rs".to_string(),
            "crates/store/src/wal.rs".to_string(),
            "crates/store/src/buffer.rs".to_string(),
        ],
        wal_checkpoint_file: "crates/store/src/wal.rs".to_string(),
        wal_main_field: "main".to_string(),
        wal_sync_call: "sync_data".to_string(),
        codec_files: vec![
            "crates/store/src/keycode.rs".to_string(),
            "crates/store/src/page.rs".to_string(),
        ],
        float_det_dirs: vec!["crates/core/src/sim".to_string()],
        io_methods: [
            "read_page",
            "write_page",
            "read_exact_at",
            "write_all_at",
            "sync_data",
            "sync",
        ]
        .map(String::from)
        .to_vec(),
        lockio_exempt_files: vec!["crates/store/src/wal.rs".to_string()],
        atomics_allowed_files: vec![
            "crates/core/src/metrics.rs".to_string(),
            "crates/core/src/tracing.rs".to_string(),
            "crates/core/src/telemetry.rs".to_string(),
        ],
        worker_files: vec![
            "crates/server/src/server.rs".to_string(),
            "crates/server/src/queue.rs".to_string(),
        ],
        worker_lock_fields: vec!["state".to_string(), "conns".to_string()],
        worker_guard_fns: vec!["lock_state".to_string(), "lock_conns".to_string()],
        blocking_calls: [
            "sleep",
            "wait",
            "wait_timeout",
            "recv",
            "recv_timeout",
            "accept",
            "connect",
            "join",
        ]
        .map(String::from)
        .to_vec(),
        mutmap_roots: vec![
            "FuzzyMatcher::lookup".to_string(),
            "FuzzyMatcher::lookup_batch".to_string(),
        ],
        // The concurrent API surface: replicas run these on arbitrary
        // threads (server workers, scope::spawn fan-out), so every one is
        // a thread entry even where no spawn site names it directly.
        racecheck_entries: [
            "FuzzyMatcher::lookup",
            "FuzzyMatcher::lookup_batch",
            "FuzzyMatcher::insert_reference",
            "FuzzyMatcher::delete_reference",
        ]
        .map(String::from)
        .to_vec(),
        latch_proto: Some(latchproto::LatchProtoCfg {
            pool_file: "crates/store/src/buffer.rs".to_string(),
            shard_field: "state".to_string(),
            frame_field: "data".to_string(),
            page_io: ["read_page", "write_page"].map(String::from).to_vec(),
        }),
    }
}

/// Run every rule over in-memory sources (`(path, source)` pairs). This is
/// the seam the fixture tests drive; [`run`] feeds it the real workspace.
pub fn analyze_sources(sources: Vec<(String, String)>, cfg: &Config) -> Vec<Finding> {
    let files: Vec<FileIndex> = sources
        .into_iter()
        .map(|(path, src)| FileIndex::build(path, src))
        .collect();
    let graph = CallGraph::build(&files);
    let mut out = Vec::new();
    locks::check(&files, &graph, cfg, &mut out);
    walwrite::check(&files, cfg, &mut out);
    panics::check(&files, &graph, cfg, &mut out);
    unsafety::check(&files, cfg, &mut out);
    lockio::check(&files, &graph, cfg, &mut out);
    atomics::check(&files, cfg, &mut out);
    blocking::check(&files, cfg, &mut out);
    out.sort_by(|a, b| {
        (a.rule, &a.path, a.line, &a.message).cmp(&(b.rule, &b.path, b.line, &b.message))
    });
    out
}

/// Read the real workspace's sources for the configured crates.
fn workspace_sources(cfg: &Config) -> Vec<(String, String)> {
    let root = crate::workspace_root();
    let mut sources = Vec::new();
    for krate in &cfg.crates {
        for file in crate::lint::rs_files(&root.join(&krate.src_dir)) {
            let Ok(src) = fs::read_to_string(&file) else {
                continue;
            };
            sources.push((crate::lint::rel(&root, &file), src));
        }
    }
    sources
}

/// The mut-map report over the real workspace (the seam `ci` drives:
/// it re-parses the JSON with [`crate::jsonv`] and gates the count).
pub fn mutmap_report() -> mutmap::Report {
    let cfg = project_config();
    let files: Vec<FileIndex> = workspace_sources(&cfg)
        .into_iter()
        .map(|(path, src)| FileIndex::build(path, src))
        .collect();
    let graph = CallGraph::build(&files);
    mutmap::compute(&files, &graph, &cfg)
}

pub fn run(args: &[String]) -> i32 {
    let json = args.iter().any(|a| a == "--json");
    let rebaseline = args.iter().any(|a| a == "--rebaseline");
    if let Some(pos) = args.iter().position(|a| a == "--explain") {
        return match args.get(pos + 1) {
            Some(rule) => explain(rule),
            None => {
                eprintln!("analyze: --explain needs a rule name");
                explain_list();
                2
            }
        };
    }
    if args.iter().any(|a| a == "--mut-map") {
        let report = mutmap_report();
        if json {
            println!("{}", mutmap::to_json(&report));
        } else {
            for line in mutmap::render(&report) {
                println!("{line}");
            }
        }
        // A missing root means the map is silently empty — that is a
        // config rot, not a clean report.
        return if report.missing_roots.is_empty() {
            0
        } else {
            1
        };
    }
    let root = crate::workspace_root();
    let cfg = project_config();
    let findings = analyze_sources(workspace_sources(&cfg), &cfg);
    let fps = crate::baseline::assign(&findings, |f| {
        (f.rule.to_string(), f.path.clone(), f.anchor.clone())
    });
    let baseline_path = root.join(BASELINE_FILE);

    if rebaseline {
        let entries: Vec<(String, u64, String, String)> = findings
            .iter()
            .zip(&fps)
            .map(|(f, &fp)| (f.rule.to_string(), fp, f.path.clone(), f.anchor.clone()))
            .collect();
        if let Err(e) = crate::baseline::write(&baseline_path, "analyze", &entries) {
            eprintln!("analyze: cannot write {BASELINE_FILE}: {e}");
            return 1;
        }
        println!(
            "analyze: baseline rewritten with {} findings",
            entries.len()
        );
        return 0;
    }

    let base = crate::baseline::load(&baseline_path);
    if base.legacy {
        eprintln!(
            "analyze: {BASELINE_FILE} is in the legacy count format; run \
             `cargo xtask analyze --rebaseline` once to migrate"
        );
        return 1;
    }
    let new: Vec<(&Finding, u64)> = findings
        .iter()
        .zip(fps.iter().copied())
        .filter(|(_, fp)| !base.contains(*fp))
        .collect();
    let matched = fps.iter().filter(|fp| base.contains(**fp)).count();
    let current: std::collections::HashSet<u64> = fps.iter().copied().collect();
    let stale = base
        .entries
        .iter()
        .filter(|fp| !current.contains(fp))
        .count();

    if json {
        println!("{}", to_json(&findings, &fps, &base));
    } else {
        for (f, _) in &new {
            eprintln!("  {}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        }
        if stale > 0 {
            println!(
                "analyze: note: {stale} baselined findings no longer occur; run \
                 `cargo xtask analyze --rebaseline` to lock in the progress"
            );
        }
    }
    if new.is_empty() {
        if !json {
            println!("analyze: ok ({matched} baselined findings, 0 new)");
        }
        0
    } else {
        eprintln!("analyze: FAILED ({} new findings)", new.len());
        1
    }
}

/// Render findings as a JSON array (std-only, hence by hand).
fn to_json(findings: &[Finding], fps: &[u64], base: &crate::baseline::Baseline) -> String {
    let mut out = String::from("[");
    for (i, (f, &fp)) in findings.iter().zip(fps).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\":{},\"path\":{},\"line\":{},\"fingerprint\":\"{fp:016x}\",\
             \"baselined\":{},\"message\":{},\"anchor\":{}}}",
            json_str(f.rule),
            json_str(&f.path),
            f.line,
            base.contains(fp),
            json_str(&f.message),
            json_str(&f.anchor),
        ));
    }
    out.push_str("\n]");
    out
}

/// Rationale and fix guidance for `analyze --explain <rule>`. One entry
/// per rule (old and new); kept here so the CLI and DESIGN.md §8 cannot
/// drift apart silently — the doc test in `tests/analyze.rs` walks it.
pub const RULES: &[(&str, &str, &str)] = &[
    (
        "lock-order",
        "Lock acquisitions must respect the canonical order (weights < objects < \
         latch < tail_hint < state < frame-data < wal < mem-pages), including \
         through calls. Two threads taking the same pair of locks in opposite \
         orders deadlock; one global order makes that impossible.",
        "Reorder the acquisitions, or drop/scope the outer guard before taking \
         the inner lock. If the nesting is genuinely safe (e.g. the outer guard \
         is never contended there), justify it with \
         `// lint:allow(lock-order): <why>`.",
    ),
    (
        "wal-write",
        "`.write_page(` is confined to the WAL-aware layer, and the checkpoint \
         must `sync_data` the WAL before first touching the main file. A page \
         write that bypasses the WAL, or a checkpoint that copies before the \
         log is durable, breaks crash recovery (durable-at-commit).",
        "Route page writes through the buffer pool / WAL pager. In the \
         checkpoint, emit and fsync the COMMIT record before any \
         `main.write_page`.",
    ),
    (
        "panic-path",
        "A plain-`pub` fn must not transitively reach `panic!`/`unwrap`/\
         `expect`/codec slice-indexing: library callers get aborts instead of \
         errors, and a poisoned panic in the store can take the whole server \
         down.",
        "Return `Result` and propagate with `?`; replace indexing with `get`. \
         For invariants that genuinely cannot fail, justify the site with \
         `// lint:allow(panic-path): <why>` at the pub fn's signature.",
    ),
    (
        "unsafe-audit",
        "Every `unsafe` token needs a `// SAFETY:` comment within three lines, \
         and a crate with zero unsafe must carry `#![forbid(unsafe_code)]` so \
         unsafe cannot creep in unreviewed.",
        "Write the SAFETY argument where the obligation is discharged, or add \
         `#![forbid(unsafe_code)]` to the crate root.",
    ),
    (
        "float-det",
        "The similarity kernels may not iterate `HashMap`/`HashSet`: hash-order \
         f64 accumulation makes scores run-to-run nondeterministic, which \
         breaks the bitwise differential tests and the paper's reproducibility \
         claim.",
        "Use `BTreeMap`/`BTreeSet` or sort before accumulating.",
    ),
    (
        "lock-across-io",
        "A lock-class guard live across a direct pager read/write or WAL \
         append serializes every waiter behind a disk. The concurrent \
         read path cannot scale while a miss does IO under the pool mutex — \
         this rule pins each such site so the refactor can retire them.",
        "Stage the IO outside the critical section (copy out under the lock, \
         do IO, re-lock to publish), or justify the documented trade-off with \
         `// lint:allow(lock-across-io): <why>`. The WAL layer itself is \
         exempt by config: its lock is the IO serializer.",
    ),
    (
        "atomics-ordering",
        "`Ordering::Relaxed` on a flag atomic (an `AtomicBool` field) is \
         fence-free publication: a reader can see the flag without the writes \
         it publishes. Monotonic counters are the one case Relaxed is right, \
         and they are deliberately not flagged.",
        "Use `Release` for the store side and `Acquire` for the load side \
         (or `AcqRel`/`SeqCst` where both apply). If the flag truly orders \
         nothing, justify with `// lint:allow(atomics-ordering): <why>`.",
    ),
    (
        "blocking-in-worker",
        "Serving-layer code must not block (sleep, wait, recv, accept, join) \
         while holding the queue or connection-registry lock: one sleeping \
         thread convoys every producer and worker, and during drain it can \
         deadlock the join handshake.",
        "Move the blocking call outside the guard's scope (drop or block-scope \
         the guard first). A `Condvar::wait` that atomically releases the \
         handed-in mutex is the one legitimate shape — justify it with \
         `// lint:allow(blocking-in-worker): <why>`.",
    ),
    (
        "lockset",
        "Eraser's discipline, statically: every shared-state field (a plain or \
         interior-mutability field of an Arc-shared struct) must have some lock \
         held at every access. A field written under lock A but read under lock \
         B is a data race the moment two threads reach it — and the access-site \
         locksets (intraprocedural guard liveness plus locks always held on \
         entry, propagated through the call graph from the spawn-site thread \
         entries) intersecting to nothing is exactly that shape. Runs under \
         `cargo xtask racecheck`.",
        "Pick one lock class and take it at every access site, demote the field \
         to an atomic with explicit ordering, or confine it to one thread. If \
         an external invariant protects it (e.g. the field is written only \
         before the threads start), justify it with \
         `// lint:allow(lockset): <why>` at the field declaration.",
    ),
    (
        "latch-protocol",
        "The buffer-pool miss protocol in one sentence: claim under the shard \
         lock, IO under only the frame latch, re-lock the shard to publish or \
         roll back. Holding the shard lock across fault-in/write-back IO \
         serializes every same-shard hit behind the disk; page IO without the \
         frame latch lets readers see torn bytes; re-locking the shard with \
         the latch still held inverts the shard → frame order; and never \
         re-locking strands the `loading` mapping so waiters spin forever. \
         Runs under `cargo xtask racecheck`.",
        "Restructure the miss path to the claim → latch → unlock → IO → \
         unlatch → re-lock shape (see `BufferPool::pin_frame`). A deliberate \
         deviation needs `// lint:allow(latch-protocol): <why>` with the \
         invariant that makes it safe.",
    ),
];

fn explain(rule: &str) -> i32 {
    match RULES.iter().find(|(name, _, _)| *name == rule) {
        Some((name, why, fix)) => {
            println!("{name}");
            println!("\nrationale:\n  {}", rewrap(why));
            println!("\nfix:\n  {}", rewrap(fix));
            0
        }
        None => {
            eprintln!("analyze: unknown rule `{rule}`");
            explain_list();
            2
        }
    }
}

fn explain_list() {
    eprintln!("known rules:");
    for (name, _, _) in RULES {
        eprintln!("  {name}");
    }
}

/// Re-flow a rationale string to ~76 columns for terminal output.
fn rewrap(text: &str) -> String {
    let mut out = String::new();
    let mut col = 0usize;
    for word in text.split_whitespace() {
        if col > 0 && col + 1 + word.len() > 74 {
            out.push_str("\n  ");
            col = 0;
        } else if col > 0 {
            out.push(' ');
            col += 1;
        }
        out.push_str(word);
        col += word.len();
    }
    out
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
