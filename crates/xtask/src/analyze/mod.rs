//! `cargo xtask analyze` — flow-aware static analysis over a real lexer.
//!
//! Where `xtask lint` judges single lines, `analyze` reasons about *paths*:
//! it lexes every library source file ([`lexer`]), extracts functions,
//! struct field types, and call sites ([`items`]), resolves calls into a
//! workspace call graph ([`graph`]), and runs four project-specific flow
//! rules on top:
//!
//! * [`locks`] — `lock-order`: lock acquisitions must respect the declared
//!   canonical order, including through calls (`may-hold-while-acquiring`);
//! * [`walwrite`] — `wal-write`: page writes are confined to the WAL-aware
//!   layer, and the checkpoint syncs the WAL before touching the main file;
//! * [`panics`] — `panic-path`: a plain-`pub` fn must not transitively
//!   reach `panic!`/`unwrap`/`expect`/codec indexing;
//! * [`unsafety`] — `unsafe-audit` (SAFETY comments, `forbid(unsafe_code)`
//!   for unsafe-free crates) and `float-det` (no hash-order float
//!   accumulation in the similarity kernels).
//!
//! Known findings are frozen per content fingerprint in
//! `xtask-analyze.baseline` (see [`crate::baseline`]); `--rebaseline`
//! regenerates it, `--json` emits machine-readable findings. Every rule is
//! proven live by seeded-violation fixtures under
//! `crates/xtask/tests/fixtures/` (see DESIGN.md §8).

pub mod graph;
pub mod items;
pub mod lexer;
pub mod locks;
pub mod panics;
pub mod unsafety;
pub mod walwrite;

use std::fs;

use graph::CallGraph;
use items::FileIndex;

pub const BASELINE_FILE: &str = "xtask-analyze.baseline";

/// One lock class: a named `Mutex`/`RwLock` field, identified by the file
/// that declares it. `Config::lock_order` lists these outermost-first.
pub struct LockClass {
    pub name: String,
    /// Workspace-relative path of the declaring file.
    pub file: String,
    /// The struct field holding the lock (`state` for `state: Mutex<…>`).
    pub field: String,
}

/// One analyzed crate, for the per-crate `unsafe` census.
pub struct CrateCfg {
    pub name: String,
    /// Workspace-relative `src` directory.
    pub src_dir: String,
    /// Workspace-relative crate root (`…/src/lib.rs`).
    pub root: String,
}

/// Everything project-specific the rules need — kept as data so the
/// fixture tests can run the same rules against a synthetic project.
pub struct Config {
    pub crates: Vec<CrateCfg>,
    /// Canonical lock order, outermost first.
    pub lock_order: Vec<LockClass>,
    /// Files allowed to call `.write_page(` (the WAL-aware layer).
    pub wal_allowed_files: Vec<String>,
    /// The file holding the checkpoint (WAL → main copy).
    pub wal_checkpoint_file: String,
    /// Field naming the main (non-WAL) pager inside the checkpoint file.
    pub wal_main_field: String,
    /// The call that makes the WAL durable (`sync_data`).
    pub wal_sync_call: String,
    /// Codec files where slice indexing is a panic fact.
    pub codec_files: Vec<String>,
    /// Path prefixes of the float kernels banned from hash containers.
    pub float_det_dirs: Vec<String>,
}

/// One rule finding. `anchor` is the content the baseline fingerprints —
/// the offending source line, fn signature, or a synthetic stable string.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub message: String,
    pub anchor: String,
}

/// The real workspace's configuration, including the canonical lock order
/// justified in DESIGN.md §8:
///
/// `weights < objects < latch < tail_hint < state < frame-data < wal < mem-pages`
pub fn project_config() -> Config {
    let krate = |name: &str, dir: &str| CrateCfg {
        name: name.to_string(),
        src_dir: format!("crates/{dir}/src"),
        root: format!("crates/{dir}/src/lib.rs"),
    };
    let lock = |name: &str, file: &str, field: &str| LockClass {
        name: name.to_string(),
        file: format!("crates/{file}"),
        field: field.to_string(),
    };
    Config {
        crates: vec![
            krate("fm-text", "text"),
            krate("fm-store", "store"),
            krate("fm-core", "core"),
            krate("fm-datagen", "datagen"),
        ],
        lock_order: vec![
            lock("weights", "core/src/matcher.rs", "weights"),
            lock("objects", "store/src/catalog.rs", "objects"),
            lock("latch", "store/src/btree.rs", "latch"),
            lock("tail_hint", "store/src/heap.rs", "tail_hint"),
            lock("state", "store/src/buffer.rs", "state"),
            lock("frame-data", "store/src/buffer.rs", "data"),
            lock("wal", "store/src/wal.rs", "wal"),
            lock("mem-pages", "store/src/pager.rs", "pages"),
        ],
        wal_allowed_files: vec![
            "crates/store/src/pager.rs".to_string(),
            "crates/store/src/wal.rs".to_string(),
            "crates/store/src/buffer.rs".to_string(),
        ],
        wal_checkpoint_file: "crates/store/src/wal.rs".to_string(),
        wal_main_field: "main".to_string(),
        wal_sync_call: "sync_data".to_string(),
        codec_files: vec![
            "crates/store/src/keycode.rs".to_string(),
            "crates/store/src/page.rs".to_string(),
        ],
        float_det_dirs: vec!["crates/core/src/sim".to_string()],
    }
}

/// Run every rule over in-memory sources (`(path, source)` pairs). This is
/// the seam the fixture tests drive; [`run`] feeds it the real workspace.
pub fn analyze_sources(sources: Vec<(String, String)>, cfg: &Config) -> Vec<Finding> {
    let files: Vec<FileIndex> = sources
        .into_iter()
        .map(|(path, src)| FileIndex::build(path, src))
        .collect();
    let graph = CallGraph::build(&files);
    let mut out = Vec::new();
    locks::check(&files, &graph, cfg, &mut out);
    walwrite::check(&files, cfg, &mut out);
    panics::check(&files, &graph, cfg, &mut out);
    unsafety::check(&files, cfg, &mut out);
    out.sort_by(|a, b| {
        (a.rule, &a.path, a.line, &a.message).cmp(&(b.rule, &b.path, b.line, &b.message))
    });
    out
}

pub fn run(args: &[String]) -> i32 {
    let json = args.iter().any(|a| a == "--json");
    let rebaseline = args.iter().any(|a| a == "--rebaseline");
    let root = crate::workspace_root();
    let cfg = project_config();

    let mut sources = Vec::new();
    for krate in &cfg.crates {
        for file in crate::lint::rs_files(&root.join(&krate.src_dir)) {
            let Ok(src) = fs::read_to_string(&file) else {
                continue;
            };
            sources.push((crate::lint::rel(&root, &file), src));
        }
    }
    let findings = analyze_sources(sources, &cfg);
    let fps = crate::baseline::assign(&findings, |f| {
        (f.rule.to_string(), f.path.clone(), f.anchor.clone())
    });
    let baseline_path = root.join(BASELINE_FILE);

    if rebaseline {
        let entries: Vec<(String, u64, String, String)> = findings
            .iter()
            .zip(&fps)
            .map(|(f, &fp)| (f.rule.to_string(), fp, f.path.clone(), f.anchor.clone()))
            .collect();
        if let Err(e) = crate::baseline::write(&baseline_path, "analyze", &entries) {
            eprintln!("analyze: cannot write {BASELINE_FILE}: {e}");
            return 1;
        }
        println!(
            "analyze: baseline rewritten with {} findings",
            entries.len()
        );
        return 0;
    }

    let base = crate::baseline::load(&baseline_path);
    if base.legacy {
        eprintln!(
            "analyze: {BASELINE_FILE} is in the legacy count format; run \
             `cargo xtask analyze --rebaseline` once to migrate"
        );
        return 1;
    }
    let new: Vec<(&Finding, u64)> = findings
        .iter()
        .zip(fps.iter().copied())
        .filter(|(_, fp)| !base.contains(*fp))
        .collect();
    let matched = fps.iter().filter(|fp| base.contains(**fp)).count();
    let current: std::collections::HashSet<u64> = fps.iter().copied().collect();
    let stale = base
        .entries
        .iter()
        .filter(|fp| !current.contains(fp))
        .count();

    if json {
        println!("{}", to_json(&findings, &fps, &base));
    } else {
        for (f, _) in &new {
            eprintln!("  {}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        }
        if stale > 0 {
            println!(
                "analyze: note: {stale} baselined findings no longer occur; run \
                 `cargo xtask analyze --rebaseline` to lock in the progress"
            );
        }
    }
    if new.is_empty() {
        if !json {
            println!("analyze: ok ({matched} baselined findings, 0 new)");
        }
        0
    } else {
        eprintln!("analyze: FAILED ({} new findings)", new.len());
        1
    }
}

/// Render findings as a JSON array (std-only, hence by hand).
fn to_json(findings: &[Finding], fps: &[u64], base: &crate::baseline::Baseline) -> String {
    let mut out = String::from("[");
    for (i, (f, &fp)) in findings.iter().zip(fps).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\":{},\"path\":{},\"line\":{},\"fingerprint\":\"{fp:016x}\",\
             \"baselined\":{},\"message\":{},\"anchor\":{}}}",
            json_str(f.rule),
            json_str(&f.path),
            f.line,
            base.contains(fp),
            json_str(&f.message),
            json_str(&f.anchor),
        ));
    }
    out.push_str("\n]");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
