//! A hand-rolled, lossless Rust lexer.
//!
//! `xtask analyze` must reason about real source — raw strings, nested
//! block comments, lifetimes vs. char literals — where the old
//! string-contains line lints mis-fired (an `.unwrap()` inside a doc
//! comment or a string literal is not a panic site). This lexer is the
//! token-accurate foundation: it is **lossless** (concatenating the token
//! texts reproduces the input byte-for-byte, a property test enforces it)
//! and deliberately coarse where precision buys nothing (keywords are
//! `Ident` tokens; multi-char operators are consecutive `Punct` tokens).
//!
//! Handled precisely, because they change where code ends:
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`, `/**` doc blocks);
//! * string and byte-string literals with escapes;
//! * raw (byte) strings with any `#` arity: `r"…"`, `r#"…"#`, `br##"…"##`;
//! * raw identifiers (`r#match`) vs. raw strings (`r#"…"#`);
//! * lifetimes (`'a`) vs. char literals (`'a'`, `'\''`, `'\u{1F980}'`).

/// The classes of token [`lex`] produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace.
    Whitespace,
    /// `// …` to end of line, including doc (`///`, `//!`) forms.
    LineComment,
    /// `/* … */` with nesting, including doc (`/**`, `/*!`) forms.
    BlockComment,
    /// Identifier or keyword (also raw identifiers like `r#match`).
    Ident,
    /// A lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// A char literal: `'x'`, `'\''`, `'\u{…}'`, or a byte literal `b'x'`.
    Char,
    /// A string or byte-string literal, raw or escaped.
    Str,
    /// A numeric literal, including suffixes (`0xFFu8`, `1.5e-3`).
    Num,
    /// Any single other character (operators, brackets, `;`, …).
    Punct,
}

/// One token: a kind plus the byte span it covers in the source.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: u32,
}

impl Token {
    /// The token's text within `src` (the string that was lexed).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether this token carries code (not whitespace or a comment).
    pub fn is_code(&self) -> bool {
        !matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

/// Lex `src` into a lossless token stream: the concatenation of every
/// token's text equals `src` exactly, even for malformed input (an
/// unterminated literal swallows the rest of the file rather than failing).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always make progress");
            out.push(Token {
                kind,
                start,
                end: self.pos,
                line,
            });
        }
        out
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    /// Advance one byte, tracking line numbers.
    fn bump(&mut self) {
        if self.src[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn next_kind(&mut self) -> TokenKind {
        let c = self.src[self.pos];
        match c {
            b'/' if self.peek(1) == b'/' => self.line_comment(),
            b'/' if self.peek(1) == b'*' => self.block_comment(),
            c if c.is_ascii_whitespace() => self.whitespace(),
            b'r' | b'b' => self.r_or_b(),
            c if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
            c if c.is_ascii_digit() => self.number(),
            b'\'' => self.quote(),
            b'"' => self.string(),
            _ => self.punct(),
        }
    }

    fn line_comment(&mut self) -> TokenKind {
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.bump();
        }
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos] == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.src[self.pos] == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        TokenKind::BlockComment
    }

    fn whitespace(&mut self) -> TokenKind {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.bump();
        }
        TokenKind::Whitespace
    }

    /// `r` and `b` open raw strings (`r"…"`, `r#"…"#`), byte literals
    /// (`b'x'`), byte strings (`b"…"`, `br#"…"#`) and raw identifiers
    /// (`r#match`) — or are just the first letter of an identifier.
    fn r_or_b(&mut self) -> TokenKind {
        let c = self.src[self.pos];
        // How many prefix bytes before a potential quote? b=1, r=1, br/rb=2.
        let second = self.peek(1);
        let (prefix, raw) = match (c, second) {
            (b'b', b'r') => (2, true),
            (b'b', _) => (1, false),
            (b'r', _) => (1, true),
            _ => unreachable!("r_or_b called on {c}"),
        };
        if raw {
            // Count '#'s after the prefix; a quote then opens a raw string.
            let mut hashes = 0;
            while self.peek(prefix + hashes) == b'#' {
                hashes += 1;
            }
            if self.peek(prefix + hashes) == b'"' {
                for _ in 0..prefix + hashes + 1 {
                    self.bump();
                }
                return self.raw_string_tail(hashes);
            }
            if hashes > 0 && prefix == 1 && is_ident_start(self.peek(2)) {
                // Raw identifier: `r#match`.
                self.bump(); // r
                self.bump(); // #
                return self.ident();
            }
            return self.ident();
        }
        // b'…' / b"…", else identifier.
        match self.peek(1) {
            b'\'' => {
                self.bump(); // b
                self.quote_char_literal()
            }
            b'"' => {
                self.bump(); // b
                self.string()
            }
            _ => self.ident(),
        }
    }

    /// After the opening `"` of a raw string with `hashes` hashes, consume
    /// through the matching `"##…`.
    fn raw_string_tail(&mut self, hashes: usize) -> TokenKind {
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'"' {
                let mut matched = 0;
                while matched < hashes && self.peek(1 + matched) == b'#' {
                    matched += 1;
                }
                if matched == hashes {
                    for _ in 0..hashes + 1 {
                        self.bump();
                    }
                    return TokenKind::Str;
                }
            }
            self.bump();
        }
        TokenKind::Str // unterminated: swallow the tail, stay lossless
    }

    fn ident(&mut self) -> TokenKind {
        while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
            self.bump();
        }
        TokenKind::Ident
    }

    fn number(&mut self) -> TokenKind {
        // Integer part (covers 0x/0o/0b digits and type suffixes too: any
        // run of alphanumerics/underscores after a leading digit).
        while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
            self.bump();
        }
        // A fractional part only when `.` is followed by a digit — so
        // `0..10` and `1.max(2)` do not eat the dot.
        if self.pos < self.src.len() && self.src[self.pos] == b'.' && self.peek(1).is_ascii_digit()
        {
            self.bump(); // '.'
            while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
                self.bump();
            }
        }
        // Exponent sign: `1e-3` leaves `-3` unconsumed above; `e`/`E` was.
        if self.pos < self.src.len()
            && matches!(self.src[self.pos], b'+' | b'-')
            && matches!(self.src[self.pos - 1], b'e' | b'E')
            && self.peek(1).is_ascii_digit()
        {
            self.bump();
            while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
                self.bump();
            }
        }
        TokenKind::Num
    }

    /// A `'` opens either a lifetime (`'a`, `'static`) or a char literal
    /// (`'a'`, `'\''`). Disambiguation: an identifier char follows AND the
    /// char after that identifier run is not `'`.
    fn quote(&mut self) -> TokenKind {
        if is_ident_start(self.peek(1)) {
            let mut len = 1;
            while is_ident_continue(self.peek(1 + len)) {
                len += 1;
            }
            if self.peek(1 + len) != b'\'' {
                // Lifetime: consume the quote and the identifier.
                self.bump();
                for _ in 0..len {
                    self.bump();
                }
                return TokenKind::Lifetime;
            }
        }
        self.quote_char_literal()
    }

    /// A char/byte literal starting at `'` (prefix `b` already consumed).
    fn quote_char_literal(&mut self) -> TokenKind {
        self.bump(); // opening '
        if self.pos < self.src.len() {
            if self.src[self.pos] == b'\\' {
                self.bump();
                if self.pos < self.src.len() {
                    let esc = self.src[self.pos];
                    self.bump(); // the escaped char
                    if esc == b'u' && self.pos < self.src.len() && self.src[self.pos] == b'{' {
                        while self.pos < self.src.len() && self.src[self.pos] != b'}' {
                            self.bump();
                        }
                        if self.pos < self.src.len() {
                            self.bump(); // the closing `}`
                        }
                    }
                }
            } else if self.src[self.pos] != b'\'' {
                self.bump(); // the literal char (first byte; rest below)
                while self.pos < self.src.len() && !self.src[self.pos].is_ascii() {
                    self.bump(); // continuation bytes of a multibyte char
                }
            }
        }
        if self.pos < self.src.len() && self.src[self.pos] == b'\'' {
            self.bump(); // closing '
        }
        TokenKind::Char
    }

    fn string(&mut self) -> TokenKind {
        self.bump(); // opening "
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => {
                    self.bump();
                    if self.pos < self.src.len() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.bump();
                    return TokenKind::Str;
                }
                _ => self.bump(),
            }
        }
        TokenKind::Str // unterminated
    }

    fn punct(&mut self) -> TokenKind {
        // Consume one char, UTF-8 aware (a stray multibyte char — typically
        // inside text that is not really code — must stay one token).
        self.bump();
        while self.pos < self.src.len() && (self.src[self.pos] & 0xC0) == 0x80 {
            self.pos += 1; // continuation bytes never contain '\n'
        }
        TokenKind::Punct
    }
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic()
}

fn is_ident_continue(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}
