//! Rule `wal-write`: page mutation must flow through the WAL-aware layer.
//!
//! Two checks, both token-accurate:
//!
//! 1. **Confinement** — a `.write_page(` call may appear only in the files
//!    declared in `Config::wal_allowed_files` (the pager impls, the WAL
//!    itself, and the buffer pool, which always routes through the injected
//!    `Pager`). Any new code path writing pages directly would bypass
//!    durability silently; it is flagged at the call site.
//! 2. **Checkpoint ordering** — inside the checkpoint file, a function
//!    that copies logged pages into the main file
//!    (`<wal_main_field>.write_page(…)`) must call the WAL durability
//!    point (`<wal_sync_call>(…)`) first. The first main-file write must
//!    come after the first sync, or a crash mid-checkpoint loses committed
//!    data.
//!
//! Suppress a vetted site with `// lint:allow(wal-write): <why>`.

use super::items::FileIndex;
use super::{Config, Finding};

pub const RULE: &str = "wal-write";

pub fn check(files: &[FileIndex], cfg: &Config, out: &mut Vec<Finding>) {
    for file in files {
        let allowed_file = cfg.wal_allowed_files.contains(&file.path);
        let checkpoint_file = file.path == cfg.wal_checkpoint_file;
        for f in &file.functions {
            if f.is_test {
                continue;
            }
            let mut first_sync: Option<usize> = None;
            let mut first_main_write: Option<(usize, u32)> = None;
            for k in f.body.clone() {
                let t = file.sig_text(k);
                // Calls only: `. name (` — definitions have `fn` before.
                if k == 0 || file.sig_text(k - 1) != "." {
                    continue;
                }
                if k + 1 >= file.sig.len() || file.sig_text(k + 1) != "(" {
                    continue;
                }
                if t == cfg.wal_sync_call {
                    first_sync.get_or_insert(k);
                }
                if t != "write_page" {
                    continue;
                }
                let line = file.sig_line(k);
                if !allowed_file && !file.allowed(line, RULE) {
                    out.push(Finding {
                        rule: RULE,
                        path: file.path.clone(),
                        line,
                        message: format!(
                            "page write outside the WAL-aware layer (allowed files: {}); \
                             route mutation through the buffer pool so durability cannot \
                             be bypassed",
                            cfg.wal_allowed_files.join(", ")
                        ),
                        anchor: file.src_line(line).trim().to_string(),
                    });
                }
                if checkpoint_file
                    && k >= 2
                    && file.sig_text(k - 2) == cfg.wal_main_field
                    && first_main_write.is_none()
                {
                    first_main_write = Some((k, line));
                }
            }
            if let Some((write_idx, line)) = first_main_write {
                let synced_first = first_sync.is_some_and(|s| s < write_idx);
                if !synced_first && !file.allowed(line, RULE) {
                    out.push(Finding {
                        rule: RULE,
                        path: file.path.clone(),
                        line,
                        message: format!(
                            "`{}` copies pages into `{}` before `{}` makes the WAL \
                             durable; a crash mid-checkpoint would lose committed data",
                            f.qual, cfg.wal_main_field, cfg.wal_sync_call
                        ),
                        anchor: file.src_line(line).trim().to_string(),
                    });
                }
            }
        }
    }
}
