//! Rules `unsafe-audit` and `float-det`.
//!
//! **unsafe-audit** — every `unsafe` keyword in library code must be
//! covered by a `// SAFETY:` comment on the same line or within the three
//! lines above it (the std convention clippy's `undocumented_unsafe_blocks`
//! enforces, minus the nightly requirement). And the inverse: a crate with
//! *zero* unsafe tokens must say so — its root must carry
//! `#![forbid(unsafe_code)]`, so the first future unsafe block is a
//! deliberate, reviewed decision instead of a drive-by.
//!
//! **float-det** — the similarity kernels under `Config::float_det_dirs`
//! accumulate `f64` scores; iterating a `HashMap`/`HashSet` there makes the
//! reduction order — and therefore the low bits of every score — depend on
//! the hasher seed. Scores must be reproducible run-to-run (DESIGN.md's
//! determinism invariant), so hash containers are banned in those files in
//! favor of `BTreeMap` or sorted `Vec`s.

use super::items::FileIndex;
use super::{Config, Finding};

pub const UNSAFE_RULE: &str = "unsafe-audit";
pub const FLOAT_RULE: &str = "float-det";

pub fn check(files: &[FileIndex], cfg: &Config, out: &mut Vec<Finding>) {
    // Per-crate census of `unsafe` tokens (code tokens only, so the word in
    // comments or strings does not count).
    for krate in &cfg.crates {
        let prefix = format!("{}/", krate.src_dir);
        let mut any_unsafe = false;
        for file in files.iter().filter(|f| f.path.starts_with(&prefix)) {
            for i in 0..file.sig.len() {
                if file.sig_text(i) != "unsafe" {
                    continue;
                }
                any_unsafe = true;
                let line = file.sig_line(i);
                if !has_safety_comment(file, line) && !file.allowed(line, UNSAFE_RULE) {
                    out.push(Finding {
                        rule: UNSAFE_RULE,
                        path: file.path.clone(),
                        line,
                        message: "unsafe without a `// SAFETY:` comment (same line or the \
                                  3 lines above) stating the invariant that makes it sound"
                            .into(),
                        anchor: file.src_line(line).trim().to_string(),
                    });
                }
            }
        }
        if !any_unsafe {
            let root_has_forbid = files
                .iter()
                .find(|f| f.path == krate.root)
                .is_some_and(|f| f.src.contains("forbid(unsafe_code)"));
            if !root_has_forbid {
                out.push(Finding {
                    rule: UNSAFE_RULE,
                    path: krate.root.clone(),
                    line: 1,
                    message: format!(
                        "crate `{}` has no unsafe code; add `#![forbid(unsafe_code)]` to \
                         its root so it stays that way",
                        krate.name
                    ),
                    // Synthetic anchor: stable under unrelated edits to line 1.
                    anchor: format!("missing #![forbid(unsafe_code)] in {}", krate.name),
                });
            }
        }
    }

    for file in files {
        if !cfg
            .float_det_dirs
            .iter()
            .any(|d| file.path.starts_with(d.as_str()))
        {
            continue;
        }
        for i in 0..file.sig.len() {
            let t = file.sig_text(i);
            if t != "HashMap" && t != "HashSet" {
                continue;
            }
            let line = file.sig_line(i);
            if file.allowed(line, FLOAT_RULE) {
                continue;
            }
            out.push(Finding {
                rule: FLOAT_RULE,
                path: file.path.clone(),
                line,
                message: format!(
                    "`{t}` in a float-accumulating kernel: iteration order depends on \
                     the hasher seed, so scores stop being reproducible — use BTreeMap \
                     or a sorted Vec"
                ),
                anchor: file.src_line(line).trim().to_string(),
            });
        }
    }
}

/// Is there a `SAFETY:` comment on `line` or within the three lines above?
fn has_safety_comment(file: &FileIndex, line: u32) -> bool {
    let lo = line.saturating_sub(3).max(1);
    (lo..=line).any(|l| {
        let s = file.src_line(l);
        match s.find("//") {
            Some(pos) => s[pos..].contains("SAFETY:"),
            None => false,
        }
    })
}
