//! `cargo xtask deepcheck` — exercise every `check_invariants()` validator
//! in the workspace against a realistically-churned instance.
//!
//! The lint pass proves the code *looks* right; this pass proves the data
//! structures *are* right: it builds a reference relation from the datagen
//! customer generator, constructs the ETI and weight tables over it, churns
//! the index with inserts and deletes, then asks every layer — slotted
//! pages, B+-trees, heap files, WAL, catalog, ETI, weight tables, matcher —
//! to re-derive its own invariants from raw bytes and compare against its
//! bookkeeping. Any drift is a bug in maintenance code, not in the checker.

use fm_core::{Config, FuzzyMatcher};
use fm_datagen::{generate_customers, GeneratorConfig, CUSTOMER_COLUMNS};
use fm_store::{Database, Pager, WalPager, PAGE_SIZE};

pub fn run() -> i32 {
    match deepcheck() {
        Ok(()) => {
            println!("deepcheck: ok");
            0
        }
        Err(e) => {
            eprintln!("deepcheck: FAILED: {e}");
            1
        }
    }
}

fn deepcheck() -> Result<(), String> {
    check_matcher_stack()?;
    check_metrics_stack()?;
    check_wal_stack()?;
    check_durable_reopen()?;
    Ok(())
}

/// Run a batch of lookups and validate the observability layer: every
/// per-query trace must be internally consistent, the metrics registry must
/// equal the exact sum of the traces (no lost relaxed-atomic updates), and
/// the snapshot's own invariants must hold.
fn check_metrics_stack() -> Result<(), String> {
    let db = Database::in_memory().map_err(|e| e.to_string())?;
    let config = Config::default().with_columns(&CUSTOMER_COLUMNS);
    let reference = generate_customers(&GeneratorConfig::new(400, 43));
    let matcher = FuzzyMatcher::build(&db, "metrics", reference.iter().cloned(), config)
        .map_err(|e| format!("metrics build: {e}"))?;

    let inputs: Vec<_> = reference.iter().take(64).cloned().collect();
    let results = matcher
        .lookup_batch(&inputs, 2, 0.0, 4)
        .map_err(|e| format!("metrics batch: {e}"))?;
    let mut fms_evals = 0u64;
    let mut qgrams = 0u64;
    for r in &results {
        r.trace
            .check_consistent()
            .map_err(|e| format!("trace: {e}"))?;
        fms_evals += r.trace.fms_evals;
        qgrams += r.trace.qgrams_probed;
    }
    let snapshot = matcher.metrics_snapshot();
    if snapshot.lookups != results.len() as u64 {
        return Err(format!(
            "registry counted {} lookups, ran {}",
            snapshot.lookups,
            results.len()
        ));
    }
    if snapshot.fms_evals != fms_evals || snapshot.qgrams_probed != qgrams {
        return Err(format!(
            "registry drifted from the trace sum: {} fms evals vs {fms_evals}, \
             {} q-grams vs {qgrams}",
            snapshot.fms_evals, snapshot.qgrams_probed
        ));
    }
    let check = snapshot
        .check_invariants()
        .map_err(|e| format!("metrics snapshot: {e}"))?;
    println!(
        "deepcheck: metrics ok — {} lookups, {} fms evaluations, {} histogram events",
        check.lookups, check.fms_evals, check.histogram_events
    );
    Ok(())
}

/// Build + churn a matcher over generated customers, then validate the
/// matcher, its weight tables, and the whole database underneath it.
fn check_matcher_stack() -> Result<(), String> {
    let db = Database::in_memory().map_err(|e| e.to_string())?;
    let config = Config::default().with_columns(&CUSTOMER_COLUMNS);
    let reference = generate_customers(&GeneratorConfig::new(600, 42));
    let matcher = FuzzyMatcher::build(&db, "deepcheck", reference.iter().cloned(), config)
        .map_err(|e| format!("matcher build: {e}"))?;

    // Churn: deletions and re-insertions stress the incremental-maintenance
    // paths (ETI tid-list surgery, weight-table frequency updates, tombstone
    // handling) that a pristine build never touches.
    for tid in [3u32, 57, 101, 400] {
        matcher
            .delete_reference(tid)
            .map_err(|e| format!("churn delete {tid}: {e}"))?;
    }
    for record in generate_customers(&GeneratorConfig::new(25, 777)) {
        matcher
            .insert_reference(&record)
            .map_err(|e| format!("churn insert: {e}"))?;
    }

    let report = matcher
        .check_invariants()
        .map_err(|e| format!("matcher: {e}"))?;
    println!(
        "deepcheck: matcher ok — {} reference tuples, {} distinct tokens, \
         eti: {} groups / {} chunks / {} stop rows / {} tids",
        report.reference_tuples,
        report.distinct_tokens,
        report.eti.groups,
        report.eti.chunks,
        report.eti.stop_groups,
        report.eti.tids
    );

    // The bounded (hash-bucketed) weight table is derived, not maintained;
    // rebuild one from the live frequencies and confirm it agrees.
    let weights = matcher.clone_weights();
    weights
        .check_invariants()
        .map_err(|e| format!("weight table: {e}"))?;
    let freqs = weights.frequencies();
    fm_core::weights::BoundedWeightTable::new(freqs, 1024, 7)
        .check_consistent_with(freqs)
        .map_err(|e| format!("bounded weight table: {e}"))?;

    let dbreport = db
        .check_invariants()
        .map_err(|e| format!("database: {e}"))?;
    println!(
        "deepcheck: database ok — {} tables, {} indexes, {} meta blobs",
        dbreport.tables, dbreport.indexes, dbreport.meta_blobs
    );
    Ok(())
}

/// Validate the WAL pager through a log-write/sync cycle.
fn check_wal_stack() -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("fm-deepcheck-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let path = dir.join("wal-check.db");
    let result = (|| -> Result<(), String> {
        let pager = WalPager::open(&path).map_err(|e| e.to_string())?;
        let a = pager.allocate().map_err(|e| e.to_string())?;
        let b = pager.allocate().map_err(|e| e.to_string())?;
        pager
            .write_page(a, &[0xAB; PAGE_SIZE])
            .map_err(|e| e.to_string())?;
        pager
            .write_page(b, &[0xCD; PAGE_SIZE])
            .map_err(|e| e.to_string())?;
        pager
            .write_page(a, &[0xEF; PAGE_SIZE])
            .map_err(|e| e.to_string())?;
        let busy = pager
            .check_invariants()
            .map_err(|e| format!("wal (pre-sync): {e}"))?;
        if busy.records != 3 || busy.resident_pages != 2 {
            return Err(format!(
                "wal should hold 3 records over 2 pages before sync, found {busy:?}"
            ));
        }
        pager.sync().map_err(|e| e.to_string())?;
        let clean = pager
            .check_invariants()
            .map_err(|e| format!("wal (post-sync): {e}"))?;
        if clean.records != 0 || clean.resident_pages != 0 {
            return Err(format!(
                "wal should be empty after checkpoint, found {clean:?}"
            ));
        }
        println!(
            "deepcheck: wal ok — checkpoint drained {} records",
            busy.records
        );
        Ok(())
    })();
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// Round-trip a durable database through close/reopen, validating after both.
fn check_durable_reopen() -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("fm-deepcheck-db-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let path = dir.join("durable.db");
    let result = (|| -> Result<(), String> {
        {
            let db = Database::open_file_durable(&path, 64).map_err(|e| e.to_string())?;
            let config = Config::default().with_columns(&CUSTOMER_COLUMNS);
            let reference = generate_customers(&GeneratorConfig::new(120, 9));
            let matcher = FuzzyMatcher::build(&db, "durable", reference.into_iter(), config)
                .map_err(|e| format!("durable build: {e}"))?;
            matcher
                .check_invariants()
                .map_err(|e| format!("durable matcher: {e}"))?;
            db.check_invariants()
                .map_err(|e| format!("durable database: {e}"))?;
            db.flush().map_err(|e| e.to_string())?;
        }
        let db = Database::open_file_durable(&path, 64).map_err(|e| e.to_string())?;
        let report = db
            .check_invariants()
            .map_err(|e| format!("database after reopen: {e}"))?;
        let matcher =
            FuzzyMatcher::open(&db, "durable").map_err(|e| format!("durable reopen: {e}"))?;
        matcher
            .check_invariants()
            .map_err(|e| format!("matcher after reopen: {e}"))?;
        println!(
            "deepcheck: durable reopen ok — {} tables, {} indexes survived",
            report.tables, report.indexes
        );
        Ok(())
    })();
    let _ = std::fs::remove_dir_all(&dir);
    result
}
