//! `cargo xtask ci` — the full pre-PR gate, in dependency order:
//!
//! 1. `cargo fmt --all -- --check`
//! 2. `cargo clippy --workspace --all-targets -- -D warnings`
//! 3. `cargo xtask lint` (in-process)
//! 4. `cargo xtask analyze` (in-process)
//! 5. `cargo xtask deepcheck` (in-process)
//! 6. `cargo test --workspace -q`
//!
//! Everything runs offline. `scripts/ci.sh` wraps this for shell callers.

use std::process::Command;

pub fn run() -> i32 {
    let steps: &[(&str, &[&str])] = &[
        ("fmt", &["fmt", "--all", "--", "--check"]),
        (
            "clippy",
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ],
        ),
    ];
    for (name, args) in steps {
        if let Some(code) = run_cargo(name, args) {
            return code;
        }
    }

    println!("ci: lint");
    let code = crate::lint::run(false);
    if code != 0 {
        return code;
    }
    println!("ci: analyze");
    let code = crate::analyze::run(&[]);
    if code != 0 {
        return code;
    }
    println!("ci: deepcheck");
    let code = crate::deepcheck::run();
    if code != 0 {
        return code;
    }

    if let Some(code) = run_cargo("test", &["test", "--workspace", "-q"]) {
        return code;
    }
    println!("ci: all checks passed");
    0
}

/// Run a cargo subcommand from the workspace root; `Some(code)` on failure.
fn run_cargo(name: &str, args: &[&str]) -> Option<i32> {
    println!("ci: cargo {}", args.join(" "));
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let status = Command::new(cargo)
        .args(args)
        .current_dir(crate::workspace_root())
        .status();
    match status {
        Ok(status) if status.success() => None,
        Ok(status) => {
            eprintln!("ci: `cargo {name}` failed with {status}");
            Some(status.code().unwrap_or(1))
        }
        Err(e) => {
            eprintln!("ci: cannot spawn cargo for `{name}`: {e}");
            Some(1)
        }
    }
}
