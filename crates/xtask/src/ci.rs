//! `cargo xtask ci` — the full pre-PR gate, in dependency order:
//!
//! 1. `cargo fmt --all -- --check`
//! 2. `cargo clippy --workspace --all-targets -- -D warnings`
//! 3. `cargo xtask lint` (in-process)
//! 4. `cargo xtask analyze` (in-process)
//! 5. `cargo xtask deepcheck` (in-process)
//! 6. an in-process tracing smoke test: build a small matcher, run traced
//!    lookups, export Chrome trace JSON, and re-parse it with
//!    [`crate::jsonv`] — proving the observability surface end to end
//! 7. `cargo test --workspace -q`
//!
//! Everything runs offline. `scripts/ci.sh` wraps this for shell callers
//! and adds the CLI-level `fuzzymatch trace export --chrome` smoke.

use std::process::Command;

use crate::jsonv::{self, Json};

pub fn run() -> i32 {
    let steps: &[(&str, &[&str])] = &[
        ("fmt", &["fmt", "--all", "--", "--check"]),
        (
            "clippy",
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ],
        ),
    ];
    for (name, args) in steps {
        if let Some(code) = run_cargo(name, args) {
            return code;
        }
    }

    println!("ci: lint");
    let code = crate::lint::run(false);
    if code != 0 {
        return code;
    }
    println!("ci: analyze");
    let code = crate::analyze::run(&[]);
    if code != 0 {
        return code;
    }
    println!("ci: deepcheck");
    let code = crate::deepcheck::run();
    if code != 0 {
        return code;
    }
    println!("ci: trace smoke");
    if let Err(e) = trace_smoke() {
        eprintln!("ci: trace smoke failed: {e}");
        return 1;
    }

    if let Some(code) = run_cargo("test", &["test", "--workspace", "-q"]) {
        return code;
    }
    println!("ci: all checks passed");
    0
}

/// Build a tiny matcher, run traced lookups, export Chrome trace JSON and
/// re-parse it: the whole observability pipeline in one in-process check.
pub fn trace_smoke() -> Result<(), String> {
    use fm_core::{Config, FuzzyMatcher, Record};

    if !fm_core::tracing::COMPILED {
        return Err("fm-core built without the `trace` feature".into());
    }
    let recorder = std::sync::Arc::new(fm_core::tracing::FlightRecorder::with_capacity(64, 32));
    let json = fm_core::tracing::with_recorder(std::sync::Arc::clone(&recorder), || {
        let db = fm_store::Database::in_memory().map_err(|e| e.to_string())?;
        let columns = ["name", "city", "state", "zip"];
        let rows = [
            Record::new(&["Boeing Company", "Seattle", "WA", "98004"]),
            Record::new(&["Bon Corporation", "Seattle", "WA", "98014"]),
            Record::new(&["Companions", "Seattle", "WA", "98024"]),
        ];
        let matcher = FuzzyMatcher::build(
            &db,
            "ci_smoke",
            rows.into_iter(),
            Config::default().with_columns(&columns),
        )
        .map_err(|e| e.to_string())?;
        let input = Record::new(&["Beoing Company", "Seattle", "WA", "98004"]);
        matcher.lookup(&input, 2, 0.0).map_err(|e| e.to_string())?;
        Ok::<String, String>(fm_core::tracing::chrome_trace_json(&recorder.all()))
    })?;

    let doc = jsonv::parse(&json).map_err(|e| format!("export is not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("export has no traceEvents array")?;
    let mut query_phases: Vec<&str> = Vec::new();
    let mut build_phases: Vec<&str> = Vec::new();
    for ev in events {
        let (Some(name), Some(cat)) = (
            ev.get("name").and_then(Json::as_str),
            ev.get("cat").and_then(Json::as_str),
        ) else {
            return Err("trace event missing name/cat".into());
        };
        let bucket = match cat {
            "query" => &mut query_phases,
            "build" => &mut build_phases,
            other => return Err(format!("unexpected event category {other}")),
        };
        if !bucket.contains(&name) {
            bucket.push(name);
        }
    }
    if query_phases.len() < 6 {
        return Err(format!(
            "only {} distinct query phases in the export: {query_phases:?}",
            query_phases.len()
        ));
    }
    for expected in ["build", "pre_eti", "group_fill"] {
        if !build_phases.contains(&expected) {
            return Err(format!(
                "ETI-build span {expected} missing from the export: {build_phases:?}"
            ));
        }
    }
    println!(
        "ci: trace smoke ok ({} events, {} query phases, {} build phases)",
        events.len(),
        query_phases.len(),
        build_phases.len()
    );
    Ok(())
}

/// Run a cargo subcommand from the workspace root; `Some(code)` on failure.
fn run_cargo(name: &str, args: &[&str]) -> Option<i32> {
    println!("ci: cargo {}", args.join(" "));
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let status = Command::new(cargo)
        .args(args)
        .current_dir(crate::workspace_root())
        .status();
    match status {
        Ok(status) if status.success() => None,
        Ok(status) => {
            eprintln!("ci: `cargo {name}` failed with {status}");
            Some(status.code().unwrap_or(1))
        }
        Err(e) => {
            eprintln!("ci: cannot spawn cargo for `{name}`: {e}");
            Some(1)
        }
    }
}
