//! `cargo xtask ci` — the full pre-PR gate, in dependency order:
//!
//! 1. `cargo fmt --all -- --check`
//! 2. `cargo clippy --workspace --all-targets -- -D warnings`
//! 3. `cargo xtask lint` (in-process)
//! 4. `cargo xtask analyze` (in-process)
//! 5. `cargo xtask racecheck` (in-process), plus a smoke that its
//!    `--json` document re-parses with [`crate::jsonv`]
//! 6. the mut-map budget gate: render `analyze --mut-map` to JSON,
//!    re-parse it with [`crate::jsonv`], and assert the lookup path's
//!    mutation-site count against the committed `xtask-mutmap.budget`
//! 7. `cargo xtask deepcheck` (in-process)
//! 8. an in-process tracing smoke test: build a small matcher, run traced
//!    lookups, export Chrome trace JSON, and re-parse it with
//!    [`crate::jsonv`] — proving the observability surface end to end
//! 9. an in-process serving smoke test: start `fm-server` on an
//!    ephemeral port, run a traced lookup round-trip (the flight
//!    recorder must see it through the `trace_slowest` verb), scrape
//!    the `metrics` verb (the Prometheus exposition must validate and
//!    agree exactly with `stats` in the same quiesced state), round-trip
//!    the `timeseries` verb through [`crate::jsonv`], provoke an
//!    explicit overload reply, then drain and assert the lossless
//!    shutdown ledger (every decoded frame answered)
//! 10. the committed `BENCH_PR9.json` replica-scaling and
//!     telemetry-overhead records, judged by
//!     [`crate::bench::scaling_gate`] / [`crate::bench::telemetry_gate`]
//! 11. `cargo test --workspace -q`
//!
//! Everything runs offline. `scripts/ci.sh` wraps this for shell callers
//! and adds the CLI-level `fuzzymatch trace export --chrome` smoke.

use std::process::Command;

use crate::jsonv::{self, Json};

pub fn run() -> i32 {
    let steps: &[(&str, &[&str])] = &[
        ("fmt", &["fmt", "--all", "--", "--check"]),
        (
            "clippy",
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ],
        ),
    ];
    for (name, args) in steps {
        if let Some(code) = run_cargo(name, args) {
            return code;
        }
    }

    println!("ci: lint");
    let code = crate::lint::run(false);
    if code != 0 {
        return code;
    }
    println!("ci: analyze");
    let code = crate::analyze::run(&[]);
    if code != 0 {
        return code;
    }
    println!("ci: racecheck");
    if let Err(e) = racecheck_gate() {
        eprintln!("ci: racecheck failed: {e}");
        return 1;
    }
    println!("ci: mut-map budget");
    if let Err(e) = mutmap_gate() {
        eprintln!("ci: mut-map gate failed: {e}");
        return 1;
    }
    println!("ci: deepcheck");
    let code = crate::deepcheck::run();
    if code != 0 {
        return code;
    }
    println!("ci: trace smoke");
    if let Err(e) = trace_smoke() {
        eprintln!("ci: trace smoke failed: {e}");
        return 1;
    }
    println!("ci: server smoke");
    if let Err(e) = server_smoke() {
        eprintln!("ci: server smoke failed: {e}");
        return 1;
    }
    println!("ci: bench scaling record");
    if let Err(e) = scaling_record_gate() {
        eprintln!("ci: bench scaling record failed: {e}");
        return 1;
    }

    if let Some(code) = run_cargo("test", &["test", "--workspace", "-q"]) {
        return code;
    }
    println!("ci: all checks passed");
    0
}

/// Gate the static race rules: `racecheck` must pass against its
/// baseline (expected empty — a nonzero baseline is a known data race,
/// not debt), and its `--json` document must re-parse with
/// [`crate::jsonv`], keeping the machine-readable surface honest.
pub fn racecheck_gate() -> Result<(), String> {
    let code = crate::analyze::racecheck::run(&[]);
    if code != 0 {
        return Err("new race findings — run `cargo xtask racecheck`".into());
    }
    let doc = jsonv::parse(&crate::analyze::racecheck::json_report())
        .map_err(|e| format!("racecheck JSON does not re-parse: {e}"))?;
    let n = doc
        .as_arr()
        .ok_or("racecheck JSON is not an array of findings")?
        .len();
    println!("ci: racecheck json ok ({n} findings, all baselined)");
    Ok(())
}

/// Gate the lookup hot path's shared-mutability footprint: render the
/// mut-map report to JSON, re-parse it with [`crate::jsonv`] (exercising
/// the machine-readable surface, not the in-memory struct), and assert
/// the mutation-site count against the committed budget in
/// `xtask-mutmap.budget`. The count can only go *down* without editing
/// the budget file — an explicit, reviewed decision.
pub fn mutmap_gate() -> Result<(), String> {
    let report = crate::analyze::mutmap_report();
    if !report.missing_roots.is_empty() {
        return Err(format!(
            "mut-map roots not found: {} — fix analyze::project_config",
            report.missing_roots.join(", ")
        ));
    }
    let doc = jsonv::parse(&crate::analyze::mutmap::to_json(&report))
        .map_err(|e| format!("mut-map JSON does not re-parse: {e}"))?;
    let count = doc
        .get("mutation_sites")
        .and_then(Json::as_f64)
        .ok_or("mut-map JSON has no mutation_sites count")? as usize;
    let budget_path = crate::workspace_root().join("xtask-mutmap.budget");
    let budget: usize = std::fs::read_to_string(&budget_path)
        .map_err(|e| format!("cannot read xtask-mutmap.budget: {e}"))?
        .lines()
        .find(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .ok_or("xtask-mutmap.budget has no budget line")?
        .trim()
        .parse()
        .map_err(|e| format!("xtask-mutmap.budget is not a number: {e}"))?;
    if count > budget {
        return Err(format!(
            "{count} mutation sites reachable from the lookup path exceed the \
             budget of {budget}; run `cargo xtask analyze --mut-map` to see \
             them, and either stage the mutation off the hot path or raise \
             xtask-mutmap.budget with justification"
        ));
    }
    println!(
        "ci: mut-map ok ({count} mutation sites within budget {budget}, \
         {} reachable fns)",
        report.reachable
    );
    Ok(())
}

/// Gate the *committed* `BENCH_PR9.json` record: the recorded
/// 1→4-worker speedup must satisfy the floor for the `host_parallelism`
/// the report itself recorded (≥2.5x on 4+ cores, down to a
/// no-serialization-regression check on 1), and the recorded telemetry
/// overhead must be under the 5% limit. Fresh numbers are produced and
/// gated by `cargo xtask bench`, which `scripts/ci.sh` runs; this
/// in-process step keeps the committed record honest without re-running
/// the release bench.
pub fn scaling_record_gate() -> Result<(), String> {
    let path = crate::workspace_root().join("BENCH_PR9.json");
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read {}: {e} — run `cargo xtask bench`",
            path.display()
        )
    })?;
    let report = jsonv::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    if crate::bench::scaling_gate(&report) != 0 {
        return Err("committed BENCH_PR9.json fails the replica-scaling floor".into());
    }
    if crate::bench::telemetry_gate(&report) != 0 {
        return Err("committed BENCH_PR9.json fails the telemetry-overhead gate".into());
    }
    Ok(())
}

/// Build a tiny matcher, run traced lookups, export Chrome trace JSON and
/// re-parse it: the whole observability pipeline in one in-process check.
pub fn trace_smoke() -> Result<(), String> {
    use fm_core::{Config, FuzzyMatcher, Record};

    if !fm_core::tracing::COMPILED {
        return Err("fm-core built without the `trace` feature".into());
    }
    let recorder = std::sync::Arc::new(fm_core::tracing::FlightRecorder::with_capacity(64, 32));
    let json = fm_core::tracing::with_recorder(std::sync::Arc::clone(&recorder), || {
        let db = fm_store::Database::in_memory().map_err(|e| e.to_string())?;
        let columns = ["name", "city", "state", "zip"];
        let rows = [
            Record::new(&["Boeing Company", "Seattle", "WA", "98004"]),
            Record::new(&["Bon Corporation", "Seattle", "WA", "98014"]),
            Record::new(&["Companions", "Seattle", "WA", "98024"]),
        ];
        let matcher = FuzzyMatcher::build(
            &db,
            "ci_smoke",
            rows.into_iter(),
            Config::default().with_columns(&columns),
        )
        .map_err(|e| e.to_string())?;
        let input = Record::new(&["Beoing Company", "Seattle", "WA", "98004"]);
        matcher.lookup(&input, 2, 0.0).map_err(|e| e.to_string())?;
        Ok::<String, String>(fm_core::tracing::chrome_trace_json(&recorder.all()))
    })?;

    let doc = jsonv::parse(&json).map_err(|e| format!("export is not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("export has no traceEvents array")?;
    let mut query_phases: Vec<&str> = Vec::new();
    let mut build_phases: Vec<&str> = Vec::new();
    for ev in events {
        let (Some(name), Some(cat)) = (
            ev.get("name").and_then(Json::as_str),
            ev.get("cat").and_then(Json::as_str),
        ) else {
            return Err("trace event missing name/cat".into());
        };
        let bucket = match cat {
            "query" => &mut query_phases,
            "build" => &mut build_phases,
            other => return Err(format!("unexpected event category {other}")),
        };
        if !bucket.contains(&name) {
            bucket.push(name);
        }
    }
    if query_phases.len() < 6 {
        return Err(format!(
            "only {} distinct query phases in the export: {query_phases:?}",
            query_phases.len()
        ));
    }
    for expected in ["build", "pre_eti", "group_fill"] {
        if !build_phases.contains(&expected) {
            return Err(format!(
                "ETI-build span {expected} missing from the export: {build_phases:?}"
            ));
        }
    }
    println!(
        "ci: trace smoke ok ({} events, {} query phases, {} build phases)",
        events.len(),
        query_phases.len(),
        build_phases.len()
    );
    Ok(())
}

/// Start `fm-server` on an ephemeral port against an in-memory matcher,
/// then exercise the serving contract end to end: a lookup round-trip
/// that the flight recorder must surface through `trace_slowest`, an
/// explicit overload rejection, and a drain whose ledger proves no
/// decoded frame went unanswered.
pub fn server_smoke() -> Result<(), String> {
    use fm_core::{Config, FuzzyMatcher, Record};
    use fm_server::{Client, Server, ServerConfig};
    use std::sync::Arc;

    let db = Arc::new(fm_store::Database::in_memory().map_err(|e| e.to_string())?);
    let columns = ["name", "city", "state", "zip"];
    let rows = [
        Record::new(&["Boeing Company", "Seattle", "WA", "98004"]),
        Record::new(&["Bon Corporation", "Seattle", "WA", "98014"]),
        Record::new(&["Companions", "Seattle", "WA", "98024"]),
    ];
    let matcher = Arc::new(
        FuzzyMatcher::build(
            &db,
            "ci_server_smoke",
            rows.into_iter(),
            Config::default().with_columns(&columns),
        )
        .map_err(|e| e.to_string())?,
    );
    // One worker, inflight cap of one: while the sleeper below holds the
    // worker, any other lookup must be rejected with an explicit 503
    // rather than silently queued.
    let server = Server::start(
        "127.0.0.1:0",
        matcher,
        db,
        ServerConfig {
            workers: 1,
            max_inflight: 1,
            allow_sleep: true,
            // Fast sampler windows so the smoke can observe published
            // time-series state without waiting out the 1 s default.
            telemetry_window_ms: 20,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("cannot start server: {e}"))?;
    let addr = server.local_addr().to_string();

    // 1. Traced lookup round-trip.
    let input = Record::new(&["Beoing Company", "Seattle", "WA", "98004"]);
    let mut client = Client::connect(&addr).map_err(|e| e.to_string())?;
    let reply = client
        .lookup(&input, 1, 0.0)
        .map_err(|e| format!("lookup failed: {e}"))?;
    if !reply.ok || reply.matches.is_empty() {
        return Err(format!("lookup round-trip returned no match: {reply:?}"));
    }
    let traces = client
        .trace_slowest(4)
        .map_err(|e| format!("trace_slowest failed: {e}"))?;
    let query_traces = traces
        .get("traces")
        .and_then(fm_server::Json::as_arr)
        .map(|items| {
            items
                .iter()
                .filter(|t| t.get("kind").and_then(fm_server::Json::as_str) == Some("query"))
                .count()
        })
        .unwrap_or(0);
    if query_traces == 0 {
        return Err(format!(
            "flight recorder saw no query trace from server traffic: {traces}"
        ));
    }

    // 1b. Telemetry: the Prometheus scrape must validate (bucket
    // monotonicity, +Inf/_count agreement) and, in this quiesced moment
    // (one client, every reply received), agree exactly with `stats`.
    let exposition = client
        .metrics_text()
        .map_err(|e| format!("metrics verb failed: {e}"))?;
    let summary = fm_core::telemetry::validate_exposition(&exposition)
        .map_err(|e| format!("invalid exposition: {e}"))?;
    let stats = client
        .stats()
        .map_err(|e| format!("stats verb failed: {e}"))?;
    let latency = stats
        .get("metrics")
        .and_then(|m| m.get("latency"))
        .ok_or("stats reply has no metrics.latency")?;
    let stat_u64 = |field: &str| latency.get(field).and_then(fm_server::Json::as_u64);
    let prom_u64 = |name: &str| -> Option<u64> {
        exposition
            .lines()
            .find_map(|l| l.strip_prefix(name)?.strip_prefix(' ')?.parse::<f64>().ok())
            .map(|v| v as u64)
    };
    if prom_u64("fm_lookup_latency_us_count") != stat_u64("count")
        || prom_u64("fm_lookup_latency_us_sum") != stat_u64("sum_us")
    {
        return Err(format!(
            "exposition disagrees with stats: count {:?} vs {:?}, sum {:?} vs {:?}",
            prom_u64("fm_lookup_latency_us_count"),
            stat_u64("count"),
            prom_u64("fm_lookup_latency_us_sum"),
            stat_u64("sum_us")
        ));
    }
    // The timeseries verb's reply must survive a round-trip through the
    // independent jsonv parser, and the sampler must have published.
    std::thread::sleep(std::time::Duration::from_millis(60));
    let ts = client
        .timeseries(8)
        .map_err(|e| format!("timeseries verb failed: {e}"))?;
    let ts_doc = jsonv::parse(&ts.encode())
        .map_err(|e| format!("timeseries JSON does not re-parse: {e}"))?;
    let windows = ts_doc
        .get("windows")
        .and_then(Json::as_arr)
        .ok_or("timeseries reply has no windows array")?;
    if windows.is_empty() {
        return Err("sampler published no windows after 60 ms at 20 ms/window".into());
    }

    // 2. Overload probe: a sleeper occupies the only inflight slot...
    let sleeper_addr = addr.clone();
    let sleeper_input = input.clone();
    let sleeper = std::thread::spawn(move || -> Result<(), String> {
        let mut c = Client::connect(&sleeper_addr).map_err(|e| e.to_string())?;
        let reply = c
            .lookup_with(&sleeper_input, 1, 0.0, None, 300)
            .map_err(|e| e.to_string())?;
        if reply.ok {
            Ok(())
        } else {
            Err(format!("sleeper was rejected: {reply:?}"))
        }
    });
    std::thread::sleep(std::time::Duration::from_millis(100));
    // ...so a concurrent lookup must bounce with 503, not queue behind it.
    let reply = client
        .lookup(&input, 1, 0.0)
        .map_err(|e| format!("overload probe failed: {e}"))?;
    if reply.ok || reply.code != 503 {
        return Err(format!("expected a 503 overload reply, got {reply:?}"));
    }
    sleeper
        .join()
        .map_err(|_| "sleeper thread panicked".to_string())??;

    // 3. Graceful drain with a balanced response ledger.
    client
        .shutdown()
        .map_err(|e| format!("shutdown verb failed: {e}"))?;
    let report = server.wait();
    let c = &report.counters;
    // The replica-safe drain ledger: every decoded frame produced exactly
    // one reply attempt (a peer vanishing mid-reply counts as attempted).
    if !c.ledger_balanced() {
        return Err(format!(
            "drain lost responses: {} frames vs {} responses + {} write failures",
            c.frames, c.responses, c.write_failures
        ));
    }
    println!(
        "ci: server smoke ok ({} frames answered, {} query traces, {} overload \
         rejections, {} exposition samples, {} telemetry windows)",
        c.responses,
        query_traces,
        c.rejected_overload,
        summary.samples,
        windows.len()
    );
    Ok(())
}

/// Run a cargo subcommand from the workspace root; `Some(code)` on failure.
fn run_cargo(name: &str, args: &[&str]) -> Option<i32> {
    println!("ci: cargo {}", args.join(" "));
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let status = Command::new(cargo)
        .args(args)
        .current_dir(crate::workspace_root())
        .status();
    match status {
        Ok(status) if status.success() => None,
        Ok(status) => {
            eprintln!("ci: `cargo {name}` failed with {status}");
            Some(status.code().unwrap_or(1))
        }
        Err(e) => {
            eprintln!("ci: cannot spawn cargo for `{name}`: {e}");
            Some(1)
        }
    }
}
