//! `cargo xtask` — the workspace's own checker.
//!
//! Three commands, all offline and dependency-free beyond the workspace:
//!
//! * `cargo xtask lint` — structural lints the compiler does not enforce:
//!   crate layering direction, panic/unwrap/print hygiene in library code,
//!   truncating casts in the storage codecs, `#[must_use]` on boolean
//!   predicates, and declared-but-unused dependencies. Existing debt is
//!   frozen in `xtask-lint.baseline`; `--update-baseline` rewrites it.
//! * `cargo xtask deepcheck` — builds a reference relation, ETI, and weight
//!   tables, then runs every `check_invariants()` validator in `fm-store`
//!   and `fm-core` against them (including the crash-safe WAL path).
//! * `cargo xtask ci` — the pre-PR gate: fmt, clippy, lint, deepcheck,
//!   tests. `scripts/ci.sh` is a thin wrapper around it.

mod ci;
mod deepcheck;
mod lint;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("lint") => lint::run(args.iter().any(|a| a == "--update-baseline")),
        Some("deepcheck") => deepcheck::run(),
        Some("ci") => ci::run(),
        other => {
            if let Some(cmd) = other {
                eprintln!("unknown command: {cmd}");
            }
            eprintln!("usage: cargo xtask <lint [--update-baseline] | deepcheck | ci>");
            2
        }
    };
    std::process::exit(code);
}

/// The workspace root (xtask lives at `<root>/crates/xtask`).
fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/xtask always sits two levels below the workspace root")
        .to_path_buf()
}
