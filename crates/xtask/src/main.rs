//! `cargo xtask` — the workspace's own checker (see the library crate for
//! what each command does).

use xtask::{analyze, bench, ci, deepcheck, lint};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("lint") => lint::run(
            args.iter()
                .any(|a| a == "--rebaseline" || a == "--update-baseline"),
        ),
        Some("analyze") => analyze::run(&args[1..]),
        Some("racecheck") => analyze::racecheck::run(&args[1..]),
        Some("bench") => bench::run(&args[1..]),
        Some("deepcheck") => deepcheck::run(),
        Some("ci") => ci::run(),
        other => {
            if let Some(cmd) = other {
                eprintln!("unknown command: {cmd}");
            }
            eprintln!(
                "usage: cargo xtask <lint [--rebaseline] | \
                 analyze [--json] [--rebaseline] [--mut-map] [--explain <rule>] | \
                 racecheck [--json] [--rebaseline] [--explain <rule>] | \
                 bench [--rebaseline] [--skip-run] [--trend] | deepcheck | ci>"
            );
            2
        }
    };
    std::process::exit(code);
}
