//! `cargo xtask bench` — the performance regression gate.
//!
//! Runs the `bench_gate` binary (`crates/bench/src/bin/bench_gate.rs`) in
//! release mode, which writes `BENCH_PR9.json`, then:
//!
//! 1. checks the structured-tracing overhead on `lookup_batch`
//!    (enabled vs runtime-disabled, same binary) is under 5%, and the
//!    server-telemetry overhead (sampler at 25 ms windows vs off) is
//!    under 5% as well;
//! 2. compares every **deterministic** per-strategy counter against the
//!    committed `BENCH_baseline.json` and fails on >20% relative drift —
//!    these counters are exact functions of the seed, so drift means an
//!    algorithm change that must be acknowledged with `--rebaseline`;
//! 3. checks the replica-scaling speedup (`scaling` section: 1 vs 4
//!    worker/replica pairs) against a floor chosen from the measuring
//!    host's `host_parallelism` — ≥2.5x with 4+ cores, ≥1.3x with 2–3,
//!    and ≥0.7x on a single core, where real parallel speedup is
//!    physically impossible and the gate only rejects a serialization
//!    regression (replicas contending so hard that 4 workers run
//!    *slower* than 1);
//! 4. reports (but does not gate on) other wall-clock drift, which
//!    tracks the machine more than the code.
//!
//! `--rebaseline` copies the fresh report over the baseline.
//!
//! `--trend` skips the gate entirely and prints a trajectory table
//! instead: every committed `BENCH_*.json` (baseline first, then name
//! order) becomes one column, and any counter that moved monotonically
//! in its bad direction (accuracy down, everything else up) across the
//! last three reports is flagged. The flags are informational, but the
//! command exits 1 when fewer than [`TREND_WINDOW`] reports exist —
//! "insufficient history" is a real answer, not a silent pass.

use std::process::Command;

use crate::jsonv::{self, Json};

/// Deterministic per-strategy counters: exact given the seed.
const GATED_COUNTERS: &[&str] = &[
    "accuracy",
    "avg_fetches",
    "avg_tids",
    "avg_eti_lookups",
    "avg_eti_rows",
    "avg_fms_evals",
    "avg_apx_pruned",
];

/// Wall-clock fields: reported, never gated.
const TIMING_FIELDS: &[&str] = &["batch_ms", "throughput_per_s"];

const MAX_COUNTER_DRIFT: f64 = 0.20;
const MAX_OVERHEAD_PCT: f64 = 5.0;

/// Replica-scaling floors by the measuring host's core count. On 4+
/// cores the 4-worker pool must actually scale; with 2–3 cores partial
/// scaling is all the hardware allows; on 1 core no speedup is possible
/// and the floor only catches a serialization regression (4 contending
/// workers running markedly slower than 1).
const MIN_SPEEDUP_4CORE: f64 = 2.5;
const MIN_SPEEDUP_2CORE: f64 = 1.3;
const MIN_SPEEDUP_1CORE: f64 = 0.7;

pub fn run(args: &[String]) -> i32 {
    if args.iter().any(|a| a == "--trend") {
        return run_trend();
    }
    let rebaseline = args.iter().any(|a| a == "--rebaseline");
    let skip_run = args.iter().any(|a| a == "--skip-run");
    let root = crate::workspace_root();
    let report_path = root.join("BENCH_PR9.json");
    let baseline_path = root.join("BENCH_baseline.json");

    if !skip_run {
        println!("bench: cargo run --release -p fm-bench --bin bench_gate -- --quick");
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
        let status = Command::new(cargo)
            .args([
                "run",
                "--release",
                "-p",
                "fm-bench",
                "--bin",
                "bench_gate",
                "--",
                "--quick",
                "--out",
            ])
            .arg(&report_path)
            .current_dir(&root)
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("bench: bench_gate failed with {s}");
                return s.code().unwrap_or(1);
            }
            Err(e) => {
                eprintln!("bench: cannot spawn cargo: {e}");
                return 1;
            }
        }
    }

    let report = match read_report(&report_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench: {}: {e}", report_path.display());
            return 1;
        }
    };

    let mut failures = 0usize;

    // 1. Tracing overhead gate.
    match report
        .get("overhead")
        .and_then(|o| o.get("overhead_pct"))
        .and_then(Json::as_f64)
    {
        Some(pct) if pct <= MAX_OVERHEAD_PCT => {
            println!("bench: tracing overhead {pct:.2}% (limit {MAX_OVERHEAD_PCT}%)");
        }
        Some(pct) => {
            eprintln!("bench: FAIL tracing overhead {pct:.2}% exceeds {MAX_OVERHEAD_PCT}%");
            failures += 1;
        }
        None => {
            eprintln!("bench: FAIL report has no overhead.overhead_pct");
            failures += 1;
        }
    }

    // 1b. Server-telemetry overhead gate (same limit as tracing).
    failures += telemetry_gate(&report);

    // 2. Replica-scaling gate (floor depends on the measuring host).
    failures += scaling_gate(&report);

    // 3+4. Baseline comparison.
    if rebaseline {
        if let Err(e) = std::fs::copy(&report_path, &baseline_path) {
            eprintln!("bench: cannot write {}: {e}", baseline_path.display());
            return 1;
        }
        println!("bench: baseline rewritten from {}", report_path.display());
    } else if baseline_path.exists() {
        match read_report(&baseline_path) {
            Ok(baseline) => failures += compare(&baseline, &report),
            Err(e) => {
                eprintln!("bench: {}: {e}", baseline_path.display());
                return 1;
            }
        }
    } else {
        eprintln!(
            "bench: no {} — run `cargo xtask bench --rebaseline` once to commit one",
            baseline_path.display()
        );
        failures += 1;
    }

    if failures > 0 {
        eprintln!("bench: {failures} failure(s)");
        1
    } else {
        println!("bench: ok");
        0
    }
}

/// Gate the report's `telemetry` section (sampler-on vs sampler-off
/// served qps); returns the failure count. Reports predating the
/// telemetry subsystem lack the section, so absence fails — the gate
/// must not silently stop measuring.
pub fn telemetry_gate(report: &Json) -> usize {
    match report
        .get("telemetry")
        .and_then(|t| t.get("overhead_pct"))
        .and_then(Json::as_f64)
    {
        Some(pct) if pct <= MAX_OVERHEAD_PCT => {
            println!("bench: telemetry overhead {pct:.2}% (limit {MAX_OVERHEAD_PCT}%)");
            0
        }
        Some(pct) => {
            eprintln!("bench: FAIL telemetry overhead {pct:.2}% exceeds {MAX_OVERHEAD_PCT}%");
            1
        }
        None => {
            eprintln!("bench: FAIL report has no telemetry.overhead_pct");
            1
        }
    }
}

/// Pick the speedup floor for a host with `cores` logical CPUs.
pub fn speedup_floor(cores: u64) -> f64 {
    if cores >= 4 {
        MIN_SPEEDUP_4CORE
    } else if cores >= 2 {
        MIN_SPEEDUP_2CORE
    } else {
        MIN_SPEEDUP_1CORE
    }
}

/// Gate the report's `scaling` section; returns the failure count. The
/// floor is chosen from the `host_parallelism` the *report* recorded, so
/// `--skip-run` judges the numbers against the machine that produced
/// them, not the machine running the gate.
pub fn scaling_gate(report: &Json) -> usize {
    let Some(scaling) = report.get("scaling") else {
        eprintln!("bench: FAIL report has no scaling section");
        return 1;
    };
    let field = |key: &str| scaling.get(key).and_then(Json::as_f64);
    let (Some(qps1), Some(qps4), Some(speedup), Some(cores)) = (
        field("workers_1_qps"),
        field("workers_4_qps"),
        field("speedup"),
        field("host_parallelism"),
    ) else {
        eprintln!("bench: FAIL scaling section is missing fields");
        return 1;
    };
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let floor = speedup_floor(cores.max(1.0) as u64);
    if speedup < floor {
        eprintln!(
            "bench: FAIL replica scaling {speedup:.2}x (1 worker {qps1:.0} qps -> \
             4 workers {qps4:.0} qps) below the {floor:.1}x floor for \
             {cores:.0} core(s)"
        );
        1
    } else {
        println!(
            "bench: replica scaling {speedup:.2}x on {cores:.0} core(s) \
             (floor {floor:.1}x)"
        );
        0
    }
}

fn read_report(path: &std::path::Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    jsonv::parse(&text)
}

fn strategy_rows(doc: &Json) -> Vec<(&str, &Json)> {
    doc.get("strategies")
        .and_then(Json::as_arr)
        .map(|rows| {
            rows.iter()
                .filter_map(|r| r.get("strategy").and_then(Json::as_str).map(|s| (s, r)))
                .collect()
        })
        .unwrap_or_default()
}

/// Compare a fresh report against the baseline; returns the failure count.
pub fn compare(baseline: &Json, report: &Json) -> usize {
    let mut failures = 0usize;
    let base_rows = strategy_rows(baseline);
    let new_rows = strategy_rows(report);
    if base_rows.is_empty() {
        eprintln!("bench: FAIL baseline has no strategy rows");
        return 1;
    }
    for (name, base) in &base_rows {
        let Some((_, fresh)) = new_rows.iter().find(|(n, _)| n == name) else {
            eprintln!("bench: FAIL strategy {name} missing from fresh report");
            failures += 1;
            continue;
        };
        for key in GATED_COUNTERS {
            let (Some(b), Some(f)) = (
                base.get(key).and_then(Json::as_f64),
                fresh.get(key).and_then(Json::as_f64),
            ) else {
                eprintln!("bench: FAIL {name}.{key} missing on one side");
                failures += 1;
                continue;
            };
            let drift = relative_drift(b, f);
            if drift > MAX_COUNTER_DRIFT {
                eprintln!(
                    "bench: FAIL {name}.{key}: {b:.4} -> {f:.4} ({:+.1}%, limit ±{:.0}%)",
                    drift * 100.0,
                    MAX_COUNTER_DRIFT * 100.0
                );
                failures += 1;
            }
        }
        for key in TIMING_FIELDS {
            if let (Some(b), Some(f)) = (
                base.get(key).and_then(Json::as_f64),
                fresh.get(key).and_then(Json::as_f64),
            ) {
                let drift = relative_drift(b, f);
                if drift > MAX_COUNTER_DRIFT {
                    println!(
                        "bench: note {name}.{key}: {b:.1} -> {f:.1} \
                         (wall-clock, not gated)"
                    );
                }
            }
        }
    }
    failures
}

/// `cargo xtask bench --trend`: per-counter trajectories over every
/// committed report. Never gates — the 20% drift gate already decides
/// pass/fail; this surfaces the slow creep the gate is blind to.
fn run_trend() -> i32 {
    let root = crate::workspace_root();
    let mut names: Vec<String> = match std::fs::read_dir(&root) {
        Ok(dir) => dir
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            .collect(),
        Err(e) => {
            eprintln!("bench: cannot list {}: {e}", root.display());
            return 1;
        }
    };
    // Chronology proxy: the committed baseline is the oldest snapshot,
    // later reports are named in PR order.
    names.sort();
    if let Some(pos) = names.iter().position(|n| n == "BENCH_baseline.json") {
        let baseline = names.remove(pos);
        names.insert(0, baseline);
    }
    let mut entries: Vec<(String, Json)> = Vec::new();
    for name in names {
        match read_report(&root.join(&name)) {
            Ok(doc) => entries.push((name, doc)),
            Err(e) => {
                eprintln!("bench: skipping {name}: {e}");
            }
        }
    }
    if entries.is_empty() {
        eprintln!(
            "bench: no readable BENCH_*.json reports at {}",
            root.display()
        );
        return 1;
    }
    for line in trend_lines(&entries) {
        println!("{line}");
    }
    if entries.len() < TREND_WINDOW {
        eprintln!(
            "bench trend: FAIL insufficient history ({} < {TREND_WINDOW} reports) — \
             the window cannot flag anything yet; commit more BENCH_*.json snapshots",
            entries.len()
        );
        return 1;
    }
    0
}

/// `true` when the counter only moved in its bad direction across every
/// step of the last [`TREND_WINDOW`] values.
pub fn regressing(values: &[f64], higher_is_better: bool) -> bool {
    if values.len() < TREND_WINDOW {
        return false;
    }
    values[values.len() - TREND_WINDOW..].windows(2).all(|w| {
        if higher_is_better {
            w[1] < w[0]
        } else {
            w[1] > w[0]
        }
    })
}

/// Reports a counter must creep across, step by step, to be flagged.
pub const TREND_WINDOW: usize = 3;

/// Render the trajectory table for ordered `(name, report)` pairs — a
/// pure function so the fixtures in the unit tests can drive it.
pub fn trend_lines(entries: &[(String, Json)]) -> Vec<String> {
    let mut out = Vec::new();
    out.push(format!(
        "bench trend: {} report(s): {}",
        entries.len(),
        entries
            .iter()
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>()
            .join(" -> ")
    ));
    if entries.len() < TREND_WINDOW {
        out.push(format!(
            "bench trend: insufficient history ({} of {TREND_WINDOW} reports) — \
             trajectories only, no regression flags",
            entries.len()
        ));
    }
    // Strategy names in first-seen order across all reports.
    let mut strategies: Vec<String> = Vec::new();
    for (_, doc) in entries {
        for (name, _) in strategy_rows(doc) {
            if !strategies.iter().any(|s| s == name) {
                strategies.push(name.to_string());
            }
        }
    }
    let mut flagged = 0usize;
    for strategy in &strategies {
        out.push(format!("  {strategy}:"));
        for key in GATED_COUNTERS.iter().chain(TIMING_FIELDS) {
            let values: Vec<Option<f64>> = entries
                .iter()
                .map(|(_, doc)| {
                    strategy_rows(doc)
                        .iter()
                        .find(|(n, _)| n == strategy)
                        .and_then(|(_, row)| row.get(key).and_then(Json::as_f64))
                })
                .collect();
            let cells: Vec<String> = values
                .iter()
                .map(|v| match v {
                    Some(v) => format!("{v:.3}"),
                    None => "-".to_string(),
                })
                .collect();
            // A gap in the tail (report missing the counter) breaks the
            // streak rather than guessing across it.
            let tail: Vec<f64> = values
                .iter()
                .rev()
                .take(TREND_WINDOW)
                .copied()
                .collect::<Option<Vec<f64>>>()
                .map(|mut v| {
                    v.reverse();
                    v
                })
                .unwrap_or_default();
            let higher_is_better = *key == "accuracy" || *key == "throughput_per_s";
            let flag = if values.len() >= TREND_WINDOW && regressing(&tail, higher_is_better) {
                flagged += 1;
                "  << regressing"
            } else {
                ""
            };
            out.push(format!("    {key:<18} {}{flag}", cells.join(" -> ")));
        }
    }
    out.push(if flagged == 0 {
        "bench trend: no counter regressing monotonically".to_string()
    } else {
        format!(
            "bench trend: {flagged} counter(s) regressing monotonically over the last {TREND_WINDOW} reports (informational)"
        )
    });
    out
}

fn relative_drift(base: f64, fresh: f64) -> f64 {
    if base == 0.0 {
        if fresh == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (fresh - base).abs() / base.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(fetches: f64, batch_ms: f64) -> Json {
        jsonv::parse(&format!(
            r#"{{"strategies": [{{"strategy": "Q+T_3", "accuracy": 0.9,
                "avg_fetches": {fetches}, "avg_tids": 100.0,
                "avg_eti_lookups": 10.0, "avg_eti_rows": 9.0,
                "avg_fms_evals": {fetches}, "avg_apx_pruned": 5.0,
                "batch_ms": {batch_ms}, "throughput_per_s": 1000.0}}]}}"#
        ))
        .unwrap()
    }

    fn scaling_report(speedup: f64, cores: u64) -> Json {
        jsonv::parse(&format!(
            r#"{{"scaling": {{"workers_1_qps": 100.0, "workers_4_qps": {},
                "speedup": {speedup}, "host_parallelism": {cores}}}}}"#,
            100.0 * speedup
        ))
        .unwrap()
    }

    #[test]
    fn speedup_floor_tracks_core_count() {
        assert_eq!(speedup_floor(16), MIN_SPEEDUP_4CORE);
        assert_eq!(speedup_floor(4), MIN_SPEEDUP_4CORE);
        assert_eq!(speedup_floor(2), MIN_SPEEDUP_2CORE);
        assert_eq!(speedup_floor(1), MIN_SPEEDUP_1CORE);
    }

    #[test]
    fn scaling_gate_arms_at_2_5x_on_four_cores() {
        assert_eq!(scaling_gate(&scaling_report(3.1, 4)), 0);
        assert_eq!(scaling_gate(&scaling_report(1.8, 4)), 1);
    }

    #[test]
    fn scaling_gate_on_one_core_only_rejects_serialization_regressions() {
        // ~1x on 1 core is the physical best case: pass.
        assert_eq!(scaling_gate(&scaling_report(0.95, 1)), 0);
        // 4 workers running at half the 1-worker rate means the replicas
        // are contending on something: fail even though no speedup was
        // ever possible.
        assert_eq!(scaling_gate(&scaling_report(0.5, 1)), 1);
    }

    #[test]
    fn telemetry_gate_arms_at_5pct() {
        let ok = jsonv::parse(r#"{"telemetry": {"overhead_pct": 2.4}}"#).unwrap();
        assert_eq!(telemetry_gate(&ok), 0);
        let slow = jsonv::parse(r#"{"telemetry": {"overhead_pct": 7.1}}"#).unwrap();
        assert_eq!(telemetry_gate(&slow), 1);
        let missing = jsonv::parse(r#"{"strategies": []}"#).unwrap();
        assert_eq!(telemetry_gate(&missing), 1);
    }

    #[test]
    fn scaling_gate_fails_on_missing_section() {
        let no_scaling = jsonv::parse(r#"{"strategies": []}"#).unwrap();
        assert_eq!(scaling_gate(&no_scaling), 1);
        let partial = jsonv::parse(r#"{"scaling": {"speedup": 3.0}}"#).unwrap();
        assert_eq!(scaling_gate(&partial), 1);
    }

    #[test]
    fn identical_reports_pass() {
        assert_eq!(compare(&report(40.0, 100.0), &report(40.0, 100.0)), 0);
    }

    #[test]
    fn counter_drift_over_20pct_fails() {
        // avg_fetches and avg_fms_evals both drift by 50% -> 2 failures.
        assert_eq!(compare(&report(40.0, 100.0), &report(60.0, 100.0)), 2);
    }

    #[test]
    fn wall_clock_drift_is_not_gated() {
        assert_eq!(compare(&report(40.0, 100.0), &report(40.0, 500.0)), 0);
    }

    #[test]
    fn missing_strategy_fails() {
        let empty = jsonv::parse(r#"{"strategies": []}"#).unwrap();
        assert_eq!(compare(&report(40.0, 100.0), &empty), 1);
    }

    #[test]
    fn regressing_needs_a_full_monotone_window() {
        // Lower-is-better counter creeping up every step: flagged.
        assert!(regressing(&[40.0, 41.0, 45.0], false));
        // A dip inside the window breaks the streak.
        assert!(!regressing(&[40.0, 39.0, 45.0], false));
        // Higher-is-better counter decaying every step: flagged.
        assert!(regressing(&[0.95, 0.94, 0.90], true));
        // Too few points: never flagged.
        assert!(!regressing(&[40.0, 45.0], false));
        // Only the last TREND_WINDOW points matter.
        assert!(regressing(&[10.0, 40.0, 41.0, 45.0], false));
    }

    #[test]
    fn trend_flags_monotone_creep_and_skips_recovered_counters() {
        let entries = vec![
            ("BENCH_baseline.json".to_string(), report(40.0, 100.0)),
            ("BENCH_PR4.json".to_string(), report(42.0, 90.0)),
            ("BENCH_PR5.json".to_string(), report(45.0, 80.0)),
        ];
        let lines = trend_lines(&entries);
        let fetches = lines
            .iter()
            .find(|l| l.contains("avg_fetches"))
            .expect("avg_fetches row");
        assert!(
            fetches.contains("<< regressing"),
            "40 -> 42 -> 45 should be flagged: {fetches}"
        );
        // batch_ms fell across the window: improving, not regressing.
        let batch = lines
            .iter()
            .find(|l| l.contains("batch_ms"))
            .expect("batch_ms row");
        assert!(!batch.contains("<< regressing"), "improving: {batch}");
        // avg_fms_evals mirrors avg_fetches in the fixture -> 2 flags.
        assert!(
            lines.last().expect("summary").contains("2 counter(s)"),
            "got {lines:?}"
        );
    }

    #[test]
    fn trend_with_two_reports_prints_trajectories_without_flags() {
        let entries = vec![
            ("BENCH_baseline.json".to_string(), report(40.0, 100.0)),
            ("BENCH_PR4.json".to_string(), report(60.0, 100.0)),
        ];
        let lines = trend_lines(&entries);
        assert!(
            lines
                .iter()
                .any(|l| l.contains("insufficient history (2 of 3 reports)")),
            "short history must be called out: {lines:?}"
        );
        assert!(
            lines.iter().all(|l| !l.contains("<< regressing")),
            "no flags with fewer than {TREND_WINDOW} reports: {lines:?}"
        );
    }

    #[test]
    fn trend_breaks_streaks_across_missing_counters() {
        let gap = jsonv::parse(r#"{"strategies": [{"strategy": "Q+T_3"}]}"#).unwrap();
        let entries = vec![
            ("BENCH_baseline.json".to_string(), report(40.0, 100.0)),
            ("BENCH_PR4.json".to_string(), gap),
            ("BENCH_PR5.json".to_string(), report(45.0, 80.0)),
        ];
        let lines = trend_lines(&entries);
        assert!(
            lines.iter().any(|l| l.contains("40.000 -> - -> 45.000")),
            "gaps render as '-': {lines:?}"
        );
        assert!(
            lines.iter().all(|l| !l.contains("<< regressing")),
            "a gap inside the window must not be flagged: {lines:?}"
        );
    }
}
