//! The workspace lint engine: rules the compiler and clippy cannot express
//! because they encode *this* project's architecture.
//!
//! ## Rules
//!
//! **Layering** (`layering`): the crate DAG must point one way —
//! `fm-text` and `fm-store` are leaves (no `fm-*` dependencies), `fm-core`
//! may use only `fm-text` + `fm-store`, `fm-datagen` only `fm-core` +
//! `fm-text`; binaries, benches, examples, and integration tests are
//! unrestricted. Enforced both on `Cargo.toml` declarations and on `use`
//! paths in source, so a path dependency can't sneak in through a re-export.
//!
//! **Line lints** (library crates only, test modules excluded), matched on
//! the token stream from [`crate::analyze::lexer`] — an `.unwrap()` inside
//! a string literal or doc comment is not a finding:
//! * `unwrap`, `expect`, `panic` — library code must propagate errors;
//! * `print`, `dbg` — library code must not write to stdout/stderr;
//! * `as-truncation` — the storage codecs (`fm-store::keycode`,
//!   `fm-store::page`) must not use truncating `as` casts, where a silent
//!   wrap corrupts pages;
//! * `must-use-bool` — `pub fn … -> bool` predicates need `#[must_use]`
//!   (`Result` returns are already `#[must_use]` via rustc; re-tagging them
//!   would trip `clippy::double_must_use`, so the boolean rule is the
//!   useful remainder — see DESIGN.md);
//! * `relaxed-atomic` — `fm-core::metrics`, `fm-core::tracing`, and
//!   `fm-core::telemetry` are the fm-core modules allowed
//!   `Ordering::Relaxed` (independent monotonic counters, the flight
//!   recorder's single-writer slot claim, and the time-series ring that
//!   copies the recorder's idiom);
//!   elsewhere in fm-core a relaxed atomic needs a per-line justification,
//!   because "it's just a counter" is exactly how ordering bugs start.
//!
//! A line carrying `// lint:allow(<rule>[, <rule>…]): <why>` — on the
//! offending line or the line above — is exempt from the listed rules.
//! Pre-existing debt is frozen per content fingerprint in
//! `xtask-lint.baseline` (see [`crate::baseline`]); `--rebaseline`
//! regenerates it, and is the one-shot migration from the old
//! `(rule, file, count)` format.
//!
//! **Unused dependencies** (`unused-dep`): every dependency declared in a
//! member manifest must be referenced from that package's sources.

use std::fs;
use std::path::{Path, PathBuf};

use crate::analyze::items::FileIndex;

/// Crates whose `src/` is held to library hygiene (no panics, no prints).
const LIB_CRATES: &[&str] = &["fm-text", "fm-store", "fm-core", "fm-datagen", "fm-server"];

/// Allowed `fm-*` dependencies per crate. Crates absent from this table
/// (binaries, benches, examples, integration tests, xtask itself) may
/// depend on anything.
const LAYERS: &[(&str, &[&str])] = &[
    ("fm-text", &[]),
    ("fm-store", &[]),
    ("fm-core", &["fm-text", "fm-store"]),
    ("fm-datagen", &["fm-core", "fm-text"]),
    // The serving layer sits on top of the matcher; nothing below it may
    // ever reach back up (fm-server is in FM_CRATES, so every other
    // layered crate rejects it as a dependency or source reference).
    ("fm-server", &["fm-core", "fm-store"]),
    // The offline stand-ins shadow external crates; they must never reach
    // back into the workspace.
    ("rand", &[]),
    ("proptest", &[]),
    ("criterion", &[]),
    ("parking_lot", &[]),
];

const FM_CRATES: &[&str] = &["fm-text", "fm-store", "fm-core", "fm-datagen", "fm-server"];

/// Files where truncating `as` casts are corruption hazards.
const AS_CAST_FILES: &[&str] = &["crates/store/src/keycode.rs", "crates/store/src/page.rs"];

/// The fm-core modules allowed `Ordering::Relaxed` without justification:
/// the metrics registry (independent monotonic counters) and the tracing
/// flight recorder (single-writer slot claim; see the module docs for the
/// publication protocol).
const RELAXED_ATOMIC_HOMES: &[&str] = &[
    "crates/core/src/metrics.rs",
    "crates/core/src/tracing.rs",
    "crates/core/src/telemetry.rs",
];

const BASELINE_FILE: &str = "xtask-lint.baseline";

struct Package {
    name: String,
    dir: PathBuf,
    /// Declared dependencies across all dependency sections.
    deps: Vec<String>,
}

#[derive(Debug)]
struct Violation {
    rule: &'static str,
    /// Workspace-relative path.
    path: String,
    line: usize,
    message: String,
    /// Content the baseline fingerprints (offending line, or the message
    /// for file-level findings).
    anchor: String,
}

pub fn run(update_baseline: bool) -> i32 {
    let root = crate::workspace_root();
    let packages = match load_packages(&root) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("lint: cannot read workspace manifests: {e}");
            return 1;
        }
    };

    let mut violations = Vec::new();
    check_layering(&root, &packages, &mut violations);
    check_lines(&root, &packages, &mut violations);
    check_unused_deps(&root, &packages, &mut violations);
    violations.sort_by(|a, b| {
        (a.rule, &a.path, a.line, &a.message).cmp(&(b.rule, &b.path, b.line, &b.message))
    });

    let fps = crate::baseline::assign(&violations, |v| {
        (v.rule.to_string(), v.path.clone(), v.anchor.clone())
    });
    let baseline_path = root.join(BASELINE_FILE);

    if update_baseline {
        let entries: Vec<(String, u64, String, String)> = violations
            .iter()
            .zip(&fps)
            .map(|(v, &fp)| (v.rule.to_string(), fp, v.path.clone(), v.anchor.clone()))
            .collect();
        if let Err(e) = crate::baseline::write(&baseline_path, "lint", &entries) {
            eprintln!("lint: cannot write {BASELINE_FILE}: {e}");
            return 1;
        }
        println!("lint: baseline rewritten with {} findings", entries.len());
        return 0;
    }

    let base = crate::baseline::load(&baseline_path);
    if base.legacy {
        eprintln!(
            "lint: {BASELINE_FILE} is in the legacy (rule, file, count) format; \
             run `cargo xtask lint --rebaseline` once to migrate to content \
             fingerprints"
        );
        return 1;
    }

    let mut failed = false;
    for (v, &fp) in violations.iter().zip(&fps) {
        if !base.contains(fp) {
            failed = true;
            eprintln!("  {}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
        }
    }
    let current: std::collections::HashSet<u64> = fps.iter().copied().collect();
    let stale = base
        .entries
        .iter()
        .filter(|fp| !current.contains(fp))
        .count();
    if stale > 0 {
        println!(
            "lint: note: {stale} baselined findings no longer occur; run \
             `cargo xtask lint --rebaseline` to lock in the progress"
        );
    }
    if failed {
        eprintln!("lint: FAILED");
        1
    } else {
        println!(
            "lint: ok ({} packages, {} baselined findings)",
            packages.len(),
            base.entries.len()
        );
        0
    }
}

// ---------------------------------------------------------------- manifests

fn load_packages(root: &Path) -> std::io::Result<Vec<Package>> {
    let mut dirs = Vec::new();
    for parent in ["crates", "vendor"] {
        for entry in fs::read_dir(root.join(parent))? {
            let dir = entry?.path();
            if dir.join("Cargo.toml").is_file() {
                dirs.push(dir);
            }
        }
    }
    for single in ["tests", "examples"] {
        let dir = root.join(single);
        if dir.join("Cargo.toml").is_file() {
            dirs.push(dir);
        }
    }
    let mut packages = Vec::new();
    for dir in dirs {
        packages.push(parse_manifest(&dir)?);
    }
    packages.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(packages)
}

/// Minimal single-purpose TOML scan: section headers, `name = "..."`, and
/// the keys of dependency tables. Our manifests are machine-regular; a full
/// TOML parser would be the only external dependency in the whole tool.
fn parse_manifest(dir: &Path) -> std::io::Result<Package> {
    let text = fs::read_to_string(dir.join("Cargo.toml"))?;
    let mut section = String::new();
    let mut name = String::new();
    let mut deps = Vec::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            continue;
        }
        if section == "package" {
            if let Some(rest) = line.strip_prefix("name") {
                if let Some(value) = rest.trim_start().strip_prefix('=') {
                    name = value.trim().trim_matches('"').to_string();
                }
            }
        }
        if matches!(
            section.as_str(),
            "dependencies" | "dev-dependencies" | "build-dependencies"
        ) {
            if let Some(key) = line.split(['=', '.', ' ']).next().filter(|k| !k.is_empty()) {
                deps.push(key.to_string());
            }
        }
    }
    Ok(Package {
        name,
        dir: dir.to_path_buf(),
        deps,
    })
}

// ----------------------------------------------------------------- layering

fn allowed_fm_deps(name: &str) -> Option<&'static [&'static str]> {
    LAYERS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, allowed)| *allowed)
}

fn check_layering(root: &Path, packages: &[Package], out: &mut Vec<Violation>) {
    for pkg in packages {
        let Some(allowed) = allowed_fm_deps(&pkg.name) else {
            continue; // unrestricted layer
        };
        let manifest = rel(root, &pkg.dir.join("Cargo.toml"));
        for dep in &pkg.deps {
            if FM_CRATES.contains(&dep.as_str()) && !allowed.contains(&dep.as_str()) {
                let message = format!(
                    "{} must not depend on {dep} (allowed fm-* deps: {:?})",
                    pkg.name, allowed
                );
                out.push(Violation {
                    rule: "layering",
                    path: manifest.clone(),
                    line: 0,
                    anchor: message.clone(),
                    message,
                });
            }
        }
        // Source-level check: a `use fm_x::...` path without the manifest
        // dependency cannot compile, but catching it here gives the layering
        // error instead of a confusing resolution failure — and guards
        // against future re-export laundering.
        for file in rs_files(&pkg.dir) {
            let Ok(text) = fs::read_to_string(&file) else {
                continue;
            };
            for (lineno, line) in text.lines().enumerate() {
                let code = strip_comment(line);
                for fm in FM_CRATES {
                    let ident = fm.replace('-', "_");
                    if *fm != pkg.name && !allowed.contains(fm) && code.contains(&ident) {
                        out.push(Violation {
                            rule: "layering",
                            path: rel(root, &file),
                            line: lineno + 1,
                            message: format!("{} must not reference {fm}", pkg.name),
                            anchor: line.trim().to_string(),
                        });
                    }
                }
            }
        }
    }
}

// --------------------------------------------------------------- line lints

fn check_lines(root: &Path, packages: &[Package], out: &mut Vec<Violation>) {
    for pkg in packages {
        if !LIB_CRATES.contains(&pkg.name.as_str()) {
            continue;
        }
        for file in rs_files(&pkg.dir.join("src")) {
            let Ok(text) = fs::read_to_string(&file) else {
                continue;
            };
            let path = rel(root, &file);
            lint_file(&pkg.name, path, text, out);
        }
    }
}

/// Run every line lint over one source file, as it would be linted when it
/// lives at `path` inside package `pkg_name`.
fn lint_file(pkg_name: &str, path: String, text: String, out: &mut Vec<Violation>) {
    let index = FileIndex::build(path.clone(), text);
    let as_cast_scope = AS_CAST_FILES.contains(&path.as_str());
    let relaxed_scope = pkg_name == "fm-core" && !RELAXED_ATOMIC_HOMES.contains(&path.as_str());
    let limit = test_boundary(&index);

    let mut lint = |i: usize, rule: &'static str, message: String| {
        let line = index.sig_line(i);
        if !index.allowed(line, rule) {
            out.push(Violation {
                rule,
                path: path.clone(),
                line: line as usize,
                message,
                anchor: index.src_line(line).trim().to_string(),
            });
        }
    };
    for i in 0..limit {
        let t = index.sig_text(i);
        let prev = if i > 0 { index.sig_text(i - 1) } else { "" };
        let next = if i + 1 < limit {
            index.sig_text(i + 1)
        } else {
            ""
        };
        match t {
            "unwrap" if prev == "." && next == "(" => lint(
                i,
                "unwrap",
                "unwrap() in library code; propagate the error".into(),
            ),
            "expect" if prev == "." && next == "(" => lint(
                i,
                "expect",
                "expect() in library code; propagate the error".into(),
            ),
            "panic" if next == "!" => lint(
                i,
                "panic",
                "panic!() in library code; return an error".into(),
            ),
            "println" | "print" | "eprintln" | "eprint" if next == "!" => lint(
                i,
                "print",
                "library code must not write to stdout/stderr".into(),
            ),
            "dbg" if next == "!" => lint(i, "dbg", "dbg!() left in library code".into()),
            "Relaxed"
                if relaxed_scope
                    && prev == ":"
                    && i >= 3
                    && index.sig_text(i - 2) == ":"
                    && index.sig_text(i - 3) == "Ordering" =>
            {
                lint(
                    i,
                    "relaxed-atomic",
                    format!(
                        "relaxed atomic outside {}; move the counter into the \
                         metrics registry or tracing recorder, or justify the \
                         ordering",
                        RELAXED_ATOMIC_HOMES.join(", ")
                    ),
                )
            }
            "as" if as_cast_scope && matches!(next, "u8" | "u16" | "u32") => lint(
                i,
                "as-truncation",
                "truncating `as` cast in a storage codec; use try_into/from".into(),
            ),
            _ => {}
        }
    }

    // `must-use-bool` works on signature *lines* (it has to join a
    // multi-line signature and look upward for attributes anyway).
    let lines: Vec<&str> = index.src.lines().collect();
    for i in 0..lines.len() {
        if lines[i].trim_start().starts_with("#[cfg(test)]") {
            break; // test modules trail the library code in this repo
        }
        must_use_bool(&lines, i, &path, out);
    }
}

/// Fixture entry point: lint `text` as if it were the file at `path` in
/// package `pkg_name`, returning `(rule, line, message)` triples. Lets the
/// integration tests seed violations without touching the real tree.
pub fn lint_source_for_tests(
    pkg_name: &str,
    path: &str,
    text: &str,
) -> Vec<(String, usize, String)> {
    let mut out = Vec::new();
    lint_file(pkg_name, path.to_string(), text.to_string(), &mut out);
    out.into_iter()
        .map(|v| (v.rule.to_string(), v.line, v.message))
        .collect()
}

/// First significant-token index of a top-level `#[cfg(test)]` attribute;
/// tokens from there on are test code. (Test modules trail the library
/// code in this repo, which `xtask check` verifies structurally.)
fn test_boundary(index: &FileIndex) -> usize {
    let n = index.sig.len();
    (0..n)
        .find(|&i| {
            i + 4 < n
                && index.sig_text(i) == "#"
                && index.sig_text(i + 1) == "["
                && index.sig_text(i + 2) == "cfg"
                && index.sig_text(i + 3) == "("
                && index.sig_text(i + 4) == "test"
        })
        .unwrap_or(n)
}

/// `pub fn … -> bool` predicates must be `#[must_use]`: a dropped boolean
/// result is almost always a missed check.
fn must_use_bool(lines: &[&str], i: usize, path: &str, out: &mut Vec<Violation>) {
    let code = strip_comment(lines[i]);
    let trimmed = code.trim_start();
    if !trimmed.starts_with("pub fn ") {
        return;
    }
    // Join the signature until its body opens (or 10 lines, whichever first).
    let mut signature = String::new();
    for line in lines.iter().skip(i).take(10) {
        signature.push_str(strip_comment(line).trim());
        signature.push(' ');
        if line.contains('{') || line.contains(';') {
            break;
        }
    }
    let Some(ret) = signature.split("->").nth(1) else {
        return;
    };
    let returns_bare_bool = match ret.trim_start().strip_prefix("bool") {
        Some(r) => r.trim_start().starts_with('{') || r.trim_start().starts_with("where"),
        None => false,
    };
    if !returns_bare_bool {
        return;
    }
    // Attributes and doc comments sit directly above the signature.
    let covered = lines[..i]
        .iter()
        .rev()
        .take_while(|l| {
            let t = l.trim_start();
            t.starts_with("#[") || t.starts_with("///") || t.starts_with("//")
        })
        .any(|l| l.contains("#[must_use]"));
    let prev = if i > 0 { lines[i - 1] } else { "" };
    if !covered && !allows(lines[i], "must-use-bool") && !allows(prev, "must-use-bool") {
        out.push(Violation {
            rule: "must-use-bool",
            path: path.to_string(),
            line: i + 1,
            message: "public boolean predicate without #[must_use]".into(),
            anchor: lines[i].trim().to_string(),
        });
    }
}

// -------------------------------------------------------------- unused deps

fn check_unused_deps(root: &Path, packages: &[Package], out: &mut Vec<Violation>) {
    for pkg in packages {
        if pkg.deps.is_empty() {
            continue;
        }
        let mut sources = String::new();
        for file in rs_files(&pkg.dir) {
            if let Ok(text) = fs::read_to_string(&file) {
                sources.push_str(&text);
                sources.push('\n');
            }
        }
        for dep in &pkg.deps {
            let ident = dep.replace('-', "_");
            if !sources.contains(&ident) {
                let message = format!(
                    "{} declares dependency `{dep}` but never references `{ident}`",
                    pkg.name
                );
                out.push(Violation {
                    rule: "unused-dep",
                    path: rel(root, &pkg.dir.join("Cargo.toml")),
                    line: 0,
                    anchor: message.clone(),
                    message,
                });
            }
        }
    }
}

// ------------------------------------------------------------------ support

/// Does this line opt out of `rule`? The suppression comment is
/// `// lint:allow(rule)` or `// lint:allow(rule-a, rule-b): why`, with any
/// amount of whitespace (or a stray `\r`) around the rule names.
pub fn allows(line: &str, rule: &str) -> bool {
    let mut rest = line;
    while let Some(pos) = rest.find("lint:allow(") {
        rest = &rest[pos + "lint:allow(".len()..];
        let inner = match rest.find(')') {
            Some(close) => {
                let inner = &rest[..close];
                rest = &rest[close + 1..];
                inner
            }
            // Unclosed (e.g. truncated line): take the remainder.
            None => std::mem::take(&mut rest),
        };
        if inner.split(',').any(|r| r.trim() == rule) {
            return true;
        }
    }
    false
}

/// The code portion of a line (naive `//` strip; used only by the
/// line-shaped checks above — the token lints use the real lexer).
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

pub fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

pub fn rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}
