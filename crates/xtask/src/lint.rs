//! The workspace lint engine: rules the compiler and clippy cannot express
//! because they encode *this* project's architecture.
//!
//! ## Rules
//!
//! **Layering** (`layering`): the crate DAG must point one way —
//! `fm-text` and `fm-store` are leaves (no `fm-*` dependencies), `fm-core`
//! may use only `fm-text` + `fm-store`, `fm-datagen` only `fm-core` +
//! `fm-text`; binaries, benches, examples, and integration tests are
//! unrestricted. Enforced both on `Cargo.toml` declarations and on `use`
//! paths in source, so a path dependency can't sneak in through a re-export.
//!
//! **Line lints** (library crates only, test modules excluded):
//! * `unwrap`, `expect`, `panic` — library code must propagate errors;
//! * `print`, `dbg` — library code must not write to stdout/stderr;
//! * `as-truncation` — the storage codecs (`fm-store::keycode`,
//!   `fm-store::page`) must not use truncating `as` casts, where a silent
//!   wrap corrupts pages;
//! * `must-use-bool` — `pub fn … -> bool` predicates need `#[must_use]`
//!   (`Result` returns are already `#[must_use]` via rustc; re-tagging them
//!   would trip `clippy::double_must_use`, so the boolean rule is the
//!   useful remainder — see DESIGN.md);
//! * `relaxed-atomic` — `fm-core::metrics` is the one fm-core module
//!   allowed `Ordering::Relaxed` (its counters are independent and
//!   monotonic by design); elsewhere in fm-core a relaxed atomic needs a
//!   per-line justification, because "it's just a counter" is exactly how
//!   ordering bugs start.
//!
//! A line ending in `// lint:allow(<rule>): <why>` is exempt from `<rule>`.
//! Pre-existing debt is frozen per `(rule, file)` in `xtask-lint.baseline`;
//! counts may shrink but never grow.
//!
//! **Unused dependencies** (`unused-dep`): every dependency declared in a
//! member manifest must be referenced from that package's sources.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose `src/` is held to library hygiene (no panics, no prints).
const LIB_CRATES: &[&str] = &["fm-text", "fm-store", "fm-core", "fm-datagen"];

/// Allowed `fm-*` dependencies per crate. Crates absent from this table
/// (binaries, benches, examples, integration tests, xtask itself) may
/// depend on anything.
const LAYERS: &[(&str, &[&str])] = &[
    ("fm-text", &[]),
    ("fm-store", &[]),
    ("fm-core", &["fm-text", "fm-store"]),
    ("fm-datagen", &["fm-core", "fm-text"]),
    // The offline stand-ins shadow external crates; they must never reach
    // back into the workspace.
    ("rand", &[]),
    ("proptest", &[]),
    ("criterion", &[]),
    ("parking_lot", &[]),
];

const FM_CRATES: &[&str] = &["fm-text", "fm-store", "fm-core", "fm-datagen"];

/// Files where truncating `as` casts are corruption hazards.
const AS_CAST_FILES: &[&str] = &["crates/store/src/keycode.rs", "crates/store/src/page.rs"];

/// The one fm-core module allowed `Ordering::Relaxed` without justification.
const RELAXED_ATOMIC_HOME: &str = "crates/core/src/metrics.rs";

const BASELINE_FILE: &str = "xtask-lint.baseline";

struct Package {
    name: String,
    dir: PathBuf,
    /// Declared dependencies across all dependency sections.
    deps: Vec<String>,
}

#[derive(Debug)]
struct Violation {
    rule: &'static str,
    /// Workspace-relative path.
    path: String,
    line: usize,
    message: String,
}

pub fn run(update_baseline: bool) -> i32 {
    let root = crate::workspace_root();
    let packages = match load_packages(&root) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("lint: cannot read workspace manifests: {e}");
            return 1;
        }
    };

    let mut violations = Vec::new();
    check_layering(&root, &packages, &mut violations);
    check_lines(&root, &packages, &mut violations);
    check_unused_deps(&root, &packages, &mut violations);

    // Split into baseline-exempt debt and live violations.
    let mut counts: BTreeMap<(String, String), Vec<&Violation>> = BTreeMap::new();
    for v in &violations {
        counts
            .entry((v.rule.to_string(), v.path.clone()))
            .or_default()
            .push(v);
    }

    if update_baseline {
        let mut out = String::from(
            "# Frozen lint debt: `<rule> <file> <count>` per line. Counts may\n\
             # shrink but never grow; regenerate with\n\
             # `cargo xtask lint --update-baseline` after paying debt down.\n",
        );
        for ((rule, path), vs) in &counts {
            out.push_str(&format!("{rule} {path} {}\n", vs.len()));
        }
        if let Err(e) = fs::write(root.join(BASELINE_FILE), out) {
            eprintln!("lint: cannot write {BASELINE_FILE}: {e}");
            return 1;
        }
        println!(
            "lint: baseline rewritten with {} entries ({} total allowances)",
            counts.len(),
            counts.values().map(Vec::len).sum::<usize>()
        );
        return 0;
    }

    let baseline = load_baseline(&root);
    let mut failed = false;
    for ((rule, path), vs) in &counts {
        let allowed = baseline
            .get(&(rule.clone(), path.clone()))
            .copied()
            .unwrap_or(0);
        if vs.len() > allowed {
            failed = true;
            if allowed > 0 {
                eprintln!(
                    "lint[{rule}]: {path} has {} violations, baseline allows {allowed}:",
                    vs.len()
                );
            }
            for v in vs {
                eprintln!("  {}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
            }
        }
    }
    for ((rule, path), &allowed) in &baseline {
        let have = counts
            .get(&(rule.clone(), path.clone()))
            .map_or(0, |v| v.len());
        if have < allowed {
            println!(
                "lint: note: {path} is below its `{rule}` baseline ({have} < {allowed}); \
                 run `cargo xtask lint --update-baseline` to lock in the progress"
            );
        }
    }
    if failed {
        eprintln!("lint: FAILED");
        1
    } else {
        println!(
            "lint: ok ({} packages, {} baselined allowances)",
            packages.len(),
            baseline.values().sum::<usize>()
        );
        0
    }
}

// ---------------------------------------------------------------- manifests

fn load_packages(root: &Path) -> std::io::Result<Vec<Package>> {
    let mut dirs = Vec::new();
    for parent in ["crates", "vendor"] {
        for entry in fs::read_dir(root.join(parent))? {
            let dir = entry?.path();
            if dir.join("Cargo.toml").is_file() {
                dirs.push(dir);
            }
        }
    }
    for single in ["tests", "examples"] {
        let dir = root.join(single);
        if dir.join("Cargo.toml").is_file() {
            dirs.push(dir);
        }
    }
    let mut packages = Vec::new();
    for dir in dirs {
        packages.push(parse_manifest(&dir)?);
    }
    packages.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(packages)
}

/// Minimal single-purpose TOML scan: section headers, `name = "..."`, and
/// the keys of dependency tables. Our manifests are machine-regular; a full
/// TOML parser would be the only external dependency in the whole tool.
fn parse_manifest(dir: &Path) -> std::io::Result<Package> {
    let text = fs::read_to_string(dir.join("Cargo.toml"))?;
    let mut section = String::new();
    let mut name = String::new();
    let mut deps = Vec::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            continue;
        }
        if section == "package" {
            if let Some(rest) = line.strip_prefix("name") {
                if let Some(value) = rest.trim_start().strip_prefix('=') {
                    name = value.trim().trim_matches('"').to_string();
                }
            }
        }
        if matches!(
            section.as_str(),
            "dependencies" | "dev-dependencies" | "build-dependencies"
        ) {
            if let Some(key) = line.split(['=', '.', ' ']).next().filter(|k| !k.is_empty()) {
                deps.push(key.to_string());
            }
        }
    }
    Ok(Package {
        name,
        dir: dir.to_path_buf(),
        deps,
    })
}

// ----------------------------------------------------------------- layering

fn allowed_fm_deps(name: &str) -> Option<&'static [&'static str]> {
    LAYERS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, allowed)| *allowed)
}

fn check_layering(root: &Path, packages: &[Package], out: &mut Vec<Violation>) {
    for pkg in packages {
        let Some(allowed) = allowed_fm_deps(&pkg.name) else {
            continue; // unrestricted layer
        };
        let manifest = rel(root, &pkg.dir.join("Cargo.toml"));
        for dep in &pkg.deps {
            if FM_CRATES.contains(&dep.as_str()) && !allowed.contains(&dep.as_str()) {
                out.push(Violation {
                    rule: "layering",
                    path: manifest.clone(),
                    line: 0,
                    message: format!(
                        "{} must not depend on {dep} (allowed fm-* deps: {:?})",
                        pkg.name, allowed
                    ),
                });
            }
        }
        // Source-level check: a `use fm_x::...` path without the manifest
        // dependency cannot compile, but catching it here gives the layering
        // error instead of a confusing resolution failure — and guards
        // against future re-export laundering.
        for file in rs_files(&pkg.dir) {
            let Ok(text) = fs::read_to_string(&file) else {
                continue;
            };
            for (lineno, line) in text.lines().enumerate() {
                let code = strip_comment(line);
                for fm in FM_CRATES {
                    let ident = fm.replace('-', "_");
                    if *fm != pkg.name && !allowed.contains(fm) && code.contains(&ident) {
                        out.push(Violation {
                            rule: "layering",
                            path: rel(root, &file),
                            line: lineno + 1,
                            message: format!("{} must not reference {fm}", pkg.name),
                        });
                    }
                }
            }
        }
    }
}

// --------------------------------------------------------------- line lints

fn check_lines(root: &Path, packages: &[Package], out: &mut Vec<Violation>) {
    for pkg in packages {
        if !LIB_CRATES.contains(&pkg.name.as_str()) {
            continue;
        }
        for file in rs_files(&pkg.dir.join("src")) {
            let Ok(text) = fs::read_to_string(&file) else {
                continue;
            };
            let path = rel(root, &file);
            let as_cast_scope = AS_CAST_FILES.contains(&path.as_str());
            let relaxed_scope = pkg.name == "fm-core" && path != RELAXED_ATOMIC_HOME;
            let lines: Vec<&str> = text.lines().collect();
            for (i, raw) in lines.iter().enumerate() {
                if raw.trim_start().starts_with("#[cfg(test)]") {
                    break; // test modules trail the library code in this repo
                }
                let code = strip_comment(raw);
                // `lint:allow(rule)` may sit on the offending line or on a
                // comment line directly above it.
                let prev = if i > 0 { lines[i - 1] } else { "" };
                let lint = |rule: &'static str, message: String, out: &mut Vec<Violation>| {
                    if !allows(raw, rule) && !allows(prev, rule) {
                        out.push(Violation {
                            rule,
                            path: path.clone(),
                            line: i + 1,
                            message,
                        });
                    }
                };
                if code.contains(".unwrap()") {
                    lint(
                        "unwrap",
                        "unwrap() in library code; propagate the error".into(),
                        out,
                    );
                }
                if code.contains(".expect(") {
                    lint(
                        "expect",
                        "expect() in library code; propagate the error".into(),
                        out,
                    );
                }
                if code.contains("panic!(") {
                    lint(
                        "panic",
                        "panic!() in library code; return an error".into(),
                        out,
                    );
                }
                if ["println!(", "print!(", "eprintln!(", "eprint!("]
                    .iter()
                    .any(|p| code.contains(p))
                {
                    lint(
                        "print",
                        "library code must not write to stdout/stderr".into(),
                        out,
                    );
                }
                if code.contains("dbg!(") {
                    lint("dbg", "dbg!() left in library code".into(), out);
                }
                if relaxed_scope && code.contains("Ordering::Relaxed") {
                    lint(
                        "relaxed-atomic",
                        format!(
                            "relaxed atomic outside {RELAXED_ATOMIC_HOME}; move the counter \
                             into the metrics registry or justify the ordering"
                        ),
                        out,
                    );
                }
                if as_cast_scope
                    && [" as u8", " as u16", " as u32"].iter().any(|p| {
                        code.contains(p)
                            // `x as u16` is truncating; `u16::from(x)`, matched
                            // below as part of a longer token, is not.
                            && !code.contains(&format!("{p}::"))
                    })
                {
                    lint(
                        "as-truncation",
                        "truncating `as` cast in a storage codec; use try_into/from".into(),
                        out,
                    );
                }
                must_use_bool(&lines, i, &path, out);
            }
        }
    }
}

/// `pub fn … -> bool` predicates must be `#[must_use]`: a dropped boolean
/// result is almost always a missed check.
fn must_use_bool(lines: &[&str], i: usize, path: &str, out: &mut Vec<Violation>) {
    let code = strip_comment(lines[i]);
    let trimmed = code.trim_start();
    if !trimmed.starts_with("pub fn ") {
        return;
    }
    // Join the signature until its body opens (or 10 lines, whichever first).
    let mut signature = String::new();
    for line in lines.iter().skip(i).take(10) {
        signature.push_str(strip_comment(line).trim());
        signature.push(' ');
        if line.contains('{') || line.contains(';') {
            break;
        }
    }
    let Some(ret) = signature.split("->").nth(1) else {
        return;
    };
    let returns_bare_bool = match ret.trim_start().strip_prefix("bool") {
        Some(r) => r.trim_start().starts_with('{') || r.trim_start().starts_with("where"),
        None => false,
    };
    if !returns_bare_bool {
        return;
    }
    // Attributes and doc comments sit directly above the signature.
    let covered = lines[..i]
        .iter()
        .rev()
        .take_while(|l| {
            let t = l.trim_start();
            t.starts_with("#[") || t.starts_with("///") || t.starts_with("//")
        })
        .any(|l| l.contains("#[must_use]"));
    let prev = if i > 0 { lines[i - 1] } else { "" };
    if !covered && !allows(lines[i], "must-use-bool") && !allows(prev, "must-use-bool") {
        out.push(Violation {
            rule: "must-use-bool",
            path: path.to_string(),
            line: i + 1,
            message: "public boolean predicate without #[must_use]".into(),
        });
    }
}

// -------------------------------------------------------------- unused deps

fn check_unused_deps(root: &Path, packages: &[Package], out: &mut Vec<Violation>) {
    for pkg in packages {
        if pkg.deps.is_empty() {
            continue;
        }
        let mut sources = String::new();
        for file in rs_files(&pkg.dir) {
            if let Ok(text) = fs::read_to_string(&file) {
                sources.push_str(&text);
                sources.push('\n');
            }
        }
        for dep in &pkg.deps {
            let ident = dep.replace('-', "_");
            if !sources.contains(&ident) {
                out.push(Violation {
                    rule: "unused-dep",
                    path: rel(root, &pkg.dir.join("Cargo.toml")),
                    line: 0,
                    message: format!(
                        "{} declares dependency `{dep}` but never references `{ident}`",
                        pkg.name
                    ),
                });
            }
        }
    }
}

// ------------------------------------------------------------------ support

fn load_baseline(root: &Path) -> BTreeMap<(String, String), usize> {
    let mut map = BTreeMap::new();
    let Ok(text) = fs::read_to_string(root.join(BASELINE_FILE)) else {
        return map;
    };
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if let (Some(rule), Some(path), Some(count)) = (parts.next(), parts.next(), parts.next()) {
            if let Ok(count) = count.parse() {
                map.insert((rule.to_string(), path.to_string()), count);
            }
        }
    }
    map
}

/// Does this line opt out of `rule` via `// lint:allow(rule)`?
fn allows(line: &str, rule: &str) -> bool {
    line.contains(&format!("lint:allow({rule})"))
}

/// The code portion of a line (naive `//` strip; good enough for linting).
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

fn rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}
