//! The workspace's own checker, as a library so the integration tests can
//! drive the analysis passes against fixture projects.
//!
//! Commands (dispatched by the `xtask` binary):
//!
//! * [`lint`] — structural lints: crate layering direction, panic/print
//!   hygiene in library code, truncating casts in the storage codecs,
//!   `#[must_use]` on boolean predicates, unused dependencies.
//! * [`analyze`] — flow-aware rules over a hand-rolled Rust lexer and call
//!   graph: lock ordering, WAL-before-write, transitive panic
//!   reachability, and the unsafe/float-determinism audit.
//! * [`deepcheck`] — builds a reference relation, ETI, and weight tables,
//!   then runs every `check_invariants()` validator against them.
//! * [`bench`] — the performance gate: runs the fig6/fig8/fig9
//!   micro-harness (`bench_gate`), checks tracing overhead, and fails on
//!   >20% drift of deterministic counters vs `BENCH_baseline.json`.
//! * [`ci`] — the pre-PR gate: fmt, clippy, lint, analyze, deepcheck,
//!   tests, a traced-lookup → Chrome-export smoke test, and an
//!   `fm-server` round-trip/overload/drain smoke test.
//!
//! Known debt for `lint` and `analyze` is frozen in content-fingerprinted
//! [`baseline`] files at the workspace root.

pub mod analyze;
pub mod baseline;
pub mod bench;
pub mod ci;
pub mod deepcheck;
pub mod jsonv;
pub mod lint;

/// The workspace root (xtask lives at `<root>/crates/xtask`).
pub fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/xtask always sits two levels below the workspace root")
        .to_path_buf()
}
