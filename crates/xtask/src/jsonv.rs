//! Minimal JSON value parser, std-only.
//!
//! Just enough JSON to consume the workspace's own machine-readable
//! outputs — the bench gate's `BENCH_PR4.json` and the tracer's Chrome
//! trace-event export — without dragging a serde stack into the checker.
//! Strict on structure (balanced, fully consumed input), permissive on
//! nothing; numbers are parsed as `f64` like real JSON.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered; duplicate keys keep the last value on lookup.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (last duplicate wins, like serde_json).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            None => Err("unexpected end of input".into()),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the plain run, then decode it as UTF-8.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our own
                            // exports; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_report_shape() {
        let doc = parse(
            r#"{"schema": 1, "quick": true,
                "strategies": [{"strategy": "Q+T_3", "batch_ms": 12.5}],
                "phases_us": {"probe": 42}}"#,
        )
        .unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("quick").and_then(Json::as_bool), Some(true));
        let strategies = doc.get("strategies").and_then(Json::as_arr).unwrap();
        assert_eq!(
            strategies[0].get("strategy").and_then(Json::as_str),
            Some("Q+T_3")
        );
        assert_eq!(
            doc.get("phases_us").unwrap().get("probe").unwrap(),
            &Json::Num(42.0)
        );
    }

    #[test]
    fn parses_escapes_and_nesting() {
        let doc = parse(r#"{"name":"a\"b\\c\nd","args":[[1,-2.5e3],null,false]}"#).unwrap();
        assert_eq!(doc.get("name").and_then(Json::as_str), Some("a\"b\\c\nd"));
        let args = doc.get("args").and_then(Json::as_arr).unwrap();
        assert_eq!(args[0], Json::Arr(vec![Json::Num(1.0), Json::Num(-2500.0)]));
        assert_eq!(args[1], Json::Null);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err()); // trailing comma
        assert!(parse("{\"a\": 1} extra").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("[1 2]").is_err());
    }

    #[test]
    fn empty_containers_and_whitespace() {
        assert_eq!(parse(" { } ").unwrap(), Json::Obj(vec![]));
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("  42  ").unwrap(), Json::Num(42.0));
    }
}
