//! Property-based tests for the string kernels.

use fm_text::{jaccard, levenshtein, normalized_edit_distance, qgram_set, tokenize, MinHasher};
use proptest::prelude::*;

/// Short lowercase-ish token strategy resembling the data domain.
fn token() -> impl Strategy<Value = String> {
    "[a-z0-9]{0,12}"
}

proptest! {
    #[test]
    fn ed_is_symmetric(a in token(), b in token()) {
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
    }

    #[test]
    fn ed_identity(a in token()) {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(normalized_edit_distance(&a, &a), 0.0);
    }

    #[test]
    fn ed_normalized_in_unit_interval(a in token(), b in token()) {
        let d = normalized_edit_distance(&a, &b);
        prop_assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn ed_triangle(a in token(), b in token(), c in token()) {
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    #[test]
    fn ed_bounded_by_longer_length(a in token(), b in token()) {
        let bound = a.chars().count().max(b.chars().count()) as u32;
        prop_assert!(levenshtein(&a, &b) <= bound);
    }

    #[test]
    fn ed_at_least_length_difference(a in token(), b in token()) {
        let diff = (a.chars().count() as i64 - b.chars().count() as i64).unsigned_abs() as u32;
        prop_assert!(levenshtein(&a, &b) >= diff);
    }

    #[test]
    fn single_substitution_costs_one(a in "[a-z]{1,10}", idx in 0usize..10) {
        let chars: Vec<char> = a.chars().collect();
        let idx = idx % chars.len();
        if chars[idx] != 'z' {
            let mut mutated = chars.clone();
            mutated[idx] = 'z';
            let b: String = mutated.into_iter().collect();
            if b != a {
                prop_assert_eq!(levenshtein(&a, &b), 1);
            }
        }
    }

    #[test]
    fn qgrams_are_substrings(s in token(), q in 1usize..5) {
        for g in qgram_set(&s, q) {
            prop_assert_eq!(g.chars().count(), q);
            prop_assert!(s.contains(&g));
        }
    }

    #[test]
    fn qgram_count_bound(s in token(), q in 1usize..5) {
        let n = s.chars().count();
        let grams = qgram_set(&s, q);
        if n < q {
            prop_assert!(grams.is_empty());
        } else {
            prop_assert!(grams.len() <= n - q + 1);
            prop_assert!(!grams.is_empty());
        }
    }

    #[test]
    fn lemma_4_2_upper_bound(a in "[a-z]{1,10}", b in "[a-z]{1,10}", q in 2usize..5) {
        // 1 - ed(a,b) <= |QG(a) ∩ QG(b)|/(m·q) + (1-1/q)(1-1/m)
        let lhs = 1.0 - normalized_edit_distance(&a, &b);
        let rhs = fm_text::qgram_similarity_upper_bound(&a, &b, q);
        prop_assert!(lhs <= rhs + 1e-9, "lemma 4.2 violated: {} vs {}", lhs, rhs);
    }

    #[test]
    fn jaccard_symmetric_bounded(a in prop::collection::vec(token(), 0..6),
                                 b in prop::collection::vec(token(), 0..6)) {
        let j1 = jaccard(&a, &b);
        let j2 = jaccard(&b, &a);
        prop_assert_eq!(j1, j2);
        prop_assert!((0.0..=1.0).contains(&j1));
    }

    #[test]
    fn jaccard_identity(a in prop::collection::vec(token(), 0..6)) {
        prop_assert_eq!(jaccard(&a, &a), 1.0);
    }

    #[test]
    fn tokenize_produces_lowercase_nonempty(s in "[ A-Za-z0-9]{0,40}") {
        for t in tokenize(&s) {
            prop_assert!(!t.is_empty());
            prop_assert_eq!(t.clone(), t.to_lowercase());
            prop_assert!(!t.contains(' '));
        }
    }

    #[test]
    fn tokenize_is_idempotent_on_joined_output(s in "[ a-z0-9]{0,40}") {
        let once = tokenize(&s);
        let joined = once.join(" ");
        let twice = tokenize(&joined);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn minhash_similarity_bounds(a in "[a-z]{0,10}", b in "[a-z]{0,10}",
                                 h in 1usize..6, seed in 0u64..1000) {
        let mh = MinHasher::new(h, 3, seed);
        let s = mh.similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(mh.similarity(&a, &a), 1.0);
    }

    #[test]
    fn minhash_signature_length(t in "[a-z]{0,10}", h in 1usize..6, seed in 0u64..100) {
        let q = 3;
        let mh = MinHasher::new(h, q, seed);
        let sig = mh.signature(&t);
        if t.chars().count() < q {
            prop_assert_eq!(sig, vec![t]);
        } else {
            prop_assert_eq!(sig.len(), h);
        }
    }
}
