//! The Jaccard coefficient (paper §4.1).
//!
//! `sim(S1, S2) = |S1 ∩ S2| / |S1 ∪ S2|`. Used directly in tests and as the
//! quantity the min-hash similarity of [`crate::minhash`] estimates
//! unbiasedly (paper §4.1, citing Broder `[4]` and Cohen `[6]`).

/// Jaccard coefficient between two slices treated as sets.
///
/// Duplicates within a slice are ignored. Two empty sets have similarity 1.0
/// (they are equal); one empty set against a non-empty one scores 0.0.
pub fn jaccard<T: PartialEq>(s1: &[T], s2: &[T]) -> f64 {
    // Deduplicate views without allocating: inputs here are q-gram sets,
    // already distinct and tiny, so O(n·m) scans are the fast path.
    let distinct = |s: &[T], i: usize| !s[..i].contains(&s[i]);
    let n1 = (0..s1.len()).filter(|&i| distinct(s1, i)).count();
    let n2 = (0..s2.len()).filter(|&i| distinct(s2, i)).count();
    if n1 == 0 && n2 == 0 {
        return 1.0;
    }
    let inter = (0..s1.len())
        .filter(|&i| distinct(s1, i) && s2.contains(&s1[i]))
        .count();
    let union = n1 + n2 - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets() {
        assert_eq!(jaccard(&["a", "b"], &["a", "b"]), 1.0);
        assert_eq!(jaccard(&["b", "a"], &["a", "b"]), 1.0);
    }

    #[test]
    fn disjoint_sets() {
        assert_eq!(jaccard(&["a"], &["b"]), 0.0);
    }

    #[test]
    fn partial_overlap() {
        // {a,b,c} vs {b,c,d}: |∩|=2, |∪|=4.
        assert_eq!(jaccard(&["a", "b", "c"], &["b", "c", "d"]), 0.5);
    }

    #[test]
    fn empty_cases() {
        let empty: [&str; 0] = [];
        assert_eq!(jaccard(&empty, &empty), 1.0);
        assert_eq!(jaccard(&empty, &["a"]), 0.0);
        assert_eq!(jaccard(&["a"], &empty), 0.0);
    }

    #[test]
    fn duplicates_ignored() {
        assert_eq!(jaccard(&["a", "a", "b"], &["a", "b", "b"]), 1.0);
        assert_eq!(jaccard(&["a", "a"], &["a", "b"]), 0.5);
    }

    #[test]
    fn qgram_sets_of_paper_tokens() {
        use crate::qgram::qgram_set;
        let g1 = qgram_set("boeing", 3); // {boe, oei, ein, ing}
        let g2 = qgram_set("beoing", 3); // {beo, eoi, oin, ing}
                                         // Only "ing" is shared: 1 / 7.
        let sim = jaccard(&g1, &g2);
        assert!((sim - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn symmetry_and_bounds() {
        let sets: [&[&str]; 4] = [&["a"], &["a", "b"], &["c", "d", "e"], &[]];
        for s1 in sets {
            for s2 in sets {
                let j12 = jaccard(s1, s2);
                let j21 = jaccard(s2, s1);
                assert_eq!(j12, j21);
                assert!((0.0..=1.0).contains(&j12));
            }
        }
    }

    #[test]
    fn works_over_integers() {
        assert_eq!(jaccard(&[1, 2, 3], &[3, 4]), 0.25);
    }
}
