//! Deterministic seeded hashing.
//!
//! Everything random in this reproduction (min-hash coordinate functions,
//! data generation, error injection) derives from explicit `u64` seeds via
//! SplitMix64, so every experiment is exactly reproducible from its seed.

/// SplitMix64 — a tiny, high-quality mixer used both as a seed expander and
/// as the finalizer of [`hash_bytes`].
///
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014. This is the exact standard constant set.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mix a single `u64` to a well-distributed `u64` (stateless SplitMix64
/// finalizer).
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut s = x;
    splitmix64(&mut s)
}

/// Hash a byte string under a seed.
///
/// FNV-1a accumulation over the bytes followed by a SplitMix64 finalization
/// of `(acc, seed)`. This is not cryptographic; it only needs to be fast,
/// deterministic, and to behave like an independent uniform function for
/// every distinct `seed` — which is what the min-hash estimator of the paper
/// (§4.1, citing Broder and Cohen) requires of its hash family.
#[inline]
pub fn hash_bytes(seed: u64, bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut acc = FNV_OFFSET ^ seed.rotate_left(17);
    for &b in bytes {
        acc ^= u64::from(b);
        acc = acc.wrapping_mul(FNV_PRIME);
    }
    mix64(acc ^ seed)
}

/// Hash a UTF-8 string under a seed. Convenience wrapper over [`hash_bytes`].
#[inline]
pub fn hash_str(seed: u64, s: &str) -> u64 {
    hash_bytes(seed, s.as_bytes())
}

/// Derive `n` independent sub-seeds from a master seed.
///
/// Used to give each min-hash coordinate its own hash function, and each
/// data-generation stream its own RNG.
pub fn derive_seeds(master: u64, n: usize) -> Vec<u64> {
    let mut state = master ^ 0xA076_1D64_78BD_642F;
    (0..n).map(|_| splitmix64(&mut state)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42;
        let mut b = 42;
        for _ in 0..8 {
            assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        }
    }

    #[test]
    fn splitmix_known_vector() {
        // First output of SplitMix64 seeded with 0 (widely published vector).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn hash_str_differs_across_seeds() {
        let h1 = hash_str(1, "boeing");
        let h2 = hash_str(2, "boeing");
        assert_ne!(h1, h2);
    }

    #[test]
    fn hash_str_differs_across_inputs() {
        assert_ne!(hash_str(7, "boeing"), hash_str(7, "beoing"));
        assert_ne!(hash_str(7, ""), hash_str(7, "a"));
    }

    #[test]
    fn hash_str_stable() {
        // Guard against accidental constant changes: the whole reproduction
        // depends on these values being stable across runs.
        assert_eq!(hash_str(0, "abc"), hash_str(0, "abc"));
        let reference = hash_str(123, "corporation");
        for _ in 0..4 {
            assert_eq!(hash_str(123, "corporation"), reference);
        }
    }

    #[test]
    fn derive_seeds_distinct() {
        let seeds = derive_seeds(99, 64);
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "derived seeds must be distinct");
    }

    #[test]
    fn hash_distribution_rough_uniformity() {
        // Bucket 4096 token-like strings into 16 buckets; no bucket should be
        // wildly off 256 if the hash is healthy.
        let mut buckets = [0usize; 16];
        for i in 0..4096 {
            let s = format!("token-{i}");
            buckets[(hash_str(5, &s) % 16) as usize] += 1;
        }
        for &b in &buckets {
            assert!((150..400).contains(&b), "bucket count {b} out of range");
        }
    }
}
